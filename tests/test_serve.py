"""The multi-host campaign service (:mod:`repro.serve`).

Covers the full robustness story end to end:

* the chaos convergence proof — a 2-worker remote campaign under seeded
  worker kills, injected errors, and network faults (drops, torn bodies,
  stalls, duplicated deliveries) lands byte-identical payloads *and* the
  same registry run id as an undisturbed serial campaign, for all three
  paper CPU models;
* fleet-wide dedup — resubmitting the identical campaign is served from
  the coordinator's content-addressed result store;
* the lease state machine — expiry, attempt preservation, requeue at the
  front, quarantine at the attempt budget (driven by an injected clock);
* idempotent result PUTs (first-wins, duplicates are free);
* the span envelope riding on real HTTP headers (case-insensitive,
  unknown headers tolerated, newer schema rejected with a 400);
* graceful degradation to local execution when no coordinator answers;
* the observability satellites (``repro top`` banner, metrics-server
  port handling, registry origin accounting).
"""

from __future__ import annotations

import http.client
import io
import os
import pickle
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.core.characterization import CharacterizationConfig
from repro.cpu.models import PAPER_MODEL_TUPLE
from repro.engine import (
    ChaosPolicy,
    CharacterizationRowJob,
    EngineSession,
    ResultCache,
    RetryPolicy,
    SerialExecutor,
    make_executor,
)
from repro.errors import (
    ConfigurationError,
    CoordinatorUnreachableError,
    ObserveError,
    ServeProtocolError,
)
from repro.observe import MetricsServer, run_top
from repro.observe.spans import SpanContext, derive_trace_id
from repro.registry.registry import RunRegistry
from repro.registry.store import encode_object
from repro.serve import (
    ORIGIN_REMOTE,
    ORIGIN_REMOTE_CACHE,
    Coordinator,
    RemoteExecutor,
    Transport,
    WorkerAgent,
)
from repro.serve import protocol
from repro.telemetry.registry import Registry

#: Two frequency rows per paper model keeps the fleet campaign cheap.
FREQUENCIES = (0.8, 1.2)

#: Chaos seed chosen (by deterministic scan) so the fleet campaign draws
#: worker kills AND injected errors across the three models, plus
#: network faults on the client transport — see TestChaosConvergence.
CHAOS_SEED = 16


def _row_jobs(config: CharacterizationConfig):
    return [
        CharacterizationRowJob(
            codename=model.codename,
            frequency_ghz=frequency,
            config=config,
            seed=1,
        )
        for model in PAPER_MODEL_TUPLE
        for frequency in FREQUENCIES
    ]


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _worker_thread(url: str, **kwargs) -> threading.Thread:
    """An in-process worker that dies quietly when the coordinator stops."""

    def _run() -> None:
        try:
            WorkerAgent(url, **kwargs).run()
        except (CoordinatorUnreachableError, ServeProtocolError):
            pass

    thread = threading.Thread(target=_run, daemon=True)
    thread.start()
    return thread


@pytest.fixture
def coordinator(tmp_path):
    service = Coordinator(tmp_path / "store", lease_timeout_s=5.0).start()
    yield service
    service.stop()


# ---------------------------------------------------------------------------
# protocol units


class TestProtocol:
    def test_payload_round_trip(self):
        blob = pickle.dumps({"rows": [1, 2, 3]})
        assert protocol.decode_payload(protocol.encode_payload(blob)) == blob

    def test_malformed_payload_rejected(self):
        with pytest.raises(ServeProtocolError, match="base64"):
            protocol.decode_payload("not*base64*at*all")

    def test_torn_body_rejected(self):
        body = protocol.dumps_message({"jobs": [1, 2, 3]})
        with pytest.raises(ServeProtocolError, match="malformed protocol body"):
            protocol.loads_message(body[: len(body) // 2])

    def test_non_object_body_rejected(self):
        with pytest.raises(ServeProtocolError, match="JSON object"):
            protocol.loads_message(b"[1,2]")

    def test_newer_protocol_version_rejected(self):
        with pytest.raises(ServeProtocolError, match="newer than supported"):
            protocol.check_protocol({"Repro-Serve-Protocol": "99"})

    def test_envelope_absent_means_no_context(self):
        assert protocol.context_from_headers({"Content-Type": "x"}) is None


# ---------------------------------------------------------------------------
# span envelope over a real socket (satellite: header round trip)


class TestSpanEnvelopeOverHttp:
    def _submit_body(self) -> bytes:
        job = _row_jobs(
            CharacterizationConfig(
                offset_start_mv=-10, offset_stop_mv=-30, offset_step_mv=10
            )
        )[0]
        return protocol.dumps_message(
            {
                "jobs": [
                    {
                        "fingerprint": job.fingerprint(),
                        "kind": job.kind,
                        "spec": protocol.encode_payload(encode_object(job)),
                    }
                ]
            }
        )

    def test_mixed_case_headers_round_trip_through_lease(self, coordinator):
        """The envelope survives client → HTTP → coordinator → worker."""
        context = SpanContext(
            trace_id=derive_trace_id("serve-test"), parent_id="root/1"
        )
        connection = http.client.HTTPConnection("127.0.0.1", coordinator.port)
        try:
            body = self._submit_body()
            # Deliberately weird casing plus an unknown header: HTTP
            # semantics say both must be harmless.
            connection.request(
                "POST",
                "/v1/jobs",
                body=body,
                headers={
                    "Content-Type": protocol.CONTENT_TYPE,
                    "REPRO-TRACE-ID": context.trace_id,
                    "Repro-Parent-Id": context.parent_id,
                    "repro-span-schema": context.to_envelope()[
                        "repro-span-schema"
                    ],
                    "X-Repro-Unknown": "ignored",
                },
            )
            reply = connection.getresponse()
            assert reply.status == 200
            accepted = protocol.loads_message(reply.read())["accepted"]
            assert len(accepted) == 1
        finally:
            connection.close()

        # The worker's lease response carries the envelope back out as
        # real response headers; parsing them recovers the same context.
        transport = Transport(coordinator.url)
        reply, headers = transport.request(
            "POST", "/v1/lease", {"worker_id": "w-test", "capacity": 1}
        )
        assert len(reply["jobs"]) == 1
        recovered = protocol.context_from_headers(headers)
        assert recovered == context

    def test_newer_span_schema_is_rejected_with_400(self, coordinator):
        transport = Transport(coordinator.url, max_tries=1)
        with pytest.raises(ServeProtocolError, match="bad span envelope"):
            transport.request(
                "POST",
                "/v1/jobs",
                {"jobs": []},
                headers={
                    "repro-trace-id": "t",
                    "repro-parent-id": "p",
                    "repro-span-schema": "99",
                },
            )

    def test_from_envelope_rejects_newer_schema_directly(self):
        envelope = SpanContext(trace_id="t", parent_id="p").to_envelope()
        envelope["repro-span-schema"] = "99"
        with pytest.raises(ConfigurationError, match="newer"):
            SpanContext.from_envelope(envelope)


# ---------------------------------------------------------------------------
# lease state machine (injected clock; no sockets)


def _tiny_job():
    return _row_jobs(
        CharacterizationConfig(
            offset_start_mv=-10, offset_stop_mv=-30, offset_step_mv=10
        )
    )[0]


def _submit_message(job, max_attempts=3):
    return {
        "jobs": [
            {
                "fingerprint": job.fingerprint(),
                "kind": job.kind,
                "spec": protocol.encode_payload(encode_object(job)),
            }
        ],
        "max_attempts": max_attempts,
    }


class TestLeaseStateMachine:
    def _service(self, tmp_path, **kwargs):
        now = [0.0]
        service = Coordinator(
            tmp_path / "store",
            lease_timeout_s=kwargs.pop("lease_timeout_s", 10.0),
            clock=lambda: now[0],
            **kwargs,
        )
        return service, now

    def test_expired_lease_requeues_with_attempt_preserved(self, tmp_path):
        service, now = self._service(tmp_path)
        job = _tiny_job()
        service.handle_submit(_submit_message(job), {})
        granted, _ = service.handle_lease({"worker_id": "w1", "capacity": 1}, {})
        assert granted["jobs"][0]["attempt"] == 1
        lease_id = granted["lease_id"]

        # Nobody else can lease it while the lease is live.
        empty, _ = service.handle_lease({"worker_id": "w2", "capacity": 1}, {})
        assert empty["jobs"] == []

        # The worker dies (no heartbeat); past the deadline the job is
        # requeued with the consumed attempt preserved.
        now[0] = 11.0
        regranted, _ = service.handle_lease(
            {"worker_id": "w2", "capacity": 1}, {}
        )
        assert regranted["jobs"][0]["fingerprint"] == job.fingerprint()
        assert regranted["jobs"][0]["attempt"] == 2
        assert service.registry.counter("serve.leases.expired").value == 1
        assert service.registry.counter("serve.jobs.requeued").value == 1

        # The dead worker's late heartbeat learns it was reaped.
        pulse, _ = service.handle_heartbeat({"lease_id": lease_id}, {})
        assert pulse == {"ok": False, "reason": "unknown-lease"}

    def test_heartbeat_renews_the_deadline(self, tmp_path):
        service, now = self._service(tmp_path)
        job = _tiny_job()
        service.handle_submit(_submit_message(job), {})
        granted, _ = service.handle_lease({"worker_id": "w1", "capacity": 1}, {})
        lease_id = granted["lease_id"]
        for tick in (8.0, 16.0, 24.0):
            now[0] = tick
            pulse, _ = service.handle_heartbeat({"lease_id": lease_id}, {})
            assert pulse["ok"] is True
        # 24s of wall time later the renewed lease is still live.
        empty, _ = service.handle_lease({"worker_id": "w2", "capacity": 1}, {})
        assert empty["jobs"] == []
        assert service.registry.counter("serve.leases.expired").value == 0

    def test_attempt_budget_exhaustion_quarantines(self, tmp_path):
        service, now = self._service(tmp_path)
        job = _tiny_job()
        service.handle_submit(_submit_message(job, max_attempts=2), {})
        for round_number in (1, 2):
            granted, _ = service.handle_lease(
                {"worker_id": f"w{round_number}", "capacity": 1}, {}
            )
            assert granted["jobs"][0]["attempt"] == round_number
            now[0] += 11.0  # let the lease rot
        collected, _ = service.handle_collect(
            {"fingerprints": [job.fingerprint()]}, {}
        )
        entry = collected["done"][job.fingerprint()]
        assert entry["status"] == "quarantined"
        assert entry["attempts"] == 2
        assert [f["error_type"] for f in entry["failures"]] == [
            "LeaseExpired",
            "LeaseExpired",
        ]
        assert service.registry.counter("serve.jobs.quarantined").value == 1

    def test_result_put_is_first_wins_idempotent(self, tmp_path):
        service, now = self._service(tmp_path)
        job = _tiny_job()
        service.handle_submit(_submit_message(job), {})
        granted, _ = service.handle_lease({"worker_id": "w1", "capacity": 1}, {})
        message = {
            "lease_id": granted["lease_id"],
            "attempt": 1,
            "status": "ok",
            "payload": protocol.encode_payload(b"payload-bytes"),
        }
        first, _ = service.handle_result(job.fingerprint(), message, {})
        assert first == {"ok": True, "duplicate": False}
        # A chaos-duplicated (or late re-leased) delivery is free.
        second, _ = service.handle_result(job.fingerprint(), message, {})
        assert second == {"ok": True, "duplicate": True}
        assert service.registry.counter("serve.results.duplicate").value == 1
        assert len(service.store) == 1

    def test_error_results_requeue_then_quarantine(self, tmp_path):
        service, now = self._service(tmp_path)
        job = _tiny_job()
        service.handle_submit(_submit_message(job, max_attempts=2), {})
        for attempt in (1, 2):
            granted, _ = service.handle_lease(
                {"worker_id": "w1", "capacity": 1}, {}
            )
            assert granted["jobs"][0]["attempt"] == attempt
            service.handle_result(
                job.fingerprint(),
                {
                    "lease_id": granted["lease_id"],
                    "attempt": attempt,
                    "status": "error",
                    "error_type": "FaultInjected",
                    "error_message": "chaos",
                },
                {},
            )
        collected, _ = service.handle_collect(
            {"fingerprints": [job.fingerprint()]}, {}
        )
        entry = collected["done"][job.fingerprint()]
        assert entry["status"] == "quarantined"
        assert [f["error_type"] for f in entry["failures"]] == [
            "FaultInjected",
            "FaultInjected",
        ]


# ---------------------------------------------------------------------------
# remote executor end to end (clean network, in-process worker)


class TestRemoteExecutorEndToEnd:
    def test_remote_matches_serial_and_dedups(self, coordinator, coarse_config):
        jobs = _row_jobs(coarse_config)[:2]
        serial = SerialExecutor()
        reference = serial.run_jobs(jobs)
        _worker_thread(coordinator.url, max_idle_s=30.0, poll_interval_s=0.05)

        remote = RemoteExecutor(coordinator.url, poll_interval_s=0.02)
        context = SpanContext(
            trace_id=derive_trace_id("e2e"), parent_id="batch/1"
        )
        results = remote.run_jobs(jobs, span_context=context)

        assert [r.fingerprint for r in results] == [
            j.fingerprint() for j in jobs
        ]
        for landed, expected in zip(results, reference):
            assert landed.origin == ORIGIN_REMOTE
            assert encode_object(landed.payload) == encode_object(
                expected.payload
            )
            # The remote hop is visible: the job span's wall sidecar
            # carries the queue wait measured from this client's submit.
            waits = [
                entry
                for entry in landed.span_wall.values()
                if "queue_wait_s" in entry
            ]
            assert waits and all(w["queue_wait_s"] >= 0.0 for w in waits)

        # A second client submitting the same campaign is served from
        # the fleet store without queueing anything.
        replay = RemoteExecutor(coordinator.url, poll_interval_s=0.02)
        replayed = replay.run_jobs(jobs, span_context=context)
        for landed, expected in zip(replayed, reference):
            assert landed.origin == ORIGIN_REMOTE_CACHE
            assert encode_object(landed.payload) == encode_object(
                expected.payload
            )
        assert coordinator.registry.counter("serve.jobs.deduped").value == 2
        assert coordinator.store.stats.hits >= 2

    def test_status_snapshot_counts_the_fleet(self, coordinator, coarse_config):
        jobs = _row_jobs(coarse_config)[:1]
        _worker_thread(
            coordinator.url,
            worker_id="w-status",
            max_idle_s=30.0,
            poll_interval_s=0.05,
        )
        RemoteExecutor(coordinator.url, poll_interval_s=0.02).run_jobs(jobs)
        snapshot = Transport(coordinator.url).request("POST", "/v1/collect", {
            "fingerprints": [],
        })
        status = protocol.loads_message(
            protocol.dumps_message(coordinator.status_snapshot())
        )
        assert status["jobs"] == {"done": 1}
        assert "w-status" in status["workers"]
        assert status["store"]["results"] == 1


# ---------------------------------------------------------------------------
# graceful degradation


class TestGracefulDegradation:
    def _dead_url(self) -> str:
        return f"http://127.0.0.1:{_free_port()}"

    def test_unreachable_coordinator_degrades_to_inline(self, coarse_config):
        jobs = _row_jobs(coarse_config)[:2]
        reference = SerialExecutor().run_jobs(jobs)
        url = self._dead_url()
        executor = RemoteExecutor(
            url,
            transport=Transport(
                url, max_tries=2, backoff_s=0.0, sleep=lambda _s: None
            ),
        )
        results = executor.run_jobs(jobs)
        assert executor.stats.degraded == 2
        for landed, expected in zip(results, reference):
            assert getattr(landed, "origin", None) is None
            assert encode_object(landed.payload) == encode_object(
                expected.payload
            )

    def test_transport_backoff_is_deterministic_and_capped(self):
        transport = Transport(
            "http://127.0.0.1:1",
            backoff_s=0.05,
            backoff_factor=2.0,
            backoff_cap_s=0.15,
        )
        assert [transport.backoff_for(n) for n in (1, 2, 3, 4)] == [
            0.05,
            0.1,
            0.15,
            0.15,
        ]

    def test_retry_budget_raises_coordinator_unreachable(self):
        url = self._dead_url()
        slept = []
        transport = Transport(
            url, max_tries=3, backoff_s=0.01, sleep=slept.append
        )
        with pytest.raises(CoordinatorUnreachableError, match="3 attempt"):
            transport.request("POST", "/v1/lease", {"worker_id": "w"})
        assert slept == [0.01, 0.02]  # deterministic schedule, no jitter

    def test_make_executor_remote_requires_url(self):
        with pytest.raises(ConfigurationError, match="coordinator"):
            make_executor("remote")
        executor = make_executor("remote", url="http://127.0.0.1:1")
        assert isinstance(executor, RemoteExecutor)


# ---------------------------------------------------------------------------
# THE acceptance proof: chaos-ridden fleet converges byte-identically


class TestChaosConvergence:
    """2 subprocess workers, seeded kills/errors/network faults, 3 models."""

    def _spawn_worker(self, url: str, serial: int) -> subprocess.Popen:
        src = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "work",
                "--coordinator",
                url,
                "--capacity",
                "2",
                "--worker-id",
                f"chaos-w{serial}",
                "--max-idle",
                "60",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def test_chaotic_fleet_campaign_matches_serial(
        self, tmp_path, coarse_config
    ):
        jobs = _row_jobs(coarse_config)

        # -- the undisturbed serial reference ------------------------------
        serial_session = EngineSession(
            executor=SerialExecutor(),
            cache=ResultCache(),
            registry=RunRegistry(tmp_path / "registry-serial"),
        )
        serial_payloads = serial_session.run_jobs(jobs)
        serial_run_id = serial_session.record_run()
        assert serial_run_id is not None

        # -- the chaos-ridden fleet campaign -------------------------------
        chaos = ChaosPolicy(
            seed=CHAOS_SEED,
            kill_rate=0.3,
            error_rate=0.2,
            drop_rate=0.15,
            torn_body_rate=0.15,
            net_stall_rate=0.05,
            duplicate_rate=0.1,
            net_stall_s=0.02,
        )
        # Worker faults only fire on first attempts (max_faulted_attempts
        # defaults to 1) and this seed draws three kills, so any job can
        # lose at most its own faulted attempt plus a LeaseExpired per
        # kill it shares a lease with; 6 attempts cannot be exhausted.
        policy = RetryPolicy(max_attempts=6, backoff_s=0.01)

        coordinator = Coordinator(
            tmp_path / "store", lease_timeout_s=1.5
        ).start()
        workers: dict = {}
        respawned = [0]
        stop_watchdog = threading.Event()

        def watchdog() -> None:
            # A chaos kill takes the whole agent down with os._exit
            # mid-lease; the fleet operator (this thread) respawns it.
            while not stop_watchdog.wait(0.1):
                for slot, process in list(workers.items()):
                    if process.poll() is not None:
                        respawned[0] += 1
                        workers[slot] = self._spawn_worker(
                            coordinator.url, 10 * slot + respawned[0]
                        )

        try:
            for slot in (1, 2):
                workers[slot] = self._spawn_worker(coordinator.url, slot)
            watchdog_thread = threading.Thread(target=watchdog, daemon=True)
            watchdog_thread.start()

            remote_session = EngineSession(
                executor=RemoteExecutor(
                    coordinator.url,
                    policy=policy,
                    chaos=chaos,
                    poll_interval_s=0.05,
                    max_wait_s=120.0,
                ),
                cache=ResultCache(),
                registry=RunRegistry(tmp_path / "registry-remote"),
            )
            remote_payloads = remote_session.run_jobs(jobs)
            remote_run_id = remote_session.record_run()

            # Byte-identical payloads for every (model, frequency) cell.
            assert remote_session.quarantined == []
            for remote_payload, serial_payload in zip(
                remote_payloads, serial_payloads
            ):
                assert encode_object(remote_payload) == encode_object(
                    serial_payload
                )
            # ... and the identical content-addressed run id.
            assert remote_run_id == serial_run_id

            # Every cell was executed by the fleet, none degraded inline.
            manifest = remote_session.run_manifest()
            assert manifest["jobs"]["remote"] == len(jobs)
            assert manifest["jobs"]["quarantined"] == 0

            # The chaos actually bit: at least one worker was killed
            # mid-lease (so a lease expired and was re-leased) or an
            # injected error forced a retry.
            expired = coordinator.registry.counter(
                "serve.leases.expired"
            ).value
            retries = coordinator.registry.counter(
                "serve.jobs.retries"
            ).value
            assert expired >= 1  # seed 16 kills three first attempts
            assert expired + retries >= 2
            assert respawned[0] >= 1

            session_registry = remote_session.telemetry.registry
            assert (
                session_registry.counter("engine.requeues").value
                + session_registry.counter("engine.retries").value
                >= 1
            )

            # -- resubmission: the fleet store serves the whole campaign --
            replay_session = EngineSession(
                executor=RemoteExecutor(
                    coordinator.url, poll_interval_s=0.02
                ),
                cache=ResultCache(),
                registry=RunRegistry(tmp_path / "registry-replay"),
            )
            replay_payloads = replay_session.run_jobs(jobs)
            for replay_payload, serial_payload in zip(
                replay_payloads, serial_payloads
            ):
                assert encode_object(replay_payload) == encode_object(
                    serial_payload
                )
            replay_manifest = replay_session.run_manifest()
            dedup_fraction = replay_manifest["jobs"]["remote_cached"] / len(
                jobs
            )
            assert dedup_fraction >= 0.9
            assert replay_session.record_run() == serial_run_id
        finally:
            stop_watchdog.set()
            for process in workers.values():
                process.kill()
            for process in workers.values():
                process.wait(timeout=10)
            coordinator.stop()


# ---------------------------------------------------------------------------
# observability satellites


class TestMetricsServerPorts:
    def test_port_in_use_raises_clear_error(self):
        with socket.socket() as squatter:
            squatter.bind(("127.0.0.1", 0))
            squatter.listen(1)
            port = squatter.getsockname()[1]
            server = MetricsServer(registry=Registry(), port=port)
            with pytest.raises(ObserveError, match="ephemeral port"):
                server.start()

    def test_port_zero_binds_ephemeral(self):
        registry = Registry()
        registry.counter("serve.test").inc(3)
        server = MetricsServer(registry=Registry(), port=0)
        server.start()
        try:
            assert server.port != 0
            connection = http.client.HTTPConnection("127.0.0.1", server.port)
            connection.request("GET", "/healthz")
            assert connection.getresponse().status == 200
            connection.close()
        finally:
            server.stop()

    def test_coordinator_port_in_use_raises_clear_error(self, tmp_path):
        with socket.socket() as squatter:
            squatter.bind(("127.0.0.1", 0))
            squatter.listen(1)
            port = squatter.getsockname()[1]
            service = Coordinator(tmp_path / "store", port=port)
            with pytest.raises(ObserveError, match="--port 0"):
                service.start()


class TestTopBanner:
    def _dead_metrics_url(self) -> str:
        return f"http://127.0.0.1:{_free_port()}/metrics"

    def test_live_loop_shows_banner_instead_of_traceback(self):
        stream = io.StringIO()
        code = run_top(
            self._dead_metrics_url(),
            frames=2,
            interval_s=0.01,
            stream=stream,
        )
        output = stream.getvalue()
        assert code == 1  # never connected
        assert output.count("connection lost") == 2
        assert "retrying on the next refresh" in output
        assert "Traceback" not in output

    def test_once_mode_still_exits_nonzero(self):
        stream = io.StringIO()
        code = run_top(self._dead_metrics_url(), once=True, stream=stream)
        assert code == 1
        assert "repro top:" in stream.getvalue()

    def test_top_scrapes_a_live_coordinator(self, coordinator):
        coordinator.registry.counter("serve.jobs.submitted").inc(4)
        stream = io.StringIO()
        code = run_top(
            coordinator.url + "/metrics", once=True, stream=stream
        )
        assert code == 0
        assert "repro top" in stream.getvalue()


class TestRegistryOriginAccounting:
    def test_describe_reports_remote_origins(self, tmp_path, coordinator,
                                             coarse_config):
        jobs = _row_jobs(coarse_config)[:2]
        _worker_thread(coordinator.url, max_idle_s=30.0, poll_interval_s=0.05)
        registry_dir = tmp_path / "registry"
        session = EngineSession(
            executor=RemoteExecutor(coordinator.url, poll_interval_s=0.02),
            cache=ResultCache(),
            registry=RunRegistry(registry_dir),
        )
        session.run_jobs(jobs)
        session.record_run()
        first = RunRegistry(registry_dir).describe()
        assert first["by_origin"] == {"remote": 2}
        assert first["dedup_hits"] == {"local": 0, "remote": 0}

        replay = EngineSession(
            executor=RemoteExecutor(coordinator.url, poll_interval_s=0.02),
            cache=ResultCache(),
            registry=RunRegistry(registry_dir),
        )
        replay.run_jobs(jobs)
        # Same jobs → same run id: the idempotent re-record replaces the
        # run's rows, whose origins now say the fleet store served them.
        replay.record_run()
        info = RunRegistry(registry_dir).describe()
        assert info["by_origin"] == {"remote-cache": 2}
        assert info["dedup_hits"] == {"local": 0, "remote": 2}

    def test_status_registry_cli_shows_dedup_by_origin(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main

        monkeypatch.setenv("REPRO_REGISTRY_DIR", str(tmp_path / "registry"))
        assert main(["status", "--registry"]) == 0
        out = capsys.readouterr().out
        assert "dedup by origin" in out
        assert "local" in out and "remote" in out
