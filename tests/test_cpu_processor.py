"""The assembled processor: MSR wiring, OCM protocol, PERF_STATUS synthesis."""

from __future__ import annotations

import pytest

from repro.errors import CoreIndexError, OCMProtocolError
from repro.clock import ManualClock
from repro.core.encoding import offset_voltage, read_request
from repro.cpu import perf_status
from repro.cpu.models import COMET_LAKE, SKY_LAKE
from repro.cpu.msr import IA32_PERF_CTL, IA32_PERF_STATUS, MSR_OC_MAILBOX, MSR_PLATFORM_INFO
from repro.cpu.processor import SimulatedProcessor


@pytest.fixture
def clock() -> ManualClock:
    return ManualClock()


@pytest.fixture
def processor(clock) -> SimulatedProcessor:
    return SimulatedProcessor(COMET_LAKE, clock=clock)


class TestConstruction:
    def test_core_count(self, processor):
        assert len(processor.cores) == COMET_LAKE.core_count

    def test_cores_start_at_base_frequency(self, processor):
        for core in processor.cores:
            assert core.frequency_ghz == pytest.approx(1.8)

    def test_invalid_core_index(self, processor):
        with pytest.raises(CoreIndexError):
            processor.core(99)

    def test_platform_info_carries_base_ratio(self, processor):
        value = processor.rdmsr(0, MSR_PLATFORM_INFO)
        assert (value >> 8) & 0xFF == 18


class TestPerfStatus:
    def test_reports_ratio_and_voltage(self, processor):
        value = processor.rdmsr(0, IA32_PERF_STATUS)
        status = perf_status.decode(value)
        assert status.ratio == 18
        expected = processor.vf_curve.base_voltage(1.8)
        assert status.voltage_volts == pytest.approx(expected, abs=1e-3)

    def test_tracks_frequency_change(self, processor):
        processor.wrmsr(0, IA32_PERF_CTL, (30 & 0xFF) << 8)
        status = perf_status.decode(processor.rdmsr(0, IA32_PERF_STATUS))
        assert status.ratio == 30
        assert status.frequency_ghz == pytest.approx(3.0)

    def test_voltage_follows_vf_curve_with_frequency(self, processor):
        low = perf_status.decode(processor.rdmsr(0, IA32_PERF_STATUS)).voltage_volts
        processor.wrmsr(0, IA32_PERF_CTL, (49 & 0xFF) << 8)
        high = perf_status.decode(processor.rdmsr(0, IA32_PERF_STATUS)).voltage_volts
        assert high > low


class TestOCMPath:
    def test_write_lands_in_regulator_after_latency(self, processor, clock):
        processor.wrmsr(0, MSR_OC_MAILBOX, offset_voltage(-120, plane=0))
        core = processor.core(0)
        assert core.target_offset_mv() == pytest.approx(-120, abs=1)
        assert core.applied_offset_mv(clock.now) == 0.0
        clock.advance(COMET_LAKE.regulator_latency_s + 1e-6)
        assert core.applied_offset_mv(clock.now) == pytest.approx(-120, abs=1)

    def test_effective_voltage_reflects_applied_offset(self, processor, clock):
        base = processor.core(0).effective_voltage(clock.now)
        processor.wrmsr(0, MSR_OC_MAILBOX, offset_voltage(-100, plane=0))
        clock.advance(1.0)
        assert processor.core(0).effective_voltage(clock.now) == pytest.approx(
            base - 0.100, abs=2e-3
        )

    def test_mailbox_readback_returns_offset(self, processor):
        processor.wrmsr(0, MSR_OC_MAILBOX, offset_voltage(-90, plane=0))
        response = processor.rdmsr(0, MSR_OC_MAILBOX)
        from repro.core.encoding import decode_offset_mv

        assert decode_offset_mv(response) == pytest.approx(-90, abs=1)

    def test_read_request_protocol(self, processor):
        processor.wrmsr(0, MSR_OC_MAILBOX, offset_voltage(-90, plane=0))
        processor.wrmsr(0, MSR_OC_MAILBOX, read_request(plane=0))
        from repro.core.encoding import decode_offset_mv

        assert decode_offset_mv(processor.rdmsr(0, MSR_OC_MAILBOX)) == pytest.approx(
            -90, abs=1
        )

    def test_malformed_command_rejected(self, processor):
        with pytest.raises(OCMProtocolError):
            processor.wrmsr(0, MSR_OC_MAILBOX, 0x1234)

    def test_per_core_offsets_independent(self, processor, clock):
        processor.wrmsr(0, MSR_OC_MAILBOX, offset_voltage(-50, plane=0))
        clock.advance(1.0)
        assert processor.core(0).applied_offset_mv(clock.now) == pytest.approx(-50, abs=1)
        assert processor.core(1).applied_offset_mv(clock.now) == 0.0


class TestPerfCtl:
    def test_out_of_table_request_clamped(self, processor):
        processor.wrmsr(0, IA32_PERF_CTL, (0xFF & 0xFF) << 8)
        assert processor.core(0).frequency_ghz == pytest.approx(4.9)

    def test_below_table_request_clamped(self, processor):
        processor.wrmsr(0, IA32_PERF_CTL, (1 & 0xFF) << 8)
        assert processor.core(0).frequency_ghz == pytest.approx(0.4)


class TestReboot:
    def test_reboot_resets_offsets_and_frequency(self, processor, clock):
        processor.wrmsr(0, MSR_OC_MAILBOX, offset_voltage(-150, plane=0))
        processor.wrmsr(0, IA32_PERF_CTL, (40 & 0xFF) << 8)
        clock.advance(1.0)
        processor.reboot()
        assert processor.core(0).frequency_ghz == pytest.approx(1.8)
        assert processor.core(0).applied_offset_mv(clock.now) == 0.0
        assert processor.reboot_count == 1

    def test_models_differ(self, clock):
        skylake = SimulatedProcessor(SKY_LAKE, clock=clock)
        assert skylake.core(0).frequency_ghz == pytest.approx(3.2)


class TestConditionsView:
    def test_conditions_snapshot(self, processor, clock):
        conditions = processor.conditions(0)
        assert conditions.frequency_ghz == pytest.approx(1.8)
        assert conditions.offset_mv == 0.0
        assert conditions.voltage_volts > 0.7


class TestNonCorePlanes:
    def test_cache_plane_write_does_not_move_core_voltage(self, processor, clock):
        # Plundervolt wrote both the core and cache planes; our fault
        # model keys off the CORE plane only — a cache-plane offset is
        # tracked but must not change the core's electrical conditions
        # (documented simplification, see docs/faithfulness.md).
        from repro.cpu.ocm import VoltagePlane

        processor.wrmsr(0, MSR_OC_MAILBOX, offset_voltage(-100, plane=2))
        clock.advance(1.0)
        core = processor.core(0)
        assert core.applied_offset_mv(clock.now, VoltagePlane.CACHE) == (
            pytest.approx(-100, abs=1.0)
        )
        assert core.applied_offset_mv(clock.now, VoltagePlane.CORE) == 0.0
        base = processor.vf_curve.base_voltage(core.frequency_ghz)
        assert core.effective_voltage(clock.now) == pytest.approx(base)
