"""Scalar-vs-vector byte-identity: the contract of the batch fast path.

The vectorized sweep evaluator (:mod:`repro.vector`) is only admissible
because it is *bit-identical* to the scalar oracle — same cells, same
telemetry counters, same trace events, same random-stream consumption.
This suite is the executable proof: fuzz-sampled physics comparisons per
process node, full ``run_row`` vs ``run_row_batch`` sweeps per paper
model (including ``repetitions > 1``), and a pin on the one numpy
``Generator`` equivalence the batch draw loop relies on.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.characterization import CharacterizationConfig, CharacterizationFramework
from repro.cpu import COMET_LAKE, KABY_LAKE_R, PAPER_MODEL_TUPLE, SKY_LAKE
from repro.faults.margin import FaultModel
from repro.telemetry import Telemetry
from repro.timing.constants import INTEL_10NM, INTEL_14NM, INTEL_14NM_PLUS
from repro.timing.delay_model import DelayModel
from repro.vector.kernels import raw_delay_grid, scale_grid

#: Coarse sweep: full physics coverage (safe band, fault band, crash) at
#: a fraction of the default grid's cells.
COARSE = CharacterizationConfig(
    offset_start_mv=-10, offset_stop_mv=-250, offset_step_mv=10
)

ALL_PROCESSES = (INTEL_14NM, INTEL_14NM_PLUS, INTEL_10NM)


def _fuzz_points(process, seed, count=200):
    """(V, T) samples spanning sub-threshold through nominal supply."""
    rng = np.random.default_rng(seed)
    voltages = rng.uniform(0.0, 1.4, size=count)
    temperatures = rng.uniform(20.0, 100.0, size=count)
    return voltages, temperatures


class TestPhysicsFuzzIdentity:
    """Kernel outputs == scalar model outputs on fuzz-sampled (V, T)."""

    @pytest.mark.parametrize("process", ALL_PROCESSES)
    def test_raw_delay_bitwise_identity(self, process):
        model = DelayModel(process)
        voltages, temperatures = _fuzz_points(process, seed=23)
        for temperature in set(np.round(temperatures, 0).tolist()):
            grid = raw_delay_grid(process, voltages, temperature)
            for voltage, value, valid in zip(
                voltages.tolist(), grid.values.tolist(), grid.valid.tolist()
            ):
                if valid:
                    assert value == model.raw_delay(voltage, temperature)

    @pytest.mark.parametrize("process", ALL_PROCESSES)
    def test_scale_bitwise_identity(self, process):
        model = DelayModel(process)
        voltages, _ = _fuzz_points(process, seed=29)
        grid = scale_grid(process, voltages)
        for voltage, value, valid in zip(
            voltages.tolist(), grid.values.tolist(), grid.valid.tolist()
        ):
            if valid:
                assert value == model.scale(voltage)


def _row_identity(model, config, frequency_ghz):
    """Assert scalar and batch rows agree cell-for-cell and in telemetry."""
    scalar_telemetry = Telemetry()
    batch_telemetry = Telemetry()
    scalar = CharacterizationFramework(model, config=config, seed=2024).run_row(
        frequency_ghz, telemetry=scalar_telemetry
    )
    batch = CharacterizationFramework(model, config=config, seed=2024).run_row_batch(
        frequency_ghz, telemetry=batch_telemetry
    )
    assert scalar == batch
    assert pickle.dumps(scalar) == pickle.dumps(batch)
    scalar_counters = {
        c.name: int(c.value) for c in scalar_telemetry.registry.counters() if c.value
    }
    batch_counters = {
        c.name: int(c.value) for c in batch_telemetry.registry.counters() if c.value
    }
    assert scalar_counters == batch_counters


class TestRowIdentity:
    @pytest.mark.parametrize("model", PAPER_MODEL_TUPLE, ids=lambda m: m.codename)
    def test_coarse_row_identity_per_model(self, model):
        base = model.frequency_table.base_ghz
        _row_identity(model, COARSE, base)

    @pytest.mark.parametrize("model", PAPER_MODEL_TUPLE, ids=lambda m: m.codename)
    def test_fine_row_identity_at_base_frequency(self, model):
        _row_identity(model, CharacterizationConfig(), model.frequency_table.base_ghz)

    def test_row_identity_with_repetitions(self):
        """repetitions > 1 multiplies the per-cell draw sequence; the
        batch replay must track every window's binomial/choice/integers."""
        config = CharacterizationConfig(
            offset_start_mv=-10, offset_stop_mv=-250, offset_step_mv=10, repetitions=3
        )
        _row_identity(COMET_LAKE, config, COMET_LAKE.frequency_table.base_ghz)

    def test_row_identity_without_stop_after_crash(self):
        """stop_after_crash=False probes past the crash wall — the batch
        loop must keep counting windows without consuming draws there."""
        config = CharacterizationConfig(
            offset_start_mv=-10,
            offset_stop_mv=-250,
            offset_step_mv=10,
            stop_after_crash=False,
        )
        _row_identity(SKY_LAKE, config, SKY_LAKE.frequency_table.base_ghz)

    def test_trace_events_identical(self):
        """The batch path emits the same fault.injection / fault.crash
        instants (same order, same args) as the scalar injector."""
        base = KABY_LAKE_R.frequency_table.base_ghz
        scalar_telemetry = Telemetry()
        batch_telemetry = Telemetry()
        CharacterizationFramework(KABY_LAKE_R, config=COARSE, seed=2024).run_row(
            base, telemetry=scalar_telemetry
        )
        CharacterizationFramework(KABY_LAKE_R, config=COARSE, seed=2024).run_row_batch(
            base, telemetry=batch_telemetry
        )
        scalar_events = [
            (e.name, e.category, e.args)
            for e in scalar_telemetry.tracer.events
            if e.name.startswith("fault.")
        ]
        batch_events = [
            (e.name, e.category, e.args)
            for e in batch_telemetry.tracer.events
            if e.name.startswith("fault.")
        ]
        assert scalar_events == batch_events
        assert scalar_events  # the fault band must actually be exercised


class TestSweepIdentity:
    @pytest.mark.parametrize("model", PAPER_MODEL_TUPLE, ids=lambda m: m.codename)
    def test_full_coarse_sweep_identity(self, model):
        scalar = CharacterizationFramework(model, config=COARSE, seed=2024).run(
            batch=False
        )
        batch = CharacterizationFramework(model, config=COARSE, seed=2024).run(
            batch=True
        )
        assert scalar.cells == batch.cells
        assert scalar.crashes == batch.crashes
        assert scalar.unsafe_states.to_dict() == batch.unsafe_states.to_dict()
        assert pickle.dumps(scalar.cells) == pickle.dumps(batch.cells)

    def test_boundary_profile_identity(self):
        scalar = CharacterizationFramework(COMET_LAKE, config=COARSE, seed=2024).run(
            batch=False
        )
        batch = CharacterizationFramework(COMET_LAKE, config=COARSE, seed=2024).run(
            batch=True
        )
        assert scalar.boundary_profile() == batch.boundary_profile()
        assert scalar.maximal_safe_offset_mv() == batch.maximal_safe_offset_mv()


class TestGeneratorEquivalencePins:
    """The numpy Generator facts the batch draw loop is built on.

    If a numpy upgrade ever changes these, the identity suite above fails
    too — these pins exist to point at the *cause* immediately.
    """

    def test_bounded_integers_array_equals_scalar_sequence(self):
        """integers(0, 64, size=k) consumes bit-generator state exactly
        like k scalar integers(0, 64) calls — including the 32-bit
        half-word carry buffer that odd counts leave behind."""
        for seed in range(20):
            for size in (1, 2, 3, 7, 16):
                a = np.random.default_rng(seed)
                b = np.random.default_rng(seed)
                array = a.integers(0, 64, size=size)
                scalars = [int(b.integers(0, 64)) for _ in range(size)]
                assert array.tolist() == scalars
                # Same internal state afterwards: the next draws agree.
                assert int(a.integers(0, 2**62)) == int(b.integers(0, 2**62))

    def test_choice_consumption_depends_on_carry_buffer(self):
        """choice(n, size=k, replace=False) consumes the buffered 32-bit
        half-word when one is pending — so its stream consumption cannot
        be imitated by raw 64-bit draws.  This is why the batch path
        replays choice verbatim instead of substituting cheaper draws."""
        fresh = np.random.default_rng(99)
        fresh.choice(1_000_000, size=4, replace=False)
        fresh_state = fresh.bit_generator.state["has_uint32"]

        carrying = np.random.default_rng(99)
        carrying.integers(0, 64)  # leaves a 32-bit half-word pending
        carrying.choice(1_000_000, size=4, replace=False)
        carrying_state = carrying.bit_generator.state["has_uint32"]

        assert fresh_state != carrying_state

    def test_shared_fault_model_does_not_change_rows(self):
        """run_row_batch caches one FaultModel per framework; the cache is
        pure, so a fresh framework (cold cache) and a reused one (warm
        cache) produce identical rows."""
        framework = CharacterizationFramework(COMET_LAKE, config=COARSE, seed=2024)
        base = COMET_LAKE.frequency_table.base_ghz
        warm_first = framework.run_row_batch(base)
        warm_second = framework.run_row_batch(base)
        cold = CharacterizationFramework(
            COMET_LAKE, config=COARSE, seed=2024
        ).run_row_batch(base)
        assert warm_first == warm_second == cold
        assert isinstance(framework._vector_fault_model, FaultModel)
