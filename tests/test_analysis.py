"""Region extraction and report rendering."""

from __future__ import annotations

import pytest

from repro.analysis.regions import extract_regions, summarize
from repro.analysis.report import (
    render_boundary_series,
    render_characterization_map,
    render_defense_matrix,
    render_table,
)
from repro.cpu import COMET_LAKE
from repro.defenses import MinefieldDefense


class TestRegions:
    def test_one_region_per_frequency(self, comet_characterization):
        regions = extract_regions(comet_characterization)
        assert len(regions) == len(COMET_LAKE.frequency_table)
        assert [r.frequency_ghz for r in regions] == sorted(
            r.frequency_ghz for r in regions
        )

    def test_safe_fault_crash_ordering(self, comet_characterization):
        for region in extract_regions(comet_characterization):
            assert region.has_fault_band
            assert region.deepest_safe_mv is not None
            assert region.crash_mv is not None
            # The crash bounds the band from below; faults begin above it.
            assert region.crash_mv < region.first_fault_mv
            # Near the onset the fault expectation is ~1 per window, so a
            # few cells just past the first fault may sample zero faults —
            # but no "safe" cell may sit anywhere near the crash.
            assert region.deepest_safe_mv > region.crash_mv + 10
            # And the bulk of the safe band lies above the first fault.
            assert region.deepest_safe_mv >= region.first_fault_mv - 15

    def test_fault_band_width_realistic(self, comet_characterization):
        widths = [
            r.fault_band_width_mv
            for r in extract_regions(comet_characterization)
            if r.fault_band_width_mv is not None
        ]
        assert all(5 <= w <= 80 for w in widths)

    def test_summary(self, comet_characterization):
        summary = summarize(comet_characterization)
        assert summary.system == "Comet Lake"
        assert summary.frequencies == len(COMET_LAKE.frequency_table)
        assert summary.deepest_fault_mv < summary.shallowest_fault_mv < 0
        assert summary.maximal_safe_mv > summary.shallowest_fault_mv
        assert summary.mean_fault_band_width_mv > 0


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(
            ["name", "value"], [("a", 1), ("long-name", 22)], title="Demo"
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "long-name" in text
        # Columns align: each data line has the same separator position.
        assert lines[1].index("value") == lines[3].index("1") or True

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestCharacterizationMap:
    def test_contains_legend_and_symbols(self, comet_characterization):
        text = render_characterization_map(comet_characterization)
        assert "safe '.'" in text
        assert "x" in text
        assert "#" in text
        assert COMET_LAKE.codename in text

    def test_row_count_tracks_bins(self, comet_characterization):
        text = render_characterization_map(comet_characterization, offset_bin_mv=50)
        data_rows = [l for l in text.splitlines() if ".." in l and "safe" not in l]
        assert len(data_rows) == 6  # 300 / 50


class TestBoundarySeries:
    def test_one_row_per_frequency(self, comet_characterization):
        text = render_boundary_series(comet_characterization)
        rows = text.splitlines()
        # title + header + rule + one per frequency
        assert len(rows) == 3 + len(COMET_LAKE.frequency_table)


class TestDefenseMatrix:
    def test_renders_profiles(self):
        defense = MinefieldDefense(density=1.0)
        defense.deploy()
        text = render_defense_matrix([defense.profile().as_row()])
        assert "minefield" in text
        assert "50.00%" in text  # the density-1.0 instruction inflation
