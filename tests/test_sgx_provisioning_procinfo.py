"""Secret provisioning against attestation, the Ice Lake extended model,
and the /proc/cpuinfo-style diagnostics."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import AttestationError
from repro.core import CharacterizationFramework, PollingCountermeasure
from repro.cpu import COMET_LAKE, EXTENDED_MODELS, ICE_LAKE, PAPER_MODELS, model_by_codename
from repro.kernel import render_cpuinfo, render_system_status
from repro.sgx import (
    PLUG_YOUR_VOLT_POLICY,
    AttestationService,
    EnclaveHost,
    RemoteProvisioner,
)
from repro.testbench import Machine

SECRET = b"pkcs8-private-key-material"


@pytest.fixture
def protected(comet_characterization):
    machine = Machine.build(COMET_LAKE, seed=81)
    module = PollingCountermeasure(machine, comet_characterization.unsafe_states)
    machine.modules.insmod(module)
    return machine, module


class TestProvisioning:
    def test_happy_path(self, protected):
        machine, _ = protected
        host = EnclaveHost(machine)
        enclave = host.create_enclave("signer")
        service = AttestationService(machine)
        provisioner = RemoteProvisioner(SECRET, PLUG_YOUR_VOLT_POLICY)
        nonce = provisioner.challenge()
        secret = provisioner.provision(service.generate(enclave, nonce=nonce))
        assert secret == SECRET
        assert provisioner.is_provisioned(enclave)
        assert provisioner.audit_log[-1].granted

    def test_refused_without_countermeasure(self, comet_characterization):
        machine = Machine.build(COMET_LAKE, seed=81)  # no module loaded
        host = EnclaveHost(machine)
        enclave = host.create_enclave("signer")
        service = AttestationService(machine)
        provisioner = RemoteProvisioner(SECRET, PLUG_YOUR_VOLT_POLICY)
        nonce = provisioner.challenge()
        with pytest.raises(AttestationError):
            provisioner.provision(service.generate(enclave, nonce=nonce))
        assert not provisioner.is_provisioned(enclave)
        assert not provisioner.audit_log[-1].granted

    def test_nonce_single_use(self, protected):
        machine, _ = protected
        host = EnclaveHost(machine)
        enclave = host.create_enclave("signer")
        service = AttestationService(machine)
        provisioner = RemoteProvisioner(SECRET, PLUG_YOUR_VOLT_POLICY)
        nonce = provisioner.challenge()
        report = service.generate(enclave, nonce=nonce)
        provisioner.provision(report)
        with pytest.raises(AttestationError):
            provisioner.provision(report)  # replay

    def test_quote_recorded_before_rmmod_cannot_be_replayed(self, protected):
        # The adversarial plan the nonce defeats: record a good quote,
        # unload the module, replay the quote.
        machine, module = protected
        host = EnclaveHost(machine)
        enclave = host.create_enclave("signer")
        service = AttestationService(machine)
        provisioner = RemoteProvisioner(SECRET, PLUG_YOUR_VOLT_POLICY)
        nonce = provisioner.challenge()
        good_quote = service.generate(enclave, nonce=nonce)
        provisioner.provision(good_quote)
        machine.modules.rmmod(module.name)
        with pytest.raises(AttestationError):
            provisioner.provision(good_quote)
        # And a fresh challenge cannot be satisfied either.
        fresh = provisioner.challenge()
        with pytest.raises(AttestationError):
            provisioner.provision(service.generate(enclave, nonce=fresh))

    def test_forged_nonce_rejected(self, protected):
        machine, _ = protected
        host = EnclaveHost(machine)
        enclave = host.create_enclave("signer")
        service = AttestationService(machine)
        provisioner = RemoteProvisioner(SECRET, PLUG_YOUR_VOLT_POLICY)
        with pytest.raises(AttestationError):
            provisioner.provision(service.generate(enclave, nonce=12345))

    def test_revocation(self, protected):
        machine, _ = protected
        host = EnclaveHost(machine)
        enclave = host.create_enclave("signer")
        service = AttestationService(machine)
        provisioner = RemoteProvisioner(SECRET, PLUG_YOUR_VOLT_POLICY)
        provisioner.provision(
            service.generate(enclave, nonce=provisioner.challenge())
        )
        provisioner.revoke(enclave)
        assert not provisioner.is_provisioned(enclave)


class TestIceLakeExtendedModel:
    def test_in_extended_catalog_only(self):
        assert "Ice Lake" in EXTENDED_MODELS
        assert "Ice Lake" not in PAPER_MODELS
        assert model_by_codename("Ice Lake") is ICE_LAKE

    def test_pipeline_generalises(self):
        result = CharacterizationFramework(ICE_LAKE, seed=5).run()
        assert result.unsafe_states.frequencies_ghz() == list(
            ICE_LAKE.frequency_table.frequencies_ghz()
        )
        maximal = result.maximal_safe_offset_mv()
        assert -120 < maximal < -20
        machine = Machine.build(ICE_LAKE, seed=7)
        module = PollingCountermeasure(machine, result.unsafe_states)
        machine.modules.insmod(module)
        machine.set_frequency(1.3)
        machine.write_voltage_offset(-250)
        machine.advance(5e-3)
        assert module.stats.detections >= 1
        report = machine.run_imul_window(iterations=500_000)
        assert not report.faulted

    def test_different_process_node(self):
        assert ICE_LAKE.process.vth_volts < COMET_LAKE.process.vth_volts


class TestProcInfo:
    def test_cpuinfo_fields(self):
        machine = Machine.build(COMET_LAKE, seed=81)
        machine.set_frequency(2.4, core_index=1)
        text = render_cpuinfo(machine)
        assert text.count("processor\t:") == 4
        assert "2400.000" in text
        assert COMET_LAKE.name in text
        assert "microcode\t: 0xf4" in text

    def test_system_status_includes_modules_and_driver(self, protected):
        machine, module = protected
        machine.advance(2e-3)
        text = render_system_status(machine)
        assert "plug_your_volt" in text
        assert "msr driver" in text
        assert "uptime" in text

    def test_status_without_modules(self):
        machine = Machine.build(COMET_LAKE, seed=81)
        assert "(none)" in render_system_status(machine)
