"""Unit-conversion helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestTimeConversions:
    def test_us_to_seconds(self):
        assert units.us(1.0) == 1e-6

    def test_ms_to_seconds(self):
        assert units.ms(2.5) == 2.5e-3

    def test_ns_to_seconds(self):
        assert units.ns(100.0) == pytest.approx(1e-7)

    def test_to_us_roundtrip(self):
        assert units.to_us(units.us(42.0)) == pytest.approx(42.0)

    def test_to_ms_roundtrip(self):
        assert units.to_ms(units.ms(7.0)) == pytest.approx(7.0)


class TestFrequencyRatio:
    def test_base_clock_is_100mhz(self):
        assert units.BUS_CLOCK_GHZ == 0.1

    def test_ghz_to_ratio_exact(self):
        assert units.ghz_to_ratio(3.2) == 32

    def test_ghz_to_ratio_rounds(self):
        assert units.ghz_to_ratio(3.24) == 32
        assert units.ghz_to_ratio(3.26) == 33

    def test_ratio_to_ghz(self):
        assert units.ratio_to_ghz(18) == pytest.approx(1.8)

    @given(st.integers(min_value=1, max_value=80))
    def test_ratio_roundtrip(self, ratio):
        assert units.ghz_to_ratio(units.ratio_to_ghz(ratio)) == ratio


class TestVoltageConversions:
    def test_mv_to_volts(self):
        assert units.mv_to_volts(-150.0) == pytest.approx(-0.150)

    def test_volts_to_mv(self):
        assert units.volts_to_mv(1.05) == pytest.approx(1050.0)

    @given(st.floats(min_value=-2000, max_value=2000, allow_nan=False))
    def test_voltage_roundtrip(self, mv):
        assert units.volts_to_mv(units.mv_to_volts(mv)) == pytest.approx(mv, abs=1e-9)


class TestClockPeriod:
    def test_one_ghz_is_one_ns(self):
        assert units.clock_period_seconds(1.0) == pytest.approx(1e-9)

    def test_period_ps(self):
        assert units.clock_period_ps(2.0) == pytest.approx(500.0)

    def test_period_ps_at_paper_base_frequencies(self):
        # 3.2 GHz Sky Lake base -> 312.5 ps budget before setup/eps.
        assert units.clock_period_ps(3.2) == pytest.approx(312.5)

    def test_rejects_zero_frequency(self):
        with pytest.raises(ValueError):
            units.clock_period_seconds(0.0)

    def test_rejects_negative_frequency(self):
        with pytest.raises(ValueError):
            units.clock_period_ps(-1.0)

    @given(st.floats(min_value=0.1, max_value=6.0, allow_nan=False))
    def test_period_inverse_of_frequency(self, f):
        assert units.clock_period_seconds(f) * f == pytest.approx(1e-9)
        assert math.isclose(units.clock_period_ps(f), 1e3 / f, rel_tol=1e-12)
