"""Statistical self-consistency of the fault model and seed robustness.

These tests guard the *meaning* of the headline numbers: the sampled
fault counts must follow the probabilities the model claims, and the
prevention result must not be an artifact of one lucky seed.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import ImulCampaign
from repro.core import CharacterizationFramework, PollingCountermeasure
from repro.cpu import COMET_LAKE, ocm
from repro.errors import InvalidPlaneError, InvalidVoltageOffsetError, OCMProtocolError
from repro.faults.injector import FaultInjector
from repro.faults.margin import FaultModel
from repro.testbench import Machine


class TestSamplingConsistency:
    def test_window_fault_counts_match_model_probability(self):
        """Observed fault rate ~ Binomial(n, p) within 5 sigma."""
        fault_model = FaultModel(COMET_LAKE)
        vcrit = fault_model.critical_voltage(2.0)
        voltage = vcrit - 0.004
        p = fault_model.fault_probability(2.0, voltage)
        assert p > 0
        injector = FaultInjector(fault_model, np.random.default_rng(71))
        conditions = type(fault_model.conditions_for_offset(2.0, 0.0))(
            2.0, voltage, -999
        )
        n = 2_000_000
        total_ops, total_faults = 0, 0
        for _ in range(5):
            outcome = injector.run_window(conditions, n)
            total_ops += n
            total_faults += outcome.fault_count
        expected = total_ops * p
        sigma = math.sqrt(total_ops * p * (1 - p))
        assert abs(total_faults - expected) < 5 * sigma

    def test_zero_probability_means_zero_faults_always(self):
        fault_model = FaultModel(COMET_LAKE)
        injector = FaultInjector(fault_model, np.random.default_rng(71))
        conditions = fault_model.conditions_for_offset(2.0, -20.0)
        assert fault_model.fault_probability(2.0, conditions.voltage_volts) == 0.0
        for _ in range(10):
            assert injector.run_window(conditions, 1_000_000).fault_count == 0


class TestSeedRobustness:
    @pytest.mark.parametrize("seed", [1, 7, 23, 101, 997])
    def test_prevention_holds_across_seeds(self, seed, comet_characterization):
        unsafe = comet_characterization.unsafe_states
        machine = Machine.build(COMET_LAKE, seed=seed)
        machine.modules.insmod(PollingCountermeasure(machine, unsafe))
        boundary = int(unsafe.boundary_mv(1.8))
        campaign = ImulCampaign(
            machine,
            frequency_ghz=1.8,
            offsets_mv=(boundary, boundary - 10, boundary - 20, -300),
            iterations_per_point=500_000,
        )
        outcome = campaign.mount()
        assert outcome.faults_observed == 0, seed
        assert outcome.crashes == 0, seed

    @pytest.mark.parametrize("seed", [3, 13])
    def test_characterization_boundary_stable_across_seeds(self, seed):
        from repro.core.characterization import CharacterizationConfig

        config = CharacterizationConfig(
            offset_start_mv=-40, offset_stop_mv=-160, offset_step_mv=1,
            frequencies_ghz=[2.0],
        )
        result = CharacterizationFramework(COMET_LAKE, config=config, seed=seed).run()
        boundary = result.unsafe_states.boundary_mv(2.0)
        # Within the onset sampling band of the canonical seed-5 boundary.
        assert -85.0 <= boundary <= -60.0


class TestOCMFuzz:
    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    @settings(max_examples=300, deadline=None)
    def test_decode_never_crashes_unexpectedly(self, value):
        """Arbitrary 64-bit garbage either decodes or raises a typed error."""
        try:
            command = ocm.decode_command(value)
        except (OCMProtocolError, InvalidPlaneError, InvalidVoltageOffsetError):
            return
        assert command.command in (ocm.COMMAND_WRITE, ocm.COMMAND_READ)
        assert -1024 <= command.offset_units <= 1023

    @given(
        st.integers(min_value=-1000, max_value=999),
        st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=200, deadline=None)
    def test_encode_decode_total_roundtrip(self, offset_mv, plane):
        command = ocm.decode_command(ocm.encode_write(offset_mv, plane))
        assert command.is_write
        assert int(command.plane) == plane
        assert command.offset_mv == pytest.approx(offset_mv, abs=1.0)
