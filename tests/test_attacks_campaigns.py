"""Attack campaigns: Plundervolt, V0LTpwn, VoltJockey, the offset search.

These are the *undefended-machine* behaviours; the defended outcomes live
in the integration tests.
"""

from __future__ import annotations

import pytest

from repro.errors import AttackError
from repro.attacks import (
    ImulCampaign,
    OffsetSearch,
    PlundervoltAttack,
    PlundervoltConfig,
    RSACRTSigner,
    RSAKey,
    V0ltpwnAttack,
    V0ltpwnConfig,
    VectorChecksumPayload,
    VoltJockeyAttack,
    VoltJockeyConfig,
)
from repro.cpu import COMET_LAKE
from repro.sgx import EnclaveHost
from repro.testbench import Machine


@pytest.fixture
def machine() -> Machine:
    return Machine.build(COMET_LAKE, seed=11)


@pytest.fixture(scope="module")
def key() -> RSAKey:
    return RSAKey.generate(512, seed=42)


class TestOffsetSearch:
    def test_finds_boundary_on_undefended_machine(self, machine, comet_characterization):
        search = OffsetSearch(machine, frequency_ghz=2.0)
        found = search.find_faulting_offset()
        assert found is not None
        truth = comet_characterization.unsafe_states.boundary_mv(2.0)
        # 5 mV search steps + stochastic onset: within ~15 mV of truth.
        assert abs(found - truth) <= 15.0

    def test_probes_recorded(self, machine):
        search = OffsetSearch(machine, frequency_ghz=2.0)
        search.find_faulting_offset()
        assert len(search.probes) >= 2
        assert search.probes[0].offset_mv == -50

    def test_restore_zeroes_offset(self, machine):
        search = OffsetSearch(machine, frequency_ghz=2.0)
        search.find_faulting_offset()
        search.restore()
        assert machine.processor.core(0).applied_offset_mv(machine.now) == pytest.approx(
            0.0, abs=1.0
        )

    def test_restore_returns_pre_scan_frequency(self, machine):
        # Regression: restore() used to zero only the voltage offset,
        # leaving the attacker's frequency pin behind.
        before = machine.conditions(0).frequency_ghz
        search = OffsetSearch(machine, frequency_ghz=2.0)
        assert before != 2.0
        search.find_faulting_offset()
        assert machine.conditions(0).frequency_ghz == pytest.approx(2.0)
        search.restore()
        assert machine.conditions(0).frequency_ghz == pytest.approx(before)

    def test_gives_up_after_crashes(self, machine):
        # Start the search beyond the crash boundary.
        search = OffsetSearch(
            machine, frequency_ghz=2.0, start_mv=-250, stop_mv=-300, max_crashes=2
        )
        assert search.find_faulting_offset() is None
        assert machine.crash_count == 2


class TestPlundervolt:
    def test_key_extraction_on_undefended_machine(self, machine, key):
        host = EnclaveHost(machine)
        enclave = host.create_enclave("rsa", core_index=0)
        attack = PlundervoltAttack(
            machine,
            enclave,
            RSACRTSigner(key),
            message=0xDEADBEEF,
            config=PlundervoltConfig(frequency_ghz=2.0),
        )
        outcome = attack.mount()
        assert outcome.succeeded
        assert outcome.recovered_secret == tuple(sorted((key.p, key.q)))
        assert outcome.faults_observed >= 1
        assert outcome.attempts <= 80

    def test_explicit_offset_skips_search(self, machine, key, comet_characterization):
        host = EnclaveHost(machine)
        enclave = host.create_enclave("rsa", core_index=0)
        boundary = int(comet_characterization.unsafe_states.boundary_mv(2.0))
        attack = PlundervoltAttack(
            machine,
            enclave,
            RSACRTSigner(key),
            message=0xCAFE,
            config=PlundervoltConfig(frequency_ghz=2.0, offset_mv=boundary - 12),
        )
        outcome = attack.mount()
        assert outcome.succeeded

    def test_tracks_restored_state(self, machine, key):
        host = EnclaveHost(machine)
        enclave = host.create_enclave("rsa", core_index=0)
        attack = PlundervoltAttack(
            machine,
            enclave,
            RSACRTSigner(key),
            message=1,
            config=PlundervoltConfig(frequency_ghz=2.0),
        )
        attack.mount()
        assert machine.processor.core(0).target_offset_mv() == pytest.approx(0.0, abs=1)


class TestImulCampaign:
    def test_faults_on_undefended_machine(self, machine):
        campaign = ImulCampaign(
            machine,
            frequency_ghz=2.0,
            offsets_mv=tuple(range(-60, -121, -20)),
            iterations_per_point=500_000,
        )
        outcome = campaign.mount()
        assert outcome.succeeded
        assert outcome.faults_observed > 0
        # Deep points crash — the campaign reboots and continues.
        assert outcome.attempts == 4

    def test_safe_offsets_only_never_fault(self, machine):
        campaign = ImulCampaign(
            machine, frequency_ghz=2.0, offsets_mv=(-10, -20, -30),
            iterations_per_point=500_000,
        )
        outcome = campaign.mount()
        assert not outcome.succeeded
        assert outcome.faults_observed == 0


class TestV0ltpwn:
    def test_checksum_payload_is_stable_when_safe(self, machine):
        payload = VectorChecksumPayload(ops=100_000)
        host = EnclaveHost(machine)
        enclave = host.create_enclave("vec")
        witness = enclave.ecall(payload)
        assert witness.matches(payload.expected_checksum)
        assert witness.faulted_ops == 0

    def test_integrity_broken_on_undefended_machine(self, machine):
        payload = VectorChecksumPayload(ops=1_000_000)
        host = EnclaveHost(machine)
        enclave = host.create_enclave("vec")
        attack = V0ltpwnAttack(
            machine, enclave, payload, V0ltpwnConfig(frequency_ghz=2.2)
        )
        outcome = attack.mount()
        assert outcome.succeeded
        assert outcome.faults_observed > 0


class TestVoltJockey:
    def test_requires_upward_jump(self, machine):
        with pytest.raises(AttackError):
            VoltJockeyAttack(
                machine, VoltJockeyConfig(low_frequency_ghz=3.0, high_frequency_ghz=2.0)
            )

    def test_cross_frequency_faults_on_undefended_machine(
        self, machine, comet_characterization
    ):
        boundary_high = comet_characterization.unsafe_states.boundary_mv(3.4)
        offset = int(boundary_high) - 10
        attack = VoltJockeyAttack(
            machine,
            VoltJockeyConfig(
                low_frequency_ghz=0.8,
                high_frequency_ghz=3.4,
                offset_mv=offset,
                repetitions=2,
            ),
        )
        outcome = attack.mount()
        assert outcome.succeeded
        assert outcome.faults_observed > 0

    def test_reconnaissance_finds_offset_on_undefended_machine(self, machine):
        attack = VoltJockeyAttack(
            machine,
            VoltJockeyConfig(
                low_frequency_ghz=0.8, high_frequency_ghz=3.4, repetitions=1
            ),
        )
        outcome = attack.mount()
        assert outcome.succeeded


class TestAttackSurfaceScan:
    def test_surface_on_undefended_machine(self, machine, comet_characterization):
        from repro.attacks.search import AttackSurfaceScan

        scan = AttackSurfaceScan(
            machine,
            frequencies_ghz=[1.8, 3.4],
            offsets_mv=list(range(-60, -181, -15)),
        ).run()
        assert scan.attack_surface >= 1
        unsafe = comet_characterization.unsafe_states
        for point in scan.faulting_points():
            assert unsafe.is_unsafe(point.frequency_ghz, point.offset_mv)

    def test_crash_ends_frequency_column(self, machine):
        from repro.attacks.search import AttackSurfaceScan

        scan = AttackSurfaceScan(
            machine, frequencies_ghz=[2.0], offsets_mv=[-120, -300, -60]
        ).run()
        # -120 crashes at 2 GHz; the column stops there (-300/-60 unprobed).
        assert [p.offset_mv for p in scan.points] == [-120]
        assert scan.points[0].crashed
        assert machine.crash_count == 1

    def test_scan_restores_pre_scan_frequency(self, machine):
        from repro.attacks.search import AttackSurfaceScan

        # Regression: the scan used to leave its last frequency pin in
        # place, so a post-scan victim ran at the attacker's frequency.
        before = machine.conditions(0).frequency_ghz
        AttackSurfaceScan(
            machine, frequencies_ghz=[1.8, 3.4], offsets_mv=[-60, -90]
        ).run()
        assert machine.conditions(0).frequency_ghz == pytest.approx(before)
