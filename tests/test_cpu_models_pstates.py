"""CPU model catalog, P-state machine, perf-status codec, manual clock."""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.clock import ManualClock
from repro.cpu import perf_status
from repro.cpu.models import (
    COMET_LAKE,
    KABY_LAKE_R,
    PAPER_MODELS,
    PAPER_MODEL_TUPLE,
    SKY_LAKE,
    model_by_codename,
)
from repro.cpu.pstates import CState, PStateMachine


class TestCatalog:
    def test_three_paper_models(self):
        assert len(PAPER_MODEL_TUPLE) == 3

    def test_lookup_by_codename(self):
        assert model_by_codename("Sky Lake") is SKY_LAKE
        assert model_by_codename("Kaby Lake R") is KABY_LAKE_R
        assert model_by_codename("Comet Lake") is COMET_LAKE

    def test_unknown_codename(self):
        with pytest.raises(ConfigurationError):
            model_by_codename("Raptor Lake")

    def test_microcode_versions_match_paper(self):
        assert SKY_LAKE.microcode == 0xF0
        assert KABY_LAKE_R.microcode == 0xF4
        assert COMET_LAKE.microcode == 0xF4

    def test_describe_mentions_codename_and_microcode(self):
        text = SKY_LAKE.describe()
        assert "Sky Lake" in text
        assert "0xf0" in text

    def test_models_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SKY_LAKE.core_count = 8  # type: ignore[misc]

    def test_catalog_keys_are_codenames(self):
        assert set(PAPER_MODELS) == {"Sky Lake", "Kaby Lake R", "Comet Lake"}

    def test_invalid_model_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(SKY_LAKE, core_count=0)
        with pytest.raises(ConfigurationError):
            dataclasses.replace(SKY_LAKE, sigma_mv=0.0)
        with pytest.raises(ConfigurationError):
            dataclasses.replace(SKY_LAKE, crash_fraction=1.5)
        with pytest.raises(ConfigurationError):
            dataclasses.replace(SKY_LAKE, regulator_latency_s=-1.0)

    def test_factories_build(self):
        for model in PAPER_MODEL_TUPLE:
            assert model.critical_path().nominal_delay_ps == model.path_delay_ps
            assert model.safety_analyzer().process is model.process
            assert model.vf_curve().guardband == model.guardband


class TestPStateMachine:
    @pytest.fixture
    def machine(self) -> PStateMachine:
        return PStateMachine(COMET_LAKE.frequency_table)

    def test_starts_at_base_awake(self, machine):
        assert machine.frequency_ghz == pytest.approx(1.8)
        assert machine.c_state is CState.C0
        assert not machine.is_idle

    def test_set_frequency_validates(self, machine):
        from repro.errors import FrequencyError

        with pytest.raises(FrequencyError):
            machine.set_frequency(9.9)

    def test_transitions_recorded(self, machine):
        machine.set_frequency(2.4, now=1.0)
        machine.enter_idle(CState.C6, now=2.0)
        machine.wake(now=3.0)
        kinds = [kind for _, kind in machine.transitions]
        assert kinds == ["P:2.4GHz", "C:C6", "C:C0"]

    def test_cannot_enter_c0_as_idle(self, machine):
        with pytest.raises(ConfigurationError):
            machine.enter_idle(CState.C0)

    def test_idle_flag(self, machine):
        machine.enter_idle(CState.C3)
        assert machine.is_idle
        machine.wake()
        assert not machine.is_idle

    def test_reset(self, machine):
        machine.set_frequency(3.0)
        machine.enter_idle(CState.C6)
        machine.reset()
        assert machine.frequency_ghz == pytest.approx(1.8)
        assert machine.c_state is CState.C0
        assert machine.transitions == []


class TestPerfStatusCodec:
    @given(
        st.integers(min_value=0, max_value=255),
        st.floats(min_value=0.0, max_value=1.9, allow_nan=False),
    )
    def test_roundtrip(self, ratio, voltage):
        decoded = perf_status.decode(perf_status.encode(ratio, voltage))
        assert decoded.ratio == ratio
        assert decoded.voltage_volts == pytest.approx(voltage, abs=1 / 8192)

    def test_field_positions(self):
        value = perf_status.encode(32, 1.0)
        assert (value >> 8) & 0xFF == 32
        assert (value >> 32) & 0xFFFF == 8192

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ConfigurationError):
            perf_status.encode(300, 1.0)

    def test_negative_voltage_rejected(self):
        with pytest.raises(ConfigurationError):
            perf_status.encode(10, -0.1)

    def test_overflow_voltage_rejected(self):
        with pytest.raises(ConfigurationError):
            perf_status.encode(10, 9.0)

    def test_frequency_property(self):
        assert perf_status.decode(perf_status.encode(18, 0.8)).frequency_ghz == (
            pytest.approx(1.8)
        )


class TestManualClock:
    def test_starts_at_zero(self):
        assert ManualClock()() == 0.0

    def test_advance(self):
        clock = ManualClock()
        clock.advance(1.5)
        assert clock.now == 1.5

    def test_no_time_travel(self):
        clock = ManualClock(start=5.0)
        with pytest.raises(SimulationError):
            clock.advance(-1.0)
        with pytest.raises(SimulationError):
            clock.set(4.0)

    def test_set_forward(self):
        clock = ManualClock()
        clock.set(10.0)
        assert clock() == 10.0
