"""Sysfs interface, continuous victim thread, voltage tracer."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, KernelModuleError
from repro.analysis.timeline import VoltageTracer
from repro.core import PollingCountermeasure
from repro.cpu import COMET_LAKE
from repro.kernel.sysfs import SysfsAttribute, SysfsDirectory, expose_polling_module
from repro.kernel.victim import ContinuousVictim
from repro.testbench import Machine


@pytest.fixture
def deployed(comet_characterization):
    machine = Machine.build(COMET_LAKE, seed=19)
    module = PollingCountermeasure(machine, comet_characterization.unsafe_states)
    machine.modules.insmod(module)
    return machine, module


class TestSysfs:
    def test_directory_listing(self, deployed):
        _, module = deployed
        directory = expose_polling_module(module)
        assert directory.ls() == [
            "detections",
            "maximal_safe_mv",
            "period_us",
            "policy",
            "polls",
            "remediations",
        ]

    def test_read_attributes(self, deployed):
        machine, module = deployed
        directory = expose_polling_module(module)
        machine.advance(2e-3)
        assert directory.read("period_us") == "500"
        assert directory.read("policy") == "clamp-to-boundary"
        assert int(directory.read("polls")) >= 3
        assert float(directory.read("maximal_safe_mv")) < 0

    def test_write_period_rearms_kthread(self, deployed):
        machine, module = deployed
        directory = expose_polling_module(module)
        directory.write("period_us", "100")
        assert module.period_s == pytest.approx(100e-6)
        polls_before = module.stats.polls
        machine.advance(1e-3)
        assert module.stats.polls - polls_before == pytest.approx(10, abs=1)

    def test_read_only_attributes_reject_stores(self, deployed):
        _, module = deployed
        directory = expose_polling_module(module)
        with pytest.raises(KernelModuleError):
            directory.write("polls", "0")

    def test_invalid_period_rejected(self, deployed):
        _, module = deployed
        directory = expose_polling_module(module)
        with pytest.raises(ConfigurationError):
            directory.write("period_us", "banana")
        with pytest.raises(ConfigurationError):
            directory.write("period_us", "-5")

    def test_unknown_attribute(self, deployed):
        _, module = deployed
        directory = expose_polling_module(module)
        with pytest.raises(KernelModuleError):
            directory.read("nonexistent")
        with pytest.raises(KernelModuleError):
            directory.write("nonexistent", "1")

    def test_generic_directory(self):
        directory = SysfsDirectory("demo")
        directory.add(SysfsAttribute("x", lambda: "42"))
        assert directory.read("x") == "42"
        assert not directory._attributes["x"].writable


class TestContinuousVictim:
    def test_runs_cleanly_on_safe_machine(self):
        machine = Machine.build(COMET_LAKE, seed=19)
        victim = ContinuousVictim(machine, chunk_ops=50_000)
        victim.start()
        machine.advance(5e-3)
        assert victim.running
        assert victim.trace.chunks > 50
        assert victim.trace.total_faults == 0
        victim.stop()
        chunks = victim.trace.chunks
        machine.advance(5e-3)
        assert victim.trace.chunks == chunks

    def test_observes_faults_during_real_attack_window(self, comet_characterization):
        # Undefended: an applied unsafe offset faults the running victim.
        machine = Machine.build(COMET_LAKE, seed=19)
        victim = ContinuousVictim(machine, chunk_ops=50_000)
        victim.start()
        boundary = int(comet_characterization.unsafe_states.boundary_mv(1.8))
        machine.write_voltage_offset(boundary - 12)
        machine.advance(5e-3)
        assert victim.trace.total_faults > 0
        burst = victim.trace.fault_windows()[0]
        # Faults begin only after the regulator's apply delay.
        assert burst.time_s >= COMET_LAKE.regulator_latency_s

    def test_no_faults_with_module_loaded(self, deployed):
        machine, _ = deployed
        victim = ContinuousVictim(machine, chunk_ops=50_000)
        victim.start()
        machine.write_voltage_offset(-250)
        machine.advance(5e-3)
        machine.write_voltage_offset(-150)
        machine.advance(5e-3)
        assert victim.trace.total_faults == 0
        assert victim.trace.crashes == 0

    def test_crash_reboot_resume(self):
        machine = Machine.build(COMET_LAKE, seed=19)
        victim = ContinuousVictim(machine, chunk_ops=50_000)
        victim.start()
        machine.write_voltage_offset(-300)
        machine.advance(60e-3)
        assert victim.trace.crashes >= 1
        assert victim.running  # resumed after reboot (offset reset to 0)
        assert machine.crash_count == victim.trace.crashes

    def test_unknown_instruction_rejected(self):
        machine = Machine.build(COMET_LAKE, seed=19)
        with pytest.raises(ValueError):
            ContinuousVictim(machine, instruction="fdiv")


class TestVoltageTracer:
    def test_samples_on_grid(self):
        machine = Machine.build(COMET_LAKE, seed=19)
        tracer = VoltageTracer(machine, sample_period_s=100e-6)
        tracer.start()
        machine.advance(1e-3)
        tracer.stop()
        count = len(tracer.samples)
        assert count in (9, 10)  # boundary sample subject to fp rounding
        machine.advance(1e-3)
        assert len(tracer.samples) == count

    def test_sees_regulator_hold_then_step(self):
        machine = Machine.build(COMET_LAKE, seed=19)
        tracer = VoltageTracer(machine, sample_period_s=50e-6)
        tracer.start()
        machine.write_voltage_offset(-100)
        machine.advance(1e-3)
        applied = [s.applied_offset_mv for s in tracer.samples]
        # Held at 0 during the latency window, then stepped to -100.
        assert applied[0] == 0.0
        assert applied[-1] == pytest.approx(-100, abs=1.0)
        assert set(round(a) for a in applied) <= {0, -100}

    def test_deepest_applied_offset(self, deployed):
        machine, _ = deployed
        tracer = VoltageTracer(machine)
        tracer.start()
        machine.write_voltage_offset(-250)
        machine.advance(5e-3)
        # Protected: -250 never became effective.
        assert tracer.deepest_applied_offset_mv() > -100

    def test_violations_lookup(self, comet_characterization):
        machine = Machine.build(COMET_LAKE, seed=19)
        tracer = VoltageTracer(machine)
        tracer.start()
        machine.write_voltage_offset(-120)
        machine.advance(3e-3)
        unsafe = comet_characterization.unsafe_states
        bad = tracer.violations(unsafe.effective_boundary_mv)
        assert bad  # undefended machine spent time beyond the boundary

    def test_render(self):
        machine = Machine.build(COMET_LAKE, seed=19)
        tracer = VoltageTracer(machine, sample_period_s=200e-6)
        tracer.start()
        machine.advance(1e-3)
        text = tracer.render()
        assert "applied(mV)" in text
        assert len(text.splitlines()) == 6  # header + 5 samples

    def test_invalid_period(self):
        machine = Machine.build(COMET_LAKE, seed=19)
        with pytest.raises(ConfigurationError):
            VoltageTracer(machine, sample_period_s=0.0)
