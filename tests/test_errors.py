"""Exception hierarchy contracts."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigurationError,
            errors.MSRError,
            errors.UnknownMSRError,
            errors.MSRPermissionError,
            errors.MSRWriteIgnoredError,
            errors.OCMProtocolError,
            errors.InvalidVoltageOffsetError,
            errors.InvalidPlaneError,
            errors.FrequencyError,
            errors.CoreIndexError,
            errors.MachineCheckError,
            errors.KernelModuleError,
            errors.SimulationError,
            errors.EnclaveError,
            errors.AttestationError,
            errors.AttackError,
            errors.CharacterizationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_msr_family(self):
        for exc in (
            errors.UnknownMSRError,
            errors.MSRPermissionError,
            errors.MSRWriteIgnoredError,
            errors.OCMProtocolError,
        ):
            assert issubclass(exc, errors.MSRError)

    def test_attestation_is_enclave_error(self):
        assert issubclass(errors.AttestationError, errors.EnclaveError)

    def test_unknown_msr_carries_address(self):
        e = errors.UnknownMSRError(0x150)
        assert e.address == 0x150
        assert "0x150" in str(e)

    def test_machine_check_carries_operating_point(self):
        e = errors.MachineCheckError("boom", frequency_ghz=2.0, offset_mv=-250)
        assert e.frequency_ghz == 2.0
        assert e.offset_mv == -250

    def test_catching_repro_error_catches_everything(self):
        with pytest.raises(errors.ReproError):
            raise errors.FrequencyError("bad")
