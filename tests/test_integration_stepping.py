"""The Sec. 4.1 threat-model argument, end to end.

Minefield's deflection assumes faults land blindly: its mines detonate
first with high probability.  An SGX-Step adversary breaks the
assumption — it interrupts the enclave after every instruction, confines
the unsafe voltage to exactly the target instruction's slot (zero-stepping
grants unbounded retries), and the mines only ever execute at safe
conditions.

The paper's countermeasure survives the same adversary *by construction*:
it does not care which instruction is executing — the unsafe state itself
is reverted before it becomes electrically effective, so even a perfectly
isolated target instruction runs at a safe voltage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

from repro.core import PollingCountermeasure
from repro.cpu import COMET_LAKE
from repro.sgx import EnclaveHost, SingleStepper, ZeroStepper
from repro.testbench import Machine

MINES_PER_SIDE = 8


@dataclass
class SteppedMinefieldRun:
    """A minefield-instrumented payload executed under single-stepping."""

    machine: Machine
    attack_offset_mv: int
    mine_detonations: int = 0
    target_faults: int = 0
    trace_conditions: list = field(default_factory=list)

    def _execute_op(self, *, is_mine: bool) -> None:
        conditions = self.machine.conditions(0)
        self.trace_conditions.append(conditions.offset_mv)
        outcome = self.machine.injector.run_window(
            conditions, 50_000, instruction="imul"
        )
        if outcome.fault_count:
            if is_mine:
                self.mine_detonations += 1
            else:
                self.target_faults += 1

    def build_slots(self):
        slots = [lambda: self._execute_op(is_mine=True)] * MINES_PER_SIDE
        slots.append(lambda: self._execute_op(is_mine=False))
        slots += [lambda: self._execute_op(is_mine=True)] * MINES_PER_SIDE
        return slots, MINES_PER_SIDE  # (slots, target index)

    def run_stepped(self, enclave, *, replays: int = 40) -> None:
        """Single-step the payload; zero-step replay the target slot."""
        settle = self.machine.model.regulator_latency_s * 1.2
        slots, target_index = self.build_slots()

        def before(slot: int) -> None:
            if slot == target_index:
                # Arm the unsafe voltage only for the target instruction.
                self.machine.write_voltage_offset(self.attack_offset_mv)
                self.machine.advance(settle)

        def after(slot: int) -> None:
            if slot == target_index:
                self.machine.write_voltage_offset(0)
                self.machine.advance(settle)

        stepper = SingleStepper(enclave, before_slot=before, after_slot=after)
        stepper.run(slots)
        # Zero-stepping: replay the isolated target until it faults (or
        # the replay budget runs out) — the mines never execute again.
        zero = ZeroStepper(enclave, max_replays=replays)
        self.machine.write_voltage_offset(self.attack_offset_mv)
        self.machine.advance(settle)

        def target_op():
            before_faults = self.target_faults
            self._execute_op(is_mine=False)
            return self.target_faults > before_faults

        zero.replay_until(target_op, lambda faulted: faulted)
        self.machine.write_voltage_offset(0)
        self.machine.advance(settle)


@pytest.fixture
def attack_offset(comet_characterization) -> int:
    return int(comet_characterization.unsafe_states.boundary_mv(1.8)) - 15


class TestSteppingBypassesMinefield:
    def test_mines_never_detonate_target_faults(self, attack_offset):
        machine = Machine.build(COMET_LAKE, seed=37)
        host = EnclaveHost(machine)
        enclave = host.create_enclave("minefielded")
        run = SteppedMinefieldRun(machine, attack_offset)
        run.run_stepped(enclave)
        # The deflection never fires: every mine executed at safe voltage.
        assert run.mine_detonations == 0
        # The isolated target was faulted (zero-stepping budget suffices).
        assert run.target_faults >= 1
        assert enclave.stats.aexits > 2 * MINES_PER_SIDE

    def test_mines_saw_only_safe_conditions(self, attack_offset):
        machine = Machine.build(COMET_LAKE, seed=37)
        host = EnclaveHost(machine)
        enclave = host.create_enclave("minefielded")
        run = SteppedMinefieldRun(machine, attack_offset)
        run.run_stepped(enclave)
        mine_offsets = (
            run.trace_conditions[:MINES_PER_SIDE]
            + run.trace_conditions[MINES_PER_SIDE + 1 : 2 * MINES_PER_SIDE + 1]
        )
        assert all(offset > -30 for offset in mine_offsets)


class TestPollingSurvivesStepping:
    def test_isolated_target_never_faults_under_polling(
        self, attack_offset, comet_characterization
    ):
        # The same stepping adversary against the paper's countermeasure:
        # the armed voltage is remediated before it applies, so even the
        # perfectly isolated target instruction executes safely.
        machine = Machine.build(COMET_LAKE, seed=37)
        module = PollingCountermeasure(machine, comet_characterization.unsafe_states)
        machine.modules.insmod(module)
        host = EnclaveHost(machine)
        enclave = host.create_enclave("protected")
        run = SteppedMinefieldRun(machine, attack_offset)
        run.run_stepped(enclave, replays=60)
        assert run.target_faults == 0
        assert run.mine_detonations == 0
        assert module.stats.detections >= 1
