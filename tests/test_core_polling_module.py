"""Algorithm 3: the polling kernel module."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.core.policy import ClampToBoundary, ClampToMaximalSafe, RestoreToZero
from repro.core.polling_module import DEFAULT_PERIOD_S, PollingCountermeasure
from repro.core.unsafe_states import UnsafeStateSet
from repro.cpu import COMET_LAKE
from repro.testbench import Machine


@pytest.fixture
def machine() -> Machine:
    return Machine.build(COMET_LAKE, seed=17)


@pytest.fixture
def unsafe(comet_characterization) -> UnsafeStateSet:
    return comet_characterization.unsafe_states


def loaded_module(machine, unsafe, **kwargs) -> PollingCountermeasure:
    module = PollingCountermeasure(machine, unsafe, **kwargs)
    machine.modules.insmod(module)
    return module


class TestConstruction:
    def test_default_period_undercuts_regulator(self, machine, unsafe):
        module = PollingCountermeasure(machine, unsafe)
        assert module.period_s == DEFAULT_PERIOD_S
        assert module.period_s < COMET_LAKE.regulator_latency_s

    def test_empty_unsafe_set_rejected(self, machine):
        with pytest.raises(ConfigurationError):
            PollingCountermeasure(machine, UnsafeStateSet())

    def test_nonpositive_period_rejected(self, machine, unsafe):
        with pytest.raises(ConfigurationError):
            PollingCountermeasure(machine, unsafe, period_s=0.0)

    def test_default_policy_is_clamp_to_boundary(self, machine, unsafe):
        assert isinstance(PollingCountermeasure(machine, unsafe).policy, ClampToBoundary)


class TestLifecycle:
    def test_polls_only_while_loaded(self, machine, unsafe):
        module = loaded_module(machine, unsafe)
        machine.advance(5e-3)
        polls_at_unload = module.stats.polls
        assert polls_at_unload == pytest.approx(10, abs=1)
        machine.modules.rmmod(module.name)
        machine.advance(5e-3)
        assert module.stats.polls == polls_at_unload

    def test_registered_under_paper_module_name(self, machine, unsafe):
        loaded_module(machine, unsafe)
        assert machine.modules.is_loaded("plug_your_volt")

    def test_checks_every_core(self, machine, unsafe):
        module = loaded_module(machine, unsafe)
        machine.advance(2e-3)
        assert module.stats.core_checks == module.stats.polls * COMET_LAKE.core_count


class TestDetectionAndRemediation:
    def test_unsafe_target_rewritten_before_application(self, machine, unsafe):
        module = loaded_module(machine, unsafe)
        machine.set_frequency(2.0)
        boundary = unsafe.boundary_mv(2.0)
        machine.write_voltage_offset(int(boundary) - 40)
        machine.advance(3 * COMET_LAKE.regulator_latency_s)
        core = machine.processor.core(0)
        # The module detected the unsafe target and clamped it; the deep
        # offset never became electrically effective.
        assert module.stats.detections >= 1
        assert core.target_offset_mv() > boundary
        assert core.applied_offset_mv(machine.now) > boundary

    def test_detection_latency_bounded_by_period(self, machine, unsafe):
        module = loaded_module(machine, unsafe, period_s=200e-6)
        machine.set_frequency(2.0)
        write_time = machine.now
        machine.write_voltage_offset(-200)
        machine.advance(2e-3)
        first = module.stats.remediations[0]
        assert first.time_s - write_time <= 200e-6 + 1e-9

    def test_remediation_event_records_observation(self, machine, unsafe):
        module = loaded_module(machine, unsafe)
        machine.set_frequency(2.0)
        machine.write_voltage_offset(-250)
        machine.advance(1e-3)
        event = module.stats.remediations[0]
        assert event.observed.frequency_ghz == pytest.approx(2.0)
        assert event.observed.offset_mv == pytest.approx(-250, abs=1.0)
        assert event.restored_offset_mv > unsafe.boundary_mv(2.0)

    def test_safe_undervolt_left_alone(self, machine, unsafe):
        module = loaded_module(machine, unsafe)
        machine.set_frequency(0.8)
        safe_offset = int(unsafe.boundary_mv(0.8)) + 30  # within the safe band
        machine.write_voltage_offset(safe_offset)
        machine.advance(5e-3)
        assert module.stats.detections == 0
        assert machine.processor.core(0).applied_offset_mv(machine.now) == pytest.approx(
            safe_offset, abs=1.0
        )

    def test_policy_restore_to_zero(self, machine, unsafe):
        loaded_module(machine, unsafe, policy=RestoreToZero())
        machine.set_frequency(2.0)
        machine.write_voltage_offset(-250)
        machine.advance(2 * COMET_LAKE.regulator_latency_s)
        assert machine.processor.core(0).target_offset_mv() == 0.0

    def test_policy_clamp_to_maximal_safe(self, machine, unsafe):
        loaded_module(machine, unsafe, policy=ClampToMaximalSafe())
        machine.set_frequency(2.0)
        machine.write_voltage_offset(-250)
        machine.advance(2 * COMET_LAKE.regulator_latency_s)
        assert machine.processor.core(0).target_offset_mv() == pytest.approx(
            unsafe.maximal_safe_offset_mv(), abs=1.0
        )

    def test_per_core_remediation(self, machine, unsafe):
        module = loaded_module(machine, unsafe)
        machine.set_frequency(2.0)
        machine.write_voltage_offset(-250, core_index=2)
        machine.advance(1e-3)
        assert {e.core_index for e in module.stats.remediations} == {2}


class TestCostModel:
    def test_fast_read_costs_two_accesses_per_core(self, machine, unsafe):
        module = PollingCountermeasure(machine, unsafe, fast_offset_read=True)
        expected = 4 * 2 * machine.msr_driver.access_latency_s
        assert module.cpu_time_per_poll_s() == pytest.approx(expected)

    def test_pedantic_read_costs_three_accesses_per_core(self, machine, unsafe):
        module = PollingCountermeasure(machine, unsafe, fast_offset_read=False)
        expected = 4 * 3 * machine.msr_driver.access_latency_s
        assert module.cpu_time_per_poll_s() == pytest.approx(expected)

    def test_duty_cycle_subpercent_at_default_period(self, machine, unsafe):
        module = PollingCountermeasure(machine, unsafe)
        assert module.duty_cycle() < 0.02

    def test_turnaround_dominated_by_period_and_raise(self, machine, unsafe):
        module = PollingCountermeasure(machine, unsafe)
        turnaround = module.worst_case_turnaround_s()
        assert turnaround > module.period_s
        assert turnaround < module.period_s + COMET_LAKE.regulator_raise_latency_s + 1e-5

    def test_pedantic_ocm_protocol_still_detects(self, machine, unsafe):
        module = loaded_module(machine, unsafe, fast_offset_read=False)
        machine.set_frequency(2.0)
        machine.write_voltage_offset(-250)
        machine.advance(2e-3)
        assert module.stats.detections >= 1


class TestQuantizationRegression:
    def test_boundary_offset_detected_despite_ocm_quantization(self, machine, unsafe):
        # Regression: a request of exactly the boundary offset (-85 mV)
        # encodes through the mailbox's 1/1024 V field and reads back as
        # -84.96 mV; the unsafe check must still match the boundary cell.
        module = loaded_module(machine, unsafe)
        machine.set_frequency(1.8)
        boundary = int(unsafe.boundary_mv(1.8))
        machine.write_voltage_offset(boundary)
        machine.advance(2e-3)
        assert module.stats.detections >= 1

    def test_half_quantum_tolerance_in_membership(self, unsafe):
        from repro.core.encoding import decode_offset_mv, offset_voltage

        boundary = unsafe.boundary_mv(1.8)
        readback = decode_offset_mv(offset_voltage(int(boundary)))
        assert readback > boundary  # the quantization that caused the bug
        assert unsafe.is_unsafe(1.8, readback)


class TestLogging:
    def test_load_unload_and_remediation_logged(self, machine, unsafe, caplog):
        import logging

        with caplog.at_level(logging.INFO, logger="repro.core.polling_module"):
            module = loaded_module(machine, unsafe)
            machine.set_frequency(2.0)
            machine.write_voltage_offset(-250)
            machine.advance(2e-3)
            machine.modules.rmmod(module.name)
        text = caplog.text
        assert "plug_your_volt loaded" in text
        assert "unsafe state on core 0" in text
        assert "plug_your_volt unloaded" in text


class TestDetectionMargin:
    def test_stochastic_gap_cell_is_flagged(self, machine, unsafe):
        # Regression for the attack-surface finding: an offset a few mV
        # shallower than the observed boundary (where characterization may
        # have sampled zero faults by chance) must still be flagged.
        module = loaded_module(machine, unsafe)
        machine.set_frequency(2.0)
        boundary = int(unsafe.boundary_mv(2.0))
        machine.write_voltage_offset(boundary + 6)  # inside the 10 mV margin
        machine.advance(2e-3)
        assert module.stats.detections >= 1

    def test_remediated_state_is_a_fixed_point(self, machine, unsafe):
        # The restoration target (boundary + 15) must NOT be re-flagged by
        # the 10 mV detection margin, or the module would thrash.
        module = loaded_module(machine, unsafe)
        machine.set_frequency(2.0)
        machine.write_voltage_offset(-250)
        machine.advance(5e-3)
        detections_after_settle = module.stats.detections
        machine.advance(10e-3)
        assert module.stats.detections == detections_after_settle

    def test_margin_validated(self, machine, unsafe):
        with pytest.raises(ConfigurationError):
            PollingCountermeasure(machine, unsafe, detection_margin_mv=-1.0)

    def test_zero_margin_reproduces_the_gap(self, machine, unsafe):
        # With the margin disabled the gap cell is (wrongly) trusted.
        module = loaded_module(machine, unsafe, detection_margin_mv=0.0)
        machine.set_frequency(2.0)
        boundary = int(unsafe.boundary_mv(2.0))
        machine.write_voltage_offset(boundary + 6)
        machine.advance(2e-3)
        assert module.stats.detections == 0


class TestReloadLifetimes:
    """Load -> unload -> load must start a fresh lifetime.

    The stats counters and the turnaround histogram live in the machine's
    shared telemetry registry (that sharing is the telemetry contract),
    so without per-lifetime baselines a reloaded module starts life
    claiming every poll, detection and turnaround sample of the previous
    lifetime — and a load that races an unload would leave two kthreads
    double-polling.
    """

    def _telemetry_machine(self):
        from repro.telemetry import Telemetry

        return Machine.build(COMET_LAKE, seed=17, telemetry=Telemetry())

    def test_reloaded_module_starts_at_zero(self, unsafe):
        machine = self._telemetry_machine()
        first = loaded_module(machine, unsafe)
        machine.advance(5e-3)
        assert first.stats.polls > 0
        machine.modules.rmmod(first.name)

        second = loaded_module(machine, unsafe)
        assert second.stats.polls == 0
        assert second.stats.core_checks == 0
        assert second.stats.detections == 0
        machine.advance(5e-3)
        assert second.stats.polls == pytest.approx(10, abs=1)
        # The registry keeps the machine-wide total across lifetimes.
        total = machine.telemetry.registry.counter("countermeasure.polls").value
        assert total == first.stats.polls + second.stats.polls

    def test_same_instance_reload_rebaselines(self, unsafe):
        machine = self._telemetry_machine()
        module = loaded_module(machine, unsafe)
        machine.advance(5e-3)
        machine.modules.rmmod(module.name)
        first_lifetime = module.stats.polls
        assert first_lifetime > 0

        machine.modules.insmod(module)
        assert module.stats.polls == 0
        machine.advance(2e-3)
        assert 0 < module.stats.polls < first_lifetime

    def test_reload_does_not_double_poll(self, unsafe):
        machine = self._telemetry_machine()
        module = loaded_module(machine, unsafe)
        machine.advance(5e-3)
        machine.modules.rmmod(module.name)
        machine.modules.insmod(module)
        before = machine.telemetry.registry.counter("countermeasure.polls").value
        machine.advance(5e-3)
        delta = machine.telemetry.registry.counter("countermeasure.polls").value - before
        # One kthread's cadence, not two: ~10 polls in 5 ms at 500 us.
        assert delta == pytest.approx(10, abs=1)

    def test_racing_load_does_not_double_poll(self, unsafe):
        # A load racing an unload calls on_load with a kthread already
        # armed; the defensive disarm must keep a single cadence.
        machine = self._telemetry_machine()
        module = loaded_module(machine, unsafe)
        module.on_load()  # the race: second load without an unload
        before = machine.telemetry.registry.counter("countermeasure.polls").value
        machine.advance(5e-3)
        delta = machine.telemetry.registry.counter("countermeasure.polls").value - before
        assert delta == pytest.approx(10, abs=1)

    def test_turnaround_samples_not_double_counted(self, unsafe):
        machine = self._telemetry_machine()
        module = loaded_module(machine, unsafe)
        machine.set_frequency(2.0)
        boundary = unsafe.boundary_mv(2.0)
        machine.write_voltage_offset(int(boundary) - 40)
        machine.advance(3 * COMET_LAKE.regulator_latency_s)
        first_samples = module.turnaround_samples()
        assert first_samples > 0
        machine.modules.rmmod(module.name)

        machine.modules.insmod(module)
        assert module.turnaround_samples() == 0
        assert module.stats.detections == 0
        histogram = module.stats.registry.histogram(
            "countermeasure.turnaround_s"
        )
        # The shared histogram keeps the machine-wide sample count.
        assert histogram.count == first_samples

    def test_unload_cancels_recurring_event(self, unsafe):
        machine = self._telemetry_machine()
        module = loaded_module(machine, unsafe)
        machine.advance(1e-3)
        machine.modules.rmmod(module.name)
        assert module._recurring is None
        machine.simulator.prune()
        assert not any(
            cancelled for _, cancelled in machine.simulator.pending_entries()
        )
