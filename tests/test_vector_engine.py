"""Engine-layer contract of the vectorized batch sweep path.

``BatchCharacterizationJob`` shards carry distinct fingerprints (their
own cache identity) but fold to the same ``CharacterizationResult`` as
the scalar row jobs — and both paths share the *sweep-level* cache slot,
so a result computed by either serves the other.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.characterization import CharacterizationConfig
from repro.cpu import COMET_LAKE, KABY_LAKE_R
from repro.engine import (
    BatchCharacterizationJob,
    CharacterizationJob,
    CharacterizationRowJob,
    EngineSession,
    ResultCache,
    SerialExecutor,
    batch_enabled,
    batch_rows_per_job,
    execute_job,
)
from repro.errors import ConfigurationError, ReproError

#: Three-row sweep: enough to chunk, cheap enough for a unit test.
SMALL = CharacterizationConfig(
    offset_start_mv=-10,
    offset_stop_mv=-250,
    offset_step_mv=10,
    frequencies_ghz=(0.8, 2.0, 3.4),
)


def _sweep_job(codename=COMET_LAKE.codename, config=SMALL, seed=5):
    return CharacterizationJob(codename=codename, config=config, seed=seed)


class TestFingerprints:
    def test_batch_job_fingerprint_distinct_from_row_and_sweep(self):
        sweep = _sweep_job()
        row = sweep.row_jobs()[0]
        batch = sweep.batch_jobs()[0]
        prints = {sweep.fingerprint(), row.fingerprint(), batch.fingerprint()}
        assert len(prints) == 3

    def test_batch_job_fingerprint_sensitive_to_chunking(self):
        sweep = _sweep_job()
        whole = sweep.batch_jobs(rows_per_job=8)
        split = sweep.batch_jobs(rows_per_job=1)
        assert whole[0].fingerprint() not in {job.fingerprint() for job in split}

    def test_batch_job_seed_path_names_the_frequency_span(self):
        job = BatchCharacterizationJob(
            codename=COMET_LAKE.codename,
            frequencies_ghz=(0.8, 2.0, 3.4),
            config=SMALL,
            seed=5,
        )
        assert job.seed_path() == ("characterization", COMET_LAKE.codename, "batch@8-34")


class TestChunking:
    def test_batch_jobs_cover_every_frequency_in_order(self):
        sweep = _sweep_job(config=CharacterizationConfig())
        expected = CharacterizationConfig().frequency_list(COMET_LAKE)
        for rows_per_job in (1, 3, 8, 64):
            jobs = sweep.batch_jobs(rows_per_job=rows_per_job)
            covered = [f for job in jobs for f in job.frequencies_ghz]
            assert covered == expected
            assert all(
                len(job.frequencies_ghz) <= rows_per_job for job in jobs
            )

    def test_batch_jobs_reject_nonpositive_chunk(self):
        with pytest.raises(ConfigurationError):
            _sweep_job().batch_jobs(rows_per_job=0)

    def test_fold_is_chunking_invariant_and_matches_rows(self):
        """Per-row seed streams make the folded sweep independent of how
        rows are packed into batch jobs — and identical to the scalar
        row-job fold."""
        sweep = _sweep_job()
        scalar = sweep.fold([execute_job(job).payload for job in sweep.row_jobs()])
        folds = []
        for rows_per_job in (1, 2, 8):
            payloads = [
                execute_job(job).payload
                for job in sweep.batch_jobs(rows_per_job=rows_per_job)
            ]
            rows = [row for payload in payloads for row in payload]
            folds.append(sweep.fold(rows))
        for fold in folds:
            assert fold.cells == scalar.cells
            assert fold.crashes == scalar.crashes
            assert fold.unsafe_states.to_dict() == scalar.unsafe_states.to_dict()

    def test_batch_job_counters_match_scalar_row_jobs(self):
        """execute_job merges worker telemetry either way; the totals a
        batch shard reports must equal its rows' summed scalar counters."""
        sweep = _sweep_job(codename=KABY_LAKE_R.codename)
        scalar_totals: dict = {}
        for job in sweep.row_jobs():
            for name, value in execute_job(job).counters.items():
                scalar_totals[name] = scalar_totals.get(name, 0) + value
        batch_totals: dict = {}
        for job in sweep.batch_jobs(rows_per_job=2):
            for name, value in execute_job(job).counters.items():
                batch_totals[name] = batch_totals.get(name, 0) + value
        assert batch_totals == scalar_totals


class TestEnvironmentKnobs:
    def test_batch_enabled_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH", raising=False)
        assert batch_enabled() is True

    @pytest.mark.parametrize("value", ["0", "false", "no", "off", " OFF "])
    def test_batch_enabled_opt_out_spellings(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_BATCH", value)
        assert batch_enabled() is False

    @pytest.mark.parametrize("value", ["1", "true", "on", "yes", ""])
    def test_batch_enabled_on_spellings(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_BATCH", value)
        assert batch_enabled() is True

    def test_batch_enabled_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "0")
        assert batch_enabled(True) is True
        monkeypatch.delenv("REPRO_BATCH")
        assert batch_enabled(False) is False

    def test_batch_rows_per_job_default_and_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH_ROWS", raising=False)
        assert batch_rows_per_job() == 8
        monkeypatch.setenv("REPRO_BATCH_ROWS", "3")
        assert batch_rows_per_job() == 3

    def test_batch_rows_per_job_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_ROWS", "lots")
        with pytest.raises(ReproError):
            batch_rows_per_job()
        monkeypatch.setenv("REPRO_BATCH_ROWS", "0")
        with pytest.raises(ReproError):
            batch_rows_per_job()


class TestSessionIntegration:
    def test_characterize_batch_matches_scalar(self):
        scalar_session = EngineSession(executor=SerialExecutor(), cache=ResultCache())
        batch_session = EngineSession(executor=SerialExecutor(), cache=ResultCache())
        scalar = scalar_session.characterize(COMET_LAKE, config=SMALL, batch=False)
        batch = batch_session.characterize(COMET_LAKE, config=SMALL, batch=True)
        assert scalar.cells == batch.cells
        assert pickle.dumps(scalar.cells) == pickle.dumps(batch.cells)
        assert scalar.unsafe_states.to_dict() == batch.unsafe_states.to_dict()
        # The merged fault counters agree too — only the job bookkeeping
        # (how many shards ran) may differ between the paths.
        scalar_counters = {
            k: v for k, v in scalar_session.counters().items() if k.startswith("faults.")
        }
        batch_counters = {
            k: v for k, v in batch_session.counters().items() if k.startswith("faults.")
        }
        assert scalar_counters == batch_counters

    def test_batch_runs_fewer_jobs_than_scalar(self):
        config = CharacterizationConfig(
            offset_start_mv=-10, offset_stop_mv=-250, offset_step_mv=10
        )
        scalar_session = EngineSession(executor=SerialExecutor(), cache=ResultCache())
        batch_session = EngineSession(executor=SerialExecutor(), cache=ResultCache())
        scalar_session.characterize(COMET_LAKE, config=config, batch=False)
        batch_session.characterize(COMET_LAKE, config=config, batch=True)
        scalar_jobs = scalar_session.counters()["engine.jobs_executed"]
        batch_jobs = batch_session.counters()["engine.jobs_executed"]
        assert batch_jobs < scalar_jobs

    def test_cross_path_cache_identity(self):
        """Scalar and batch sweeps share one sweep-level cache slot: a
        result computed by either path serves the other verbatim."""
        session = EngineSession(executor=SerialExecutor(), cache=ResultCache())
        scalar = session.characterize(COMET_LAKE, config=SMALL, batch=False)
        served = session.characterize(COMET_LAKE, config=SMALL, batch=True)
        assert served is scalar
        assert session.counters()["engine.cache_hits"] == 1

        reverse = EngineSession(executor=SerialExecutor(), cache=ResultCache())
        batch = reverse.characterize(COMET_LAKE, config=SMALL, batch=True)
        served = reverse.characterize(COMET_LAKE, config=SMALL, batch=False)
        assert served is batch
        assert reverse.counters()["engine.cache_hits"] == 1

    def test_characterize_refuses_partial_batch_sweeps(self, monkeypatch):
        """A quarantined batch shard must fail the sweep loudly — a fold
        of partial rows would be silently wrong (mirror of the scalar
        row-job test in tests/test_resilience.py)."""
        from repro.engine import RetryPolicy
        from repro.engine import jobs as jobs_module

        session = EngineSession(
            executor=SerialExecutor(policy=RetryPolicy(max_attempts=1, backoff_s=0.0)),
            cache=ResultCache(),
        )

        def sabotaged(self, telemetry):
            raise RuntimeError("sabotaged batch shard")

        monkeypatch.setattr(jobs_module.BatchCharacterizationJob, "run", sabotaged)
        with pytest.raises(ReproError, match="quarantine"):
            session.characterize(COMET_LAKE, config=SMALL, batch=True)

    def test_characterize_honors_repro_batch_env(self, monkeypatch):
        """batch=None defers to REPRO_BATCH; the observable difference is
        the shard count (results are identical by construction)."""
        monkeypatch.setenv("REPRO_BATCH", "0")
        scalar_session = EngineSession(executor=SerialExecutor(), cache=ResultCache())
        scalar_session.characterize(COMET_LAKE, config=SMALL)
        monkeypatch.setenv("REPRO_BATCH", "1")
        batch_session = EngineSession(executor=SerialExecutor(), cache=ResultCache())
        batch_session.characterize(COMET_LAKE, config=SMALL)
        assert (
            batch_session.counters()["engine.jobs_executed"]
            < scalar_session.counters()["engine.jobs_executed"]
        )
