"""Shared fixtures.

Characterizations are expensive enough (a few tenths of a second per CPU
model) that the suite shares them through the engine's cached session —
the same cache the experiment API and the CLI use, so a sweep computed
by any of them is computed only once per process.  Machines are cheap
and always built fresh per test to keep state isolated.
"""

from __future__ import annotations

import pytest

from repro.core.characterization import (
    CharacterizationConfig,
    CharacterizationResult,
)
from repro.cpu import COMET_LAKE, KABY_LAKE_R, SKY_LAKE
from repro.engine import get_session
from repro.testbench import Machine


@pytest.fixture(scope="session")
def comet_characterization() -> CharacterizationResult:
    """Full Algo 2 sweep for Comet Lake (the paper's Table 2 machine)."""
    return get_session().characterize(COMET_LAKE, seed=5)


@pytest.fixture(scope="session")
def skylake_characterization() -> CharacterizationResult:
    """Full Algo 2 sweep for Sky Lake."""
    return get_session().characterize(SKY_LAKE, seed=5)


@pytest.fixture(scope="session")
def kabylake_characterization() -> CharacterizationResult:
    """Full Algo 2 sweep for Kaby Lake R."""
    return get_session().characterize(KABY_LAKE_R, seed=5)


@pytest.fixture(scope="session")
def coarse_config() -> CharacterizationConfig:
    """A cheap sweep configuration for tests that re-run Algo 2."""
    return CharacterizationConfig(
        offset_start_mv=-10, offset_stop_mv=-250, offset_step_mv=10
    )


@pytest.fixture
def comet_machine() -> Machine:
    """A fresh Comet Lake machine."""
    return Machine.build(COMET_LAKE, seed=2024)


@pytest.fixture
def skylake_machine() -> Machine:
    """A fresh Sky Lake machine."""
    return Machine.build(SKY_LAKE, seed=2024)
