"""Shared fixtures.

Characterizations are expensive enough (a few tenths of a second per CPU
model) that the suite shares them through the engine's cached session —
the same cache the experiment API and the CLI use, so a sweep computed
by any of them is computed only once per process.  Machines are cheap
and always built fresh per test to keep state isolated.
"""

from __future__ import annotations

import os

import pytest

from repro.core.characterization import (
    CharacterizationConfig,
    CharacterizationResult,
)
from repro.cpu import COMET_LAKE, KABY_LAKE_R, SKY_LAKE
from repro.engine import get_session
from repro.testbench import Machine


@pytest.fixture(scope="session", autouse=True)
def _hermetic_registry(tmp_path_factory) -> None:
    """Point the run registry at a per-run temp dir for the whole suite.

    Engine sessions record runs automatically; without this the test
    suite would pollute the developer's ``~/.repro/registry``.  An
    explicitly exported ``REPRO_REGISTRY(_DIR)`` wins (CI sets one to
    keep the registry as an artifact).
    """
    if "REPRO_REGISTRY" not in os.environ and "REPRO_REGISTRY_DIR" not in os.environ:
        os.environ["REPRO_REGISTRY_DIR"] = str(
            tmp_path_factory.mktemp("registry")
        )


@pytest.fixture(scope="session")
def comet_characterization() -> CharacterizationResult:
    """Full Algo 2 sweep for Comet Lake (the paper's Table 2 machine)."""
    return get_session().characterize(COMET_LAKE, seed=5)


@pytest.fixture(scope="session")
def skylake_characterization() -> CharacterizationResult:
    """Full Algo 2 sweep for Sky Lake."""
    return get_session().characterize(SKY_LAKE, seed=5)


@pytest.fixture(scope="session")
def kabylake_characterization() -> CharacterizationResult:
    """Full Algo 2 sweep for Kaby Lake R."""
    return get_session().characterize(KABY_LAKE_R, seed=5)


@pytest.fixture(scope="session")
def coarse_config() -> CharacterizationConfig:
    """A cheap sweep configuration for tests that re-run Algo 2."""
    return CharacterizationConfig(
        offset_start_mv=-10, offset_stop_mv=-250, offset_step_mv=10
    )


@pytest.fixture
def comet_machine() -> Machine:
    """A fresh Comet Lake machine."""
    return Machine.build(COMET_LAKE, seed=2024)


@pytest.fixture
def skylake_machine() -> Machine:
    """A fresh Sky Lake machine."""
    return Machine.build(SKY_LAKE, seed=2024)
