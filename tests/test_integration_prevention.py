"""Integration: the paper's headline claims, end to end.

* The polling module completely prevents the published 0x150-route
  attacks (Plundervolt, V0LTpwn, the paper's own imul campaign) on all
  three CPU generations.
* Benign non-SGX DVFS keeps working while the module runs — the
  availability property prior defenses lack.
* The Sec. 5 deployments (microcode, MSR clamp) additionally close the
  adaptive frequency-jump window that pure polling leaves.
"""

from __future__ import annotations

import pytest

from repro.attacks import (
    ImulCampaign,
    PlundervoltAttack,
    PlundervoltConfig,
    RSACRTSigner,
    RSAKey,
    V0ltpwnAttack,
    V0ltpwnConfig,
    VectorChecksumPayload,
    VoltJockeyAttack,
    VoltJockeyConfig,
)
from repro.core import (
    CharacterizationFramework,
    MicrocodeGuard,
    PollingCountermeasure,
    install_msr_clamp,
)
from repro.cpu import COMET_LAKE, KABY_LAKE_R, PAPER_MODEL_TUPLE, SKY_LAKE
from repro.core.polling_module import TURNAROUND_HISTOGRAM
from repro.kernel.cpufreq import ScalingGovernor
from repro.sgx import EnclaveHost
from repro.telemetry import Telemetry
from repro.testbench import Machine


@pytest.fixture(scope="module")
def characterizations():
    return {
        model.codename: CharacterizationFramework(model, seed=5).run()
        for model in PAPER_MODEL_TUPLE
    }


def protected_machine(model, characterizations, seed=11):
    machine = Machine.build(model, seed=seed)
    module = PollingCountermeasure(
        machine, characterizations[model.codename].unsafe_states
    )
    machine.modules.insmod(module)
    return machine, module


KEY = RSAKey.generate(512, seed=42)


class TestCompletePrevention:
    @pytest.mark.parametrize("model", PAPER_MODEL_TUPLE, ids=lambda m: m.codename)
    def test_imul_campaign_zero_faults_on_all_three_cpus(self, model, characterizations):
        # Sec. 4.3: "completely eliminate DVFS faults on EXECUTE thread".
        machine, module = protected_machine(model, characterizations)
        frequency = model.frequency_table.base_ghz
        campaign = ImulCampaign(
            machine,
            frequency_ghz=frequency,
            offsets_mv=tuple(range(-60, -301, -30)),
            iterations_per_point=500_000,
        )
        outcome = campaign.mount()
        assert outcome.faults_observed == 0
        assert outcome.crashes == 0
        assert not outcome.succeeded
        assert module.stats.detections > 0  # it actively intervened

    def test_plundervolt_defeated(self, characterizations):
        machine, _ = protected_machine(COMET_LAKE, characterizations)
        host = EnclaveHost(machine)
        enclave = host.create_enclave("rsa")
        attack = PlundervoltAttack(
            machine,
            enclave,
            RSACRTSigner(KEY),
            message=0xDEADBEEF,
            config=PlundervoltConfig(frequency_ghz=2.0),
        )
        outcome = attack.mount()
        assert not outcome.succeeded
        assert outcome.faults_observed == 0
        assert outcome.recovered_secret is None

    def test_plundervolt_with_known_offset_still_defeated(self, characterizations):
        # Even an attacker who skips the search (knows the fault band from
        # an identical machine) never gets the voltage applied.
        machine, _ = protected_machine(COMET_LAKE, characterizations)
        boundary = characterizations["Comet Lake"].unsafe_states.boundary_mv(2.0)
        host = EnclaveHost(machine)
        enclave = host.create_enclave("rsa")
        attack = PlundervoltAttack(
            machine,
            enclave,
            RSACRTSigner(KEY),
            message=0xCAFE,
            config=PlundervoltConfig(
                frequency_ghz=2.0, offset_mv=int(boundary) - 12, max_signing_attempts=25
            ),
        )
        outcome = attack.mount()
        assert not outcome.succeeded
        assert outcome.faults_observed == 0

    def test_v0ltpwn_defeated(self, characterizations):
        machine, _ = protected_machine(COMET_LAKE, characterizations)
        host = EnclaveHost(machine)
        enclave = host.create_enclave("vec")
        payload = VectorChecksumPayload(ops=500_000)
        attack = V0ltpwnAttack(
            machine, enclave, payload, V0ltpwnConfig(frequency_ghz=2.2, max_attempts=20)
        )
        outcome = attack.mount()
        assert not outcome.succeeded
        assert outcome.faults_observed == 0

    def test_no_crashes_while_protected(self, characterizations):
        machine, _ = protected_machine(SKY_LAKE, characterizations)
        campaign = ImulCampaign(
            machine,
            frequency_ghz=3.2,
            offsets_mv=tuple(range(-100, -301, -50)),
            iterations_per_point=200_000,
        )
        outcome = campaign.mount()
        assert machine.crash_count == 0


class TestBenignAvailability:
    def test_safe_undervolting_untouched(self, characterizations):
        # A power-conscious benign process undervolts within the safe
        # band; the module must leave it alone (the paper's availability
        # advantage over access control).
        machine, module = protected_machine(KABY_LAKE_R, characterizations)
        unsafe = characterizations["Kaby Lake R"].unsafe_states
        machine.set_frequency(0.8)
        benign = int(unsafe.boundary_mv(0.8)) + 30
        assert machine.write_voltage_offset(benign) is True
        machine.advance(5e-3)
        assert machine.processor.core(0).applied_offset_mv(machine.now) == pytest.approx(
            benign, abs=1.0
        )
        assert module.stats.detections == 0

    def test_benign_dvfs_works_while_enclave_runs(self, characterizations):
        # The whole point vs SA-00289: a non-SGX process may keep using
        # DVFS while an SGX context is operational.
        machine, module = protected_machine(COMET_LAKE, characterizations)
        host = EnclaveHost(machine)
        host.create_enclave("busy-enclave")
        machine.cpufreq.set_governor(1, ScalingGovernor.USERSPACE)
        machine.cpufreq.set_frequency(1, 1.0)
        assert machine.write_voltage_offset(-30, core_index=1) is True
        machine.advance(3e-3)
        assert machine.processor.core(1).applied_offset_mv(machine.now) == pytest.approx(
            -30, abs=1.0
        )

    def test_governor_switching_unimpeded(self, characterizations):
        machine, _ = protected_machine(COMET_LAKE, characterizations)
        for governor in (
            ScalingGovernor.PERFORMANCE,
            ScalingGovernor.POWERSAVE,
            ScalingGovernor.ONDEMAND,
        ):
            machine.cpufreq.set_governor(0, governor)
            machine.advance(2e-3)
        assert machine.crash_count == 0


class TestTurnaroundTelemetry:
    def test_turnaround_histogram_matches_sec5_decomposition(self, characterizations):
        # Sec. 5 decomposes the remediation latency into (1) the driver
        # ioctl chain and (2) the regulator settle window; the telemetry
        # histogram the module records must reproduce exactly that sum.
        telemetry = Telemetry()
        machine = Machine.build(COMET_LAKE, seed=11, telemetry=telemetry)
        machine.set_frequency(2.0)
        # Let the attack write settle *before* the module loads, so the
        # remediation is a voltage raise from a settled unsafe state —
        # the turnaround case Sec. 5 analyses.
        machine.write_voltage_offset(-250)
        machine.advance(1e-3)
        module = PollingCountermeasure(
            machine, characterizations["Comet Lake"].unsafe_states
        )
        machine.modules.insmod(module)
        machine.advance(2e-3)
        assert module.stats.detections >= 1

        hist = telemetry.registry.histogram(TURNAROUND_HISTOGRAM)
        assert hist.count == module.stats.detections
        # Fast offset read: 2 rdmsr + 1 remediation wrmsr; the write
        # raises the voltage, so the fast raise latency applies.
        expected = (
            3 * machine.msr_driver.access_latency_s
            + COMET_LAKE.regulator_raise_latency_s
        )
        for observed in hist.values:
            assert observed == pytest.approx(expected, rel=0.05)
        # And the histogram stays below the module's worst-case bound
        # (which adds the polling quantum on top).
        assert hist.max < module.worst_case_turnaround_s()


class TestAdaptiveWindowAndDeeperDeployments:
    @pytest.fixture
    def cross_offset(self, characterizations) -> int:
        unsafe = characterizations["Comet Lake"].unsafe_states
        return int(unsafe.boundary_mv(3.4)) - 10

    def test_frequency_jump_leaves_residual_window_for_polling(
        self, characterizations, cross_offset
    ):
        machine, _ = protected_machine(COMET_LAKE, characterizations)
        attack = VoltJockeyAttack(
            machine,
            VoltJockeyConfig(0.8, 3.4, offset_mv=cross_offset, repetitions=3),
        )
        outcome = attack.mount()
        # Polling reacts only after the jump: a bounded burst of faults.
        assert outcome.faults_observed > 0

    def test_msr_clamp_closes_the_window(self, characterizations, cross_offset):
        machine, _ = protected_machine(COMET_LAKE, characterizations)
        maximal = characterizations["Comet Lake"].maximal_safe_offset_mv()
        install_msr_clamp(machine.processor, maximal)
        attack = VoltJockeyAttack(
            machine,
            VoltJockeyConfig(0.8, 3.4, offset_mv=cross_offset, repetitions=3),
        )
        outcome = attack.mount()
        assert outcome.faults_observed == 0
        assert not outcome.succeeded

    def test_microcode_guard_closes_the_window(self, characterizations, cross_offset):
        machine, _ = protected_machine(COMET_LAKE, characterizations)
        maximal = characterizations["Comet Lake"].maximal_safe_offset_mv()
        MicrocodeGuard(maximal).apply(machine.processor)
        attack = VoltJockeyAttack(
            machine,
            VoltJockeyConfig(0.8, 3.4, offset_mv=cross_offset, repetitions=3),
        )
        outcome = attack.mount()
        assert outcome.faults_observed == 0
        assert outcome.writes_blocked == 3

    def test_polling_window_bounded_by_turnaround(self, characterizations, cross_offset):
        # The residual fault burst must fit within the worst-case
        # turnaround (period + ioctl chain + raise latency) at 3.4 GHz.
        machine, module = protected_machine(COMET_LAKE, characterizations)
        attack = VoltJockeyAttack(
            machine,
            VoltJockeyConfig(0.8, 3.4, offset_mv=cross_offset, repetitions=1),
        )
        outcome = attack.mount()
        window_ops = module.worst_case_turnaround_s() * 3.4e9
        # Faults are rare events within the window; the count must be far
        # below the op budget of the window (sanity of the time model).
        assert outcome.faults_observed < window_ops * 1e-3
