"""Voltage regulator: hold-then-step latency, asymmetric directions."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.cpu.ocm import VoltagePlane
from repro.cpu.voltage_regulator import VoltageRegulator

CORE = VoltagePlane.CORE


@pytest.fixture
def regulator() -> VoltageRegulator:
    return VoltageRegulator(latency_s=650e-6, raise_latency_s=80e-6)


class TestDefaults:
    def test_zero_offset_initially(self, regulator):
        assert regulator.applied_offset_mv(CORE, 0.0) == 0.0
        assert regulator.target_offset_mv(CORE) == 0.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            VoltageRegulator(latency_s=-1.0)

    def test_default_raise_latency_is_eighth(self):
        reg = VoltageRegulator(latency_s=800e-6)
        assert reg.raise_latency_s == pytest.approx(100e-6)


class TestLoweringTransition:
    def test_holds_old_value_during_latency(self, regulator):
        regulator.request_offset(CORE, -200.0, now=0.0)
        assert regulator.applied_offset_mv(CORE, 100e-6) == 0.0
        assert regulator.applied_offset_mv(CORE, 649e-6) == 0.0

    def test_steps_at_settle_time(self, regulator):
        settle = regulator.request_offset(CORE, -200.0, now=0.0)
        assert settle == pytest.approx(650e-6)
        assert regulator.applied_offset_mv(CORE, settle) == -200.0

    def test_target_visible_immediately(self, regulator):
        # This is what the polling module reads back from 0x150: the
        # *target* is observable before the voltage moves.
        regulator.request_offset(CORE, -200.0, now=0.0)
        assert regulator.target_offset_mv(CORE) == -200.0
        assert regulator.applied_offset_mv(CORE, 0.0) == 0.0

    def test_is_settled(self, regulator):
        regulator.request_offset(CORE, -200.0, now=0.0)
        assert not regulator.is_settled(CORE, 100e-6)
        assert regulator.is_settled(CORE, 650e-6)


class TestRaisingTransition:
    def test_raise_uses_fast_latency(self, regulator):
        regulator.request_offset(CORE, -200.0, now=0.0)
        # Settle the lowering first.
        assert regulator.applied_offset_mv(CORE, 1e-3) == -200.0
        settle = regulator.request_offset(CORE, -50.0, now=1e-3)
        assert settle == pytest.approx(1e-3 + 80e-6)

    def test_latency_for_direction(self, regulator):
        assert regulator.latency_for(0.0, -100.0) == pytest.approx(650e-6)
        assert regulator.latency_for(-100.0, 0.0) == pytest.approx(80e-6)
        assert regulator.latency_for(-100.0, -100.0) == pytest.approx(80e-6)


class TestOverwriteBeforeSettle:
    def test_rewrite_resets_from_applied_value(self, regulator):
        # Attacker writes -250; before it applies the countermeasure
        # rewrites a safe value: the deep offset never becomes effective.
        regulator.request_offset(CORE, -250.0, now=0.0)
        regulator.request_offset(CORE, -60.0, now=400e-6)
        # At any later time the applied offset is 0 (held) then -60.
        assert regulator.applied_offset_mv(CORE, 500e-6) == 0.0
        assert regulator.applied_offset_mv(CORE, 2e-3) == -60.0
        # -250 was never applied at any instant.

    def test_attacker_spam_delays_itself(self, regulator):
        regulator.request_offset(CORE, -250.0, now=0.0)
        regulator.request_offset(CORE, -250.0, now=300e-6)
        # The second write restarts the hold window from the still-applied 0.
        assert regulator.applied_offset_mv(CORE, 700e-6) == 0.0
        assert regulator.applied_offset_mv(CORE, 300e-6 + 650e-6) == -250.0


class TestSlewMode:
    def test_linear_interpolation(self):
        reg = VoltageRegulator(latency_s=100e-6, slew=True)
        reg.request_offset(CORE, -100.0, now=0.0)
        assert reg.applied_offset_mv(CORE, 50e-6) == pytest.approx(-50.0)
        assert reg.applied_offset_mv(CORE, 100e-6) == pytest.approx(-100.0)

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_slew_bounded_between_endpoints(self, progress):
        reg = VoltageRegulator(latency_s=100e-6, slew=True)
        reg.request_offset(CORE, -100.0, now=0.0)
        value = reg.applied_offset_mv(CORE, progress * 100e-6)
        assert -100.0 <= value <= 0.0


class TestPlaneIndependenceAndReset:
    def test_planes_independent(self, regulator):
        regulator.request_offset(VoltagePlane.CORE, -100.0, now=0.0)
        regulator.request_offset(VoltagePlane.CACHE, -50.0, now=0.0)
        assert regulator.target_offset_mv(VoltagePlane.CORE) == -100.0
        assert regulator.target_offset_mv(VoltagePlane.CACHE) == -50.0
        assert regulator.target_offset_mv(VoltagePlane.GPU) == 0.0

    def test_reset_clears_everything(self, regulator):
        regulator.request_offset(CORE, -100.0, now=0.0)
        regulator.reset()
        assert regulator.target_offset_mv(CORE) == 0.0
        assert regulator.applied_offset_mv(CORE, 10.0) == 0.0

    def test_zero_latency_applies_instantly(self):
        reg = VoltageRegulator(latency_s=0.0)
        reg.request_offset(CORE, -75.0, now=1.0)
        assert reg.applied_offset_mv(CORE, 1.0) == -75.0


class TestRegulatorProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=5e-3, allow_nan=False),
                st.floats(min_value=-300.0, max_value=50.0, allow_nan=False),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_applied_value_always_between_endpoints(self, requests):
        """At every instant the applied offset lies between the previous
        applied value and the latest target (no overshoot, ever)."""
        reg = VoltageRegulator(latency_s=650e-6, raise_latency_s=80e-6)
        now = 0.0
        observed_bounds = []
        for delay, target in requests:
            now += delay
            before = reg.applied_offset_mv(CORE, now)
            reg.request_offset(CORE, target, now)
            observed_bounds.append((min(before, target), max(before, target)))
            for probe in (now, now + 100e-6, now + 700e-6):
                value = reg.applied_offset_mv(CORE, probe)
                lo = min(b[0] for b in observed_bounds)
                hi = max(b[1] for b in observed_bounds)
                assert lo - 1e-9 <= value <= hi + 1e-9

    @given(
        st.floats(min_value=-300.0, max_value=0.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=5e-3, allow_nan=False),
    )
    def test_settled_value_is_exactly_the_target(self, target, extra):
        reg = VoltageRegulator(latency_s=650e-6)
        settle = reg.request_offset(CORE, target, now=0.0)
        assert reg.applied_offset_mv(CORE, settle + extra) == target


class TestSettleCausality:
    def test_applied_matches_target_at_exact_settle_time(self):
        # Regression (found by the schedule fuzzer): the settle time is
        # request + latency, but (request + latency) - request can round
        # below latency, so an elapsed-based comparison left the old
        # offset visible at the very instant is_settled reported True.
        regulator = VoltageRegulator(latency_s=650e-6, raise_latency_s=80e-6)
        mismatch_seen = False
        for k in range(1, 2000):
            now = k * 7.7e-7
            settle = regulator.request_offset(CORE, -200.0, now=now)
            assert settle == now + regulator.latency_s
            if (settle - now) != regulator.latency_s:
                mismatch_seen = True
            assert regulator.is_settled(CORE, settle)
            assert regulator.applied_offset_mv(CORE, settle) == -200.0
            regulator.reset()
        # The loop must actually cover the rounding hazard, not just the
        # benign exact cases.
        assert mismatch_seen

    def test_slew_progress_never_overshoots(self):
        regulator = VoltageRegulator(latency_s=650e-6, slew=True)
        now = 0.0015393390625
        settle = regulator.request_offset(CORE, -200.0, now=now)
        assert regulator.applied_offset_mv(CORE, settle) == -200.0
        just_before = settle - 1e-12
        if just_before > now:
            applied = regulator.applied_offset_mv(CORE, just_before)
            assert -200.0 <= applied <= 0.0
