"""Microcode update delivery (the Sec. 5.1 shipping path)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.cpu import COMET_LAKE
from repro.cpu.microcode import MicrocodeLoader, MicrocodeUpdate, guard_update
from repro.experiments import characterization
from repro.sgx import AttestationService, EnclaveHost
from repro.testbench import Machine


@pytest.fixture
def machine() -> Machine:
    return Machine.build(COMET_LAKE, seed=71)


class TestLoader:
    def test_revision_starts_at_model_value(self, machine):
        assert machine.processor.microcode_revision == COMET_LAKE.microcode

    def test_load_bumps_revision_and_resets(self, machine):
        machine.write_voltage_offset(-40)
        machine.advance(2e-3)
        loader = MicrocodeLoader(machine.processor)
        update = MicrocodeUpdate(
            revision=COMET_LAKE.microcode + 1,
            description="noop",
            install=lambda processor: None,
        )
        loader.load(update)
        assert machine.processor.microcode_revision == COMET_LAKE.microcode + 1
        # Reset wiped the pre-update offset (updates apply at reset).
        assert machine.processor.core(0).target_offset_mv() == 0.0
        assert loader.history == [COMET_LAKE.microcode + 1]

    def test_downgrade_refused(self, machine):
        loader = MicrocodeLoader(machine.processor)
        stale = MicrocodeUpdate(
            revision=COMET_LAKE.microcode, description="stale", install=lambda p: None
        )
        with pytest.raises(ConfigurationError):
            loader.load(stale)

    def test_invalid_revision_rejected(self):
        with pytest.raises(ConfigurationError):
            MicrocodeUpdate(revision=0, description="bad", install=lambda p: None)


class TestGuardUpdate:
    def test_guard_carried_by_update_blocks_deep_writes(self, machine):
        maximal = characterization(COMET_LAKE).maximal_safe_offset_mv()
        update = guard_update(maximal, base_revision=machine.processor.microcode_revision)
        MicrocodeLoader(machine.processor).load(update)
        assert machine.write_voltage_offset(-250) is False
        assert machine.write_voltage_offset(-30) is True
        assert "maximal safe state" in update.description

    def test_updated_revision_visible_in_attestation(self, machine):
        maximal = characterization(COMET_LAKE).maximal_safe_offset_mv()
        update = guard_update(maximal, base_revision=machine.processor.microcode_revision)
        MicrocodeLoader(machine.processor).load(update)
        service = AttestationService(machine)
        report = service.generate(EnclaveHost(machine).create_enclave("app"))
        assert report.microcode == update.revision
        assert report.verify_integrity()
