"""The resilience layer: retries, timeouts, crash recovery, chaos, resume.

The supervised executor's contract is that *nothing it does to keep a
campaign alive may change what the campaign computes*: a retried job
replays its exact named seed stream, a respawned pool re-runs only the
jobs that were in flight, a resumed checkpoint serves byte-identical
payloads, and a campaign run under deterministic chaos injection
converges to the failure-free result.  These tests pin each of those
properties, plus the failure semantics themselves (quarantine, strict
mode, graceful degradation).
"""

from __future__ import annotations

import json
import os
import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, ClassVar, Dict, Tuple

import pytest

from repro.cpu import PAPER_MODEL_TUPLE
from repro.engine import (
    CampaignCheckpoint,
    ChaosPolicy,
    EngineSession,
    FuzzJob,
    JobSpec,
    ParallelExecutor,
    Quarantined,
    ResultCache,
    RetryPolicy,
    SerialExecutor,
    SupervisedTask,
    execute_supervised,
)
from repro.engine.resilience import (
    JOB_RETRIES_ENV,
    JOB_TIMEOUT_ENV,
    RETRY_BACKOFF_ENV,
)
from repro.errors import (
    ChaosError,
    ConfigurationError,
    JobFailedError,
    ObserveError,
    ReproError,
)
from repro.observe import load_flight_dump


@dataclass(frozen=True)
class ScriptedJob(JobSpec):
    """A job whose failures are scripted per attempt via a scratch dir.

    The job itself never learns its attempt number from the supervisor
    (real jobs don't); it counts its own executions with marker files
    under ``scratch``, which works across process boundaries.
    """

    kind: ClassVar[str] = "scripted"

    name: str
    scratch: str
    seed: int = 0
    fail_times: int = 0
    exit_times: int = 0
    sleep_first_s: float = 0.0
    value: int = 0

    def seed_path(self) -> Tuple[str, ...]:
        return ("scripted", self.name)

    def _record_execution(self) -> int:
        root = Path(self.scratch)
        root.mkdir(parents=True, exist_ok=True)
        count = len(list(root.glob(f"{self.name}.run.*"))) + 1
        marker = root / f"{self.name}.run.{os.getpid()}.{os.urandom(4).hex()}"
        marker.touch()
        return count

    def run(self, telemetry) -> Dict[str, Any]:
        execution = self._record_execution()
        if execution == 1 and self.sleep_first_s:
            time.sleep(self.sleep_first_s)
        if execution <= self.exit_times:
            os._exit(1)
        if execution <= self.fail_times:
            raise RuntimeError(f"scripted failure #{execution}")
        telemetry.registry.counter("scripted.runs").inc()
        return {"name": self.name, "value": self.value}


def _canonical(payloads) -> str:
    """Canonical JSON for payload-list comparison (fuzz summaries are
    JSON-safe; whole-list pickles differ by memoized-string references)."""
    return json.dumps(payloads, sort_keys=True, separators=(",", ":"))


def scripted_batch(scratch, count=4, **first_job_kwargs):
    """``count`` healthy jobs, the first optionally scripted to misbehave."""
    jobs = [
        ScriptedJob(name=f"job{i}", scratch=str(scratch), value=i * 10)
        for i in range(count)
    ]
    if first_job_kwargs:
        jobs[0] = ScriptedJob(
            name="job0", scratch=str(scratch), value=0, **first_job_kwargs
        )
    return jobs


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_deterministic_backoff_schedule(self):
        policy = RetryPolicy(backoff_s=0.05, backoff_factor=2.0)
        assert [policy.backoff_for(n) for n in (1, 2, 3)] == [0.05, 0.1, 0.2]

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(JOB_RETRIES_ENV, "5")
        monkeypatch.setenv(JOB_TIMEOUT_ENV, "2.5")
        monkeypatch.setenv(RETRY_BACKOFF_ENV, "0.01")
        policy = RetryPolicy.from_env()
        assert policy.max_attempts == 5
        assert policy.timeout_s == 2.5
        assert policy.backoff_s == 0.01

    def test_from_env_defaults(self, monkeypatch):
        for name in (JOB_RETRIES_ENV, JOB_TIMEOUT_ENV, RETRY_BACKOFF_ENV):
            monkeypatch.delenv(name, raising=False)
        assert RetryPolicy.from_env() == RetryPolicy()

    def test_from_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(JOB_RETRIES_ENV, "many")
        with pytest.raises(ConfigurationError):
            RetryPolicy.from_env()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_pool_respawns=-1)


class TestChaosPolicy:
    def test_decisions_are_deterministic(self):
        a = ChaosPolicy(seed=7, kill_rate=0.3, error_rate=0.3, stall_rate=0.3)
        b = ChaosPolicy(seed=7, kill_rate=0.3, error_rate=0.3, stall_rate=0.3)
        for fp in ("aa", "bb", "cc", "dd"):
            assert a.action_for(fp, 1) == b.action_for(fp, 1)
            assert a.should_tear_cache(fp) == b.should_tear_cache(fp)

    def test_all_actions_reachable(self):
        policy = ChaosPolicy(
            seed=3, kill_rate=0.3, error_rate=0.3, stall_rate=0.3
        )
        actions = {
            policy.action_for(f"fp{i}", 1) for i in range(200)
        }
        assert actions == {"kill", "error", "stall", None}

    def test_retried_attempts_always_run_clean(self):
        policy = ChaosPolicy(seed=3, kill_rate=1.0)
        assert policy.action_for("anything", 1) == "kill"
        assert policy.action_for("anything", 2) is None

    def test_error_injection_raises_chaos_error(self):
        policy = ChaosPolicy(seed=0, error_rate=1.0)
        with pytest.raises(ChaosError):
            policy.apply("fp", 1)
        policy.apply("fp", 2)  # clean retry: no raise

    def test_survives_pickling(self):
        policy = ChaosPolicy(seed=9, kill_rate=0.1, torn_write_rate=0.2)
        clone = pickle.loads(pickle.dumps(policy))
        assert clone == policy
        assert clone.action_for("fp", 1) == policy.action_for("fp", 1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosPolicy(kill_rate=1.5)
        with pytest.raises(ConfigurationError):
            ChaosPolicy(kill_rate=0.5, error_rate=0.4, stall_rate=0.2)
        with pytest.raises(ConfigurationError):
            ChaosPolicy(stall_s=-1.0)


# ---------------------------------------------------------------------------
# Supervised execution: retries, quarantine, strict mode
# ---------------------------------------------------------------------------


class TestSerialSupervision:
    def test_flaky_job_retries_to_success(self, tmp_path):
        executor = SerialExecutor(
            policy=RetryPolicy(max_attempts=3, backoff_s=0.0)
        )
        jobs = scripted_batch(tmp_path, fail_times=2)
        results = executor.run_jobs(jobs)
        assert results[0].payload == {"name": "job0", "value": 0}
        assert results[0].attempts == 3
        assert executor.stats.retries == 2

    def test_poison_job_quarantined_campaign_continues(self, tmp_path):
        executor = SerialExecutor(
            policy=RetryPolicy(max_attempts=2, backoff_s=0.0)
        )
        results = executor.run_jobs(scripted_batch(tmp_path, fail_times=99))
        poison = results[0].payload
        assert isinstance(poison, Quarantined)
        assert poison.attempts == 2
        assert poison.error_type == "RuntimeError"
        assert [r.payload["value"] for r in results[1:]] == [10, 20, 30]
        assert executor.stats.quarantined == 1

    def test_strict_mode_raises_with_partial_results(self, tmp_path):
        """Regression: a mid-batch failure must not discard completed work.

        The pre-supervision executor ran ``pool.map`` and lost every
        finished result when any job raised; strict mode now hands the
        completed prefix back on the exception.
        """
        executor = SerialExecutor(
            policy=RetryPolicy(max_attempts=1, quarantine=False)
        )
        jobs = scripted_batch(tmp_path)
        jobs[2] = ScriptedJob(
            name="job2", scratch=str(tmp_path), fail_times=99
        )
        with pytest.raises(JobFailedError) as excinfo:
            executor.run_jobs(jobs)
        assert [r.payload["value"] for r in excinfo.value.partial] == [0, 10]
        assert excinfo.value.attempts == 1

    def test_quarantine_writes_flight_dump(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path / "flight"))
        executor = SerialExecutor(
            policy=RetryPolicy(max_attempts=1, backoff_s=0.0)
        )
        results = executor.run_jobs(
            scripted_batch(tmp_path / "scratch", count=1, fail_times=99)
        )
        poison = results[0].payload
        assert poison.flight_dump is not None
        dump = load_flight_dump(poison.flight_dump)
        assert dump.reason == "quarantined-job"
        assert dump.header["context"]["attempts"] == 1
        assert dump.header["context"]["job"]["kind"] == "scripted"


class TestParallelSupervision:
    def _executor(self, **policy_kwargs):
        policy_kwargs.setdefault("backoff_s", 0.0)
        return ParallelExecutor(2, policy=RetryPolicy(**policy_kwargs))

    def test_worker_crash_recovers_and_keeps_results(self, tmp_path):
        """os._exit in a worker breaks the whole pool; the supervisor
        respawns it and the batch still completes in full."""
        with self._executor(max_attempts=3) as executor:
            results = executor.run_jobs(
                scripted_batch(tmp_path, count=6, exit_times=1)
            )
            assert [r.payload["value"] for r in results] == [
                0, 10, 20, 30, 40, 50
            ]
            assert executor.stats.respawns >= 1
            assert executor.stats.requeues >= 1

    def test_exception_retries_to_success(self, tmp_path):
        with self._executor(max_attempts=3) as executor:
            results = executor.run_jobs(scripted_batch(tmp_path, fail_times=2))
            assert results[0].payload == {"name": "job0", "value": 0}
            assert results[0].attempts == 3
            assert executor.stats.retries == 2

    def test_timeout_abandons_attempt_and_retries(self, tmp_path):
        with self._executor(max_attempts=2, timeout_s=0.25) as executor:
            results = executor.run_jobs(
                scripted_batch(tmp_path, count=2, sleep_first_s=2.0)
            )
            assert results[0].payload == {"name": "job0", "value": 0}
            assert results[0].attempts == 2
            assert executor.stats.timeouts >= 1

    def test_poison_job_quarantined_in_pool(self, tmp_path):
        with self._executor(max_attempts=2) as executor:
            results = executor.run_jobs(scripted_batch(tmp_path, fail_times=99))
            assert isinstance(results[0].payload, Quarantined)
            assert [r.payload["value"] for r in results[1:]] == [10, 20, 30]

    def test_strict_mode_in_pool_carries_partial(self, tmp_path):
        with ParallelExecutor(
            1, policy=RetryPolicy(max_attempts=1, quarantine=False)
        ) as executor:
            jobs = scripted_batch(tmp_path)
            jobs[2] = ScriptedJob(
                name="job2", scratch=str(tmp_path), fail_times=99
            )
            with pytest.raises(JobFailedError) as excinfo:
                executor.run_jobs(jobs)
            done = {r.payload["name"] for r in excinfo.value.partial}
            assert {"job0", "job1"} <= done

    def test_degrades_to_inline_when_pool_unrecoverable(self, tmp_path):
        with ParallelExecutor(
            2,
            policy=RetryPolicy(
                max_attempts=3, backoff_s=0.0, max_pool_respawns=0
            ),
        ) as executor:
            results = executor.run_jobs(
                scripted_batch(tmp_path, count=4, exit_times=1)
            )
            assert [r.payload["value"] for r in results] == [0, 10, 20, 30]
            assert executor.stats.degraded >= 1

    def test_chaos_killed_attempt_never_refaults(self, tmp_path):
        """A requeued casualty keeps its consumed attempt number, so a
        kill-on-attempt-1 chaos draw cannot loop forever."""
        chaos = ChaosPolicy(seed=0, kill_rate=1.0)
        with ParallelExecutor(
            2,
            policy=RetryPolicy(max_attempts=3, backoff_s=0.0,
                               max_pool_respawns=10),
            chaos=chaos,
        ) as executor:
            results = executor.run_jobs(
                scripted_batch(tmp_path, count=2)
            )
            assert [r.payload["value"] for r in results] == [0, 10]
            assert all(r.attempts >= 2 for r in results)


class TestExecuteSupervised:
    def test_applies_scheduled_error(self, tmp_path):
        job = ScriptedJob(name="x", scratch=str(tmp_path))
        task = SupervisedTask(
            job=job, attempt=1, chaos=ChaosPolicy(seed=0, error_rate=1.0)
        )
        with pytest.raises(ChaosError):
            execute_supervised(task)

    def test_clean_attempt_matches_execute_job(self, tmp_path):
        job = ScriptedJob(name="x", scratch=str(tmp_path), value=7)
        result = execute_supervised(SupervisedTask(job=job, attempt=3))
        assert result.payload == {"name": "x", "value": 7}
        assert result.attempts == 3


# ---------------------------------------------------------------------------
# Session integration: counters, quarantine list, manifests
# ---------------------------------------------------------------------------


class TestSessionSupervision:
    def test_retry_counters_reach_telemetry(self, tmp_path):
        session = EngineSession(
            executor=SerialExecutor(
                policy=RetryPolicy(max_attempts=3, backoff_s=0.0)
            ),
            cache=ResultCache(),
        )
        session.run_jobs(scripted_batch(tmp_path, fail_times=2))
        assert session.counters()["engine.retries"] == 2
        assert session.counters()["engine.quarantined"] == 0

    def test_quarantine_surfaces_in_session_and_manifest(self, tmp_path):
        session = EngineSession(
            executor=SerialExecutor(
                policy=RetryPolicy(max_attempts=2, backoff_s=0.0)
            ),
            cache=ResultCache(),
        )
        payloads = session.run_jobs(scripted_batch(tmp_path, fail_times=99))
        assert isinstance(payloads[0], Quarantined)
        assert len(session.quarantined) == 1
        assert session.quarantined[0]["error_type"] == "RuntimeError"
        manifest = session.run_manifest()
        assert manifest["jobs"]["quarantined"] == 1
        assert manifest["quarantined"][0]["kind"] == "scripted"
        sources = [j["source"] for j in manifest["batches"][0]["jobs"]]
        assert sources == ["quarantined", "executed", "executed", "executed"]

    def test_quarantined_payload_never_cached(self, tmp_path):
        session = EngineSession(
            executor=SerialExecutor(
                policy=RetryPolicy(max_attempts=1, backoff_s=0.0)
            ),
            cache=ResultCache(),
        )
        jobs = scripted_batch(tmp_path, count=1, fail_times=1)
        first = session.run_jobs(jobs)
        assert isinstance(first[0], Quarantined)
        # Attempt 2 (fresh batch) succeeds: the miss forced a re-run.
        second = session.run_jobs(jobs)
        assert second[0] == {"name": "job0", "value": 0}

    def test_characterize_refuses_partial_sweeps(self, tmp_path, monkeypatch):
        from repro.engine import jobs as jobs_module

        session = EngineSession(
            executor=SerialExecutor(
                policy=RetryPolicy(max_attempts=1, backoff_s=0.0)
            ),
            cache=ResultCache(),
        )
        def sabotaged(self, telemetry):
            raise RuntimeError("sabotaged row")

        monkeypatch.setattr(
            jobs_module.CharacterizationRowJob, "run", sabotaged
        )
        # batch=False pins the scalar row-job path this sabotage targets;
        # the batch-shard analogue lives in tests/test_vector_engine.py.
        with pytest.raises(ReproError, match="quarantine"):
            session.characterize(PAPER_MODEL_TUPLE[0], batch=False)


# ---------------------------------------------------------------------------
# Checkpoint + resume
# ---------------------------------------------------------------------------


def _fuzz_jobs(count=4, seed=3):
    return [
        FuzzJob(
            codename=PAPER_MODEL_TUPLE[0].codename,
            seed=seed,
            case_index=index,
            num_actions=6,
        )
        for index in range(count)
    ]


class TestCampaignCheckpoint:
    def test_record_and_resume_roundtrip(self, tmp_path):
        jobs = _fuzz_jobs()
        first = EngineSession(
            executor=SerialExecutor(),
            cache=ResultCache(),
            checkpoint=CampaignCheckpoint(tmp_path),
        )
        # The "interrupted" run only finishes half the campaign.
        first.run_jobs(jobs[:2])
        assert first.checkpoint.completed_count() == 2

        resumed = EngineSession(
            executor=SerialExecutor(),
            cache=ResultCache(),
            checkpoint=CampaignCheckpoint(tmp_path),
        )
        resumed_payloads = resumed.run_jobs(jobs)
        clean = EngineSession(executor=SerialExecutor(), cache=ResultCache())
        clean_payloads = clean.run_jobs(jobs)
        assert _canonical(resumed_payloads) == _canonical(clean_payloads)
        assert resumed.counters()["engine.resumed"] == 2
        manifest = resumed.run_manifest()
        assert manifest["jobs"]["resumed"] == 2
        assert manifest["jobs"]["executed"] == 2

    def test_torn_entry_recomputes_identically(self, tmp_path):
        jobs = _fuzz_jobs(count=2)
        first = EngineSession(
            executor=SerialExecutor(),
            cache=ResultCache(),
            checkpoint=CampaignCheckpoint(tmp_path),
        )
        clean_payloads = first.run_jobs(jobs)
        # Tear one entry mid-file, as a kill during the write would.
        entry = sorted((tmp_path / "entries").glob("*.pkl"))[0]
        entry.write_bytes(entry.read_bytes()[:20])

        resumed = EngineSession(
            executor=SerialExecutor(),
            cache=ResultCache(),
            checkpoint=CampaignCheckpoint(tmp_path),
        )
        payloads = resumed.run_jobs(jobs)
        assert _canonical(payloads) == _canonical(clean_payloads)
        assert resumed.counters()["engine.resumed"] == 1
        assert list((tmp_path / "entries").glob("*.corrupt"))

    def test_quarantine_records_survive_reopen(self, tmp_path):
        checkpoint = CampaignCheckpoint(tmp_path)
        checkpoint.record_quarantine(
            {"fingerprint": "f" * 64, "kind": "scripted", "attempts": 3}
        )
        reopened = CampaignCheckpoint(tmp_path)
        assert reopened.quarantined[0]["kind"] == "scripted"
        assert reopened.describe()["quarantined"] == 1

    def test_rejects_foreign_manifest(self, tmp_path):
        (tmp_path / "checkpoint.json").write_text(
            json.dumps({"kind": "something-else"})
        )
        with pytest.raises(ObserveError):
            CampaignCheckpoint(tmp_path)

    def test_sigkilled_campaign_resumes_losslessly(self, tmp_path):
        """End-to-end: SIGKILL a checkpointing campaign mid-run, resume,
        and converge to the uninterrupted run's exact payloads."""
        import signal
        import subprocess
        import sys
        import textwrap

        script = textwrap.dedent(
            """
            import os, sys
            sys.path.insert(0, {src!r})
            from repro.engine import (
                CampaignCheckpoint, EngineSession, FuzzJob, ResultCache,
                SerialExecutor,
            )
            jobs = [
                FuzzJob(codename={codename!r}, seed=3, case_index=i,
                        num_actions=6)
                for i in range(6)
            ]
            session = EngineSession(
                executor=SerialExecutor(), cache=ResultCache(),
                checkpoint=CampaignCheckpoint({ckpt!r}),
            )
            for job in jobs:
                session.run_jobs([job])
                print("done", flush=True)
        """
        ).format(
            src=str(Path(__file__).resolve().parent.parent / "src"),
            codename=PAPER_MODEL_TUPLE[0].codename,
            ckpt=str(tmp_path / "ckpt"),
        )
        process = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            text=True,
        )
        # Kill the campaign the instant the third job lands.
        for _ in range(3):
            assert process.stdout.readline().strip() == "done"
        process.send_signal(signal.SIGKILL)
        process.wait()

        checkpoint = CampaignCheckpoint(tmp_path / "ckpt")
        survived = checkpoint.completed_count()
        assert survived >= 3

        jobs = _fuzz_jobs(count=6)
        resumed = EngineSession(
            executor=SerialExecutor(),
            cache=ResultCache(),
            checkpoint=checkpoint,
        )
        payloads = resumed.run_jobs(jobs)
        clean = EngineSession(executor=SerialExecutor(), cache=ResultCache())
        assert _canonical(payloads) == _canonical(clean.run_jobs(jobs))
        assert resumed.counters()["engine.resumed"] == survived


# ---------------------------------------------------------------------------
# Chaos convergence: the double-run contract
# ---------------------------------------------------------------------------


class TestChaosConvergence:
    @pytest.mark.parametrize(
        "model", PAPER_MODEL_TUPLE, ids=lambda m: m.codename
    )
    def test_chaos_campaign_matches_clean_run(self, model):
        jobs = [
            FuzzJob(codename=model.codename, seed=3, case_index=i,
                    num_actions=6)
            for i in range(4)
        ]
        clean = EngineSession(executor=SerialExecutor(), cache=ResultCache())
        clean_payloads = clean.run_jobs(jobs)

        chaos = ChaosPolicy(seed=1, kill_rate=0.25, error_rate=0.25)
        executor = ParallelExecutor(
            2,
            policy=RetryPolicy(
                max_attempts=3, backoff_s=0.0, max_pool_respawns=10
            ),
            chaos=chaos,
        )
        with EngineSession(
            executor=executor, cache=ResultCache(), chaos=chaos
        ) as chaotic:
            chaos_payloads = chaotic.run_jobs(jobs)
        assert _canonical(chaos_payloads) == _canonical(clean_payloads)

    def test_torn_cache_writes_recompute_identically(self, tmp_path):
        jobs = _fuzz_jobs(count=3)
        chaos = ChaosPolicy(seed=1, torn_write_rate=1.0)
        session = EngineSession(
            executor=SerialExecutor(),
            cache=ResultCache(directory=tmp_path),
            chaos=chaos,
        )
        first = session.run_jobs(jobs)
        # Every disk entry was torn; the second pass must detect each
        # corruption, quarantine the file and recompute the payload.
        second = session.run_jobs(jobs)
        assert _canonical(first) == _canonical(second)
        assert session.cache.stats.corrupt == len(jobs)
        assert len(list(tmp_path.glob("*.pkl.corrupt"))) == len(jobs)

    def test_double_chaos_runs_are_byte_identical(self, tmp_path):
        jobs = _fuzz_jobs(count=4)
        outputs = []
        for run in range(2):
            chaos = ChaosPolicy(
                seed=1, error_rate=0.5, torn_write_rate=0.5
            )
            executor = ParallelExecutor(
                2,
                policy=RetryPolicy(max_attempts=3, backoff_s=0.0),
                chaos=chaos,
            )
            with EngineSession(
                executor=executor,
                cache=ResultCache(directory=tmp_path / f"run{run}"),
                chaos=chaos,
            ) as session:
                payloads = session.run_jobs(jobs) + session.run_jobs(jobs)
            outputs.append(_canonical(payloads))
        assert outputs[0] == outputs[1]
