"""Benchmark aggregate statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.bench.runner import BenchmarkRow, OverheadReport
from repro.bench.stats import (
    bootstrap_mean_ci,
    geometric_mean,
    summarize_overhead,
)


def make_report(base_slowdowns) -> OverheadReport:
    rows = []
    for i, slowdown in enumerate(base_slowdowns):
        without = 100.0
        rows.append(
            BenchmarkRow(
                name=f"bench-{i}",
                base_without=without,
                base_with=without * (1 - slowdown),
                peak_without=without,
                peak_with=without * (1 - slowdown * 1.5),
            )
        )
    return OverheadReport(rows=rows)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_equals_arithmetic_for_constant(self):
        assert geometric_mean([0.3, 0.3, 0.3]) == pytest.approx(0.3)

    def test_below_arithmetic_for_spread(self):
        values = [0.1, 0.9]
        assert geometric_mean(values) < np.mean(values)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([])
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])


class TestBootstrap:
    def test_interval_contains_sample_mean(self):
        rng = np.random.default_rng(1)
        values = rng.normal(0.003, 0.001, size=30).tolist()
        low, high = bootstrap_mean_ci(values, seed=2)
        assert low <= np.mean(values) <= high

    def test_interval_narrows_with_sample_size(self):
        rng = np.random.default_rng(1)
        small = rng.normal(0.003, 0.001, size=8).tolist()
        large = rng.normal(0.003, 0.001, size=200).tolist()
        low_s, high_s = bootstrap_mean_ci(small, seed=2)
        low_l, high_l = bootstrap_mean_ci(large, seed=2)
        assert high_l - low_l < high_s - low_s

    def test_deterministic_given_seed(self):
        values = [0.001, 0.004, 0.002, 0.003]
        assert bootstrap_mean_ci(values, seed=7) == bootstrap_mean_ci(values, seed=7)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bootstrap_mean_ci([])
        with pytest.raises(ConfigurationError):
            bootstrap_mean_ci([0.1], confidence=1.5)


class TestSummarizeOverhead:
    def test_statistics_consistent(self):
        report = make_report([-0.002, -0.003, -0.004, -0.005])
        stats = summarize_overhead(report)
        assert stats.mean_base == pytest.approx(0.0035)
        assert stats.geomean_base <= stats.mean_base
        assert stats.ci_base_low <= stats.mean_base <= stats.ci_base_high
        assert stats.mean_peak > stats.mean_base

    def test_summary_renders(self):
        report = make_report([-0.002, -0.004])
        text = summarize_overhead(report).summary()
        assert "95% CI" in text
        assert "geomean" in text

    def test_empty_report_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize_overhead(OverheadReport())
