"""The kernel-profiler hook and the before/after profile shapes.

The scalar oracle charges a whole row to one opaque
``core.characterization;run_row.scalar`` bucket; the batch path breaks
the same work into ``vector;vector.delay`` / ``vector;vector.safety`` /
``vector;vector.fault_draw``.  That contrast is the "before/after"
story the committed profile fixture captures
(``benchmarks/profiles/BEFORE_characterization_scalar.collapsed.txt``).
"""

from __future__ import annotations

from repro.core.characterization import CharacterizationConfig, CharacterizationFramework
from repro.cpu import COMET_LAKE
from repro.observe.profiler import SimProfiler
from repro.vector.profile import (
    attach_kernel_profiler,
    detach_kernel_profiler,
    kernel_profiler,
    profiled_kernels,
    record_kernel_site,
)

COARSE = CharacterizationConfig(
    offset_start_mv=-10, offset_stop_mv=-250, offset_step_mv=10
)


def _buckets(profiler):
    return {(b.component, b.site): b for b in profiler.buckets()}


class TestHookLifecycle:
    def test_detached_by_default_and_recording_is_noop(self):
        assert kernel_profiler() is None
        record_kernel_site("vector.delay", events=3)  # must not raise

    def test_attach_detach_roundtrip(self):
        profiler = SimProfiler()
        attach_kernel_profiler(profiler)
        try:
            assert kernel_profiler() is profiler
        finally:
            detach_kernel_profiler()
        assert kernel_profiler() is None

    def test_profiled_kernels_restores_previous_hook(self):
        outer = SimProfiler()
        inner = SimProfiler()
        attach_kernel_profiler(outer)
        try:
            with profiled_kernels(inner) as active:
                assert active is inner
                assert kernel_profiler() is inner
            assert kernel_profiler() is outer
        finally:
            detach_kernel_profiler()
        with profiled_kernels(inner):
            pass
        assert kernel_profiler() is None

    def test_record_site_accumulates(self):
        profiler = SimProfiler()
        with profiled_kernels(profiler):
            record_kernel_site("vector.delay", events=25, wall_s=0.25)
            record_kernel_site("vector.delay", events=5, wall_s=0.05)
        bucket = _buckets(profiler)[("vector", "vector.delay")]
        assert bucket.events == 30
        assert abs(bucket.wall_time_s - 0.3) < 1e-12


class TestBeforeAfterProfiles:
    def test_scalar_row_is_one_opaque_bucket(self):
        profiler = SimProfiler()
        framework = CharacterizationFramework(COMET_LAKE, config=COARSE, seed=2024)
        with profiled_kernels(profiler):
            cells = framework.run_row(COMET_LAKE.frequency_table.base_ghz)
        buckets = _buckets(profiler)
        assert set(buckets) == {("core.characterization", "run_row.scalar")}
        assert buckets[("core.characterization", "run_row.scalar")].events == len(cells)

    def test_batch_row_exposes_the_three_vector_sites(self):
        profiler = SimProfiler()
        framework = CharacterizationFramework(COMET_LAKE, config=COARSE, seed=2024)
        with profiled_kernels(profiler):
            framework.run_row_batch(COMET_LAKE.frequency_table.base_ghz)
        buckets = _buckets(profiler)
        assert set(buckets) == {
            ("vector", "vector.delay"),
            ("vector", "vector.safety"),
            ("vector", "vector.fault_draw"),
        }
        offsets = len(COARSE.offsets_mv())
        assert buckets[("vector", "vector.delay")].events == offsets
        assert buckets[("vector", "vector.safety")].events == offsets

    def test_collapsed_profile_round_trip(self):
        """The collapsed-stack export carries the site labels verbatim —
        the format the committed before-profile fixture is stored in."""
        profiler = SimProfiler()
        framework = CharacterizationFramework(COMET_LAKE, config=COARSE, seed=2024)
        with profiled_kernels(profiler):
            framework.run_row_batch(COMET_LAKE.frequency_table.base_ghz)
        collapsed = profiler.to_collapsed()
        assert collapsed.endswith("\n")
        stacks = dict(
            line.rsplit(" ", 1) for line in collapsed.strip().splitlines()
        )
        assert "vector;vector.delay" in stacks
        assert "vector;vector.safety" in stacks
        assert "vector;vector.fault_draw" in stacks

    def test_event_totals_are_deterministic(self):
        """Event counts (unlike wall-clock) are replay-stable: two runs of
        the same row charge identical totals."""
        totals = []
        for _ in range(2):
            profiler = SimProfiler()
            framework = CharacterizationFramework(COMET_LAKE, config=COARSE, seed=2024)
            with profiled_kernels(profiler):
                framework.run_row_batch(COMET_LAKE.frequency_table.base_ghz)
            totals.append(
                {key: bucket.events for key, bucket in _buckets(profiler).items()}
            )
        assert totals[0] == totals[1]
