"""SGX substrate: enclaves, attestation, stepping."""

from __future__ import annotations

import pytest

from repro.errors import AttackError, AttestationError, EnclaveError
from repro.cpu import COMET_LAKE
from repro.core import CharacterizationFramework, PollingCountermeasure
from repro.sgx.attestation import (
    INTEL_SA_00289_POLICY,
    PLUG_YOUR_VOLT_POLICY,
    AttestationService,
    VerifierPolicy,
    verify_report,
)
from repro.sgx.enclave import EnclaveHost
from repro.sgx.stepping import SingleStepper, ZeroStepper
from repro.testbench import Machine


@pytest.fixture
def machine() -> Machine:
    return Machine.build(COMET_LAKE, seed=31)


@pytest.fixture
def host(machine) -> EnclaveHost:
    return EnclaveHost(machine)


class TestEnclave:
    def test_ecall_runs_payload_on_alu(self, host):
        enclave = host.create_enclave("calc")
        result = enclave.ecall(lambda alu, x: alu.imul64(x, 3), 7)
        assert result == 21
        assert enclave.stats.ecalls == 1

    def test_measurement_depends_on_identity(self, host):
        a = host.create_enclave("a")
        b = host.create_enclave("b")
        assert a.measurement != b.measurement
        assert len(a.measurement) == 64

    def test_destroyed_enclave_rejects_ecalls(self, host):
        enclave = host.create_enclave("gone")
        enclave.destroy()
        with pytest.raises(EnclaveError):
            enclave.ecall(lambda alu: None)
        assert not enclave.alive

    def test_active_enclaves_listing(self, host):
        a = host.create_enclave("a")
        host.create_enclave("b")
        a.destroy()
        assert [e.name for e in host.active_enclaves()] == ["b"]
        assert host.find("b") is not None
        assert host.find("a") is None

    def test_invalid_core_rejected(self, host):
        from repro.errors import CoreIndexError

        with pytest.raises(CoreIndexError):
            host.create_enclave("x", core_index=12)

    def test_enclave_arithmetic_faults_under_undervolt(
        self, machine, host, comet_characterization
    ):
        # The enclave is isolated, but its ALU shares the core's voltage.
        enclave = host.create_enclave("victim")
        machine.set_frequency(2.0)
        boundary = comet_characterization.unsafe_states.boundary_mv(2.0)
        machine.write_voltage_offset(int(boundary) - 25)  # deep in the fault band
        machine.advance(2 * COMET_LAKE.regulator_latency_s)

        def payload(alu):
            # Big operands: each bigmul issues 64 faultable limb products.
            a = (1 << 512) - 987
            b = (1 << 512) - 1234
            faults = 0
            for _ in range(2500):
                if alu.bigmul(a, b) != a * b:
                    faults += 1
            return faults

        assert enclave.ecall(payload) > 0


class TestAttestation:
    def test_report_integrity(self, machine, host):
        service = AttestationService(machine)
        report = service.generate(host.create_enclave("app"), nonce=5)
        assert report.verify_integrity()

    def test_tampered_report_fails_integrity(self, machine, host):
        import dataclasses

        service = AttestationService(machine)
        report = service.generate(host.create_enclave("app"))
        forged = dataclasses.replace(report, countermeasure_loaded=True)
        assert not forged.verify_integrity()
        with pytest.raises(AttestationError):
            verify_report(forged, PLUG_YOUR_VOLT_POLICY)

    def test_paper_policy_requires_module(self, machine, host, comet_characterization):
        service = AttestationService(machine)
        enclave = host.create_enclave("app")
        with pytest.raises(AttestationError):
            verify_report(service.generate(enclave), PLUG_YOUR_VOLT_POLICY)
        module = PollingCountermeasure(machine, comet_characterization.unsafe_states)
        machine.modules.insmod(module)
        verify_report(service.generate(enclave), PLUG_YOUR_VOLT_POLICY)

    def test_unloading_module_caught_at_reattestation(
        self, machine, host, comet_characterization
    ):
        # The paper's answer to "why can't the adversary just rmmod?"
        service = AttestationService(machine)
        enclave = host.create_enclave("app")
        module = PollingCountermeasure(machine, comet_characterization.unsafe_states)
        machine.modules.insmod(module)
        verify_report(service.generate(enclave), PLUG_YOUR_VOLT_POLICY)
        machine.modules.rmmod(module.name)
        with pytest.raises(AttestationError):
            verify_report(service.generate(enclave), PLUG_YOUR_VOLT_POLICY)

    def test_sa00289_policy_requires_ocm_disabled(self, machine, host):
        service = AttestationService(machine)
        enclave = host.create_enclave("app")
        with pytest.raises(AttestationError):
            verify_report(service.generate(enclave), INTEL_SA_00289_POLICY)
        service.set_ocm_disabled(True)
        verify_report(service.generate(enclave), INTEL_SA_00289_POLICY)

    def test_measurement_pinning(self, machine, host):
        service = AttestationService(machine)
        enclave = host.create_enclave("app")
        policy = VerifierPolicy(expected_measurement=enclave.measurement)
        verify_report(service.generate(enclave), policy)
        other = host.create_enclave("evil")
        with pytest.raises(AttestationError):
            verify_report(service.generate(other), policy)

    def test_hyperthreading_policy(self, machine, host):
        service = AttestationService(machine, hyperthreading_enabled=True)
        enclave = host.create_enclave("app")
        policy = VerifierPolicy(require_hyperthreading_disabled=True)
        with pytest.raises(AttestationError):
            verify_report(service.generate(enclave), policy)


class TestStepping:
    def test_single_stepper_fires_per_slot(self, host):
        enclave = host.create_enclave("stepped")
        before, after = [], []
        stepper = SingleStepper(
            enclave, before_slot=before.append, after_slot=after.append
        )
        executed = []
        trace = stepper.run([lambda: executed.append(i) for i in range(5)])
        assert trace.slots == 5
        assert trace.aex_count == 5
        assert before == after == [0, 1, 2, 3, 4]
        assert enclave.stats.aexits == 5

    def test_empty_slots_rejected(self, host):
        stepper = SingleStepper(host.create_enclave("s"))
        with pytest.raises(AttackError):
            stepper.run([])

    def test_zero_stepper_replays_until_success(self, host):
        enclave = host.create_enclave("z")
        attempts = []

        def instruction():
            attempts.append(1)
            return len(attempts)

        zero = ZeroStepper(enclave)
        result, count = zero.replay_until(instruction, lambda r: r == 7)
        assert result == 7
        assert count == 7

    def test_zero_stepper_exhaustion(self, host):
        zero = ZeroStepper(host.create_enclave("z"), max_replays=10)
        result, count = zero.replay_until(lambda: 0, lambda r: False)
        assert result is None
        assert count == 10

    def test_step_hooks_fire_on_aex(self, host):
        enclave = host.create_enclave("hooked")
        fired = []
        enclave.add_step_hook(lambda: fired.append(1))
        enclave.fire_aex()
        enclave.remove_step_hook(enclave._step_hooks[0])
        enclave.fire_aex()
        assert fired == [1]
