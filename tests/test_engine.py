"""The campaign engine: seed streams, job specs, cache, executors, session.

The engine's central contract is *executor interchangeability*: because
every job draws its randomness from a named seed stream keyed by its own
identity, sharding work across a process pool must reproduce the serial
output byte for byte.  The tests here pin that contract for all three
paper CPU models, plus the cache semantics (identity on hit, bounded
LRU, optional disk layer) and the per-worker telemetry merge.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.core.characterization import CharacterizationConfig
from repro.cpu import COMET_LAKE, KABY_LAKE_R, PAPER_MODEL_TUPLE, SKY_LAKE
from repro.engine import (
    ATTACK_KINDS,
    AttackCampaignJob,
    CharacterizationJob,
    CharacterizationRowJob,
    EngineSession,
    OverheadJob,
    ParallelExecutor,
    ResultCache,
    SeedStream,
    SerialExecutor,
    execute_job,
    executor_from_env,
    get_session,
    make_executor,
    seed_stream,
)
from repro.errors import ConfigurationError


COARSE = CharacterizationConfig(
    offset_start_mv=-10, offset_stop_mv=-250, offset_step_mv=10
)


class TestSeedStreams:
    def test_same_path_same_seed(self):
        assert seed_stream(5, "a", "b").integer() == seed_stream(5, "a", "b").integer()

    def test_different_path_different_seed(self):
        values = {
            seed_stream(5).integer(),
            seed_stream(5, "a").integer(),
            seed_stream(5, "b").integer(),
            seed_stream(5, "a", "b").integer(),
            seed_stream(7, "a").integer(),
        }
        assert len(values) == 5

    def test_child_equals_flat_path(self):
        assert (
            seed_stream(5, "x").child("y", "z").integer()
            == seed_stream(5, "x", "y", "z").integer()
        )

    def test_root_stream_matches_plain_seedsequence(self):
        # The empty path must behave exactly like SeedSequence(root), so
        # code that used np.random.default_rng(seed) keeps its stream.
        ours = seed_stream(5).sequence.generate_state(4)
        plain = np.random.SeedSequence(5).generate_state(4)
        assert list(ours) == list(plain)

    def test_rng_reproducible(self):
        a = seed_stream(5, "noise").rng().normal(size=8)
        b = seed_stream(5, "noise").rng().normal(size=8)
        assert list(a) == list(b)

    def test_integer_fits_default_width(self):
        for name in ("a", "b", "c", "d"):
            value = seed_stream(5, name).integer()
            assert 0 <= value < 2**31

    def test_stream_is_value_like(self):
        assert seed_stream(5, "a") == seed_stream(5, "a")
        assert hash(SeedStream(5, ("a",))) == hash(SeedStream(5, ("a",)))


class TestJobSpecs:
    def test_jobs_hashable_and_equal_by_value(self):
        a = CharacterizationJob(codename="Comet Lake", config=COARSE, seed=5)
        b = CharacterizationJob(codename="Comet Lake", config=COARSE, seed=5)
        assert a == b
        assert hash(a) == hash(b)
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_covers_every_field(self):
        base = CharacterizationJob(codename="Comet Lake", config=COARSE, seed=5)
        other_seed = CharacterizationJob(codename="Comet Lake", config=COARSE, seed=6)
        other_model = CharacterizationJob(codename="Sky Lake", config=COARSE, seed=5)
        other_config = CharacterizationJob(
            codename="Comet Lake", config=CharacterizationConfig(), seed=5
        )
        fingerprints = {
            j.fingerprint() for j in (base, other_seed, other_model, other_config)
        }
        assert len(fingerprints) == 4

    def test_fingerprints_differ_across_job_kinds(self):
        row = CharacterizationRowJob(
            codename="Comet Lake", frequency_ghz=2.0, config=COARSE, seed=5
        )
        sweep = CharacterizationJob(codename="Comet Lake", config=COARSE, seed=5)
        assert row.fingerprint() != sweep.fingerprint()

    def test_unknown_attack_rejected(self):
        with pytest.raises(ConfigurationError):
            AttackCampaignJob(
                codename="Comet Lake", attack="rowhammer", protected=False, seed=1
            )
        assert "rowhammer" not in ATTACK_KINDS

    def test_protected_job_requires_unsafe_set(self):
        with pytest.raises(ConfigurationError):
            AttackCampaignJob(
                codename="Comet Lake", attack="imul", protected=True, seed=1
            )

    def test_row_jobs_cover_every_frequency(self):
        sweep = CharacterizationJob(codename="Sky Lake", config=COARSE, seed=5)
        rows = sweep.row_jobs()
        assert [r.frequency_ghz for r in rows] == COARSE.frequency_list(SKY_LAKE)
        assert all(r.seed == 5 and r.codename == "Sky Lake" for r in rows)

    def test_execute_job_reports_counters(self):
        row = CharacterizationRowJob(
            codename="Comet Lake", frequency_ghz=2.0, config=COARSE, seed=5
        )
        result = execute_job(row)
        assert result.fingerprint == row.fingerprint()
        assert result.payload  # one CellResult per offset
        assert result.counters.get("faults.windows", 0) > 0


class TestResultCache:
    def test_memory_hit_preserves_identity(self):
        cache = ResultCache()
        payload = {"answer": 42}
        cache.put("f1", payload)
        assert cache.get("f1") is payload
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_miss_returns_default(self):
        cache = ResultCache()
        sentinel = object()
        assert cache.get("absent", default=sentinel) is sentinel
        assert cache.stats.misses == 1

    def test_lru_eviction_bound(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes the LRU victim
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_clear_drops_everything(self):
        cache = ResultCache()
        cache.put("a", 1)
        cache.clear()
        assert "a" not in cache
        assert len(cache) == 0

    def test_disk_layer_survives_across_instances(self, tmp_path):
        first = ResultCache(directory=tmp_path)
        first.put("deadbeef", {"rows": [1, 2, 3]})
        second = ResultCache(directory=tmp_path)
        assert second.get("deadbeef") == {"rows": [1, 2, 3]}
        assert second.stats.disk_hits == 1

    def test_torn_disk_write_is_a_miss(self, tmp_path):
        (tmp_path / "cafe.pkl").write_bytes(b"\x80\x04 not a pickle")
        cache = ResultCache(directory=tmp_path)
        assert cache.get("cafe", default="fallback") == "fallback"

    def test_contains_and_get_agree_on_torn_entry(self, tmp_path):
        """Regression: ``in`` used to test bare file existence, so a torn
        entry was reported present and then missed by ``get()``."""
        writer = ResultCache(directory=tmp_path)
        writer.put("feed", {"rows": [1]})
        entry = tmp_path / "feed.pkl"
        entry.write_bytes(entry.read_bytes()[:10])
        reader = ResultCache(directory=tmp_path)
        assert "feed" not in reader
        assert reader.get("feed", default="fallback") == "fallback"

    def test_torn_entry_quarantined_as_corrupt_file(self, tmp_path):
        writer = ResultCache(directory=tmp_path)
        writer.put("feed", {"rows": [1]})
        entry = tmp_path / "feed.pkl"
        entry.write_bytes(entry.read_bytes()[:10])
        reader = ResultCache(directory=tmp_path)
        reader.get("feed")
        assert not entry.exists()
        assert (tmp_path / "feed.pkl.corrupt").exists()
        assert reader.stats.corrupt == 1
        # Quarantine is terminal: the entry never flaps back.
        assert reader.get("feed", default="gone") == "gone"

    def test_flipped_payload_byte_fails_integrity(self, tmp_path):
        writer = ResultCache(directory=tmp_path)
        writer.put("feed", {"rows": [1, 2, 3]})
        entry = tmp_path / "feed.pkl"
        raw = bytearray(entry.read_bytes())
        raw[-1] ^= 0xFF
        entry.write_bytes(bytes(raw))
        reader = ResultCache(directory=tmp_path)
        assert reader.get("feed", default="fallback") == "fallback"
        assert reader.stats.corrupt == 1

    def test_disk_bound_evicts_oldest(self, tmp_path):
        cache = ResultCache(directory=tmp_path, max_disk_entries=2)
        for index, name in enumerate(("a", "b", "c")):
            cache.put(name, index)
            os.utime(
                tmp_path / f"{name}.pkl", (1_000_000 + index, 1_000_000 + index)
            )
        cache.put("d", 3)
        survivors = sorted(p.stem for p in tmp_path.glob("*.pkl"))
        assert len(survivors) == 2 and "d" in survivors
        assert cache.stats.disk_evictions == 2

    def test_max_disk_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE_MAX_DISK", "7")
        assert ResultCache.from_env().max_disk_entries == 7
        monkeypatch.setenv("REPRO_CACHE_MAX_DISK", "lots")
        with pytest.raises(ConfigurationError):
            ResultCache.from_env()

    def test_stats_dict_carries_integrity_fields(self):
        stats = ResultCache().stats.as_dict()
        assert "corrupt" in stats and "disk_evictions" in stats

    def test_clear_also_removes_disk_entries(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("a", 1)
        cache.clear()
        assert list(tmp_path.glob("*.pkl")) == []

    def test_clear_also_removes_quarantined_entries(self, tmp_path):
        ResultCache(directory=tmp_path).put("a", 1)
        entry = tmp_path / "a.pkl"
        entry.write_bytes(entry.read_bytes()[:10])
        cache = ResultCache(directory=tmp_path)
        assert "a" not in cache  # quarantines the torn file...
        assert (tmp_path / "a.pkl.corrupt").exists()
        cache.clear()
        assert list(tmp_path.glob("*.pkl.corrupt")) == []  # ...then removes it

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ConfigurationError):
            ResultCache(max_entries=0)
        with pytest.raises(ConfigurationError):
            ResultCache(max_disk_entries=0)


class TestExecutorSelection:
    def test_make_executor_kinds(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        parallel = make_executor("process", workers=3)
        assert isinstance(parallel, ParallelExecutor)
        assert parallel.workers == 3
        with pytest.raises(ConfigurationError):
            make_executor("threads")

    def test_workers_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(workers=0)

    def test_env_selection(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert isinstance(executor_from_env(), SerialExecutor)
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        executor = executor_from_env()
        assert isinstance(executor, ParallelExecutor)
        assert executor.workers == 2

    def test_env_bad_workers_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ConfigurationError):
            executor_from_env()


@pytest.fixture(scope="module")
def pool_session():
    """One shared two-worker process-pool session for the parity tests."""
    session = EngineSession(executor=ParallelExecutor(2), cache=ResultCache())
    yield session
    session.close()


class TestSerialParallelParity:
    @pytest.mark.parametrize(
        "model", PAPER_MODEL_TUPLE, ids=lambda m: m.codename
    )
    def test_characterization_byte_identical(self, model, pool_session):
        serial = EngineSession(executor=SerialExecutor(), cache=ResultCache())
        a = serial.characterize(model, seed=5, config=COARSE)
        b = pool_session.characterize(model, seed=5, config=COARSE)
        assert pickle.dumps(a) == pickle.dumps(b)

    def test_campaign_outcomes_byte_identical(self, pool_session):
        jobs = [
            AttackCampaignJob(
                codename=COMET_LAKE.codename,
                attack=attack,
                protected=False,
                seed=11,
                frequency_ghz=COMET_LAKE.frequency_table.base_ghz,
            )
            for attack in ("imul", "plundervolt", "v0ltpwn")
        ]
        serial = EngineSession(executor=SerialExecutor(), cache=ResultCache())
        a = serial.run_jobs(jobs, cache=False)
        b = pool_session.run_jobs(jobs, cache=False)
        # Compare per item: whole-list pickles differ by memoized-string
        # references, not by content.
        for left, right in zip(a, b):
            assert pickle.dumps(left) == pickle.dumps(right)

    def test_worker_counters_match_serial(self, pool_session):
        jobs = CharacterizationJob(
            codename=KABY_LAKE_R.codename, config=COARSE, seed=5
        ).row_jobs()
        serial = EngineSession(executor=SerialExecutor(), cache=ResultCache())
        serial.run_jobs(jobs, cache=False)
        parallel = EngineSession(
            executor=pool_session.executor, cache=ResultCache()
        )
        parallel.run_jobs(jobs, cache=False)
        serial_counters = serial.counters()
        parallel_counters = parallel.counters()
        assert serial_counters["faults.windows"] > 0
        for name in ("faults.windows", "faults.injected", "engine.jobs_executed"):
            assert serial_counters.get(name) == parallel_counters.get(name), name


class TestEngineSession:
    def test_characterize_cached_identity(self):
        session = EngineSession(executor=SerialExecutor(), cache=ResultCache())
        a = session.characterize(SKY_LAKE, seed=5, config=COARSE)
        b = session.characterize(SKY_LAKE, seed=5, config=COARSE)
        assert a is b
        assert session.cache.stats.hits == 1

    def test_cache_invalidation_on_seed_change(self):
        session = EngineSession(executor=SerialExecutor(), cache=ResultCache())
        a = session.characterize(SKY_LAKE, seed=5, config=COARSE)
        b = session.characterize(SKY_LAKE, seed=6, config=COARSE)
        assert a is not b
        assert session.cache.stats.misses == 2

    def test_clear_cache_forces_recompute(self):
        session = EngineSession(executor=SerialExecutor(), cache=ResultCache())
        a = session.characterize(SKY_LAKE, seed=5, config=COARSE)
        session.clear_cache()
        b = session.characterize(SKY_LAKE, seed=5, config=COARSE)
        assert a is not b
        assert pickle.dumps(a) == pickle.dumps(b)

    def test_run_jobs_preserves_input_order_with_mixed_hits(self):
        session = EngineSession(executor=SerialExecutor(), cache=ResultCache())
        jobs = [
            CharacterizationRowJob(
                codename=COMET_LAKE.codename, frequency_ghz=f, config=COARSE, seed=5
            )
            for f in COARSE.frequency_list(COMET_LAKE)[:3]
        ]
        first = session.run_jobs(jobs)
        # Warm cache for job 0 and 2 only; job 1 recomputes.
        session.cache._memory.pop(jobs[1].fingerprint())
        second = session.run_jobs(jobs)
        assert second[0] is first[0] and second[2] is first[2]
        assert pickle.dumps(second[1]) == pickle.dumps(first[1])

    def test_describe_is_json_safe(self):
        import json

        session = EngineSession(executor=SerialExecutor(), cache=ResultCache())
        payload = json.dumps(session.describe())
        assert "serial" in payload

    def test_overhead_job_through_session(self, comet_characterization):
        import json

        session = EngineSession(executor=SerialExecutor(), cache=ResultCache())
        job = OverheadJob(
            codename=COMET_LAKE.codename,
            seed=3,
            unsafe_json=json.dumps(
                comet_characterization.unsafe_states.to_dict(), sort_keys=True
            ),
        )
        report = session.run_job(job)
        assert len(report.rows) == 23
        assert 0.0 < report.mean_base_overhead < 0.02
        # Second submission is a cache hit: same object.
        assert session.run_job(job) is report

    def test_default_session_is_shared(self):
        assert get_session() is get_session()


class TestExperimentIntegration:
    def test_characterization_identity_via_api(self):
        from repro.experiments import characterization

        assert characterization(COMET_LAKE) is characterization(COMET_LAKE)

    def test_prevention_jobs_are_self_contained(self):
        from repro.experiments import prevention_jobs

        jobs = prevention_jobs(include_aes=True)
        # 3 CPUs x 2 defense states x 3 attacks, +2 AES cells on Comet Lake.
        assert len(jobs) == 20
        for job in jobs:
            if job.protected:
                assert job.unsafe_json is not None
            # Every job must survive the process-pool boundary.
            assert pickle.loads(pickle.dumps(job)) == job

    def test_environment_defaults_are_serial(self):
        if os.environ.get("REPRO_EXECUTOR", "serial") == "serial":
            assert isinstance(get_session().executor, (SerialExecutor, ParallelExecutor))


class TestEnvironmentFingerprint:
    """Result-affecting REPRO_* knobs are part of every job identity."""

    def _job(self):
        return CharacterizationJob(codename="Comet Lake", config=COARSE, seed=5)

    def test_repro_verify_changes_fingerprint(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        baseline = self._job().fingerprint()
        monkeypatch.setenv("REPRO_VERIFY", "1")
        assert self._job().fingerprint() != baseline

    def test_unset_and_empty_are_one_state(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        baseline = self._job().fingerprint()
        monkeypatch.setenv("REPRO_VERIFY", "")
        assert self._job().fingerprint() == baseline

    def test_changed_knob_misses_the_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        cache = ResultCache(max_entries=8)
        job = self._job()
        cache.put(job.fingerprint(), "payload")
        assert cache.get(job.fingerprint()) == "payload"
        monkeypatch.setenv("REPRO_VERIFY", "1")
        assert cache.get(self._job().fingerprint()) is None

    def test_executor_knobs_deliberately_excluded(self, monkeypatch):
        # The parity contract says the executor cannot change results, so
        # REPRO_EXECUTOR/REPRO_WORKERS must not fragment the cache.
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        baseline = self._job().fingerprint()
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert self._job().fingerprint() == baseline

    def test_identity_carries_env_section(self):
        from repro.engine import RESULT_AFFECTING_ENV, environment_fingerprint

        identity = self._job().identity()
        assert identity["env"] == environment_fingerprint()
        assert set(identity["env"]) == set(RESULT_AFFECTING_ENV)


class TestFuzzJobs:
    def _job(self, case_index: int = 0):
        from repro.engine import FuzzJob

        return FuzzJob(codename="Sky Lake", seed=0, case_index=case_index)

    def test_fingerprint_covers_case_index(self):
        assert self._job(0).fingerprint() != self._job(1).fingerprint()

    def test_schedule_regenerates_identically(self):
        assert self._job().schedule() == self._job().schedule()

    def test_execute_job_reports_counters(self):
        result = execute_job(self._job())
        assert result.payload["violation"] is None
        assert result.counters, "worker reported no telemetry increments"
        assert all(value > 0 for value in result.counters.values())

    def test_picklable_for_process_pool(self):
        job = self._job()
        assert pickle.loads(pickle.dumps(job)) == job
