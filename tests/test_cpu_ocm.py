"""Overclocking-mailbox codec: Table 1 bit-for-bit."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidPlaneError, InvalidVoltageOffsetError, OCMProtocolError
from repro.cpu import ocm


class TestUnitConversion:
    def test_minus_100mv(self):
        # -100 mV -> -102 units (truncation per Algo 1 line 2).
        assert ocm.mv_to_units(-100) == -102

    def test_truncation_matches_algo1(self):
        # int() truncation toward zero, as C integer math in the paper.
        assert ocm.mv_to_units(-1) == -1  # -1.024 truncates to -1
        assert ocm.mv_to_units(1) == 1

    def test_units_back_to_mv(self):
        assert ocm.units_to_mv(-102) == pytest.approx(-99.609375)

    @given(st.integers(min_value=-1024, max_value=1023))
    def test_roundtrip_units(self, units_value):
        mv = ocm.units_to_mv(units_value)
        assert ocm.mv_to_units(mv) == pytest.approx(units_value, abs=1)


class TestOffsetField:
    @given(st.integers(min_value=-1024, max_value=1023))
    def test_encode_decode_roundtrip(self, units_value):
        encoded = ocm.encode_offset_field(units_value)
        assert ocm.decode_offset_field(encoded) == units_value

    def test_field_occupies_bits_21_to_31(self):
        encoded = ocm.encode_offset_field(-1)
        assert encoded == 0xFFE00000  # all 11 bits set for -1

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidVoltageOffsetError):
            ocm.encode_offset_field(1024)
        with pytest.raises(InvalidVoltageOffsetError):
            ocm.encode_offset_field(-1025)

    def test_zero_encodes_to_zero_field(self):
        assert ocm.encode_offset_field(0) == 0


class TestWriteCommand:
    def test_paper_constant_present(self):
        value = ocm.encode_write(-100, plane=0)
        assert value & 0x8000001100000000 == 0x8000001100000000

    def test_bit63_set(self):
        assert ocm.encode_write(-50, plane=0) >> 63 == 1

    def test_plane_lands_in_bits_40_42(self):
        for plane in range(5):
            value = ocm.encode_write(-10, plane=plane)
            assert (value >> 40) & 0x7 == plane

    def test_invalid_plane_rejected(self):
        with pytest.raises(InvalidPlaneError):
            ocm.encode_write(-10, plane=5)

    @given(st.integers(min_value=-300, max_value=0), st.integers(min_value=0, max_value=4))
    def test_decode_recovers_command(self, offset_mv, plane):
        value = ocm.encode_write(offset_mv, plane)
        command = ocm.decode_command(value)
        assert command.is_write
        assert not command.is_read_request
        assert int(command.plane) == plane
        # Millivolts survive up to the 1/1024 V quantisation.
        assert command.offset_mv == pytest.approx(offset_mv, abs=1.0)


class TestReadRequest:
    def test_read_command_byte(self):
        value = ocm.encode_read_request(plane=2)
        command = ocm.decode_command(value)
        assert command.is_read_request
        assert command.plane == ocm.VoltagePlane.CACHE

    def test_invalid_plane_rejected(self):
        with pytest.raises(InvalidPlaneError):
            ocm.encode_read_request(plane=7)


class TestProtocolErrors:
    def test_missing_bit63_rejected(self):
        value = ocm.encode_write(-100, 0) & ~(1 << 63)
        with pytest.raises(OCMProtocolError):
            ocm.decode_command(value)

    def test_unknown_command_byte_rejected(self):
        value = (1 << 63) | (0x42 << 32)
        with pytest.raises(OCMProtocolError):
            ocm.decode_command(value)

    def test_bad_plane_bits_rejected(self):
        value = (1 << 63) | (0x11 << 32) | (6 << 40)
        with pytest.raises(InvalidPlaneError):
            ocm.decode_command(value)


class TestResponse:
    def test_busy_bit_cleared(self):
        response = ocm.encode_response(-102, ocm.VoltagePlane.CORE)
        assert response >> 63 == 0

    def test_offset_readable(self):
        response = ocm.encode_response(-102, ocm.VoltagePlane.CORE)
        assert ocm.decode_offset_field(response) == -102

    def test_plane_preserved(self):
        response = ocm.encode_response(-5, ocm.VoltagePlane.UNCORE)
        assert (response >> 40) & 0x7 == int(ocm.VoltagePlane.UNCORE)


class TestPlaneEnum:
    def test_table1_assignments(self):
        assert ocm.VoltagePlane.CORE == 0
        assert ocm.VoltagePlane.GPU == 1
        assert ocm.VoltagePlane.CACHE == 2
        assert ocm.VoltagePlane.UNCORE == 3
        assert ocm.VoltagePlane.ANALOG_IO == 4


class TestOffsetValidation:
    """Range validation at the signed 11-bit field boundaries.

    The hazard is the Algo 1 literal ``(val & 0xFFF) << 21``: a 12-bit
    input like ``+0x400`` masks to the same field bits as ``-0x400``,
    silently turning a requested overvolt into a 1 V undervolt.  Every
    encode path funnels through ``validate_offset_units`` so those inputs
    fail loudly instead.
    """

    def test_boundaries_match_signed_11_bit(self):
        assert ocm.MIN_OFFSET_UNITS == -0x400
        assert ocm.MAX_OFFSET_UNITS == 0x3FF

    @pytest.mark.parametrize("units", [-0x400, -0x3FF, -1, 0, 1, 0x3FF])
    def test_in_range_accepted_and_roundtrips(self, units):
        assert ocm.validate_offset_units(units) == units
        assert ocm.decode_offset_field(ocm.encode_offset_field(units)) == units

    @pytest.mark.parametrize("units", [0x400, -0x401, 0x7FF, -0x800, 1 << 12])
    def test_out_of_range_rejected(self, units):
        with pytest.raises(InvalidVoltageOffsetError):
            ocm.validate_offset_units(units)
        with pytest.raises(InvalidVoltageOffsetError):
            ocm.encode_offset_field(units)

    def test_error_carries_units_and_mv_context(self):
        with pytest.raises(InvalidVoltageOffsetError) as excinfo:
            ocm.validate_offset_units(0x400)
        message = str(excinfo.value)
        assert "1024" in message and "mV" in message

    def test_plus_0x400_would_alias_minus_0x400(self):
        # The raw hazard itself: without validation the masked field bits
        # of +1024 and -1024 are identical.
        masked_positive = ((0x400 & 0x7FF) << ocm.OFFSET_SHIFT) & ocm.OFFSET_FIELD_MASK
        assert masked_positive == ocm.encode_offset_field(-0x400)

    def test_full_mv_boundary_roundtrip(self):
        # -1000 mV is exactly -1024 units (the deepest encodable offset);
        # one more millivolt down must be rejected, not wrapped.
        assert ocm.mv_to_units(-1000) == -0x400
        encoded = ocm.encode_write(-1000, plane=0)
        assert ocm.decode_command(encoded).offset_units == -0x400
        with pytest.raises(InvalidVoltageOffsetError):
            ocm.encode_write(-1001, plane=0)
        with pytest.raises(InvalidVoltageOffsetError):
            ocm.encode_write(1000, plane=0)  # +1000 mV = +1024 units > max
