"""Unsafe-state set: boundaries, interpolation, maximal safe state."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CharacterizationError, ConfigurationError
from repro.core.unsafe_states import CellResult, UnsafeStateSet


@pytest.fixture
def populated() -> UnsafeStateSet:
    s = UnsafeStateSet(system="test")
    for offset in range(-100, -131, -1):
        s.add_unsafe(2.0, offset)
    for offset in range(-80, -111, -1):
        s.add_unsafe(3.0, offset)
    s.add_crash(3.0, -111)
    return s


class TestConstruction:
    def test_empty_initially(self):
        s = UnsafeStateSet()
        assert s.is_empty
        assert s.frequencies_ghz() == []
        assert s.cell_count() == 0

    def test_extend_from_cells(self):
        s = UnsafeStateSet()
        s.extend(
            [
                CellResult(2.0, -50, fault_count=0, crashed=False),
                CellResult(2.0, -120, fault_count=3, crashed=False),
                CellResult(2.0, -150, fault_count=0, crashed=True),
            ]
        )
        assert s.unsafe_offsets(2.0) == [-120, -150]
        assert s.crash_offsets(2.0) == [-150]

    def test_cell_is_unsafe_property(self):
        assert not CellResult(2.0, -50, 0, False).is_unsafe
        assert CellResult(2.0, -50, 1, False).is_unsafe
        assert CellResult(2.0, -50, 0, True).is_unsafe


class TestBoundary:
    def test_boundary_is_shallowest_unsafe(self, populated):
        assert populated.boundary_mv(2.0) == -100.0
        assert populated.boundary_mv(3.0) == -80.0

    def test_boundary_none_when_uncharacterized(self, populated):
        assert populated.boundary_mv(4.0) is None

    def test_membership_downward_closed(self, populated):
        # Anything at or deeper than the boundary is unsafe, including
        # offsets deeper than the deepest probed cell.
        assert populated.is_unsafe(2.0, -100)
        assert populated.is_unsafe(2.0, -250)
        assert not populated.is_unsafe(2.0, -99)

    def test_interpolation_takes_conservative_neighbour(self, populated):
        # 2.5 GHz was never probed; the shallower of the two neighbours'
        # boundaries (-80 from 3.0 GHz) applies.
        assert populated.effective_boundary_mv(2.5) == -80.0
        assert populated.is_unsafe(2.5, -85)
        assert not populated.is_unsafe(2.5, -75)

    def test_extrapolation_uses_nearest_endpoint(self, populated):
        assert populated.effective_boundary_mv(4.5) == -80.0
        assert populated.effective_boundary_mv(1.0) == -100.0

    def test_empty_set_flags_nothing(self):
        s = UnsafeStateSet()
        assert not s.is_unsafe(2.0, -300)


class TestSafeOffset:
    def test_margin_backs_off_boundary(self, populated):
        assert populated.safe_offset_mv(2.0, margin_mv=5.0) == -95.0

    def test_never_positive(self, populated):
        s = UnsafeStateSet()
        s.add_unsafe(2.0, -2)
        assert s.safe_offset_mv(2.0, margin_mv=10.0) == 0.0

    def test_negative_margin_rejected(self, populated):
        with pytest.raises(ConfigurationError):
            populated.safe_offset_mv(2.0, margin_mv=-1.0)

    def test_uncharacterized_frequency_falls_back_to_maximal(self, populated):
        # Interpolation covers everything between/outside endpoints, so
        # build a scenario with an empty exact-match: the conservative
        # value equals the interpolated boundary + margin.
        value = populated.safe_offset_mv(2.5, margin_mv=5.0)
        assert value == -75.0


class TestMaximalSafeState:
    def test_uses_shallowest_boundary(self, populated):
        # Shallowest boundary across frequencies is -80 (at 3 GHz).
        assert populated.maximal_safe_offset_mv(margin_mv=5.0) == -75.0

    def test_empty_set_raises(self):
        with pytest.raises(CharacterizationError):
            UnsafeStateSet().maximal_safe_offset_mv()

    def test_never_positive(self):
        s = UnsafeStateSet()
        s.add_unsafe(1.0, -3)
        assert s.maximal_safe_offset_mv(margin_mv=10.0) == 0.0

    def test_safe_for_every_characterized_frequency(self, populated):
        maximal = populated.maximal_safe_offset_mv(margin_mv=1.0)
        for f in populated.frequencies_ghz():
            assert not populated.is_unsafe(f, maximal)


class TestPersistence:
    def test_roundtrip(self, populated):
        restored = UnsafeStateSet.from_dict(populated.to_dict())
        assert restored.system == "test"
        assert restored.boundary_mv(2.0) == populated.boundary_mv(2.0)
        assert restored.crash_offsets(3.0) == populated.crash_offsets(3.0)
        assert restored.cell_count() == populated.cell_count()

    def test_dict_is_json_serialisable(self, populated):
        import json

        text = json.dumps(populated.to_dict())
        restored = UnsafeStateSet.from_dict(json.loads(text))
        assert restored.maximal_safe_offset_mv() == populated.maximal_safe_offset_mv()

    def test_boundary_profile_sorted(self, populated):
        profile = populated.boundary_profile()
        assert profile == [(2.0, -100.0), (3.0, -80.0)]


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=4, max_value=49),
                st.integers(min_value=-300, max_value=-1),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_membership_consistent_with_boundary(self, cells):
        s = UnsafeStateSet()
        for ratio, offset in cells:
            s.add_unsafe(ratio / 10.0, offset)
        for ratio, _ in cells:
            f = ratio / 10.0
            boundary = s.boundary_mv(f)
            assert boundary is not None
            assert s.is_unsafe(f, boundary)
            assert not s.is_unsafe(f, boundary + 1)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=4, max_value=49),
                st.integers(min_value=-300, max_value=-1),
            ),
            min_size=1,
            max_size=60,
        ),
        st.floats(min_value=1.0, max_value=20.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_maximal_safe_is_globally_safe(self, cells, margin):
        s = UnsafeStateSet()
        for ratio, offset in cells:
            s.add_unsafe(ratio / 10.0, offset)
        maximal = s.maximal_safe_offset_mv(margin_mv=margin)
        assert maximal <= 0.0
        for ratio, _ in cells:
            assert not s.is_unsafe(ratio / 10.0, maximal)


class TestMerge:
    def test_union_of_boundaries(self):
        cold = UnsafeStateSet(system="s")
        cold.add_unsafe(2.0, -90)
        cold.add_unsafe(4.0, -130)
        hot = UnsafeStateSet(system="s")
        hot.add_unsafe(2.0, -110)
        hot.add_unsafe(4.0, -95)
        hot.add_crash(4.0, -140)
        merged = cold.merge(hot)
        # Per-frequency shallowest boundary wins.
        assert merged.boundary_mv(2.0) == -90.0
        assert merged.boundary_mv(4.0) == -95.0
        assert merged.crash_offsets(4.0) == [-140]

    def test_merge_is_conservative_for_membership(self):
        a = UnsafeStateSet()
        a.add_unsafe(2.0, -80)
        b = UnsafeStateSet()
        b.add_unsafe(3.0, -100)
        merged = a.merge(b)
        assert merged.is_unsafe(2.0, -80)
        assert merged.is_unsafe(3.0, -100)

    def test_merge_does_not_mutate_inputs(self):
        a = UnsafeStateSet()
        a.add_unsafe(2.0, -80)
        b = UnsafeStateSet()
        b.add_unsafe(2.0, -60)
        merged = a.merge(b)
        assert a.boundary_mv(2.0) == -80.0
        assert b.boundary_mv(2.0) == -60.0
        assert merged.boundary_mv(2.0) == -60.0


class TestMergeProperties:
    from hypothesis import given as _given, settings as _settings
    from hypothesis import strategies as _st

    sets = _st.lists(
        _st.tuples(
            _st.integers(min_value=4, max_value=49),
            _st.integers(min_value=-300, max_value=-1),
        ),
        max_size=30,
    )

    @staticmethod
    def build(cells):
        s = UnsafeStateSet()
        for ratio, offset in cells:
            s.add_unsafe(ratio / 10.0, offset)
        return s

    @_given(a=sets, b=sets)
    @_settings(max_examples=40, deadline=None)
    def test_merge_commutative(self, a, b):
        left = self.build(a).merge(self.build(b))
        right = self.build(b).merge(self.build(a))
        # system label differs; unsafe contents must not.
        assert left.to_dict()["unsafe"] == right.to_dict()["unsafe"]

    @_given(a=sets)
    @_settings(max_examples=30, deadline=None)
    def test_merge_idempotent(self, a):
        s = self.build(a)
        assert s.merge(s).to_dict()["unsafe"] == s.to_dict()["unsafe"]

    @_given(a=sets, b=sets, c=sets)
    @_settings(max_examples=30, deadline=None)
    def test_merge_associative(self, a, b, c):
        sa, sb, sc = self.build(a), self.build(b), self.build(c)
        left = sa.merge(sb).merge(sc)
        right = sa.merge(sb.merge(sc))
        assert left.to_dict()["unsafe"] == right.to_dict()["unsafe"]
