"""Algorithm 2: the characterization framework (direct and event modes)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.core.characterization import (
    CharacterizationConfig,
    CharacterizationFramework,
)
from repro.cpu import COMET_LAKE, SKY_LAKE
from repro.testbench import Machine


class TestConfig:
    def test_defaults_match_paper(self):
        config = CharacterizationConfig()
        offsets = config.offsets_mv()
        assert offsets[0] == -1
        assert offsets[-1] == -300
        assert len(offsets) == 300
        assert config.iterations == 1_000_000

    def test_frequency_list_covers_table(self):
        config = CharacterizationConfig()
        freqs = config.frequency_list(SKY_LAKE)
        assert freqs == list(SKY_LAKE.frequency_table.frequencies_ghz())

    def test_explicit_frequencies_validated(self):
        config = CharacterizationConfig(frequencies_ghz=[2.0, 3.0])
        assert config.frequency_list(COMET_LAKE) == [2.0, 3.0]
        bad = CharacterizationConfig(frequencies_ghz=[9.0])
        from repro.errors import FrequencyError

        with pytest.raises(FrequencyError):
            bad.frequency_list(COMET_LAKE)

    def test_positive_offsets_rejected(self):
        with pytest.raises(ConfigurationError):
            CharacterizationConfig(offset_start_mv=10)

    def test_inverted_range_rejected(self):
        with pytest.raises(ConfigurationError):
            CharacterizationConfig(offset_start_mv=-300, offset_stop_mv=-1)

    def test_bad_step_rejected(self):
        with pytest.raises(ConfigurationError):
            CharacterizationConfig(offset_step_mv=0)

    def test_bad_iterations_rejected(self):
        with pytest.raises(ConfigurationError):
            CharacterizationConfig(iterations=0)


class TestDirectMode:
    def test_full_sweep_shape(self, comet_characterization):
        result = comet_characterization
        # Every frequency of the table must appear in the unsafe set: the
        # -300 mV sweep reaches the fault band everywhere (Figs. 2-4).
        assert result.unsafe_states.frequencies_ghz() == list(
            COMET_LAKE.frequency_table.frequencies_ghz()
        )

    def test_crash_bounds_each_frequency(self, comet_characterization):
        # The sweep deepens until the crash — one crash per frequency.
        assert comet_characterization.crashes == len(COMET_LAKE.frequency_table)

    def test_safe_band_everywhere(self, comet_characterization):
        for f, boundary in comet_characterization.boundary_profile():
            assert boundary <= -50.0, f"no safe band at {f} GHz"

    def test_cells_partition(self, comet_characterization):
        result = comet_characterization
        assert len(result.safe_cells()) + len(result.unsafe_cells()) == len(result.cells)

    def test_maximal_safe_state_negative(self, comet_characterization):
        maximal = comet_characterization.maximal_safe_offset_mv()
        assert -120.0 < maximal < -20.0

    def test_deterministic_given_seed(self):
        config = CharacterizationConfig(
            offset_start_mv=-40, offset_stop_mv=-120, offset_step_mv=4,
            frequencies_ghz=[2.0, 3.0],
        )
        a = CharacterizationFramework(COMET_LAKE, config=config, seed=9).run()
        b = CharacterizationFramework(COMET_LAKE, config=config, seed=9).run()
        assert [(c.frequency_ghz, c.offset_mv, c.fault_count, c.crashed) for c in a.cells] == [
            (c.frequency_ghz, c.offset_mv, c.fault_count, c.crashed) for c in b.cells
        ]

    def test_boundary_deepens_towards_low_frequency(self, skylake_characterization):
        profile = dict(skylake_characterization.boundary_profile())
        # Low frequencies tolerate deeper undervolts than the base point.
        assert profile[0.8] < profile[3.2]

    def test_stop_after_crash_false_continues(self):
        config = CharacterizationConfig(
            offset_start_mv=-100,
            offset_stop_mv=-200,
            offset_step_mv=10,
            frequencies_ghz=[3.0],
            stop_after_crash=False,
        )
        result = CharacterizationFramework(COMET_LAKE, config=config, seed=2).run()
        assert result.crashes > 1  # keeps probing (and crashing) past the first


class TestEventMode:
    def test_matches_direct_mode_boundary(self, coarse_config, comet_characterization):
        machine = Machine.build(COMET_LAKE, seed=5)
        framework = CharacterizationFramework(COMET_LAKE, config=coarse_config, seed=5)
        result = framework.run_on_machine(machine, frequencies_ghz=[2.0])
        event_boundary = result.unsafe_states.boundary_mv(2.0)
        direct_boundary = comet_characterization.unsafe_states.boundary_mv(2.0)
        assert event_boundary is not None
        # Coarse grid: boundaries agree within one 10 mV step.
        assert abs(event_boundary - direct_boundary) <= 10.0

    def test_machine_restored_after_sweep(self, coarse_config):
        machine = Machine.build(COMET_LAKE, seed=5)
        framework = CharacterizationFramework(COMET_LAKE, config=coarse_config, seed=5)
        framework.run_on_machine(machine, frequencies_ghz=[2.0])
        core = machine.processor.core(0)
        assert core.frequency_ghz == pytest.approx(1.8)
        assert core.target_offset_mv() == pytest.approx(0.0, abs=1.0)

    def test_crashes_reboot_the_machine(self, coarse_config):
        machine = Machine.build(COMET_LAKE, seed=5)
        framework = CharacterizationFramework(COMET_LAKE, config=coarse_config, seed=5)
        result = framework.run_on_machine(machine, frequencies_ghz=[2.0, 3.0])
        assert result.crashes >= 1
        assert machine.crash_count == result.crashes


class TestRepetitions:
    def test_repetitions_validated(self):
        with pytest.raises(ConfigurationError):
            CharacterizationConfig(repetitions=0)

    def test_repeats_tighten_the_boundary(self):
        # With repeats, near-onset cells that sample zero faults in one
        # window get more chances: the observed boundary moves no deeper
        # (and typically shallower/tighter) than the single-shot one.
        base = dict(
            offset_start_mv=-40, offset_stop_mv=-140, offset_step_mv=2,
            frequencies_ghz=[2.0],
        )
        single = CharacterizationFramework(
            COMET_LAKE, config=CharacterizationConfig(**base), seed=3
        ).run()
        triple = CharacterizationFramework(
            COMET_LAKE, config=CharacterizationConfig(repetitions=3, **base), seed=3
        ).run()
        b_single = single.unsafe_states.boundary_mv(2.0)
        b_triple = triple.unsafe_states.boundary_mv(2.0)
        assert b_triple >= b_single - 2  # never materially deeper

    def test_repeated_boundaries_vary_less_across_seeds(self):
        base = dict(
            offset_start_mv=-50, offset_stop_mv=-120, offset_step_mv=1,
            frequencies_ghz=[2.0],
        )

        def boundaries(repetitions):
            values = []
            for seed in range(6):
                config = CharacterizationConfig(repetitions=repetitions, **base)
                result = CharacterizationFramework(
                    COMET_LAKE, config=config, seed=seed
                ).run()
                values.append(result.unsafe_states.boundary_mv(2.0))
            return values

        import numpy as np

        spread_single = np.std(boundaries(1))
        spread_triple = np.std(boundaries(3))
        assert spread_triple <= spread_single + 1.0


class TestModeEquivalence:
    def test_event_mode_matches_direct_mode_across_the_table(self):
        """Full-table equivalence of the two Algo 2 execution modes.

        The direct mode is the settled fixed point of the event mode, so
        with identical seeds and a coarse grid the discovered boundary
        must agree everywhere to within one grid step.
        """
        config = CharacterizationConfig(
            offset_start_mv=-10, offset_stop_mv=-260, offset_step_mv=10,
        )
        direct = CharacterizationFramework(COMET_LAKE, config=config, seed=5).run()
        machine = Machine.build(COMET_LAKE, seed=5)
        event = CharacterizationFramework(
            COMET_LAKE, config=config, seed=5
        ).run_on_machine(machine)
        direct_profile = dict(direct.boundary_profile())
        event_profile = dict(event.boundary_profile())
        assert set(event_profile) == set(direct_profile)
        for frequency, boundary in direct_profile.items():
            assert abs(event_profile[frequency] - boundary) <= 10.0, frequency
