"""Adaptive (bisection) characterization."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.core.adaptive import AdaptiveCharacterization, AdaptiveConfig
from repro.cpu import COMET_LAKE, SKY_LAKE


@pytest.fixture(scope="module")
def adaptive_outcome():
    return AdaptiveCharacterization(COMET_LAKE, seed=5).run()


class TestConfig:
    def test_invalid_bracket_rejected(self):
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(start_mv=-300, stop_mv=-1)
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(start_mv=10)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(resolution_mv=0)
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(repeats=0)


class TestBisection:
    def test_boundary_per_frequency(self, adaptive_outcome):
        assert len(adaptive_outcome.boundaries) == len(COMET_LAKE.frequency_table)

    def test_far_fewer_probes_than_full_grid(self, adaptive_outcome):
        # Full grid: up to 300 cells per frequency; bisection needs
        # ~log2(300) * repeats ~ 25.
        per_frequency = adaptive_outcome.probes / len(COMET_LAKE.frequency_table)
        assert per_frequency < 40

    def test_boundaries_agree_with_full_sweep(
        self, adaptive_outcome, comet_characterization
    ):
        full = dict(comet_characterization.boundary_profile())
        for frequency, boundary in adaptive_outcome.boundaries:
            # The adaptive boundary is conservative (never shallower than
            # the true onset by more than sampling noise) and within a
            # small band of the exhaustive sweep's first-fault offset.
            assert abs(boundary - full[frequency]) <= 12.0, frequency

    def test_adaptive_boundary_never_inside_deep_fault_band(
        self, adaptive_outcome, comet_characterization
    ):
        # Because safe cells are triple-confirmed, the adaptive boundary
        # must sit at or above the exhaustive crash offset.
        crash = {
            f: comet_characterization.unsafe_states.crash_offsets(f)[0]
            for f, _ in adaptive_outcome.boundaries
        }
        for frequency, boundary in adaptive_outcome.boundaries:
            assert boundary > crash[frequency]

    def test_maximal_safe_state_close_to_full_sweep(
        self, adaptive_outcome, comet_characterization
    ):
        adaptive = adaptive_outcome.result.unsafe_states.maximal_safe_offset_mv()
        full = comet_characterization.unsafe_states.maximal_safe_offset_mv()
        assert abs(adaptive - full) <= 10.0

    def test_cells_recorded(self, adaptive_outcome):
        assert len(adaptive_outcome.result.cells) == adaptive_outcome.probes or (
            # safe cells collapse repeats into one record
            len(adaptive_outcome.result.cells) <= adaptive_outcome.probes
        )
        assert any(c.crashed for c in adaptive_outcome.result.cells)

    def test_deterministic(self):
        a = AdaptiveCharacterization(SKY_LAKE, seed=9).run()
        b = AdaptiveCharacterization(SKY_LAKE, seed=9).run()
        assert a.boundaries == b.boundaries
        assert a.probes == b.probes

    def test_safe_range_yields_no_boundary(self):
        # Restrict the bracket to the universally safe band: bisection
        # reports nothing unsafe.
        config = AdaptiveConfig(start_mv=-1, stop_mv=-20)
        outcome = AdaptiveCharacterization(COMET_LAKE, config=config, seed=5).run()
        assert outcome.boundaries == []
        assert outcome.result.unsafe_states.is_empty


class TestEventModeAdaptive:
    def test_run_on_machine_matches_direct(self, comet_characterization):
        from repro.testbench import Machine

        machine = Machine.build(COMET_LAKE, seed=5)
        outcome = AdaptiveCharacterization(COMET_LAKE, seed=5).run_on_machine(machine)
        assert len(outcome.boundaries) == len(COMET_LAKE.frequency_table)
        full = dict(comet_characterization.boundary_profile())
        for frequency, boundary in outcome.boundaries:
            assert abs(boundary - full[frequency]) <= 12.0, frequency
        # Crash-frugal on the live machine too.
        assert machine.crash_count == outcome.crashes
        assert outcome.crashes <= 5

    def test_machine_left_clean(self):
        from repro.testbench import Machine

        machine = Machine.build(COMET_LAKE, seed=5)
        AdaptiveCharacterization(COMET_LAKE, seed=5).run_on_machine(machine)
        assert machine.processor.core(0).target_offset_mv() == pytest.approx(
            0.0, abs=1.0
        )
