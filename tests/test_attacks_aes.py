"""AES-128, fault injection, and the Piret-Quisquater DFA."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AttackError, ConfigurationError
from repro.attacks.aes import (
    CIPHERTEXT_GROUPS,
    DFAState,
    FaultableAES,
    _encrypt_with_schedule,
    diff_group,
    encrypt_block,
    expand_key,
    gmul,
    invert_key_schedule,
)
from repro.attacks.aes_dfa import AESDFAAttack, AESDFAConfig
from repro.core import PollingCountermeasure
from repro.cpu import COMET_LAKE
from repro.faults.alu import FaultableALU
from repro.faults.injector import FaultInjector
from repro.faults.margin import FaultModel
from repro.testbench import Machine

FIPS_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
FIPS_PT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")

SP800_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
SP800_PT = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
SP800_CT = bytes.fromhex("3ad77bb40d7a3660a89ecaf32466ef97")


class TestAESPrimitives:
    def test_fips197_known_answer(self):
        assert encrypt_block(FIPS_KEY, FIPS_PT) == FIPS_CT

    def test_sp800_38a_known_answer(self):
        assert encrypt_block(SP800_KEY, SP800_PT) == SP800_CT

    def test_key_schedule_first_and_last_round_keys(self):
        round_keys = expand_key(FIPS_KEY)
        assert len(round_keys) == 11
        assert round_keys[0] == FIPS_KEY
        assert round_keys[10] == bytes.fromhex("13111d7fe3944a17f307a78b4d2b30c5")

    def test_key_schedule_inversion(self):
        round_keys = expand_key(SP800_KEY)
        assert invert_key_schedule(round_keys[10]) == SP800_KEY

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            expand_key(b"short")
        with pytest.raises(ConfigurationError):
            encrypt_block(FIPS_KEY, b"short")
        with pytest.raises(ConfigurationError):
            invert_key_schedule(b"short")

    def test_gmul_known_products(self):
        assert gmul(0x57, 0x83) == 0xC1  # FIPS-197 example
        assert gmul(0x57, 0x13) == 0xFE
        assert gmul(1, 0xAB) == 0xAB
        assert gmul(0, 0xFF) == 0


class TestFaultPropagation:
    def test_round9_fault_hits_exactly_one_group(self):
        round_keys = expand_key(FIPS_KEY)
        correct = encrypt_block(FIPS_KEY, FIPS_PT)
        for index in range(16):
            faulty = _encrypt_with_schedule(
                round_keys, FIPS_PT, fault_round=9, fault=(index, 0x5A)
            )
            group = diff_group(correct, faulty)
            assert group is not None
            differing = {i for i in range(16) if correct[i] != faulty[i]}
            assert differing == set(CIPHERTEXT_GROUPS[group])

    def test_early_round_fault_rejected_by_pattern_filter(self):
        round_keys = expand_key(FIPS_KEY)
        correct = encrypt_block(FIPS_KEY, FIPS_PT)
        faulty = _encrypt_with_schedule(
            round_keys, FIPS_PT, fault_round=5, fault=(3, 0x5A)
        )
        assert diff_group(correct, faulty) is None

    def test_round10_fault_rejected_by_pattern_filter(self):
        round_keys = expand_key(FIPS_KEY)
        correct = encrypt_block(FIPS_KEY, FIPS_PT)
        faulty = _encrypt_with_schedule(
            round_keys, FIPS_PT, fault_round=10, fault=(3, 0x5A)
        )
        # A round-10 input fault changes only ~1 ciphertext byte.
        assert diff_group(correct, faulty) is None

    def test_identical_ciphertexts_rejected(self):
        correct = encrypt_block(FIPS_KEY, FIPS_PT)
        assert diff_group(correct, correct) is None

    def test_groups_partition_the_state(self):
        seen = set()
        for group in CIPHERTEXT_GROUPS:
            seen |= set(group)
        assert seen == set(range(16))


class TestDFA:
    def test_converges_and_recovers_key(self):
        rng = np.random.default_rng(1)
        round_keys = expand_key(SP800_KEY)
        correct = encrypt_block(SP800_KEY, FIPS_PT)
        dfa = DFAState()
        pairs = 0
        while not dfa.complete and pairs < 80:
            index = int(rng.integers(0, 16))
            delta = int(rng.integers(1, 256))
            faulty = _encrypt_with_schedule(
                round_keys, FIPS_PT, fault_round=9, fault=(index, delta)
            )
            dfa.absorb(correct, faulty)
            pairs += 1
        assert dfa.complete
        assert dfa.last_round_key() == round_keys[10]
        assert dfa.recover_master_key() == SP800_KEY

    def test_incomplete_state_refuses_key(self):
        dfa = DFAState()
        with pytest.raises(AttackError):
            dfa.last_round_key()

    def test_single_pair_narrows_but_rarely_pins(self):
        round_keys = expand_key(SP800_KEY)
        correct = encrypt_block(SP800_KEY, FIPS_PT)
        faulty = _encrypt_with_schedule(
            round_keys, FIPS_PT, fault_round=9, fault=(0, 0x42)
        )
        dfa = DFAState()
        group = dfa.absorb(correct, faulty)
        assert group is not None
        sets = dfa.candidates[group]
        for j, candidates in enumerate(sets):
            true_byte = round_keys[10][CIPHERTEXT_GROUPS[group][j]]
            assert true_byte in candidates  # never eliminates the truth
            assert len(candidates) < 256  # but always narrows


class TestFaultableAES:
    def test_no_faults_under_safe_conditions(self):
        fault_model = FaultModel(COMET_LAKE)
        injector = FaultInjector(fault_model, np.random.default_rng(3))
        conditions = fault_model.conditions_for_offset(1.8, 0.0)
        alu = FaultableALU(injector=injector, conditions_source=lambda: conditions)
        aes = FaultableAES(SP800_KEY)
        for _ in range(50):
            assert aes.encrypt(alu, SP800_PT) == SP800_CT

    def test_faults_under_unsafe_conditions(self):
        fault_model = FaultModel(COMET_LAKE)
        injector = FaultInjector(fault_model, np.random.default_rng(3))
        vcrit = fault_model.critical_voltage(2.0)
        conditions = type(fault_model.conditions_for_offset(2.0, 0.0))(
            2.0, vcrit - 0.006, -999
        )
        alu = FaultableALU(injector=injector, conditions_source=lambda: conditions)
        aes = FaultableAES(SP800_KEY)
        corrupted = sum(
            aes.encrypt(alu, SP800_PT) != SP800_CT for _ in range(3000)
        )
        assert corrupted > 0
        assert alu.stats.fault_count == corrupted


class TestAESDFACampaign:
    def test_key_extraction_on_undefended_machine(self):
        machine = Machine.build(COMET_LAKE, seed=15)
        attack = AESDFAAttack(machine, SP800_KEY, AESDFAConfig(frequency_ghz=2.0))
        outcome = attack.mount()
        assert outcome.succeeded
        assert outcome.recovered_secret == SP800_KEY
        assert outcome.faults_observed > 0

    def test_defeated_by_polling_module(self, comet_characterization):
        machine = Machine.build(COMET_LAKE, seed=15)
        module = PollingCountermeasure(machine, comet_characterization.unsafe_states)
        machine.modules.insmod(module)
        attack = AESDFAAttack(machine, SP800_KEY, AESDFAConfig(frequency_ghz=2.0))
        outcome = attack.mount()
        assert not outcome.succeeded
        assert outcome.faults_observed == 0

    def test_known_offset_still_defeated(self, comet_characterization):
        machine = Machine.build(COMET_LAKE, seed=15)
        module = PollingCountermeasure(machine, comet_characterization.unsafe_states)
        machine.modules.insmod(module)
        boundary = int(comet_characterization.unsafe_states.boundary_mv(2.0))
        attack = AESDFAAttack(
            machine,
            SP800_KEY,
            AESDFAConfig(
                frequency_ghz=2.0, offset_mv=boundary - 12, max_encryptions=500_000
            ),
        )
        outcome = attack.mount()
        assert not outcome.succeeded
        assert outcome.attempts == 500_000  # budget drained, nothing gained
