"""Sec. 5 deployments: microcode write-ignore and the hardware MSR clamp."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, MSRWriteIgnoredError
from repro.core.encoding import offset_voltage, read_request
from repro.core.microcode_guard import MicrocodeGuard
from repro.core.msr_clamp import (
    LIMIT_LOCK_BIT,
    VoltageOffsetLimit,
    decode_limit,
    encode_limit,
    install_msr_clamp,
)
from repro.cpu import COMET_LAKE
from repro.cpu.msr import MSR_VOLTAGE_OFFSET_LIMIT
from repro.testbench import Machine


@pytest.fixture
def machine() -> Machine:
    return Machine.build(COMET_LAKE, seed=23)


class TestMicrocodeGuard:
    def test_deep_write_ignored(self, machine):
        guard = MicrocodeGuard(maximal_safe_offset_mv=-60.0)
        guard.apply(machine.processor)
        assert machine.write_voltage_offset(-200) is False
        assert guard.ignored_writes == 1
        assert machine.processor.core(0).target_offset_mv() == 0.0

    def test_safe_write_passes(self, machine):
        guard = MicrocodeGuard(maximal_safe_offset_mv=-60.0)
        guard.apply(machine.processor)
        assert machine.write_voltage_offset(-40) is True
        machine.advance(1.0)
        assert machine.processor.core(0).applied_offset_mv(machine.now) == pytest.approx(
            -40, abs=1.0
        )

    def test_boundary_write_passes(self, machine):
        guard = MicrocodeGuard(maximal_safe_offset_mv=-60.0)
        guard.apply(machine.processor)
        assert machine.write_voltage_offset(-60) is True

    def test_read_requests_unaffected(self, machine):
        guard = MicrocodeGuard(maximal_safe_offset_mv=-60.0)
        guard.apply(machine.processor)
        assert machine.msr_driver.write(0, 0x150, read_request(0)) is True

    def test_raise_mode(self, machine):
        guard = MicrocodeGuard(maximal_safe_offset_mv=-60.0, raise_on_ignore=True)
        guard.apply(machine.processor)
        with pytest.raises(MSRWriteIgnoredError):
            machine.write_voltage_offset(-200)

    def test_revert_restores_stock_behaviour(self, machine):
        guard = MicrocodeGuard(maximal_safe_offset_mv=-60.0)
        guard.apply(machine.processor)
        guard.revert()
        assert machine.write_voltage_offset(-200) is True

    def test_double_apply_rejected(self, machine):
        guard = MicrocodeGuard(maximal_safe_offset_mv=-60.0)
        guard.apply(machine.processor)
        with pytest.raises(ConfigurationError):
            guard.apply(machine.processor)

    def test_positive_limit_rejected(self):
        with pytest.raises(ConfigurationError):
            MicrocodeGuard(maximal_safe_offset_mv=10.0)

    def test_log_records_core_and_offset(self, machine):
        guard = MicrocodeGuard(maximal_safe_offset_mv=-60.0)
        guard.apply(machine.processor)
        machine.write_voltage_offset(-200, core_index=1)
        assert guard.ignored_log[0][0] == 1
        assert guard.ignored_log[0][1] == pytest.approx(-200, abs=1.0)


class TestLimitCodec:
    def test_roundtrip(self):
        assert decode_limit(encode_limit(-65.0)) == pytest.approx(-65.0, abs=1.0)


class TestMSRClamp:
    def test_deep_write_clamped_not_dropped(self, machine):
        install_msr_clamp(machine.processor, -65.0)
        assert machine.write_voltage_offset(-200) is True  # accepted...
        machine.advance(2 * COMET_LAKE.regulator_latency_s)
        # ...but clamped to the limit, DRAM_MIN_PWR-style.
        assert machine.processor.core(0).applied_offset_mv(machine.now) == pytest.approx(
            -65.0, abs=1.0
        )

    def test_safe_write_untouched(self, machine):
        clamp = install_msr_clamp(machine.processor, -65.0)
        machine.write_voltage_offset(-30)
        machine.advance(2 * COMET_LAKE.regulator_latency_s)
        assert machine.processor.core(0).applied_offset_mv(machine.now) == pytest.approx(
            -30, abs=1.0
        )
        assert clamp.clamped_writes == 0

    def test_clamped_writes_counted(self, machine):
        clamp = install_msr_clamp(machine.processor, -65.0)
        machine.write_voltage_offset(-200)
        machine.write_voltage_offset(-300)
        assert clamp.clamped_writes == 2

    def test_limit_visible_in_new_msr(self, machine):
        install_msr_clamp(machine.processor, -65.0)
        value = machine.processor.rdmsr(0, MSR_VOLTAGE_OFFSET_LIMIT)
        assert decode_limit(value) == pytest.approx(-65.0, abs=1.0)

    def test_unlocked_limit_adjustable(self, machine):
        clamp = install_msr_clamp(machine.processor, -65.0, lock=False)
        machine.processor.wrmsr(0, MSR_VOLTAGE_OFFSET_LIMIT, encode_limit(-40.0))
        assert clamp.limit_mv == pytest.approx(-40.0, abs=1.0)

    def test_locked_limit_immutable(self, machine):
        clamp = install_msr_clamp(machine.processor, -65.0)  # lock=True default
        assert clamp.locked
        stored = machine.processor.wrmsr(0, MSR_VOLTAGE_OFFSET_LIMIT, encode_limit(-10.0))
        assert stored is False
        assert clamp.limit_mv == pytest.approx(-65.0, abs=1.0)

    def test_lock_bit_in_write_locks(self, machine):
        clamp = install_msr_clamp(machine.processor, -65.0, lock=False)
        machine.processor.wrmsr(
            0, MSR_VOLTAGE_OFFSET_LIMIT, encode_limit(-50.0) | LIMIT_LOCK_BIT
        )
        assert clamp.locked
        assert clamp.limit_mv == pytest.approx(-50.0, abs=1.0)

    def test_read_requests_pass_through(self, machine):
        install_msr_clamp(machine.processor, -65.0)
        assert machine.msr_driver.write(0, 0x150, read_request(0)) is True

    def test_revert(self, machine):
        clamp = install_msr_clamp(machine.processor, -65.0)
        clamp.revert()
        machine.write_voltage_offset(-200)
        machine.advance(2 * COMET_LAKE.regulator_latency_s)
        assert machine.processor.core(0).applied_offset_mv(machine.now) == pytest.approx(
            -200, abs=1.0
        )

    def test_positive_limit_rejected(self):
        with pytest.raises(ConfigurationError):
            VoltageOffsetLimit(limit_mv=5.0)

    def test_plane_preserved_in_clamped_write(self, machine):
        install_msr_clamp(machine.processor, -65.0)
        machine.msr_driver.write(0, 0x150, offset_voltage(-200, plane=2))
        from repro.cpu.ocm import VoltagePlane

        core = machine.processor.core(0)
        assert core.target_offset_mv(VoltagePlane.CACHE) == pytest.approx(-65.0, abs=1.0)
