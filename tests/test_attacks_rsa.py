"""RSA-CRT victim and the Bellcore extraction."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import AttackError, ConfigurationError
from repro.attacks.rsa_crt import (
    BellcoreResult,
    RSACRTSigner,
    RSAKey,
    assert_key_recovered,
    bellcore_extract,
    generate_prime,
    is_probable_prime,
)
from repro.cpu import COMET_LAKE
from repro.faults.alu import FaultableALU
from repro.faults.injector import FaultInjector
from repro.faults.margin import FaultModel


@pytest.fixture(scope="module")
def key() -> RSAKey:
    return RSAKey.generate(512, seed=42)


def safe_alu() -> FaultableALU:
    fault_model = FaultModel(COMET_LAKE)
    injector = FaultInjector(fault_model, np.random.default_rng(0))
    conditions = fault_model.conditions_for_offset(1.8, 0.0)
    return FaultableALU(injector=injector, conditions_source=lambda: conditions)


class TestPrimality:
    def test_known_primes(self):
        rng = np.random.default_rng(1)
        for p in (2, 3, 101, 65537, 2**127 - 1):
            assert is_probable_prime(p, rng)

    def test_known_composites(self):
        rng = np.random.default_rng(1)
        for n in (0, 1, 4, 561, 65537 * 3, 2**128):
            assert not is_probable_prime(n, rng)

    def test_carmichael_numbers_rejected(self):
        rng = np.random.default_rng(1)
        for n in (561, 1105, 1729, 2465, 6601):
            assert not is_probable_prime(n, rng)

    def test_generated_prime_has_exact_bit_length(self):
        rng = np.random.default_rng(5)
        p = generate_prime(128, rng)
        assert p.bit_length() == 128
        assert p % 2 == 1

    def test_small_size_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_prime(4, np.random.default_rng(0))

    def test_generation_deterministic(self):
        a = generate_prime(64, np.random.default_rng(9))
        b = generate_prime(64, np.random.default_rng(9))
        assert a == b


class TestKey:
    def test_key_consistency(self, key):
        assert key.p * key.q == key.n
        assert key.p != key.q
        phi = (key.p - 1) * (key.q - 1)
        assert (key.e * key.d) % phi == 1
        assert key.dp == key.d % (key.p - 1)
        assert key.dq == key.d % (key.q - 1)
        assert (key.qinv * key.q) % key.p == 1

    def test_generation_deterministic(self):
        assert RSAKey.generate(256, seed=7) == RSAKey.generate(256, seed=7)

    def test_modulus_size(self, key):
        assert 500 <= key.n.bit_length() <= 512


class TestSigner:
    def test_sign_verify_roundtrip(self, key):
        signer = RSACRTSigner(key)
        message = 0x1234_5678_9ABC
        signature = signer.sign(safe_alu(), message)
        assert signer.verify(message, signature)
        # CRT result matches the straight private-key exponentiation.
        assert signature == pow(message, key.d, key.n)

    def test_different_messages_different_signatures(self, key):
        signer = RSACRTSigner(key)
        alu = safe_alu()
        assert signer.sign(alu, 100) != signer.sign(alu, 200)

    def test_verify_rejects_wrong_signature(self, key):
        signer = RSACRTSigner(key)
        signature = signer.sign(safe_alu(), 777)
        assert not signer.verify(777, signature ^ 1)


class TestBellcore:
    def test_faulted_sp_reveals_q(self, key):
        # Manually corrupt the CRT p-half, as a DVFS fault would.
        message = 0xFEED
        s_p = pow(message % key.p, key.dp, key.p) ^ 4  # faulty
        s_q = pow(message % key.q, key.dq, key.q)
        h = (key.qinv * (s_p - s_q)) % key.p
        faulty = (s_q + key.q * h) % key.n
        result = bellcore_extract(key.n, key.e, message, faulty)
        assert result is not None
        assert result.factors() == tuple(sorted((key.p, key.q)))
        assert_key_recovered(key, result)

    def test_correct_signature_not_exploitable(self, key):
        message = 0xFEED
        good = pow(message, key.d, key.n)
        assert bellcore_extract(key.n, key.e, message, good) is None

    def test_garbage_signature_not_exploitable(self, key):
        assert bellcore_extract(key.n, key.e, 0xFEED, 12345) is None

    def test_recovered_factors_multiply_to_n(self, key):
        message = 0xBEEF
        s_p = pow(message % key.p, key.dp, key.p) ^ 1024
        s_q = pow(message % key.q, key.dq, key.q)
        h = (key.qinv * (s_p - s_q)) % key.p
        faulty = (s_q + key.q * h) % key.n
        result = bellcore_extract(key.n, key.e, message, faulty)
        assert result.factor * result.cofactor == key.n
        assert math.gcd(result.factor, key.n) == result.factor

    def test_assert_key_recovered_rejects_mismatch(self, key):
        with pytest.raises(AttackError):
            assert_key_recovered(key, BellcoreResult(factor=3, cofactor=5))
