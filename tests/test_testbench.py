"""The assembled Machine test bench."""

from __future__ import annotations

import pytest

from repro.errors import MachineCheckError
from repro.cpu import COMET_LAKE, SKY_LAKE
from repro.faults.workloads import IMUL_LOOP
from repro.testbench import Machine


class TestBuild:
    def test_components_wired(self):
        machine = Machine.build(COMET_LAKE, seed=1)
        assert machine.processor.model is COMET_LAKE
        assert machine.fault_model.model is COMET_LAKE
        assert machine.msr_driver.processor is machine.processor
        assert machine.cpufreq.processor is machine.processor

    def test_clock_shared_between_simulator_and_processor(self):
        machine = Machine.build(COMET_LAKE, seed=1)
        machine.advance(0.25)
        assert machine.processor.now == pytest.approx(0.25)
        assert machine.now == pytest.approx(0.25)

    def test_same_seed_same_behaviour(self):
        def faults(seed):
            machine = Machine.build(COMET_LAKE, seed=seed)
            machine.set_frequency(2.0)
            machine.write_voltage_offset(-85)
            machine.advance(2 * COMET_LAKE.regulator_latency_s)
            return machine.run_imul_window(iterations=1_000_000).fault_count

        assert faults(5) == faults(5)


class TestExecution:
    def test_imul_window_advances_time(self):
        machine = Machine.build(COMET_LAKE, seed=1)
        before = machine.now
        machine.run_imul_window(iterations=1_000_000)
        # 1M imuls at 1.8 GHz ~ 555 us.
        assert machine.now - before == pytest.approx(1e6 / 1.8e9, rel=1e-6)

    def test_imul_window_without_time(self):
        machine = Machine.build(COMET_LAKE, seed=1)
        machine.run_imul_window(iterations=1000, advance_time=False)
        assert machine.now == 0.0

    def test_workload_window(self):
        machine = Machine.build(COMET_LAKE, seed=1)
        outcome = machine.run_workload_window(IMUL_LOOP, ops=100_000)
        assert outcome.ops == 100_000
        assert outcome.fault_count == 0

    def test_nominal_never_faults_on_any_model(self):
        for model in (COMET_LAKE, SKY_LAKE):
            machine = Machine.build(model, seed=1)
            report = machine.run_imul_window(iterations=1_000_000)
            assert not report.faulted


class TestDVFSSurface:
    def test_set_frequency_all_cores(self):
        machine = Machine.build(COMET_LAKE, seed=1)
        machine.set_frequency(2.4)
        assert all(c.frequency_ghz == pytest.approx(2.4) for c in machine.processor.cores)

    def test_write_voltage_offset_applies_after_latency(self):
        machine = Machine.build(COMET_LAKE, seed=1)
        assert machine.write_voltage_offset(-55) is True
        assert machine.conditions(0).offset_mv == 0.0
        machine.advance(COMET_LAKE.regulator_latency_s * 1.1)
        assert machine.conditions(0).offset_mv == pytest.approx(-55, abs=1.0)

    def test_conditions_reflect_vf_curve(self):
        machine = Machine.build(COMET_LAKE, seed=1)
        conditions = machine.conditions(0)
        assert conditions.voltage_volts == pytest.approx(
            machine.processor.vf_curve.base_voltage(1.8)
        )


class TestCrashRecovery:
    def test_deep_undervolt_machine_checks_then_reboots(self):
        machine = Machine.build(COMET_LAKE, seed=1)
        machine.set_frequency(2.0)
        machine.write_voltage_offset(-300)
        machine.advance(COMET_LAKE.regulator_latency_s * 1.1)
        with pytest.raises(MachineCheckError):
            machine.run_imul_window(iterations=1000)
        machine.reboot(settle_s=1e-3)
        assert machine.crash_count == 1
        # After reboot the machine is healthy again.
        report = machine.run_imul_window(iterations=100_000)
        assert not report.faulted
