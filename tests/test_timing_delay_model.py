"""Alpha-power-law delay model: monotonicity, inversion, edge cases."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.timing.constants import INTEL_14NM, ProcessCharacteristics
from repro.timing.delay_model import DelayModel


@pytest.fixture
def model() -> DelayModel:
    return DelayModel(INTEL_14NM)


class TestRawDelay:
    def test_positive_above_threshold(self, model):
        assert model.raw_delay(0.9) > 0

    def test_rejects_at_threshold(self, model):
        with pytest.raises(ConfigurationError):
            model.raw_delay(INTEL_14NM.vth_volts)

    def test_rejects_below_threshold(self, model):
        with pytest.raises(ConfigurationError):
            model.raw_delay(0.3)

    def test_diverges_near_threshold(self, model):
        near = model.raw_delay(INTEL_14NM.vth_volts + 1e-4)
        far = model.raw_delay(1.0)
        assert near > 100 * far


class TestScale:
    def test_unity_at_reference(self, model):
        assert model.scale(INTEL_14NM.reference_voltage_volts) == pytest.approx(1.0)

    def test_undervolt_slows(self, model):
        assert model.scale(0.9) > 1.0

    def test_overvolt_speeds_up(self, model):
        assert model.scale(1.1) < 1.0

    @given(
        st.floats(min_value=0.60, max_value=1.45, allow_nan=False),
        st.floats(min_value=0.60, max_value=1.45, allow_nan=False),
    )
    def test_strictly_decreasing_in_voltage(self, v1, v2):
        model = DelayModel(INTEL_14NM)
        if v1 == v2:
            return
        lo, hi = sorted((v1, v2))
        assert model.scale(lo) > model.scale(hi)

    def test_ten_percent_undervolt_costs_tens_of_percent_delay(self, model):
        # The physical regime the attacks live in: ~10% undervolt slows
        # the logic by a few tens of percent.
        ratio = model.scale(0.9) / model.scale(1.0)
        assert 1.1 < ratio < 1.6


class TestInversion:
    @given(st.floats(min_value=0.62, max_value=1.40, allow_nan=False))
    def test_voltage_for_scale_roundtrip(self, voltage):
        model = DelayModel(INTEL_14NM)
        scale = model.scale(voltage)
        recovered = model.voltage_for_scale(scale)
        assert recovered == pytest.approx(voltage, abs=1e-6)

    def test_rejects_nonpositive_scale(self, model):
        with pytest.raises(ConfigurationError):
            model.voltage_for_scale(0.0)

    def test_rejects_unreachable_scale(self, model):
        # Delay factors below the 2.5 V asymptote are unreachable.
        with pytest.raises(ConfigurationError):
            model.voltage_for_scale(1e-6)

    def test_solution_is_unique_bisection_target(self, model):
        v = model.voltage_for_scale(2.0)
        assert model.scale(v) == pytest.approx(2.0, rel=1e-6)


class TestProcessVariants:
    def test_lower_vth_is_faster_at_same_voltage(self):
        base = DelayModel(ProcessCharacteristics())
        leaky = DelayModel(ProcessCharacteristics(vth_volts=0.45))
        assert leaky.raw_delay(0.9) < base.raw_delay(0.9)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessCharacteristics(alpha=0.5)

    def test_invalid_retention_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessCharacteristics(vth_volts=0.6, v_retention_volts=0.55)

    def test_negative_setup_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessCharacteristics(t_setup_ps=-1.0)
