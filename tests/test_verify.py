"""Runtime invariant checker and adversarial-schedule fuzzer.

Two layers of confidence:

* the *clean* tests pin that the real substrate survives adversarial
  schedules with zero violations, deterministically;
* the *mutation* tests monkeypatch a deliberate bug into one layer at a
  time and assert the checker attributes it to the right invariant — and
  that ddmin shrinks the finding to a tiny replayable schedule.
"""

from __future__ import annotations

import json

import pytest

from repro.cpu import COMET_LAKE, PAPER_MODEL_TUPLE, SKY_LAKE
from repro.cpu import ocm
from repro.cpu.ocm import VoltagePlane
from repro.cpu.voltage_regulator import VoltageRegulator
from repro.engine import EngineSession, FuzzJob, SerialExecutor, make_executor
from repro.errors import ConfigurationError, InvariantViolation, ReproError
from repro.faults.margin import FaultModel
from repro.kernel.sim import Simulator
from repro.testbench import Machine
from repro.verify import (
    FuzzSchedule,
    InvariantChecker,
    SCHEDULE_SCHEMA_VERSION,
    run_schedule,
    schedule_for_job,
    shrink_schedule,
    verify_enabled_from_env,
)

CORE = VoltagePlane.CORE


def fuzz_job(codename: str = "Comet Lake", case_index: int = 0, **kwargs) -> FuzzJob:
    return FuzzJob(codename=codename, seed=0, case_index=case_index, **kwargs)


def checked_machine(seed: int = 11) -> Machine:
    machine = Machine.build(COMET_LAKE, seed=seed, verify=False)
    machine.install_invariants()
    return machine


class TestEnvKnob:
    def test_off_by_default(self):
        assert not verify_enabled_from_env({})

    @pytest.mark.parametrize("value", ["", "0", "false", "no", " FALSE "])
    def test_disabled_spellings(self, value):
        assert not verify_enabled_from_env({"REPRO_VERIFY": value})

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_enabled_spellings(self, value):
        assert verify_enabled_from_env({"REPRO_VERIFY": value})

    def test_machine_build_installs_checker_under_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        machine = Machine.build(COMET_LAKE, seed=3)
        assert isinstance(machine.verifier, InvariantChecker)

    def test_machine_build_default_has_no_observers(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        machine = Machine.build(COMET_LAKE, seed=3)
        assert machine.verifier is None
        assert machine.simulator._observer is None
        assert machine.processor.ocm_observer is None
        assert machine.injector.observer is None
        assert all(
            core.regulator.observer is None for core in machine.processor.cores
        )


class TestCheckerLifecycle:
    def test_install_is_idempotent_per_machine(self):
        machine = Machine.build(COMET_LAKE, seed=3, verify=False)
        checker = InvariantChecker()
        assert checker.install(machine) is checker
        assert checker.install(machine) is checker

    def test_one_machine_per_checker(self):
        checker = InvariantChecker()
        checker.install(Machine.build(COMET_LAKE, seed=3, verify=False))
        with pytest.raises(ReproError):
            checker.install(Machine.build(COMET_LAKE, seed=4, verify=False))

    def test_uninstall_releases_all_hooks(self):
        machine = Machine.build(COMET_LAKE, seed=3, verify=False)
        checker = InvariantChecker().install(machine)
        checker.uninstall()
        assert machine.simulator._observer is None
        assert machine.processor.ocm_observer is None
        assert machine.injector.observer is None
        checker.install(Machine.build(COMET_LAKE, seed=4, verify=False))

    def test_checked_machine_behaves_identically(self):
        plain = Machine.build(COMET_LAKE, seed=9, verify=False)
        checked = Machine.build(COMET_LAKE, seed=9, verify=False)
        checked.install_invariants()
        for machine in (plain, checked):
            machine.write_voltage_offset(-80)
            machine.set_frequency(2.0)
            machine.advance(2e-3)
            machine.run_imul_window(0, iterations=10_000)
        assert plain.now == checked.now
        assert plain.conditions(0) == checked.conditions(0)


class TestCleanFuzzing:
    @pytest.mark.parametrize(
        "codename", [model.codename for model in PAPER_MODEL_TUPLE]
    )
    def test_schedules_run_clean_on_all_models(self, codename):
        for case in range(4):
            summary = run_schedule(fuzz_job(codename, case).schedule())
            assert summary["violation"] is None, summary["violation"]
            assert summary["checks"] > 0

    def test_module_actions_run_clean(self, comet_characterization):
        unsafe_json = json.dumps(
            comet_characterization.unsafe_states.to_dict(), sort_keys=True
        )
        for case in range(4):
            job = fuzz_job("Comet Lake", case, unsafe_json=unsafe_json)
            summary = run_schedule(job.schedule())
            assert summary["violation"] is None, summary["violation"]

    def test_schedule_generation_deterministic(self):
        job = fuzz_job(case_index=7)
        assert schedule_for_job(job).to_json() == schedule_for_job(job).to_json()

    def test_run_summary_deterministic(self):
        schedule = fuzz_job(case_index=3).schedule()
        assert run_schedule(schedule) == run_schedule(schedule)

    def test_different_cases_get_different_schedules(self):
        schedules = {fuzz_job(case_index=i).schedule().to_json() for i in range(6)}
        assert len(schedules) == 6


class TestScheduleArtifacts:
    def test_json_roundtrip_is_identity(self):
        schedule = fuzz_job(case_index=5).schedule()
        assert FuzzSchedule.from_json(schedule.to_json()) == schedule

    def test_stale_schema_rejected(self):
        blob = json.loads(fuzz_job().schedule().to_json())
        blob["schema"] = SCHEDULE_SCHEMA_VERSION + 1
        with pytest.raises(ConfigurationError):
            FuzzSchedule.from_dict(blob)

    def test_canonical_json_sorted_keys(self):
        blob = fuzz_job().schedule().to_json()
        parsed = json.loads(blob)
        assert blob == json.dumps(parsed, sort_keys=True, indent=2)


def _break_decode_sign(monkeypatch):
    """The deliberate encoding bug of the acceptance mutation test:
    ``decode_offset_field`` loses the two's-complement sign correction, so
    every negative offset decodes to a large positive unit count."""

    def broken(value: int) -> int:
        return (value >> ocm.OFFSET_SHIFT) & 0x7FF

    monkeypatch.setattr(ocm, "decode_offset_field", broken)


def _first_violating_schedule(max_cases: int = 40):
    for case in range(max_cases):
        schedule = fuzz_job("Sky Lake", case).schedule()
        if run_schedule(schedule)["violation"] is not None:
            return schedule
    raise AssertionError("no fuzz case tripped the mutated substrate")


class TestMutationDetection:
    """Each test breaks one layer and expects the matching invariant."""

    def test_encoding_sign_bug_caught_and_shrunk(self, monkeypatch):
        _break_decode_sign(monkeypatch)
        schedule = _first_violating_schedule()
        violation = run_schedule(schedule)["violation"]
        assert violation["invariant"] == "ocm-roundtrip"
        shrunk = shrink_schedule(schedule)
        assert len(shrunk.actions) <= 10
        replayed = run_schedule(shrunk)["violation"]
        assert replayed is not None
        assert replayed["invariant"] == "ocm-roundtrip"

    def test_shrunk_artifact_replays_from_json(self, monkeypatch):
        _break_decode_sign(monkeypatch)
        shrunk = shrink_schedule(_first_violating_schedule())
        replayed = FuzzSchedule.from_json(shrunk.to_json())
        assert run_schedule(replayed)["violation"] is not None

    def test_broken_purge_flags_heap_hygiene(self, monkeypatch):
        monkeypatch.setattr(Simulator, "prune", lambda self: None)
        monkeypatch.setattr(Simulator, "_prune_cancelled", lambda self: None)
        machine = checked_machine()
        machine.simulator.schedule(3e-3, lambda: None)
        stranded = machine.simulator.schedule(5e-3, lambda: None)
        stranded.cancel()
        with pytest.raises(InvariantViolation) as excinfo:
            machine.advance(2e-3)
        assert excinfo.value.invariant == "heap-hygiene"

    def test_busy_response_flags_protocol(self, monkeypatch):
        original = ocm.encode_response
        monkeypatch.setattr(
            ocm,
            "encode_response",
            lambda units, plane: original(units, plane) | ocm.BUSY_BIT,
        )
        machine = checked_machine()
        with pytest.raises(InvariantViolation) as excinfo:
            machine.write_voltage_offset(-50)
        assert excinfo.value.invariant == "ocm-busy-bit"

    def test_instant_apply_flags_regulator_causality(self, monkeypatch):
        def instant(self, plane, now):
            transition = self._transitions.get(plane)
            return 0.0 if transition is None else transition.new_offset_mv

        monkeypatch.setattr(VoltageRegulator, "applied_offset_mv", instant)
        machine = checked_machine()
        with pytest.raises(InvariantViolation) as excinfo:
            machine.write_voltage_offset(-50)
        assert excinfo.value.invariant == "regulator-causality"

    def test_wrong_settle_time_flags_regulator_causality(self, monkeypatch):
        from repro.cpu import voltage_regulator as vr

        monkeypatch.setattr(
            vr._Transition,
            "settle_time",
            property(lambda self: self.request_time),
        )
        machine = checked_machine()
        with pytest.raises(InvariantViolation) as excinfo:
            machine.write_voltage_offset(-50)
        assert excinfo.value.invariant == "regulator-causality"

    def test_fault_in_safe_state_flags_physics(self, monkeypatch):
        monkeypatch.setattr(
            FaultModel,
            "fault_probability",
            lambda self, frequency_ghz, voltage_volts, instruction="imul": 1.0,
        )
        machine = checked_machine()
        with pytest.raises(InvariantViolation) as excinfo:
            machine.run_imul_window(0, iterations=1_000)
        assert excinfo.value.invariant == "fault-safe-state"

    def test_violations_recorded_on_checker(self, monkeypatch):
        _break_decode_sign(monkeypatch)
        machine = checked_machine()
        with pytest.raises(InvariantViolation):
            machine.write_voltage_offset(-50)
        assert machine.verifier.violations
        record = machine.verifier.violations[0].to_dict()
        assert record["invariant"] == "ocm-roundtrip"
        assert json.dumps(record)  # JSON-safe for artifacts


class TestCounterConservation:
    def test_serial_batch_conserves_counters(self):
        checker = InvariantChecker()
        with EngineSession(executor=SerialExecutor(), verifier=checker) as session:
            session.run_jobs([fuzz_job(case_index=i) for i in range(3)], cache=False)
        assert checker.checks > 0
        assert not checker.violations

    def test_process_batch_conserves_counters(self):
        checker = InvariantChecker()
        executor = make_executor("process", workers=2)
        with EngineSession(executor=executor, verifier=checker) as session:
            session.run_jobs([fuzz_job(case_index=i) for i in range(2)], cache=False)
        assert checker.checks > 0
        assert not checker.violations

    def test_lost_increment_flagged(self):
        class Result:
            counters = {"sim.events_processed": 3}

        checker = InvariantChecker()
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_counter_conservation(
                {"sim.events_processed": 10},
                {"sim.events_processed": 11},
                [Result()],
            )
        assert excinfo.value.invariant == "counter-conservation"

    def test_engine_bookkeeping_exempt(self):
        checker = InvariantChecker()
        checker.check_counter_conservation(
            {"engine.cache_hits": 0}, {"engine.cache_hits": 5}, []
        )
        assert not checker.violations


class TestShrinking:
    def test_passing_schedule_rejected(self):
        with pytest.raises(ReproError):
            shrink_schedule(fuzz_job().schedule())

    def test_shrink_is_minimal_with_custom_predicate(self):
        schedule = fuzz_job(case_index=2, num_actions=16).schedule()
        target = schedule.actions[5]
        shrunk = shrink_schedule(
            schedule, is_failing=lambda candidate: target in candidate.actions
        )
        assert shrunk.actions == (target,)


class TestFuzzCLI:
    def _run(self, capsys, argv):
        from repro import cli

        code = cli.main(argv)
        return code, capsys.readouterr().out

    def test_fuzz_deterministic_across_invocations(self, capsys):
        argv = ["fuzz", "--seed", "0", "--budget", "6", "--no-module"]
        first = self._run(capsys, argv)
        second = self._run(capsys, argv)
        assert first == second
        assert first[0] == 0
        assert "no invariant violations" in first[1]

    def test_single_cpu_selection(self, capsys):
        code, out = self._run(
            capsys,
            ["fuzz", "--seed", "0", "--budget", "2", "--no-module", "--cpu", "Sky Lake"],
        )
        assert code == 0
        assert "Sky Lake" in out
        assert "Comet Lake" not in out

    def test_replay_clean_artifact(self, capsys, tmp_path):
        artifact = tmp_path / "case.json"
        artifact.write_text(fuzz_job(case_index=1).schedule().to_json())
        code, out = self._run(capsys, ["fuzz", "--replay", str(artifact)])
        assert code == 0
        assert "ran clean" in out

    def test_violation_writes_shrunk_artifact(self, capsys, tmp_path, monkeypatch):
        _break_decode_sign(monkeypatch)
        out_path = tmp_path / "repro.json"
        code, out = self._run(
            capsys,
            [
                "fuzz", "--seed", "0", "--budget", "12", "--no-module",
                "--cpu", "Sky Lake", "--out", str(out_path),
            ],
        )
        assert code == 1
        assert "INVARIANT VIOLATION" in out
        artifact = json.loads(out_path.read_text())
        assert artifact["violation"]["invariant"] == "ocm-roundtrip"
        assert len(artifact["actions"]) <= 10
        # The artifact replays: same invariant, straight from disk.
        replayed = run_schedule(FuzzSchedule.from_json(out_path.read_text()))
        assert replayed["violation"]["invariant"] == "ocm-roundtrip"


class TestFinalSweep:
    def test_check_machine_accepts_idle_cancelled_entries(self):
        machine = checked_machine()
        event = machine.simulator.schedule(1e-3, lambda: None)
        event.cancel()
        machine.verifier.check_machine()  # no violation: audit prunes first

    def test_check_machine_needs_a_machine(self):
        with pytest.raises(ReproError):
            InvariantChecker().check_machine()
