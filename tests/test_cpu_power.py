"""Core power model: the quantified benefit of benign undervolting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.core import CharacterizationFramework
from repro.cpu import COMET_LAKE
from repro.cpu.power import CorePowerModel, PowerParameters


@pytest.fixture(scope="module")
def power() -> CorePowerModel:
    return CorePowerModel(COMET_LAKE)


class TestDynamicPower:
    def test_quadratic_in_voltage(self, power):
        # P_dyn ~ V^2 at fixed frequency (Sec. 2.2).
        p1 = power.dynamic_power_w(2.0, 0.8)
        p2 = power.dynamic_power_w(2.0, 1.6)
        assert p2 == pytest.approx(4 * p1)

    def test_linear_in_frequency(self, power):
        p1 = power.dynamic_power_w(1.0, 1.0)
        p2 = power.dynamic_power_w(3.0, 1.0)
        assert p2 == pytest.approx(3 * p1)

    def test_plausible_magnitude(self, power):
        # A client core at 4 GHz / 1.1 V burns a handful of watts.
        watts = power.total_power_w(4.0, 1.1)
        assert 1.0 < watts < 30.0

    def test_negative_voltage_rejected(self, power):
        with pytest.raises(ConfigurationError):
            power.dynamic_power_w(2.0, -0.1)


class TestStaticPower:
    def test_grows_superlinearly_with_voltage(self, power):
        p_low = power.static_power_w(0.8)
        p_high = power.static_power_w(1.2)
        assert p_high / p_low > 1.2 / 0.8  # more than linear

    @given(st.floats(min_value=0.6, max_value=1.3, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_monotone_in_voltage(self, v):
        power = CorePowerModel(COMET_LAKE)
        assert power.static_power_w(v + 0.01) > power.static_power_w(v)


class TestUndervoltSavings:
    def test_positive_savings_for_undervolt(self, power):
        assert power.undervolt_savings(2.0, -50.0) > 0.0

    def test_deeper_is_more_savings(self, power):
        assert power.undervolt_savings(2.0, -60.0) > power.undervolt_savings(2.0, -30.0)

    def test_zero_offset_zero_savings(self, power):
        assert power.undervolt_savings(2.0, 0.0) == pytest.approx(0.0)

    def test_savings_in_realistic_range(self, power):
        # A safe-band undervolt (-50 mV around 0.8 V) saves ~5-20% power.
        savings = power.undervolt_savings(1.8, -50.0)
        assert 0.03 < savings < 0.30


class TestEnergy:
    def test_energy_scales_with_work(self, power):
        e1 = power.energy_for_work_j(1e9, 2.0)
        e2 = power.energy_for_work_j(2e9, 2.0)
        assert e2 == pytest.approx(2 * e1)

    def test_negative_cycles_rejected(self, power):
        with pytest.raises(ConfigurationError):
            power.energy_for_work_j(-1.0, 2.0)

    def test_undervolt_reduces_energy_at_fixed_frequency(self, power):
        base = power.energy_for_work_j(1e9, 2.0, 0.0)
        saved = power.energy_for_work_j(1e9, 2.0, -50.0)
        assert saved < base

    def test_best_safe_operating_point_is_safe_and_beats_nominal(self, power):
        unsafe = CharacterizationFramework(COMET_LAKE, seed=5).run().unsafe_states
        frequency, offset, energy = power.best_safe_operating_point(
            unsafe.safe_offset_mv
        )
        assert frequency in COMET_LAKE.frequency_table
        assert not unsafe.is_unsafe(frequency, offset + 1.0)
        nominal = power.energy_for_work_j(1e9, COMET_LAKE.frequency_table.base_ghz, 0.0)
        assert energy < nominal


class TestParameters:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerParameters(c_eff_nf=0.0)
        with pytest.raises(ConfigurationError):
            PowerParameters(leak_v_slope=0.0)

    def test_custom_parameters_flow_through(self):
        hot = CorePowerModel(COMET_LAKE, PowerParameters(c_eff_nf=2.2))
        cool = CorePowerModel(COMET_LAKE, PowerParameters(c_eff_nf=1.1))
        assert hot.dynamic_power_w(2.0, 1.0) == pytest.approx(
            2 * cool.dynamic_power_w(2.0, 1.0)
        )
