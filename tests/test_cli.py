"""Command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestListCpus:
    def test_lists_all_three(self, capsys):
        assert main(["list-cpus"]) == 0
        out = capsys.readouterr().out
        for codename in ("Sky Lake", "Kaby Lake R", "Comet Lake"):
            assert codename in out


class TestCharacterize:
    def test_adaptive_with_map(self, capsys):
        assert main(["characterize", "--cpu", "Sky Lake", "--adaptive", "--map"]) == 0
        out = capsys.readouterr().out
        assert "maximal safe state" in out
        assert "adaptive characterization" in out
        assert "safe '.'" in out

    def test_json_and_csv_export(self, tmp_path, capsys):
        json_path = tmp_path / "bundle.json"
        csv_path = tmp_path / "boundary.csv"
        code = main(
            [
                "characterize",
                "--cpu",
                "Sky Lake",
                "--adaptive",
                "--json",
                str(json_path),
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert payload["model"]["codename"] == "Sky Lake"
        assert csv_path.read_text().startswith("frequency_ghz,")

    def test_unknown_cpu_raises(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["characterize", "--cpu", "Alder Lake"])


class TestAttack:
    def test_undefended_attack_exits_nonzero(self, capsys):
        # Exit code 1 signals "the attack succeeded" (useful in scripts).
        code = main(["attack", "--cpu", "Comet Lake", "--attack", "imul"])
        out = capsys.readouterr().out
        assert code == 1
        assert "imul-campaign" in out

    def test_protected_attack_exits_zero(self, capsys):
        code = main(["attack", "--cpu", "Comet Lake", "--attack", "imul", "--protect"])
        out = capsys.readouterr().out
        assert code == 0
        assert "polling countermeasure deployed" in out


class TestMaximal:
    def test_prints_three_rows(self, capsys):
        assert main(["maximal"]) == 0
        out = capsys.readouterr().out
        assert out.count("mV") == 3


class TestSpec:
    def test_spec_with_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "table2.csv"
        assert main(["spec", "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "mean base overhead" in out
        assert csv_path.exists()
        assert len(csv_path.read_text().splitlines()) == 24  # header + 23


class TestTrace:
    def test_trace_shows_interception(self, capsys):
        assert main(["trace", "--cpu", "Comet Lake", "--offset", "-250"]) == 0
        out = capsys.readouterr().out
        assert "applied(mV)" in out
        assert "attack target was -250 mV" in out
        # The deep target never applied.
        assert "deepest offset ever applied: -250" not in out


class TestEnergy:
    def test_energy_table(self, capsys):
        assert main(["energy", "--cpu", "Sky Lake"]) == 0
        out = capsys.readouterr().out
        assert "savings" in out
        assert "%" in out


class TestVerify:
    def test_verify_passes_on_protected_machine(self, capsys):
        assert main(["verify", "--cpu", "Comet Lake", "--samples", "6"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out


class TestReproduce:
    def test_reproduce_maximal(self, capsys):
        assert main(["reproduce", "--experiment", "maximal"]) == 0
        out = capsys.readouterr().out
        assert "deployment depth" in out

    def test_reproduce_fig2_with_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "fig2.txt"
        assert main(["reproduce", "--experiment", "fig2", "--out", str(out_path)]) == 0
        assert "Sky Lake" in out_path.read_text()

    def test_reproduce_table2(self, capsys):
        assert main(["reproduce", "--experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "mean base overhead" in out


class TestStatus:
    def test_status_snapshot(self, capsys):
        assert main(["status", "--cpu", "Comet Lake"]) == 0
        out = capsys.readouterr().out
        assert "plug_your_volt" in out
        assert "processor\t: 0" in out


class TestChaos:
    def test_chaos_and_baseline_artifacts_match(self, tmp_path, capsys):
        on_path = tmp_path / "on.json"
        off_path = tmp_path / "off.json"
        base = [
            "chaos", "--cpu", "Comet Lake", "--budget", "4",
            "--actions", "4", "--workers", "2",
        ]
        assert main(base + ["--out", str(on_path)]) == 0
        assert main(base + ["--off", "--out", str(off_path)]) == 0
        capsys.readouterr()
        assert on_path.read_bytes() == off_path.read_bytes()
        artifact = json.loads(on_path.read_text())
        assert artifact["jobs"] == 4
        assert len(artifact["results"]) == 4

    def test_chaos_reports_convergence(self, capsys):
        code = main(
            ["chaos", "--cpu", "Sky Lake", "--budget", "3",
             "--actions", "4", "--workers", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "second pass byte-identical to first: yes" in out
        assert "result digest:" in out


class TestCampaignCheckpoint:
    def test_checkpoint_then_resume(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        args = ["campaign", "--cpu", "Comet Lake", "--no-aes"]
        assert main(args + ["--checkpoint", str(ckpt)]) == 0
        first = capsys.readouterr().out
        assert (ckpt / "checkpoint.json").exists()
        assert main(args + ["--resume", str(ckpt)]) == 0
        second = capsys.readouterr().out
        assert "resuming from checkpoint" in second
        assert "already completed" in second
        # The resumed campaign renders the same prevention matrix.
        matrix = lambda text: [
            line for line in text.splitlines() if line.startswith("Comet Lake")
        ]
        assert matrix(first) == matrix(second)
