"""Property-based safety invariant of the polling countermeasure.

The core guarantee, as a hypothesis property: for *any* sequence of
voltage-offset writes an adversary issues through MSR 0x150 at a fixed
core frequency, the electrically applied offset never crosses the
characterized fault boundary — because the polling period undercuts the
regulator's apply delay, every unsafe target is rewritten while the old
(safe) voltage is still held.

(Frequency *jumps* onto a pre-applied deep offset are excluded here by
construction: that is the adaptive window quantified by the turnaround
ablation and closed by the Sec. 5 deployments.)
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.timeline import VoltageTracer
from repro.core import PollingCountermeasure
from repro.cpu import COMET_LAKE
from repro.testbench import Machine

#: An adversarial schedule: (delay before write in us, offset in mV).
write_schedules = st.lists(
    st.tuples(
        st.integers(min_value=20, max_value=2_000),
        st.integers(min_value=-300, max_value=-1),
    ),
    min_size=1,
    max_size=12,
)

frequencies = st.sampled_from([0.4, 0.8, 1.3, 1.8, 2.4, 3.0, 3.7, 4.3, 4.9])


class TestSafetyInvariant:
    @given(schedule=write_schedules, frequency=frequencies)
    @settings(max_examples=40, deadline=None)
    def test_applied_offset_never_crosses_boundary(
        self, schedule, frequency, comet_characterization
    ):
        unsafe = comet_characterization.unsafe_states
        machine = Machine.build(COMET_LAKE, seed=33)
        module = PollingCountermeasure(machine, unsafe)
        machine.modules.insmod(module)
        machine.set_frequency(frequency)

        tracer = VoltageTracer(machine, sample_period_s=25e-6)
        tracer.start()
        for delay_us, offset in schedule:
            machine.advance(delay_us * 1e-6)
            machine.write_voltage_offset(offset)
        # Let all in-flight transitions settle under observation.
        machine.advance(3 * COMET_LAKE.regulator_latency_s)
        tracer.stop()

        boundary = unsafe.effective_boundary_mv(frequency)
        assert boundary is not None
        violations = tracer.violations(lambda f: unsafe.effective_boundary_mv(f))
        assert violations == [], (
            f"applied state crossed the boundary at {frequency} GHz: "
            f"{violations[:3]}"
        )

    @given(schedule=write_schedules, frequency=frequencies)
    @settings(max_examples=20, deadline=None)
    def test_every_remediation_targets_a_safe_offset(
        self, schedule, frequency, comet_characterization
    ):
        unsafe = comet_characterization.unsafe_states
        machine = Machine.build(COMET_LAKE, seed=33)
        module = PollingCountermeasure(machine, unsafe)
        machine.modules.insmod(module)
        machine.set_frequency(frequency)
        for delay_us, offset in schedule:
            machine.advance(delay_us * 1e-6)
            machine.write_voltage_offset(offset)
        machine.advance(3 * COMET_LAKE.regulator_latency_s)
        for event in module.stats.remediations:
            assert not unsafe.is_unsafe(
                event.observed.frequency_ghz, event.restored_offset_mv
            )

    @given(
        offset=st.integers(min_value=-300, max_value=-1),
        frequency=frequencies,
    )
    @settings(max_examples=30, deadline=None)
    def test_safe_writes_are_never_remediated(
        self, offset, frequency, comet_characterization
    ):
        unsafe = comet_characterization.unsafe_states
        boundary = unsafe.effective_boundary_mv(frequency)
        if offset <= boundary + 12:  # clear of the detection margin
            return
        machine = Machine.build(COMET_LAKE, seed=33)
        module = PollingCountermeasure(machine, unsafe)
        machine.modules.insmod(module)
        machine.set_frequency(frequency)
        machine.write_voltage_offset(offset)
        machine.advance(3 * COMET_LAKE.regulator_latency_s)
        assert module.stats.detections == 0
        applied = machine.processor.core(0).applied_offset_mv(machine.now)
        assert applied == pytest.approx(offset, abs=1.0)
