"""Factory V/f curve: clamping, margins, ground-truth safe limits."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, FrequencyError
from repro.cpu.models import COMET_LAKE, KABY_LAKE_R, PAPER_MODEL_TUPLE, SKY_LAKE
from repro.cpu.vf_curve import VFCurve


@pytest.fixture
def curve() -> VFCurve:
    return COMET_LAKE.vf_curve()


class TestBaseVoltage:
    def test_floor_plus_margin_at_low_frequency(self, curve):
        expected = COMET_LAKE.v_floor_volts + COMET_LAKE.v_margin_volts
        assert curve.base_voltage(0.4) == pytest.approx(expected)

    def test_monotone_nondecreasing_in_frequency(self, curve):
        freqs = COMET_LAKE.frequency_table.frequencies_ghz()
        voltages = [curve.base_voltage(f) for f in freqs]
        assert all(b >= a - 1e-12 for a, b in zip(voltages, voltages[1:]))

    def test_max_turbo_voltage_plausible(self, curve):
        # Client silicon tops out near 1.0-1.3 V.
        v = curve.base_voltage(4.9)
        assert 1.0 < v < 1.3

    def test_off_table_frequency_rejected(self, curve):
        with pytest.raises(FrequencyError):
            curve.base_voltage(7.7)

    def test_cache_consistency(self, curve):
        assert curve.base_voltage(2.0) == curve.base_voltage(2.0)

    def test_base_voltage_mv(self, curve):
        assert curve.base_voltage_mv(2.0) == pytest.approx(
            curve.base_voltage(2.0) * 1e3
        )


class TestEffectiveVoltage:
    def test_offset_rides_on_base(self, curve):
        base = curve.base_voltage(2.0)
        assert curve.effective_voltage(2.0, -100.0) == pytest.approx(base - 0.1)

    def test_zero_offset_is_base(self, curve):
        assert curve.effective_voltage(1.8, 0.0) == curve.base_voltage(1.8)

    def test_ceiling_clamps_overvolts(self, curve):
        v = curve.effective_voltage(4.9, +2000.0)
        assert v == curve.v_ceiling_volts

    def test_floor_clamps_at_zero(self, curve):
        assert curve.effective_voltage(0.4, -5000.0) >= 0.0

    @given(st.floats(min_value=-300, max_value=0, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_deeper_offset_never_raises_voltage(self, offset):
        curve = COMET_LAKE.vf_curve()
        assert curve.effective_voltage(2.0, offset) <= curve.effective_voltage(2.0, 0.0)


class TestGroundTruthSafeLimit:
    def test_every_frequency_has_negative_limit(self):
        # There is a safe undervolt band at every frequency (the paper's
        # "range of under-volted offsets where no DVFS related faults are
        # observed").
        for model in PAPER_MODEL_TUPLE:
            curve = model.vf_curve()
            for f in model.frequency_table.frequencies_ghz():
                assert curve.safe_undervolt_limit_mv(f) < -20.0

    def test_low_frequency_tolerates_deeper_undervolt(self):
        curve = KABY_LAKE_R.vf_curve()
        assert curve.safe_undervolt_limit_mv(0.4) < curve.safe_undervolt_limit_mv(1.8)

    def test_limits_in_plundervolt_range(self):
        # Published attacks found faults between roughly -100 and -250 mV.
        curve = SKY_LAKE.vf_curve()
        limit = curve.safe_undervolt_limit_mv(SKY_LAKE.frequency_table.base_ghz)
        assert -260.0 < limit < -50.0


class TestValidation:
    def test_bad_guardband(self):
        model = COMET_LAKE
        with pytest.raises(ConfigurationError):
            VFCurve(
                analyzer=model.safety_analyzer(),
                table=model.frequency_table,
                guardband=0.9,
                v_floor_volts=0.75,
            )

    def test_floor_below_threshold_rejected(self):
        model = COMET_LAKE
        with pytest.raises(ConfigurationError):
            VFCurve(
                analyzer=model.safety_analyzer(),
                table=model.frequency_table,
                guardband=0.1,
                v_floor_volts=0.3,
            )

    def test_negative_margin_rejected(self):
        model = COMET_LAKE
        with pytest.raises(ConfigurationError):
            VFCurve(
                analyzer=model.safety_analyzer(),
                table=model.frequency_table,
                guardband=0.1,
                v_floor_volts=0.75,
                v_margin_volts=-0.01,
            )

    def test_ceiling_below_floor_rejected(self):
        model = COMET_LAKE
        with pytest.raises(ConfigurationError):
            VFCurve(
                analyzer=model.safety_analyzer(),
                table=model.frequency_table,
                guardband=0.1,
                v_floor_volts=0.75,
                v_ceiling_volts=0.5,
            )
