"""Baseline defenses: SA-00289 access control and Minefield deflection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.cpu import COMET_LAKE
from repro.defenses.access_control import ACCESS_CONTROL_OVERHEAD, AccessControlDefense
from repro.defenses.minefield import MinefieldDefense, WindowVerdict
from repro.faults.injector import FaultInjector
from repro.faults.margin import FaultModel
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import EnclaveHost
from repro.testbench import Machine


@pytest.fixture
def machine() -> Machine:
    return Machine.build(COMET_LAKE, seed=13)


@pytest.fixture
def host(machine) -> EnclaveHost:
    return EnclaveHost(machine)


class TestAccessControl:
    def test_blocks_ocm_while_sgx_active(self, machine, host):
        defense = AccessControlDefense(machine, host)
        defense.deploy()
        host.create_enclave("app")
        assert machine.write_voltage_offset(-50) is False
        assert defense.blocked_writes == 1

    def test_allows_ocm_when_no_enclave(self, machine, host):
        defense = AccessControlDefense(machine, host)
        defense.deploy()
        assert machine.write_voltage_offset(-50) is True

    def test_allows_again_after_enclave_destroyed(self, machine, host):
        defense = AccessControlDefense(machine, host)
        defense.deploy()
        enclave = host.create_enclave("app")
        assert machine.write_voltage_offset(-50) is False
        enclave.destroy()
        assert machine.write_voltage_offset(-50) is True

    def test_benign_requests_tallied(self, machine, host):
        defense = AccessControlDefense(machine, host)
        defense.deploy()
        host.create_enclave("app")
        machine.write_voltage_offset(-40)   # benign power saving
        machine.write_voltage_offset(-250)  # attack-like depth
        assert defense.blocked_writes == 2
        assert defense.blocked_benign_requests == 1

    def test_updates_attestation(self, machine, host):
        service = AttestationService(machine)
        defense = AccessControlDefense(machine, host, attestation=service)
        defense.deploy()
        report = service.generate(host.create_enclave("app"))
        assert report.ocm_disabled
        defense.withdraw()
        report = service.generate(host.create_enclave("app2"))
        assert not report.ocm_disabled

    def test_profile_shows_availability_loss(self, machine, host):
        defense = AccessControlDefense(machine, host)
        defense.deploy()
        profile = defense.profile()
        assert profile.prevents_fault_injection
        assert not profile.benign_dvfs_available
        assert not profile.hardware_deployable
        assert profile.overhead_fraction == ACCESS_CONTROL_OVERHEAD

    def test_double_deploy_rejected(self, machine, host):
        defense = AccessControlDefense(machine, host)
        defense.deploy()
        with pytest.raises(ConfigurationError):
            defense.deploy()

    def test_withdraw_without_deploy_rejected(self, machine, host):
        with pytest.raises(ConfigurationError):
            AccessControlDefense(machine, host).withdraw()


class TestMinefield:
    def make_injector(self) -> FaultInjector:
        return FaultInjector(FaultModel(COMET_LAKE), np.random.default_rng(3))

    def faulting_conditions(self):
        fm = FaultModel(COMET_LAKE)
        vcrit = fm.critical_voltage(2.0)
        return type(fm.conditions_for_offset(2.0, 0.0))(2.0, vcrit - 0.003, -999)

    def safe_conditions(self):
        return FaultModel(COMET_LAKE).conditions_for_offset(2.0, 0.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            MinefieldDefense(density=-0.1)
        with pytest.raises(ConfigurationError):
            MinefieldDefense(mine_sensitivity_boost=0.0)

    def test_overhead_tracks_density(self):
        defense = MinefieldDefense(density=1.0)
        defense.deploy()
        assert defense.overhead_fraction() == pytest.approx(0.5)
        defense.withdraw()
        assert defense.overhead_fraction() == 0.0

    def test_mine_hit_probability(self):
        defense = MinefieldDefense(density=1.0, mine_sensitivity_boost=2.0)
        defense.deploy()
        assert defense.mine_hit_probability() == pytest.approx(2.0 / 3.0)

    def test_no_fault_when_safe(self):
        defense = MinefieldDefense(density=1.0)
        defense.deploy()
        verdict = defense.run_protected_window(
            self.make_injector(), self.safe_conditions(), 1_000_000
        )
        assert verdict is WindowVerdict.NO_FAULT

    def test_detects_most_attacks_without_stepping(self):
        defense = MinefieldDefense(density=2.0, mine_sensitivity_boost=2.0)
        defense.deploy()
        injector = self.make_injector()
        conditions = self.faulting_conditions()
        verdicts = [
            defense.run_protected_window(injector, conditions, 500_000)
            for _ in range(40)
        ]
        detected = verdicts.count(WindowVerdict.DETECTED)
        exploited = verdicts.count(WindowVerdict.EXPLOITED)
        assert detected > exploited  # deflection works statistically

    def test_single_stepping_bypasses_detection(self):
        # The paper's core criticism: with SGX-Step the mines never see
        # the unsafe state, so detection probability collapses to zero.
        defense = MinefieldDefense(density=2.0, mine_sensitivity_boost=2.0)
        defense.deploy()
        injector = self.make_injector()
        conditions = self.faulting_conditions()
        verdicts = [
            defense.run_protected_window(
                injector, conditions, 500_000, single_stepped=True
            )
            for _ in range(40)
        ]
        assert WindowVerdict.DETECTED not in verdicts
        assert WindowVerdict.EXPLOITED in verdicts
        assert defense.exploits > 0

    def test_profile_reflects_weaknesses(self):
        defense = MinefieldDefense(density=1.0)
        defense.deploy()
        profile = defense.profile()
        assert not profile.prevents_fault_injection
        assert profile.benign_dvfs_available
        assert not profile.robust_to_single_stepping

    def test_undeployed_offers_no_protection(self):
        defense = MinefieldDefense(density=2.0)
        injector = self.make_injector()
        conditions = self.faulting_conditions()
        verdicts = {
            defense.run_protected_window(injector, conditions, 500_000)
            for _ in range(20)
        }
        assert WindowVerdict.DETECTED not in verdicts
