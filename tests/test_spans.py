"""Distributed span tracing: determinism, propagation, merge, surfaces.

The span model's contract mirrors the profiler's (PR 4): everything in a
span *record* is derived from sim time and job identity, so the merged
fleet timeline — and its Chrome-trace export — must be byte-identical
between ``SerialExecutor`` and ``ParallelExecutor`` for the same
campaign.  Wall-clock observations (queue wait, execute time, pids) ride
in a labelled sidecar and never touch the records.  These tests pin that
split, the trace-context envelope (the future HTTP wire format), the
attempt spans retries leave behind, the cross-process telemetry
marshalling that rides in the same ``JobResult``, and the CLI/registry
surfaces built on top.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, ClassVar, Dict, Tuple

import pytest

from repro.cpu import PAPER_MODEL_TUPLE
from repro.engine import (
    ChaosPolicy,
    EngineSession,
    FuzzJob,
    JobSpec,
    ParallelExecutor,
    RetryPolicy,
    SerialExecutor,
)
from repro.engine.jobs import CharacterizationRowJob, execute_job
from repro.errors import ConfigurationError, ReproError
from repro.observe import FleetTimeline, parse_openmetrics, render_top
from repro.observe.spans import (
    CAMPAIGN_SPAN_ID,
    SPAN_SCHEMA_VERSION,
    SpanContext,
    SpanRecorder,
    derive_trace_id,
    job_span_id,
    spans_enabled,
)
from repro.telemetry.registry import CompositeRegistry, Registry

#: Keys a deterministic span record may carry — and nothing else.
RECORD_KEYS = {
    "span_id",
    "parent_id",
    "trace_id",
    "name",
    "kind",
    "sim_start_s",
    "sim_end_s",
    "status",
    "attrs",
}


def _row_jobs(model, config, frequencies=2):
    table = model.frequency_table
    picks = list(table.frequencies_ghz())[:: max(1, len(list(table.frequencies_ghz())) // frequencies)][:frequencies]
    return [
        CharacterizationRowJob(
            codename=model.codename,
            frequency_ghz=frequency,
            config=config,
            seed=5,
        )
        for frequency in picks
    ]


def _run(executor, jobs, tmp_path, tag):
    with EngineSession(executor=executor) as session:
        session.run_jobs(jobs, cache=False)
        trace = tmp_path / f"{tag}.trace.json"
        session.export_spans(trace)
        return (
            session.timeline.deterministic_dict(),
            trace.read_bytes(),
            {
                h.name: h.marshal()
                for h in session.telemetry.registry.histograms()
            },
            session.timeline,
        )


@pytest.mark.parametrize(
    "model", PAPER_MODEL_TUPLE, ids=lambda m: m.codename
)
def test_serial_vs_process_span_byte_identity(model, coarse_config, tmp_path):
    """Sim-time span fields are byte-identical across executors."""
    jobs = _row_jobs(model, coarse_config)
    serial_dict, serial_bytes, serial_hists, _ = _run(
        SerialExecutor(), jobs, tmp_path, "serial"
    )
    process_dict, process_bytes, process_hists, timeline = _run(
        ParallelExecutor(2), jobs, tmp_path, "process"
    )
    assert serial_dict == process_dict
    assert serial_bytes == process_bytes
    assert len(timeline) > 0
    assert serial_hists == process_hists


def test_wall_clock_segregated_to_sidecar(coarse_config, tmp_path):
    """Records carry only sim/identity fields; wall data sits apart."""
    jobs = _row_jobs(PAPER_MODEL_TUPLE[0], coarse_config)
    with EngineSession(executor=ParallelExecutor(2)) as session:
        session.run_jobs(jobs, cache=False)
        timeline = session.timeline
    for record in timeline.spans:
        assert set(record) == RECORD_KEYS
        assert record["trace_id"] == timeline.trace_id
    # The sidecar is keyed by span id and is where the wall clocks live:
    # worker pids, start stamps, durations, queue waits.
    job_ids = [r["span_id"] for r in timeline.spans if r["kind"] == "job"]
    assert job_ids
    for span_id in job_ids:
        wall = timeline.wall[span_id]
        assert wall["pid"] > 0
        assert wall["duration_s"] >= 0.0
        assert wall["queue_wait_s"] >= 0.0
    # Both export surfaces stay split the same way.
    document = timeline.to_dict()
    assert set(document["spans"][0]) == RECORD_KEYS
    assert document["wall"]


@dataclass(frozen=True)
class FlakyJob(JobSpec):
    """Fails its first ``fail_times`` executions, then succeeds.

    Counts executions with marker files under ``scratch`` so the script
    survives the process boundary, like the resilience suite's jobs.
    """

    kind: ClassVar[str] = "flaky-span"

    name: str
    scratch: str
    seed: int = 0
    fail_times: int = 0

    def seed_path(self) -> Tuple[str, ...]:
        return ("flaky-span", self.name)

    def run(self, telemetry) -> Dict[str, Any]:
        root = Path(self.scratch)
        root.mkdir(parents=True, exist_ok=True)
        count = len(list(root.glob(f"{self.name}.run.*"))) + 1
        (root / f"{self.name}.run.{count}").touch()
        if count <= self.fail_times:
            raise RuntimeError(f"scripted failure {count}")
        with telemetry.spans.phase("work"):
            pass
        return {"name": self.name, "value": 7}


def test_retry_leaves_attempt_span_with_same_fingerprint(tmp_path):
    """A retried job yields an error attempt span plus the real job span."""
    job = FlakyJob(name="once", scratch=str(tmp_path / "scratch"), fail_times=1)
    policy = RetryPolicy(max_attempts=3, backoff_s=0.01)
    with EngineSession(executor=ParallelExecutor(2, policy=policy)) as session:
        (payload,) = session.run_jobs([job], cache=False)
        timeline = session.timeline
    fingerprint = job.fingerprint()
    attempts = [r for r in timeline.spans if r["kind"] == "attempt"]
    assert len(attempts) == 1
    assert attempts[0]["span_id"] == job_span_id(fingerprint, 1)
    assert attempts[0]["status"] == "error"
    assert attempts[0]["attrs"]["error_type"] == "RuntimeError"
    assert attempts[0]["attrs"]["fingerprint"] == fingerprint
    (job_span,) = [r for r in timeline.spans if r["kind"] == "job"]
    assert job_span["span_id"] == job_span_id(fingerprint, 2)
    assert job_span["attrs"]["fingerprint"] == fingerprint
    assert job_span["status"] == "ok"
    # The payload is the scripted success — retries change supervision
    # history, never results.
    assert payload == {"name": "once", "value": 7}
    # The attempt shows up in the summary the report renders.
    assert timeline.attempts_by_kind()["flaky-span"]["retried"] == 1


def test_chaos_run_leaves_consistent_span_tree(tmp_path):
    """Under chaos every span still hangs off one campaign root."""
    jobs = [
        FuzzJob(codename=model.codename, seed=5, case_index=case, num_actions=4)
        for model in PAPER_MODEL_TUPLE
        for case in range(2)
    ]
    chaos = ChaosPolicy(seed=11, error_rate=0.3)
    policy = RetryPolicy(max_attempts=4, backoff_s=0.01)
    executor = ParallelExecutor(2, policy=policy, chaos=chaos)
    with EngineSession(executor=executor, chaos=chaos) as session:
        session.run_jobs(jobs, cache=False)
        timeline = session.timeline
    ids = {record["span_id"] for record in timeline.spans}
    roots = [r for r in timeline.spans if r["kind"] == "campaign"]
    assert [r["span_id"] for r in roots] == [CAMPAIGN_SPAN_ID]
    for record in timeline.spans:
        if record["kind"] == "campaign":
            assert record["parent_id"] == ""
        else:
            assert record["parent_id"] in ids
        assert record["sim_end_s"] >= record["sim_start_s"]
    # One job span per job regardless of how many attempts chaos burned.
    job_spans = [r for r in timeline.spans if r["kind"] == "job"]
    assert len(job_spans) == len(jobs)
    # The round-trip through the storable document is lossless.
    replayed = FleetTimeline.from_dict(
        json.loads(json.dumps(timeline.to_dict()))
    )
    assert replayed.deterministic_dict() == timeline.deterministic_dict()


def test_span_context_envelope_round_trip():
    trace_id = derive_trace_id("abc", "def")
    context = SpanContext(trace_id=trace_id, parent_id="batch-0")
    envelope = context.to_envelope()
    # Envelope values are strings: the envelope is the HTTP header wire
    # format ROADMAP item 3 will reuse verbatim.
    assert envelope["repro-span-schema"] == str(SPAN_SCHEMA_VERSION)
    assert SpanContext.from_envelope(envelope) == context
    # Header keys are case-insensitive, as on the wire.
    upper = {key.upper(): value for key, value in envelope.items()}
    assert SpanContext.from_envelope(upper) == context
    with pytest.raises(ConfigurationError):
        SpanContext.from_envelope({"repro-trace-id": trace_id})
    newer = dict(envelope, **{"repro-span-schema": SPAN_SCHEMA_VERSION + 1})
    with pytest.raises(ConfigurationError):
        SpanContext.from_envelope(newer)


def test_recorder_export_is_deterministic():
    """Two recorders fed the same sim activity export identical records."""

    def record():
        recorder = SpanRecorder()
        recorder.begin_job(
            fingerprint="f" * 40,
            kind="demo",
            attempt=1,
            context=SpanContext(trace_id="t" * 16, parent_id="batch-0"),
        )
        with recorder.phase("alpha", sim_start_s=0.0) as phase:
            phase.end_sim = 1.5
        with recorder.phase("beta", sim_start_s=1.5) as phase:
            phase.end_sim = 2.0
        recorder.finish_job()
        return recorder.export()

    spans_a, wall_a = record()
    spans_b, wall_b = record()
    assert spans_a == spans_b
    assert spans_a[0]["span_id"] == job_span_id("f" * 40, 1)
    assert spans_a[0]["sim_end_s"] == 2.0  # sum of phase durations
    assert [r["name"] for r in spans_a[1:]] == ["alpha", "beta"]
    # Wall sidecars exist for the same span ids but are not compared:
    # they are the non-deterministic half by construction.
    assert set(wall_a) == set(wall_b) == {r["span_id"] for r in spans_a}


def test_spans_disabled_via_environment(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SPANS", "0")
    assert not spans_enabled()
    job = FuzzJob(codename="Comet Lake", seed=5, case_index=0, num_actions=3)
    result = execute_job(job)
    assert result.spans == []
    assert result.span_wall == {}
    with EngineSession(executor=SerialExecutor()) as session:
        session.run_jobs([job], cache=False)
        assert session.timeline is None
        assert "spans" not in session.run_manifest()
        with pytest.raises(ReproError):
            session.export_spans(tmp_path / "never.json")


@dataclass(frozen=True)
class InstrumentedJob(JobSpec):
    """Observes worker-side histograms/gauges with deterministic values."""

    kind: ClassVar[str] = "instrumented-span"

    name: str
    seed: int = 0

    def seed_path(self) -> Tuple[str, ...]:
        return ("instrumented-span", self.name)

    def run(self, telemetry) -> Dict[str, Any]:
        histogram = telemetry.registry.histogram("test.latency")
        stream = self.stream().child("values")
        for _ in range(5):
            histogram.observe(stream.rng().random())
        telemetry.registry.gauge("test.depth").set(float(len(self.name)))
        return {"name": self.name}


def test_worker_histograms_and_gauges_survive_the_process_boundary():
    """Percentile columns are no longer serial-only (satellite fix)."""
    jobs = [InstrumentedJob(name=name) for name in ("a", "bb", "ccc")]

    def aggregates(executor):
        with EngineSession(executor=executor) as session:
            session.run_jobs(jobs, cache=False)
            registry = session.telemetry.registry
            return (
                {h.name: h.marshal() for h in registry.histograms()},
                {g.name: g.value for g in registry.gauges() if g.value},
            )

    serial_hists, serial_gauges = aggregates(SerialExecutor())
    process_hists, process_gauges = aggregates(ParallelExecutor(2))
    assert serial_hists["test.latency"]["count"] == 15
    assert serial_hists == process_hists
    assert serial_gauges["test.depth"] == process_gauges["test.depth"]


def test_histogram_marshal_merge_matches_direct_observation():
    direct = Registry().histogram("h")
    left = Registry().histogram("h")
    right = Registry().histogram("h")
    for value in (1.0, 5.0, 2.5):
        direct.observe(value)
        left.observe(value)
    for value in (9.0, 0.5):
        direct.observe(value)
        right.observe(value)
    merged = Registry().histogram("h")
    merged.merge(left.marshal())
    merged.merge(right.marshal())
    assert merged.count == direct.count
    assert merged.mean == direct.mean
    assert merged.stddev() == direct.stddev()
    assert (merged.min, merged.max) == (direct.min, direct.max)
    for q in (50.0, 95.0):
        assert merged.percentile(q) == direct.percentile(q)
    # Merging an empty snapshot is a no-op.
    merged.merge(Registry().histogram("h").marshal())
    assert merged.count == direct.count


def test_composite_registry_is_a_read_only_union():
    sim, wall = Registry(), Registry()
    sim.counter("shared").inc(1)
    sim.gauge("sim.g").set(2.0)
    wall.counter("shared").inc(99)  # first member wins
    wall.gauge("wall.g").set(3.0)
    wall.histogram("wall.h").observe(1.0)
    view = CompositeRegistry(sim, wall)
    assert [c.name for c in view.counters()] == ["shared"]
    assert [c.value for c in view.counters()] == [1]
    assert [g.name for g in view.gauges()] == ["sim.g", "wall.g"]
    assert [h.name for h in view.histograms()] == ["wall.h"]
    with pytest.raises(ConfigurationError):
        view.counter("new")
    with pytest.raises(ConfigurationError):
        view.histogram("new")


def test_top_parses_and_renders_engine_families():
    """The dashboard understands exactly what render_openmetrics emits."""
    from repro.observe import render_openmetrics

    registry = Registry()
    registry.gauge("engine.progress.total").set(10)
    registry.gauge("engine.progress.completed").set(4)
    registry.gauge("engine.wall.workers").set(2)
    registry.gauge("engine.wall.in_flight").set(1)
    registry.counter("engine.retries").inc(3)
    for value in (0.1, 0.2, 0.4):
        registry.histogram("engine.wall.exec.fuzz").observe(value)
        registry.histogram("engine.wall.queue_wait.fuzz").observe(value / 10)
    metrics = parse_openmetrics(render_openmetrics(registry))
    assert metrics["gauges"]["repro_engine_progress_total"] == 10.0
    assert metrics["counters"]["repro_engine_retries"] == 3.0
    exec_summary = metrics["summaries"]["repro_engine_wall_exec_fuzz"]
    assert exec_summary["count"] == 3.0
    assert "0.5" in exec_summary["quantiles"]
    frame = render_top(metrics, source="test")
    assert "4/10 jobs" in frame
    assert "1/2 in flight" in frame
    assert "fuzz" in frame and "non-deterministic" in frame
    assert "retried=3" in frame
    # Graceful degradation: a registry with no engine families renders a
    # frame instead of crashing.
    assert "no engine families" in render_top(
        parse_openmetrics(render_openmetrics(Registry()))
    )


def test_registry_records_and_serves_span_timelines(tmp_path):
    jobs = [FuzzJob(codename="Sky Lake", seed=5, case_index=0, num_actions=3)]
    with EngineSession(executor=SerialExecutor()) as session:
        session.run_jobs(jobs, cache=False)
        run_id = session.record_run()
        timeline = session.timeline
    assert run_id is not None
    from repro.registry import RunRegistry

    registry = RunRegistry.from_env()
    document = registry.spans_for(run_id)
    assert document is not None
    stored = FleetTimeline.from_dict(document)
    assert stored.deterministic_dict() == timeline.deterministic_dict()
    # Runs recorded without spans simply have none.
    assert registry.spans_for(run_id) != {}

    from repro.cli import main

    assert main(["spans", run_id[:12]]) == 0
    export = tmp_path / "stored.trace.json"
    assert main(["spans", run_id[:12], "--export", str(export)]) == 0
    events = json.loads(export.read_text())
    assert events["traceEvents"]
    # The manifest feeds the report's latency-attribution section.
    from repro.observe import render_markdown

    with EngineSession(executor=SerialExecutor()) as session:
        session.run_jobs(jobs, cache=False)
        report = render_markdown(session.run_manifest())
    assert "Latency attribution (spans)" in report
    assert timeline.trace_id in report


def test_top_cli_reports_unreachable_endpoint():
    from repro.cli import main

    assert main(["top", "--once", "--url", "http://127.0.0.1:9/metrics"]) == 1
