"""Fault injector: window sampling, bit flips, crash propagation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, MachineCheckError
from repro.cpu.models import COMET_LAKE
from repro.faults.injector import FaultInjector
from repro.faults.margin import FaultModel, OperatingConditions


@pytest.fixture
def fault_model() -> FaultModel:
    return FaultModel(COMET_LAKE)


@pytest.fixture
def injector(fault_model) -> FaultInjector:
    return FaultInjector(fault_model, np.random.default_rng(7))


def safe_conditions(fault_model) -> OperatingConditions:
    return fault_model.conditions_for_offset(2.0, 0.0)


def faulting_conditions(fault_model) -> OperatingConditions:
    vcrit = fault_model.critical_voltage(2.0)
    return OperatingConditions(frequency_ghz=2.0, voltage_volts=vcrit, offset_mv=-999)


def crashing_conditions(fault_model) -> OperatingConditions:
    vcrit = fault_model.critical_voltage(2.0)
    return OperatingConditions(
        frequency_ghz=2.0, voltage_volts=vcrit - 0.05, offset_mv=-999
    )


class TestWindows:
    def test_safe_window_never_faults(self, injector, fault_model):
        outcome = injector.run_window(safe_conditions(fault_model), 1_000_000)
        assert outcome.fault_count == 0
        assert not outcome.faulted
        assert not outcome.crashed

    def test_unsafe_window_faults(self, injector, fault_model):
        outcome = injector.run_window(faulting_conditions(fault_model), 1_000_000)
        assert outcome.fault_count > 0
        assert outcome.faulted

    def test_crash_raises(self, injector, fault_model):
        with pytest.raises(MachineCheckError) as excinfo:
            injector.run_window(crashing_conditions(fault_model), 1000)
        assert excinfo.value.frequency_ghz == 2.0

    def test_crash_suppressible(self, injector, fault_model):
        outcome = injector.run_window(
            crashing_conditions(fault_model), 1000, raise_on_crash=False
        )
        assert outcome.crashed

    def test_zero_ops_allowed(self, injector, fault_model):
        outcome = injector.run_window(safe_conditions(fault_model), 0)
        assert outcome.ops == 0
        assert outcome.fault_count == 0

    def test_negative_ops_rejected(self, injector, fault_model):
        with pytest.raises(ConfigurationError):
            injector.run_window(safe_conditions(fault_model), -1)

    def test_event_recording_capped(self, fault_model):
        injector = FaultInjector(
            fault_model, np.random.default_rng(1), max_recorded_events=4
        )
        outcome = injector.run_window(faulting_conditions(fault_model), 5_000_000)
        assert outcome.fault_count > 4
        assert len(outcome.events) == 4

    def test_event_indices_within_window(self, injector, fault_model):
        outcome = injector.run_window(faulting_conditions(fault_model), 500_000)
        for event in outcome.events:
            assert 0 <= event.op_index < 500_000

    def test_determinism_with_same_seed(self, fault_model):
        a = FaultInjector(fault_model, np.random.default_rng(42)).run_window(
            faulting_conditions(fault_model), 1_000_000
        )
        b = FaultInjector(fault_model, np.random.default_rng(42)).run_window(
            faulting_conditions(fault_model), 1_000_000
        )
        assert a.fault_count == b.fault_count
        assert [e.flipped_bit for e in a.events] == [e.flipped_bit for e in b.events]


class TestBitFlips:
    def test_flip_changes_exactly_one_bit(self, injector):
        event = injector.flip_random_bit(0x1234_5678_9ABC_DEF0)
        diff = event.correct_value ^ event.faulty_value
        assert bin(diff).count("1") == 1
        assert diff == 1 << event.flipped_bit

    def test_flip_stays_in_64_bits(self, injector):
        for _ in range(20):
            event = injector.flip_random_bit((1 << 64) - 1)
            assert 0 <= event.faulty_value < (1 << 64)

    def test_negative_recorded_events_rejected(self, fault_model):
        with pytest.raises(ConfigurationError):
            FaultInjector(fault_model, np.random.default_rng(0), max_recorded_events=-1)


class TestSingleOp:
    def test_safe_single_op_never_faults(self, injector, fault_model):
        conditions = safe_conditions(fault_model)
        assert all(
            injector.maybe_fault_value(conditions, 7) is None for _ in range(1000)
        )

    def test_unsafe_single_op_sometimes_faults(self, injector, fault_model):
        conditions = faulting_conditions(fault_model)
        hits = sum(
            injector.maybe_fault_value(conditions, 7) is not None
            for _ in range(200_000)
        )
        assert hits > 0

    def test_single_op_crash_raises(self, injector, fault_model):
        with pytest.raises(MachineCheckError):
            injector.maybe_fault_value(crashing_conditions(fault_model), 7)

    def test_single_op_crash_traced_and_counted(self, fault_model):
        # Regression: the single-instruction crash path used to raise
        # without emitting fault.crash or bumping the windows counter, so
        # RSA-CRT / explorer crashes were invisible in JSONL traces.
        from repro.telemetry import Telemetry, events_from_jsonl, to_jsonl

        telemetry = Telemetry()
        injector = FaultInjector(
            fault_model, np.random.default_rng(3), telemetry=telemetry
        )
        conditions = crashing_conditions(fault_model)
        with pytest.raises(MachineCheckError):
            injector.maybe_fault_value(conditions, 7)
        assert telemetry.registry.counter("faults.windows").value == 1
        assert telemetry.registry.counter("faults.crashes").value == 1
        crashes = telemetry.tracer.events_by_name("fault.crash")
        assert len(crashes) == 1
        assert crashes[0].args_dict["frequency_ghz"] == conditions.frequency_ghz
        # And it survives the JSONL round trip the flight recorder uses.
        parsed = events_from_jsonl(to_jsonl(telemetry.tracer.events))
        assert any(e.name == "fault.crash" for e in parsed)

    def test_single_op_and_window_crash_paths_match(self, fault_model):
        from repro.telemetry import Telemetry

        single = Telemetry()
        window = Telemetry()
        conditions = crashing_conditions(fault_model)
        with pytest.raises(MachineCheckError):
            FaultInjector(
                fault_model, np.random.default_rng(5), telemetry=single
            ).maybe_fault_value(conditions, 7)
        with pytest.raises(MachineCheckError):
            FaultInjector(
                fault_model, np.random.default_rng(5), telemetry=window
            ).run_window(conditions, 1)
        names = lambda t: [e.name for e in t.tracer.events]  # noqa: E731
        assert names(single) == names(window) == ["fault.crash"]
