"""Every shipped example must run cleanly end to end.

Examples are the artifact's front door; a broken one is a broken repo.
Each is executed in-process via ``runpy`` (same interpreter, real code
paths) with stdout captured.
"""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "plundervolt_key_extraction",
        "benign_undervolting",
        "vendor_deployments",
        "characterize_custom_cpu",
        "full_reproduction",
        "thermal_gap_attack",
    } <= names


class TestExampleOutcomes:
    """Spot-check the narrative-critical lines of two examples."""

    def test_quickstart_reports_prevention(self, capsys):
        runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
        out = capsys.readouterr().out
        assert "faults observed:  0" in out
        assert "Complete prevention" in out

    def test_plundervolt_story_arc(self, capsys):
        runpy.run_path(
            str(EXAMPLES_DIR / "plundervolt_key_extraction.py"), run_name="__main__"
        )
        out = capsys.readouterr().out
        assert "KEY EXTRACTED" in out          # Act I succeeds
        assert "attack FAILED" in out          # Act II is defeated
        assert "re-attestation failed" in out  # the rmmod is caught
