"""Breadth coverage: smaller behaviours not exercised elsewhere."""

from __future__ import annotations

import pytest

from repro.attacks.base import AttackOutcome
from repro.analysis.report import render_characterization_map, render_table
from repro.core.encoding import decode_offset_mv, offset_voltage
from repro.cpu import COMET_LAKE, ocm
from repro.faults.workloads import AES_ROUNDS, INTEGER_ALU, SCALAR_FPU, WORKLOAD_CATALOG
from repro.sgx import EnclaveHost
from repro.testbench import Machine


class TestAttackOutcome:
    def test_as_row_shape(self):
        outcome = AttackOutcome(attack="demo", succeeded=True, faults_observed=3)
        row = outcome.as_row()
        assert row["attack"] == "demo"
        assert row["succeeded"] is True
        assert row["faults"] == 3
        assert set(row) == {
            "attack", "succeeded", "faults", "attempts", "crashes", "writes_blocked",
        }

    def test_notes_accumulate(self):
        outcome = AttackOutcome(attack="demo", succeeded=False)
        outcome.note("first")
        outcome.note("second")
        assert outcome.notes == ["first", "second"]


class TestPositiveOffsets:
    def test_overvolting_encodable(self):
        # Table 1's field is signed: positive (overvolt) offsets encode too.
        value = offset_voltage(50, plane=0)
        assert decode_offset_mv(value) == pytest.approx(50, abs=1.0)

    def test_overvolting_is_never_unsafe(self, comet_characterization):
        unsafe = comet_characterization.unsafe_states
        for f in (0.8, 2.0, 4.9):
            assert not unsafe.is_unsafe(f, +50.0)

    def test_overvolt_applies_and_does_not_fault(self):
        machine = Machine.build(COMET_LAKE, seed=61)
        machine.write_voltage_offset(+40)
        machine.advance(2 * COMET_LAKE.regulator_latency_s)
        assert machine.conditions(0).offset_mv == pytest.approx(40, abs=1.0)
        report = machine.run_imul_window(iterations=500_000)
        assert not report.faulted

    def test_positive_units_roundtrip(self):
        for mv in (1, 100, 999):
            units = ocm.mv_to_units(mv)
            assert units >= 0
            assert ocm.decode_offset_field(ocm.encode_offset_field(units)) == units


class TestEnclaveHost:
    def test_duplicate_names_allowed_find_returns_first_live(self):
        machine = Machine.build(COMET_LAKE, seed=61)
        host = EnclaveHost(machine)
        first = host.create_enclave("twin")
        second = host.create_enclave("twin")
        assert host.find("twin") is first
        first.destroy()
        assert host.find("twin") is second

    def test_enclaves_share_machine_but_not_stats(self):
        machine = Machine.build(COMET_LAKE, seed=61)
        host = EnclaveHost(machine)
        a = host.create_enclave("a")
        b = host.create_enclave("b")
        a.ecall(lambda alu: alu.imul64(2, 3))
        assert a.stats.ecalls == 1
        assert b.stats.ecalls == 0


class TestWorkloadCatalog:
    def test_all_entries_executable(self):
        machine = Machine.build(COMET_LAKE, seed=61)
        for workload in WORKLOAD_CATALOG.values():
            outcome = machine.run_workload_window(workload, ops=10_000)
            assert outcome.ops == 10_000
            assert outcome.fault_count == 0

    def test_sensitivity_ordering_reflected_in_fault_rates(self):
        # At unsafe conditions, imul faults more than ALU ops.
        machine = Machine.build(COMET_LAKE, seed=61)
        fm = machine.fault_model
        vcrit = fm.critical_voltage(2.0)
        p_imul = fm.fault_probability(2.0, vcrit, instruction="imul")
        p_alu = fm.fault_probability(2.0, vcrit, instruction="add")
        p_fpu = fm.fault_probability(2.0, vcrit, instruction="mulsd")
        assert p_imul > p_fpu > p_alu > 0

    def test_catalog_cpi_values(self):
        assert INTEGER_ALU.cycles_per_op < SCALAR_FPU.cycles_per_op
        assert AES_ROUNDS.duration_s(1000, 1.0) == pytest.approx(1e-6)


class TestRenderingCorners:
    def test_table_with_mixed_types(self):
        text = render_table(["a", "b"], [(1, None), ("x", 2.5)])
        assert "None" in text
        assert "2.5" in text

    def test_map_with_custom_bins(self, comet_characterization):
        narrow = render_characterization_map(
            comet_characterization, offset_bin_mv=100, max_depth_mv=300
        )
        data_rows = [l for l in narrow.splitlines() if ".." in l and "safe" not in l]
        assert len(data_rows) == 3

    def test_map_of_empty_result(self):
        from repro.core.characterization import (
            CharacterizationConfig,
            CharacterizationResult,
        )

        empty = CharacterizationResult(
            model=COMET_LAKE,
            config=CharacterizationConfig(
                offset_start_mv=-1, offset_stop_mv=-2
            ),
        )
        assert "empty" in render_characterization_map(empty)


class TestMachineWorkloadEdges:
    def test_zero_advance_is_legal(self):
        machine = Machine.build(COMET_LAKE, seed=61)
        machine.advance(0.0)
        assert machine.now == 0.0

    def test_imul_window_respects_core_index(self):
        machine = Machine.build(COMET_LAKE, seed=61)
        machine.set_frequency(3.0, core_index=2)
        machine.run_imul_window(core_index=2, iterations=1000)
        # Time advanced by 1000 cycles at core 2's 3 GHz.
        assert machine.now == pytest.approx(1000 / 3.0e9)
