"""SPEC2017 catalog, the overhead runner, and the paper-reference data."""

from __future__ import annotations

import pytest

from repro.bench.overhead import (
    PAPER_TABLE2,
    compare_with_paper,
    paper_mean_base_overhead,
    paper_mean_peak_overhead,
)
from repro.bench.runner import SpecOverheadRunner
from repro.bench.spec2017 import SPEC2017_BY_NAME, SPEC2017_SUITE, suite_names
from repro.core import PollingCountermeasure
from repro.cpu import COMET_LAKE
from repro.testbench import Machine


@pytest.fixture
def deployed(comet_characterization):
    machine = Machine.build(COMET_LAKE, seed=3)
    module = PollingCountermeasure(machine, comet_characterization.unsafe_states)
    machine.modules.insmod(module)
    return machine, module


class TestCatalog:
    def test_all_23_benchmarks_present(self):
        assert len(SPEC2017_SUITE) == 23
        assert len(suite_names()) == 23

    def test_suite_split(self):
        fp = [b for b in SPEC2017_SUITE if b.suite == "fp"]
        integer = [b for b in SPEC2017_SUITE if b.suite == "int"]
        assert len(fp) == 13
        assert len(integer) == 10

    def test_reference_scores_match_paper_table(self):
        assert SPEC2017_BY_NAME["503.bwaves"].reference_base == 628.59
        assert SPEC2017_BY_NAME["557.xz_r"].reference_peak == 373.41

    def test_paper_table_consistency(self):
        # The catalog's reference columns are the paper's w/o-polling ones.
        for row in PAPER_TABLE2:
            bench = SPEC2017_BY_NAME[row.name]
            assert bench.reference_base == row.base_without
            assert bench.reference_peak == row.peak_without


class TestPaperAggregates:
    def test_base_mean_near_headline(self):
        # The paper's base column averages ~0.44%; the headline claims
        # 0.28%. Either way: well under 1%.
        assert 0.002 < paper_mean_base_overhead() < 0.006

    def test_peak_mean_under_one_percent(self):
        assert paper_mean_peak_overhead() < 0.01

    def test_all_paper_rows_are_degradations(self):
        for row in PAPER_TABLE2:
            assert row.base_slowdown_pct <= 0
            assert row.peak_slowdown_pct <= 0
            assert row.base_with >= row.base_without


class TestRunner:
    def test_report_covers_suite(self, deployed):
        machine, module = deployed
        report = SpecOverheadRunner(machine, module).run()
        assert [r.name for r in report.rows] == list(suite_names())

    def test_all_rows_degrade(self, deployed):
        machine, module = deployed
        report = SpecOverheadRunner(machine, module).run()
        for row in report.rows:
            assert row.base_slowdown < 0
            assert row.peak_slowdown < 0

    def test_mean_overhead_matches_paper_scale(self, deployed):
        machine, module = deployed
        report = SpecOverheadRunner(machine, module).run()
        # Paper: "minuscule overhead of 0.28%". Ours must land well under
        # 1% and within a factor ~2 of the headline.
        assert 0.001 < report.mean_base_overhead < 0.006
        assert report.mean_overhead < 0.01

    def test_share_comes_from_simulated_polling(self, deployed):
        machine, module = deployed
        report = SpecOverheadRunner(machine, module).run()
        assert report.machine_share > 0
        assert module.stats.polls > 0
        assert report.polling_duty_cycle == pytest.approx(module.duty_cycle())

    def test_control_run_without_module(self, deployed):
        machine, module = deployed
        report = SpecOverheadRunner(machine, module).run_without_module()
        # Noise-only deltas: strictly smaller on average than with polling.
        with_polling = SpecOverheadRunner(machine, module).run()
        assert report.mean_overhead < with_polling.mean_overhead

    def test_row_lookup(self, deployed):
        machine, module = deployed
        report = SpecOverheadRunner(machine, module).run()
        assert report.row("505.mcf_r").name == "505.mcf_r"
        with pytest.raises(KeyError):
            report.row("999.nonexistent")

    def test_deterministic_given_seed(self, comet_characterization):
        def one_run():
            machine = Machine.build(COMET_LAKE, seed=3)
            module = PollingCountermeasure(machine, comet_characterization.unsafe_states)
            machine.modules.insmod(module)
            return SpecOverheadRunner(machine, module, seed=7).run()

        a, b = one_run(), one_run()
        assert [r.base_with for r in a.rows] == [r.base_with for r in b.rows]


class TestComparison:
    def test_comparison_lines_up_names(self, deployed):
        machine, module = deployed
        report = SpecOverheadRunner(machine, module).run()
        comparison = compare_with_paper(report)
        assert len(comparison) == 23
        for row in comparison:
            assert row.measured_base_pct < 0
            assert row.paper_base_pct <= 0
