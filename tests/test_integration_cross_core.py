"""Cross-core attacks on the shared (package-wide) voltage plane.

Real client parts have one core-voltage plane: a 0x150 write issued from
*any* core moves *every* core's voltage.  The original VoltJockey /
Plundervolt setups exploit exactly this — attacker thread on one core,
victim enclave on another.  The polling module must (and does) catch the
attack regardless of which core the write was issued on, because Algo 3
checks every core each iteration.
"""

from __future__ import annotations

import pytest

from repro.core import PollingCountermeasure
from repro.cpu import COMET_LAKE
from repro.sgx import EnclaveHost
from repro.testbench import Machine

ATTACKER_CORE = 3
VICTIM_CORE = 0


@pytest.fixture
def shared_machine() -> Machine:
    return Machine.build(COMET_LAKE, seed=27, shared_voltage_plane=True)


class TestSharedPlaneSubstrate:
    def test_write_from_one_core_moves_all(self, shared_machine):
        machine = shared_machine
        machine.write_voltage_offset(-50, core_index=ATTACKER_CORE)
        machine.advance(2 * COMET_LAKE.regulator_latency_s)
        for core in machine.processor.cores:
            assert core.applied_offset_mv(machine.now) == pytest.approx(-50, abs=1.0)

    def test_per_core_mode_stays_isolated(self):
        machine = Machine.build(COMET_LAKE, seed=27, shared_voltage_plane=False)
        machine.write_voltage_offset(-50, core_index=ATTACKER_CORE)
        machine.advance(2 * COMET_LAKE.regulator_latency_s)
        assert machine.processor.core(VICTIM_CORE).applied_offset_mv(
            machine.now
        ) == 0.0

    def test_readback_consistent_across_cores(self, shared_machine):
        machine = shared_machine
        machine.write_voltage_offset(-42, core_index=ATTACKER_CORE)
        from repro.core.encoding import decode_offset_mv, read_request

        machine.msr_driver.write(VICTIM_CORE, 0x150, read_request(0))
        readback = decode_offset_mv(machine.msr_driver.read(VICTIM_CORE, 0x150))
        assert readback == pytest.approx(-42, abs=1.0)


class TestCrossCoreAttack:
    def test_cross_core_faults_on_undefended_machine(
        self, shared_machine, comet_characterization
    ):
        machine = shared_machine
        host = EnclaveHost(machine)
        enclave = host.create_enclave("victim", core_index=VICTIM_CORE)
        machine.set_frequency(2.0)
        boundary = int(comet_characterization.unsafe_states.boundary_mv(2.0))
        # The attacker writes from its own core...
        machine.write_voltage_offset(boundary - 20, core_index=ATTACKER_CORE)
        machine.advance(2 * COMET_LAKE.regulator_latency_s)

        def payload(alu):
            a = (1 << 512) - 7
            b = (1 << 512) - 11
            return sum(alu.bigmul(a, b) != a * b for _ in range(3000))

        # ...and the victim's enclave arithmetic faults on ITS core.
        assert enclave.ecall(payload) > 0

    def test_polling_defeats_cross_core_attack(
        self, shared_machine, comet_characterization
    ):
        machine = shared_machine
        module = PollingCountermeasure(machine, comet_characterization.unsafe_states)
        machine.modules.insmod(module)
        machine.set_frequency(2.0)
        boundary = int(comet_characterization.unsafe_states.boundary_mv(2.0))
        machine.write_voltage_offset(boundary - 12, core_index=ATTACKER_CORE)
        machine.advance(2 * COMET_LAKE.regulator_latency_s)
        # Remediated before application, on every core.
        for core in machine.processor.cores:
            assert core.applied_offset_mv(machine.now) > boundary
        assert module.stats.detections >= 1
        report = machine.run_imul_window(VICTIM_CORE, iterations=1_000_000)
        assert not report.faulted

    def test_remediation_write_heals_the_shared_plane(
        self, shared_machine, comet_characterization
    ):
        # The module's corrective write is itself a 0x150 write and so
        # heals the whole plane, not just the core it inspected.
        machine = shared_machine
        module = PollingCountermeasure(machine, comet_characterization.unsafe_states)
        machine.modules.insmod(module)
        machine.set_frequency(2.0)
        machine.write_voltage_offset(-250, core_index=2)
        machine.advance(3e-3)
        targets = {
            round(core.target_offset_mv()) for core in machine.processor.cores
        }
        assert len(targets) == 1
        assert targets.pop() > -250
