"""MSR file: definitions, hooks, write-ignore semantics."""

from __future__ import annotations

import pytest

from repro.errors import MSRPermissionError, UnknownMSRError
from repro.cpu.msr import MSR_OC_MAILBOX, MSRFile


@pytest.fixture
def msr() -> MSRFile:
    f = MSRFile()
    f.define(0x150)
    f.define(0x198, writable=False, reset_value=0xABCD)
    return f


class TestDefinitions:
    def test_defined_addresses_sorted(self, msr):
        assert msr.defined_addresses() == [0x150, 0x198]

    def test_is_defined(self, msr):
        assert msr.is_defined(0x150)
        assert not msr.is_defined(0x199)

    def test_unknown_read_raises(self, msr):
        with pytest.raises(UnknownMSRError) as excinfo:
            msr.read(0, 0x1234)
        assert excinfo.value.address == 0x1234

    def test_unknown_write_raises(self, msr):
        with pytest.raises(UnknownMSRError):
            msr.write(0, 0x1234, 1)

    def test_default_name_from_catalog(self):
        f = MSRFile()
        definition = f.define(MSR_OC_MAILBOX)
        assert "0x150" in definition.name


class TestReadWrite:
    def test_reset_value_before_write(self, msr):
        assert msr.read(0, 0x198) == 0xABCD

    def test_write_then_read(self, msr):
        assert msr.write(0, 0x150, 42)
        assert msr.read(0, 0x150) == 42

    def test_per_core_isolation(self, msr):
        msr.write(0, 0x150, 1)
        msr.write(1, 0x150, 2)
        assert msr.read(0, 0x150) == 1
        assert msr.read(1, 0x150) == 2

    def test_read_only_rejected(self, msr):
        with pytest.raises(MSRPermissionError):
            msr.write(0, 0x198, 1)

    def test_values_masked_to_64_bits(self, msr):
        msr.write(0, 0x150, 1 << 80)
        assert msr.read(0, 0x150) == 0

    def test_poke_bypasses_hooks_and_readonly(self, msr):
        msr.poke(0, 0x198, 7)
        assert msr.read(0, 0x198) == 7

    def test_reset_restores_defaults(self, msr):
        msr.write(0, 0x150, 99)
        msr.reset()
        assert msr.read(0, 0x150) == 0
        assert msr.read(0, 0x198) == 0xABCD


class TestWriteHooks:
    def test_hook_transforms_value(self, msr):
        msr.add_write_hook(0x150, lambda core, v: v + 1)
        msr.write(0, 0x150, 10)
        assert msr.read(0, 0x150) == 11

    def test_hook_returning_none_swallows_write(self, msr):
        msr.add_write_hook(0x150, lambda core, v: None)
        assert msr.write(0, 0x150, 10) is False
        assert msr.read(0, 0x150) == 0

    def test_hooks_chain_in_order(self, msr):
        msr.add_write_hook(0x150, lambda core, v: v * 2)
        msr.add_write_hook(0x150, lambda core, v: v + 1)
        msr.write(0, 0x150, 5)
        assert msr.read(0, 0x150) == 11  # (5*2)+1

    def test_insert_hook_runs_first(self, msr):
        msr.add_write_hook(0x150, lambda core, v: v + 1)
        msr.insert_write_hook(0x150, lambda core, v: v * 10)
        msr.write(0, 0x150, 3)
        assert msr.read(0, 0x150) == 31  # (3*10)+1

    def test_inserted_none_blocks_later_hooks(self, msr):
        seen = []
        msr.add_write_hook(0x150, lambda core, v: seen.append(v) or v)
        msr.insert_write_hook(0x150, lambda core, v: None)
        assert msr.write(0, 0x150, 3) is False
        assert seen == []

    def test_remove_hook(self, msr):
        hook = lambda core, v: v + 1  # noqa: E731
        msr.add_write_hook(0x150, hook)
        msr.remove_write_hook(0x150, hook)
        msr.write(0, 0x150, 10)
        assert msr.read(0, 0x150) == 10

    def test_hook_sees_core_index(self, msr):
        cores = []
        msr.add_write_hook(0x150, lambda core, v: cores.append(core) or v)
        msr.write(3, 0x150, 1)
        assert cores == [3]


class TestReadHooks:
    def test_read_hook_synthesises_value(self, msr):
        msr.add_read_hook(0x198, lambda core, stored: 0x5555)
        assert msr.read(0, 0x198) == 0x5555

    def test_read_hook_sees_stored_value(self, msr):
        msr.add_read_hook(0x198, lambda core, stored: stored + 1)
        assert msr.read(0, 0x198) == 0xABCE
