"""Kernel module registry, MSR driver accounting, cpufreq governors."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, FrequencyError, KernelModuleError
from repro.cpu import COMET_LAKE
from repro.cpu.msr import IA32_PERF_STATUS
from repro.kernel.cpufreq import CPUPower, ScalingGovernor
from repro.kernel.module import KernelModule, ModuleRegistry
from repro.testbench import Machine


class RecordingModule(KernelModule):
    name = "recorder"

    def __init__(self) -> None:
        super().__init__()
        self.events = []

    def on_load(self) -> None:
        self.events.append("load")

    def on_unload(self) -> None:
        self.events.append("unload")


class TestModuleRegistry:
    def test_insmod_runs_init(self):
        registry = ModuleRegistry()
        module = RecordingModule()
        registry.insmod(module)
        assert module.loaded
        assert module.events == ["load"]
        assert registry.is_loaded("recorder")

    def test_double_insmod_rejected(self):
        registry = ModuleRegistry()
        registry.insmod(RecordingModule())
        with pytest.raises(KernelModuleError):
            registry.insmod(RecordingModule())

    def test_rmmod_runs_exit(self):
        registry = ModuleRegistry()
        module = RecordingModule()
        registry.insmod(module)
        returned = registry.rmmod("recorder")
        assert returned is module
        assert not module.loaded
        assert module.events == ["load", "unload"]

    def test_rmmod_unknown_rejected(self):
        with pytest.raises(KernelModuleError):
            ModuleRegistry().rmmod("ghost")

    def test_history_records_operations(self):
        registry = ModuleRegistry()
        registry.insmod(RecordingModule(), now=1.0)
        registry.rmmod("recorder", now=2.0)
        assert registry.history == [(1.0, "insmod", "recorder"), (2.0, "rmmod", "recorder")]

    def test_get_and_listing(self):
        registry = ModuleRegistry()
        module = RecordingModule()
        registry.insmod(module)
        assert registry.get("recorder") is module
        assert registry.loaded_modules() == ["recorder"]
        with pytest.raises(KernelModuleError):
            registry.get("ghost")


class TestMSRDriver:
    def test_latency_defaults_to_model(self):
        machine = Machine.build(COMET_LAKE)
        assert machine.msr_driver.access_latency_s == COMET_LAKE.msr_ioctl_latency_s

    def test_accounting(self):
        machine = Machine.build(COMET_LAKE)
        driver = machine.msr_driver
        driver.read(0, IA32_PERF_STATUS)
        driver.read(1, IA32_PERF_STATUS)
        from repro.core.encoding import offset_voltage

        driver.write(0, 0x150, offset_voltage(-10))
        assert driver.stats.reads == 2
        assert driver.stats.writes == 1
        assert driver.stats.busy_seconds == pytest.approx(3 * driver.access_latency_s)

    def test_ignored_write_counted(self):
        machine = Machine.build(COMET_LAKE)
        machine.processor.msr.insert_write_hook(0x150, lambda c, v: None)
        from repro.core.encoding import offset_voltage

        assert machine.msr_driver.write(0, 0x150, offset_voltage(-10)) is False
        assert machine.msr_driver.stats.ignored_writes == 1

    def test_stats_reset(self):
        machine = Machine.build(COMET_LAKE)
        machine.msr_driver.read(0, IA32_PERF_STATUS)
        machine.msr_driver.stats.reset()
        assert machine.msr_driver.stats.reads == 0
        assert machine.msr_driver.stats.busy_seconds == 0.0


class TestCPUFreq:
    @pytest.fixture
    def machine(self) -> Machine:
        return Machine.build(COMET_LAKE)

    def test_userspace_governor_sets_frequency(self, machine):
        machine.cpufreq.set_governor(0, ScalingGovernor.USERSPACE)
        programmed = machine.cpufreq.set_frequency(0, 2.4)
        assert programmed == pytest.approx(2.4)
        assert machine.processor.core(0).frequency_ghz == pytest.approx(2.4)

    def test_frequency_without_userspace_rejected(self, machine):
        with pytest.raises(FrequencyError):
            machine.cpufreq.set_frequency(0, 2.4)

    def test_performance_governor_pins_max(self, machine):
        machine.cpufreq.set_governor(0, ScalingGovernor.PERFORMANCE)
        assert machine.processor.core(0).frequency_ghz == pytest.approx(4.9)

    def test_powersave_governor_pins_min(self, machine):
        machine.cpufreq.set_governor(0, ScalingGovernor.POWERSAVE)
        assert machine.processor.core(0).frequency_ghz == pytest.approx(0.4)

    def test_policy_limits_clamp_requests(self, machine):
        machine.cpufreq.set_policy_limits(0, min_ghz=1.0, max_ghz=2.0)
        machine.cpufreq.set_governor(0, ScalingGovernor.USERSPACE)
        assert machine.cpufreq.set_frequency(0, 4.0) == pytest.approx(2.0)

    def test_invalid_policy_limits_rejected(self, machine):
        with pytest.raises(ConfigurationError):
            machine.cpufreq.set_policy_limits(0, min_ghz=3.0, max_ghz=2.0)

    def test_ondemand_follows_load(self, machine):
        machine.cpufreq.set_governor(0, ScalingGovernor.ONDEMAND)
        low = machine.cpufreq.report_load(0, 0.1)
        high = machine.cpufreq.report_load(0, 0.95)
        assert high > low

    def test_load_out_of_range_rejected(self, machine):
        with pytest.raises(ConfigurationError):
            machine.cpufreq.report_load(0, 1.5)

    def test_transition_log(self, machine):
        machine.cpufreq.set_governor(0, ScalingGovernor.PERFORMANCE)
        assert (0, 4.9) in machine.cpufreq.transition_log

    def test_available_frequencies_match_table(self, machine):
        assert machine.cpufreq.available_frequencies() == list(
            COMET_LAKE.frequency_table.frequencies_ghz()
        )


class TestCPUPower:
    def test_frequency_set_all_cores(self):
        machine = Machine.build(COMET_LAKE)
        machine.cpupower.frequency_set(2.0)
        for core in machine.processor.cores:
            assert core.frequency_ghz == pytest.approx(2.0)

    def test_frequency_set_single_core(self):
        machine = Machine.build(COMET_LAKE)
        machine.cpupower.frequency_set(3.0, core_index=1)
        assert machine.processor.core(1).frequency_ghz == pytest.approx(3.0)
        assert machine.processor.core(0).frequency_ghz == pytest.approx(1.8)

    def test_frequency_info(self):
        machine = Machine.build(COMET_LAKE)
        machine.cpupower.frequency_set(2.2, core_index=0)
        info = machine.cpupower.frequency_info(0)
        assert info["current_ghz"] == pytest.approx(2.2)
        assert info["governor"] == "userspace"
        assert 2.2 in info["available"]
