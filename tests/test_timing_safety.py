"""Eq. 1/2/3 predicates and their inversions (the ground-truth physics)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.timing.constants import INTEL_14NM
from repro.timing.path import CriticalPath, scaled_path
from repro.timing.safety import SafetyAnalyzer, budget_for


@pytest.fixture
def analyzer() -> SafetyAnalyzer:
    return SafetyAnalyzer(scaled_path(260.0, INTEL_14NM))


class TestBudget:
    def test_components(self):
        budget = budget_for(2.0, INTEL_14NM)
        assert budget.t_clk_ps == pytest.approx(500.0)
        assert budget.t_setup_ps == INTEL_14NM.t_setup_ps
        assert budget.t_eps_ps == INTEL_14NM.t_eps_ps

    def test_slack_budget_is_tclk_minus_setup_minus_eps(self):
        budget = budget_for(1.0, INTEL_14NM)
        assert budget.slack_budget_ps == pytest.approx(
            1000.0 - INTEL_14NM.t_setup_ps - INTEL_14NM.t_eps_ps
        )

    def test_absurd_frequency_rejected(self):
        # 50 GHz leaves no budget after setup+eps with these constants.
        with pytest.raises(ConfigurationError):
            budget_for(50.0, INTEL_14NM)


class TestOperatingPoint:
    def test_safe_at_nominal(self, analyzer):
        point = analyzer.operating_point(2.0, 1.0)
        assert point.is_safe
        assert point.slack_ps > 0
        assert point.violation_ps == 0.0

    def test_unsafe_when_deeply_undervolted(self, analyzer):
        point = analyzer.operating_point(3.0, 0.70)
        assert not point.is_safe
        assert point.violation_ps > 0

    def test_violation_equals_negative_slack(self, analyzer):
        point = analyzer.operating_point(3.0, 0.70)
        assert point.violation_ps == pytest.approx(-point.slack_ps)

    def test_eq2_is_literal(self, analyzer):
        # The safe predicate is exactly T_src+T_prop <= T_clk-T_setup-T_eps.
        point = analyzer.operating_point(2.5, 0.95)
        lhs = analyzer.path.delay_at(0.95)
        rhs = budget_for(2.5, INTEL_14NM).slack_budget_ps
        assert point.is_safe == (lhs <= rhs)


class TestCriticalVoltage:
    def test_zero_slack_at_critical_voltage(self, analyzer):
        vcrit = analyzer.critical_voltage(2.0)
        assert analyzer.slack_ps(2.0, vcrit) == pytest.approx(0.0, abs=1e-6)

    def test_below_critical_is_unsafe(self, analyzer):
        vcrit = analyzer.critical_voltage(2.0)
        assert not analyzer.is_safe(2.0, vcrit - 0.002)

    def test_above_critical_is_safe(self, analyzer):
        vcrit = analyzer.critical_voltage(2.0)
        assert analyzer.is_safe(2.0, vcrit + 0.002)

    @given(st.floats(min_value=0.5, max_value=4.5, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_frequency(self, f):
        # Higher frequency -> smaller budget -> higher critical voltage.
        analyzer = SafetyAnalyzer(scaled_path(260.0, INTEL_14NM))
        assert analyzer.critical_voltage(f + 0.2) > analyzer.critical_voltage(f)


class TestCrashVoltage:
    def test_crash_below_critical(self, analyzer):
        f = 2.0
        assert analyzer.crash_voltage(f) < analyzer.critical_voltage(f)

    def test_retention_floor_honoured(self, analyzer):
        # At very low frequency the timing-derived crash voltage would
        # fall below retention; the floor wins.
        assert analyzer.crash_voltage(0.2) == INTEL_14NM.v_retention_volts

    def test_invalid_fraction_rejected(self, analyzer):
        with pytest.raises(ConfigurationError):
            analyzer.crash_voltage(2.0, crash_fraction=0.0)


class TestDesignVoltage:
    def test_guardband_zero_is_critical_voltage(self, analyzer):
        assert analyzer.design_voltage(2.0, guardband=0.0) == pytest.approx(
            analyzer.critical_voltage(2.0), abs=1e-6
        )

    def test_guardband_raises_voltage(self, analyzer):
        assert analyzer.design_voltage(2.0, guardband=0.1) > analyzer.critical_voltage(2.0)

    def test_more_guardband_more_voltage(self, analyzer):
        assert analyzer.design_voltage(2.0, guardband=0.2) > analyzer.design_voltage(
            2.0, guardband=0.1
        )

    def test_invalid_guardband_rejected(self, analyzer):
        with pytest.raises(ConfigurationError):
            analyzer.design_voltage(2.0, guardband=1.0)


class TestMaxSafeFrequency:
    def test_consistent_with_is_safe(self, analyzer):
        voltage = 0.95
        fmax = analyzer.max_safe_frequency(voltage)
        assert analyzer.is_safe(round(fmax - 0.05, 3), voltage)
        assert not analyzer.is_safe(round(fmax + 0.05, 3), voltage)

    def test_higher_voltage_allows_higher_frequency(self, analyzer):
        assert analyzer.max_safe_frequency(1.1) > analyzer.max_safe_frequency(0.9)


class TestCriticalPathValidation:
    def test_rejects_nonpositive_src(self):
        with pytest.raises(ConfigurationError):
            CriticalPath(t_src_ps=0.0, t_prop_ps=100.0, process=INTEL_14NM)

    def test_scaled_path_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            scaled_path(260.0, INTEL_14NM, src_fraction=1.0)

    def test_scaled_path_splits_delay(self):
        path = scaled_path(200.0, INTEL_14NM, src_fraction=0.25)
        assert path.t_src_ps == pytest.approx(50.0)
        assert path.t_prop_ps == pytest.approx(150.0)
        assert path.nominal_delay_ps == pytest.approx(200.0)

    def test_voltage_for_delay_roundtrip(self):
        path = scaled_path(260.0, INTEL_14NM)
        delay = path.delay_at(0.85)
        assert path.voltage_for_delay(delay) == pytest.approx(0.85, abs=1e-6)

    def test_src_and_prop_scale_together(self):
        path = scaled_path(260.0, INTEL_14NM)
        v = 0.8
        assert path.t_src_at(v) / path.t_src_ps == pytest.approx(
            path.t_prop_at(v) / path.t_prop_ps
        )
