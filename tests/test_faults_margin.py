"""Fault model: violated fraction, onset threshold, crash boundary."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.cpu.models import COMET_LAKE, SKY_LAKE
from repro.faults.margin import (
    BASE_FAULT_RATE_PER_OP,
    INSTRUCTION_SENSITIVITY,
    ONSET_FRACTION,
    FaultModel,
)


@pytest.fixture(scope="module")
def fault_model() -> FaultModel:
    return FaultModel(COMET_LAKE)


class TestViolatedFraction:
    def test_half_at_critical_voltage(self, fault_model):
        vcrit = fault_model.critical_voltage(2.0)
        assert fault_model.violated_fraction(2.0, vcrit) == pytest.approx(0.5)

    def test_tiny_well_above_critical(self, fault_model):
        vcrit = fault_model.critical_voltage(2.0)
        assert fault_model.violated_fraction(2.0, vcrit + 0.06) < 1e-4

    def test_saturates_below_critical(self, fault_model):
        vcrit = fault_model.critical_voltage(2.0)
        assert fault_model.violated_fraction(2.0, vcrit - 0.06) > 0.999

    @given(st.floats(min_value=0.65, max_value=1.2, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_monotone_decreasing_in_voltage(self, v):
        model = FaultModel(COMET_LAKE)
        assert model.violated_fraction(2.0, v) >= model.violated_fraction(2.0, v + 0.01)

    def test_vcrit_cache_consistent(self, fault_model):
        direct = fault_model.analyzer.critical_voltage(3.0)
        assert fault_model.critical_voltage(3.0) == pytest.approx(direct)
        assert fault_model.critical_voltage(3.0) == pytest.approx(direct)

    def test_vcrit_cache_distinguishes_sub_tenth_ghz(self):
        # Regression: the cache used to key on round(f * 10), so any two
        # frequencies inside the same 0.1 GHz bucket (a fine explorer
        # sweep at 3.61 vs 3.64 GHz) shared one cached critical voltage.
        model = FaultModel(COMET_LAKE)
        low = model.critical_voltage(3.61)
        high = model.critical_voltage(3.64)
        assert low != high
        assert low == model.analyzer.critical_voltage(3.61)
        assert high == model.analyzer.critical_voltage(3.64)
        # Repeat queries still hit the cache and stay exact.
        assert model.critical_voltage(3.61) == low
        assert model.critical_voltage(3.64) == high


class TestFaultProbability:
    def test_zero_at_nominal(self, fault_model):
        base = fault_model.vf_curve.base_voltage(2.0)
        assert fault_model.fault_probability(2.0, base) == 0.0

    def test_zero_below_onset_fraction(self, fault_model):
        vcrit = fault_model.critical_voltage(2.0)
        sigma = COMET_LAKE.sigma_mv * 1e-3
        # 3 sigma above critical: fraction ~0.001 < ONSET_FRACTION.
        assert fault_model.fault_probability(2.0, vcrit + 3.0 * sigma) == 0.0

    def test_positive_past_onset(self, fault_model):
        vcrit = fault_model.critical_voltage(2.0)
        assert fault_model.fault_probability(2.0, vcrit) > 0.0

    def test_scaled_by_sensitivity(self, fault_model):
        vcrit = fault_model.critical_voltage(2.0)
        p_imul = fault_model.fault_probability(2.0, vcrit, instruction="imul")
        p_add = fault_model.fault_probability(2.0, vcrit, instruction="add")
        assert p_add == pytest.approx(
            p_imul * INSTRUCTION_SENSITIVITY["add"] / INSTRUCTION_SENSITIVITY["imul"]
        )

    def test_imul_is_most_sensitive(self):
        # "the imul instruction has the maximum probability of being
        # faulted" (Sec. 4.2).
        assert INSTRUCTION_SENSITIVITY["imul"] == max(INSTRUCTION_SENSITIVITY.values())

    def test_unknown_instruction_rejected(self, fault_model):
        with pytest.raises(ConfigurationError):
            fault_model.fault_probability(2.0, 0.8, instruction="fsqrt")

    def test_capped_at_one(self, fault_model):
        assert fault_model.fault_probability(2.0, 0.66) <= 1.0

    def test_onset_constant_sane(self):
        assert 0.0 < ONSET_FRACTION < 0.5
        assert 0.0 < BASE_FAULT_RATE_PER_OP < 1e-3


class TestCrash:
    def test_no_crash_at_nominal(self, fault_model):
        base = fault_model.vf_curve.base_voltage(2.0)
        assert not fault_model.is_crash(2.0, base)

    def test_crash_deep_below_critical(self, fault_model):
        vcrit = fault_model.critical_voltage(2.0)
        assert fault_model.is_crash(2.0, vcrit - 0.05)

    def test_crash_below_retention_any_frequency(self, fault_model):
        v = COMET_LAKE.process.v_retention_volts - 0.01
        assert fault_model.is_crash(0.4, v)

    def test_fault_band_exists_between_onset_and_crash(self, fault_model):
        # There must be voltages that fault but do not crash — the paper's
        # exploitable "region of interest".
        vcrit = fault_model.critical_voltage(2.0)
        v = vcrit + 0.004
        assert fault_model.fault_probability(2.0, v) > 0.0
        assert not fault_model.is_crash(2.0, v)


class TestConditionsForOffset:
    def test_matches_vf_curve(self, fault_model):
        conditions = fault_model.conditions_for_offset(2.0, -100.0)
        assert conditions.frequency_ghz == 2.0
        assert conditions.offset_mv == -100.0
        assert conditions.voltage_volts == pytest.approx(
            fault_model.vf_curve.effective_voltage(2.0, -100.0)
        )

    def test_models_have_distinct_boundaries(self):
        # Different silicon characterizes differently (Figs. 2-4 differ).
        comet = FaultModel(COMET_LAKE)
        skylake = FaultModel(SKY_LAKE)
        assert comet.critical_voltage(2.0) != pytest.approx(
            skylake.critical_voltage(2.0), abs=1e-4
        )
