"""Masking semantics of the vectorized timing/fault kernels.

The scalar physics stack signals "no valid operating point" by raising
:class:`~repro.errors.ConfigurationError` (sub-threshold supply in
``DelayModel.raw_delay``, unreachable scale in ``voltage_for_scale``).
Arrays cannot raise per element, so :mod:`repro.vector.kernels` masks
instead: invalid lanes carry ``NaN`` values and ``valid=False``, and the
safety grid folds them into ``unsafe=True``.  These tests pin that
mapping — including the exact ``V == Vth(T)`` boundary for all three
process nodes — and the elementwise building blocks' bit-exactness
against their scalar counterparts.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.timing.constants import INTEL_10NM, INTEL_14NM, INTEL_14NM_PLUS
from repro.timing.delay_model import DelayModel
from repro.timing.path import scaled_path
from repro.timing.safety import SafetyAnalyzer, budget_for
from repro.vector.kernels import (
    crash_voltage_grid,
    critical_voltage_grid,
    effective_voltage_grid,
    fault_grid,
    path_delay_grid,
    phi_grid,
    pow_elementwise,
    raw_delay_grid,
    safety_grid,
    scale_grid,
    timing_budget_grid,
    voltage_for_scale_grid,
)

ALL_PROCESSES = (INTEL_14NM, INTEL_14NM_PLUS, INTEL_10NM)


def _voltage_samples(process, rng):
    """Voltages straddling the threshold: sub, boundary, near, nominal."""
    vth = process.vth_volts
    return np.concatenate(
        [
            rng.uniform(0.0, vth, size=8),            # strictly sub-threshold
            np.array([vth]),                           # the exact boundary
            vth + rng.uniform(1e-6, 0.05, size=8),     # near-threshold
            rng.uniform(vth + 0.05, 1.4, size=16),     # operating range
        ]
    )


class TestElementwiseBuildingBlocks:
    def test_pow_elementwise_matches_cpython_pow_bitwise(self):
        rng = np.random.default_rng(7)
        base = rng.uniform(1e-6, 3.0, size=64)
        for exponent in (-2.5, -1.3, 1.2, 1.32, 2.0):
            grid = pow_elementwise(base, exponent)
            for b, got in zip(base.tolist(), grid.tolist()):
                assert got == b**exponent  # bitwise: == on floats, no tolerance

    def test_phi_grid_matches_math_erf_bitwise(self):
        rng = np.random.default_rng(11)
        z = rng.uniform(-6.0, 6.0, size=64)
        grid = phi_grid(z)
        for value, got in zip(z.tolist(), grid.tolist()):
            assert got == 0.5 * (1.0 + math.erf(value / math.sqrt(2.0)))


class TestSubThresholdMasking:
    """ConfigurationError in the scalar path <=> masked lane in the grid."""

    @pytest.mark.parametrize("process", ALL_PROCESSES)
    def test_raw_delay_masks_exactly_where_scalar_raises(self, process):
        model = DelayModel(process)
        rng = np.random.default_rng(3)
        voltages = _voltage_samples(process, rng)
        grid = raw_delay_grid(process, voltages)
        for voltage, value, valid in zip(
            voltages.tolist(), grid.values.tolist(), grid.valid.tolist()
        ):
            if valid:
                assert value == model.raw_delay(voltage)
            else:
                assert math.isnan(value)
                with pytest.raises(ConfigurationError):
                    model.raw_delay(voltage)

    @pytest.mark.parametrize("process", ALL_PROCESSES)
    def test_exact_threshold_boundary_is_masked(self, process):
        """At V == Vth(T) the overdrive is exactly zero: the scalar model
        raises, the grid masks — for every process node and both at the
        reference temperature and at a shifted die temperature."""
        for temperature in (None, 85.0):
            vth = process.vth_at(
                temperature
                if temperature is not None
                else process.reference_temperature_c
            )
            voltages = np.array([vth])
            grid = raw_delay_grid(process, voltages, temperature)
            assert not bool(grid.valid[0])
            assert math.isnan(float(grid.values[0]))
            with pytest.raises(ConfigurationError):
                DelayModel(process).raw_delay(vth, temperature)

    @pytest.mark.parametrize("process", ALL_PROCESSES)
    def test_scale_grid_matches_scalar_on_valid_lanes(self, process):
        model = DelayModel(process)
        rng = np.random.default_rng(5)
        voltages = _voltage_samples(process, rng)
        grid = scale_grid(process, voltages)
        for voltage, value, valid in zip(
            voltages.tolist(), grid.values.tolist(), grid.valid.tolist()
        ):
            if valid:
                assert value == model.scale(voltage)
            else:
                assert math.isnan(value)

    @pytest.mark.parametrize("process", ALL_PROCESSES)
    def test_boundary_cell_is_unsafe_in_safety_grid(self, process):
        """The masked boundary lane must land on the conservative side:
        ``unsafe=True`` with a NaN path delay, never silently safe."""
        path = scaled_path(220.0, process)
        vth = process.vth_volts
        voltages = np.array([vth, process.reference_voltage_volts])
        grid = safety_grid(path, 1.0, voltages)
        assert not bool(grid.valid[0])
        assert math.isnan(float(grid.path_delay_ps[0]))
        assert bool(grid.unsafe[0])
        assert not bool(grid.safe[0])
        # The companion nominal-voltage lane stays valid and agrees with
        # the scalar analyzer.
        analyzer = SafetyAnalyzer(path)
        assert bool(grid.valid[1])
        assert bool(grid.safe[1]) == analyzer.is_safe(
            1.0, process.reference_voltage_volts
        )


class TestSafetyGrids:
    @pytest.mark.parametrize("process", ALL_PROCESSES)
    def test_safety_grid_matches_scalar_analyzer(self, process):
        path = scaled_path(240.0, process)
        analyzer = SafetyAnalyzer(path)
        rng = np.random.default_rng(13)
        voltages = rng.uniform(process.vth_volts + 0.02, 1.3, size=32)
        frequency = 2.0
        grid = safety_grid(path, frequency, voltages)
        for voltage, slack, safe, unsafe in zip(
            voltages.tolist(),
            grid.slack_ps.tolist(),
            grid.safe.tolist(),
            grid.unsafe.tolist(),
        ):
            assert slack == analyzer.slack_ps(frequency, voltage)
            assert safe == analyzer.is_safe(frequency, voltage)
            assert unsafe != safe

    def test_timing_budget_grid_matches_budget_for(self):
        frequencies = np.array([0.8, 1.0, 2.0, 3.4, 4.9])
        grid = timing_budget_grid(INTEL_14NM, frequencies)
        for frequency, t_clk, slack_budget in zip(
            frequencies.tolist(),
            grid.t_clk_ps.tolist(),
            grid.slack_budget_ps.tolist(),
        ):
            budget = budget_for(frequency, INTEL_14NM)
            assert t_clk == budget.t_clk_ps
            assert slack_budget == budget.slack_budget_ps

    @pytest.mark.parametrize("process", ALL_PROCESSES)
    def test_path_delay_grid_matches_scalar(self, process):
        path = scaled_path(200.0, process)
        rng = np.random.default_rng(17)
        voltages = rng.uniform(process.vth_volts + 0.02, 1.3, size=16)
        grid = path_delay_grid(path, voltages)
        for voltage, value in zip(voltages.tolist(), grid.values.tolist()):
            assert value == path.delay_at(voltage)


class TestVoltageSolvers:
    @pytest.mark.parametrize("process", ALL_PROCESSES)
    def test_critical_voltage_grid_matches_scalar_bisection(self, process):
        path = scaled_path(230.0, process)
        analyzer = SafetyAnalyzer(path)
        frequencies = np.array([0.8, 1.4, 2.0, 2.8, 3.4])
        grid = critical_voltage_grid(path, frequencies)
        for frequency, value in zip(frequencies.tolist(), grid.values.tolist()):
            assert value == analyzer.critical_voltage(frequency)

    @pytest.mark.parametrize("process", ALL_PROCESSES)
    def test_crash_voltage_grid_matches_scalar_and_floors_at_retention(self, process):
        path = scaled_path(230.0, process)
        analyzer = SafetyAnalyzer(path)
        frequencies = np.array([0.8, 1.4, 2.0, 2.8, 3.4])
        grid = crash_voltage_grid(path, frequencies)
        for frequency, value in zip(frequencies.tolist(), grid.values.tolist()):
            assert value == analyzer.crash_voltage(frequency)
            assert value >= process.v_retention_volts

    def test_crash_voltage_grid_rejects_nonpositive_fraction(self):
        path = scaled_path(230.0, INTEL_14NM)
        with pytest.raises(ConfigurationError):
            crash_voltage_grid(path, np.array([2.0]), crash_fraction=0.0)

    @pytest.mark.parametrize("process", ALL_PROCESSES)
    def test_voltage_for_scale_grid_matches_scalar(self, process):
        model = DelayModel(process)
        targets = np.array([1.05, 1.2, 1.5, 2.0])
        grid = voltage_for_scale_grid(process, targets)
        for target, value in zip(targets.tolist(), grid.values.tolist()):
            assert value == model.voltage_for_scale(target)


class TestFaultGrids:
    def test_effective_voltage_grid_matches_vf_curve(self):
        from repro.cpu import COMET_LAKE

        curve = COMET_LAKE.vf_curve()
        offsets = np.arange(-1, -301, -1)
        grid = effective_voltage_grid(curve, 2.0, offsets)
        for offset, value in zip(offsets.tolist(), grid.tolist()):
            assert value == curve.effective_voltage(2.0, offset)

    def test_fault_grid_matches_scalar_fault_model(self):
        from repro.cpu import COMET_LAKE
        from repro.faults.margin import FaultModel

        fault_model = FaultModel(COMET_LAKE)
        curve = COMET_LAKE.vf_curve()
        offsets = np.arange(-1, -301, -1)
        voltages = effective_voltage_grid(curve, 2.0, offsets)
        grid = fault_grid(fault_model, 2.0, voltages)
        for voltage, fraction, probability, crash in zip(
            voltages.tolist(),
            grid.violated_fraction.tolist(),
            grid.fault_probability.tolist(),
            grid.crash.tolist(),
        ):
            assert fraction == fault_model.violated_fraction(2.0, voltage)
            assert probability == fault_model.fault_probability(
                2.0, voltage, instruction="imul"
            )
            assert crash == fault_model.is_crash(2.0, voltage)

    def test_fault_grid_rejects_unknown_instruction(self):
        from repro.cpu import COMET_LAKE
        from repro.faults.margin import FaultModel

        fault_model = FaultModel(COMET_LAKE)
        with pytest.raises(ConfigurationError):
            fault_grid(fault_model, 2.0, np.array([0.9]), instruction="fnord")
