"""Frequency tables: the F set of Algo 2."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, FrequencyError
from repro.cpu.frequency_table import FrequencyTable
from repro.cpu.models import COMET_LAKE, KABY_LAKE_R, SKY_LAKE


@pytest.fixture
def table() -> FrequencyTable:
    return FrequencyTable(min_ghz=0.4, max_ghz=4.9, base_ghz=1.8)


class TestConstruction:
    def test_paper_tables_resolve(self):
        assert SKY_LAKE.frequency_table.base_ghz == 3.2
        assert KABY_LAKE_R.frequency_table.base_ghz == 1.6
        assert COMET_LAKE.frequency_table.base_ghz == 1.8

    def test_base_outside_range_rejected(self):
        with pytest.raises(ConfigurationError):
            FrequencyTable(min_ghz=1.0, max_ghz=2.0, base_ghz=2.5)

    def test_non_bus_clock_multiple_rejected(self):
        with pytest.raises(ConfigurationError):
            FrequencyTable(min_ghz=0.45, max_ghz=2.0, base_ghz=1.0)

    def test_zero_min_rejected(self):
        with pytest.raises(ConfigurationError):
            FrequencyTable(min_ghz=0.0, max_ghz=2.0, base_ghz=1.0)


class TestEnumeration:
    def test_resolution_is_100mhz(self, table):
        freqs = table.frequencies_ghz()
        steps = {round(b - a, 9) for a, b in zip(freqs, freqs[1:])}
        assert steps == {0.1}

    def test_length(self, table):
        assert len(table) == 46  # 0.4 .. 4.9 inclusive

    def test_iteration_matches_frequencies(self, table):
        assert list(table) == list(table.frequencies_ghz())

    def test_endpoints_included(self, table):
        freqs = table.frequencies_ghz()
        assert freqs[0] == pytest.approx(0.4)
        assert freqs[-1] == pytest.approx(4.9)


class TestMembership:
    def test_contains_table_entry(self, table):
        assert 1.8 in table

    def test_excludes_off_grid(self, table):
        assert 1.85 not in table

    def test_excludes_out_of_range(self, table):
        assert 5.0 not in table
        assert 0.3 not in table

    def test_excludes_non_numbers(self, table):
        assert "1.8" not in table

    @given(st.sampled_from(range(4, 50)))
    def test_every_ratio_in_range_is_member(self, ratio):
        table = FrequencyTable(min_ghz=0.4, max_ghz=4.9, base_ghz=1.8)
        assert ratio / 10.0 in table


class TestValidateAndClamp:
    def test_validate_passes_member(self, table):
        assert table.validate(2.0) == 2.0

    def test_validate_rejects_nonmember(self, table):
        with pytest.raises(FrequencyError):
            table.validate(5.5)

    def test_clamp_snaps_to_grid(self, table):
        assert table.clamp(1.84) == pytest.approx(1.8)

    def test_clamp_limits_range(self, table):
        assert table.clamp(9.0) == pytest.approx(4.9)
        assert table.clamp(0.05) == pytest.approx(0.4)

    @given(st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
    def test_clamp_always_yields_member(self, f):
        table = FrequencyTable(min_ghz=0.4, max_ghz=4.9, base_ghz=1.8)
        assert table.clamp(f) in table

    def test_ratios(self, table):
        assert table.min_ratio == 4
        assert table.max_ratio == 49
        assert table.base_ratio == 18
