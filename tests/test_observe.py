"""The observe layer: profiler, flight recorder, OpenMetrics, reports.

Four contracts under test:

* the sim-time profiler attributes dispatch-loop work per component and
  its collapsed-stack/speedscope artifacts are byte-identical across
  identical seeded runs (wall-clock strictly segregated);
* the flight recorder freezes a replayable post-mortem on invariant
  violations, machine checks and job failures — and the fuzz pipeline's
  dumps replay through the same entry points as shrunk artifacts;
* the OpenMetrics renderer/serving stack exposes a live registry in the
  standard text format, ``countermeasure.polls`` included;
* the engine run manifest records provenance (cache vs execution, seed
  paths, fingerprints) and renders to Markdown.
"""

from __future__ import annotations

import functools
import json
import urllib.request
from dataclasses import dataclass
from typing import Any, ClassVar, Tuple

import pytest

from repro.core import PollingCountermeasure
from repro.cpu import COMET_LAKE, ocm
from repro.engine import (
    EngineSession,
    FuzzJob,
    JobSpec,
    SerialExecutor,
    execute_job,
)
from repro.errors import InvariantViolation, ObserveError, SimulationError
from repro.kernel.sim import Simulator
from repro.observe import (
    FlightRecorder,
    MetricsServer,
    SimProfiler,
    dump_job_failure,
    flight_dir_from_env,
    is_flight_dump,
    load_flight_dump,
    load_manifest,
    metric_name,
    render_markdown,
    render_openmetrics,
    resolve_site,
)
from repro.telemetry import Registry, Telemetry
from repro.testbench import Machine
from repro.verify import FuzzSchedule, run_schedule, schedule_for_job


def _break_decode_sign(monkeypatch):
    """The PR-3 mutation: decode loses the two's-complement correction."""

    def broken(value: int) -> int:
        return (value >> ocm.OFFSET_SHIFT) & 0x7FF

    monkeypatch.setattr(ocm, "decode_offset_field", broken)


# ---------------------------------------------------------------------------
# SimProfiler
# ---------------------------------------------------------------------------


class TestProfilerLifecycle:
    def test_attach_detach(self):
        simulator = Simulator()
        profiler = SimProfiler().install(simulator)
        assert simulator._profiler is profiler
        profiler.uninstall()
        assert simulator._profiler is None
        profiler.uninstall()  # idempotent

    def test_second_profiler_rejected(self):
        simulator = Simulator()
        SimProfiler().install(simulator)
        with pytest.raises(SimulationError):
            SimProfiler().install(simulator)

    def test_install_accepts_machine(self):
        machine = Machine.build(COMET_LAKE, seed=1)
        profiler = SimProfiler().install(machine)
        assert machine.simulator._profiler is profiler

    def test_no_profiler_means_no_hook_state(self):
        simulator = Simulator()
        simulator.schedule(1e-3, lambda: None)
        simulator.run()
        assert simulator._profiler is None


class TestProfilerAttribution:
    def test_plain_function_site(self):
        def tick():
            pass

        component, site = resolve_site(tick)
        assert site.endswith("tick")

    def test_partial_unwrapped(self):
        def tick(core):
            pass

        assert resolve_site(functools.partial(tick, 0)) == resolve_site(tick)

    def test_recurring_event_charged_to_callback(self):
        simulator = Simulator()
        fired = []
        recurring = simulator.schedule_recurring(1e-3, lambda: fired.append(1))
        profiler = SimProfiler().install(simulator)
        simulator.run_until(3.5e-3)
        profiler.uninstall()
        recurring.cancel()
        assert fired
        buckets = profiler.buckets()
        assert len(buckets) == 1
        # Charged to the lambda the timer re-arms, not RecurringEvent._fire.
        assert "_fire" not in buckets[0].site
        assert buckets[0].events == len(fired)

    def test_task_charged_by_name(self):
        simulator = Simulator()

        def body():
            yield 1e-3
            yield 1e-3

        simulator.spawn(body(), name="dvfs-thread")
        profiler = SimProfiler().install(simulator)
        simulator.run()
        profiler.uninstall()
        (bucket,) = profiler.buckets()
        assert bucket.component == "kernel.sim.task"
        assert bucket.site == "task:dvfs-thread"
        assert bucket.events == 3  # spawn step + two resumes

    def test_sim_time_attribution_sums_to_clock(self):
        simulator = Simulator()
        simulator.schedule(2e-3, lambda: None)
        simulator.schedule(5e-3, lambda: None)
        profiler = SimProfiler().install(simulator)
        simulator.run()
        total = sum(b.sim_time_s for b in profiler.buckets())
        assert total == pytest.approx(simulator.now)
        assert profiler.total_events == simulator.processed_events


class TestProfilerDeterminism:
    def _profiled_run(self):
        machine = Machine.build(COMET_LAKE, seed=7)
        profiler = SimProfiler().install(machine)
        machine.simulator.schedule_recurring(1e-4, lambda: None)
        machine.write_voltage_offset(-80)
        machine.advance(5e-3)
        profiler.uninstall()
        return machine, profiler

    def test_collapsed_and_speedscope_byte_identical(self):
        _, first = self._profiled_run()
        _, second = self._profiled_run()
        assert first.to_collapsed() == second.to_collapsed()
        assert first.to_speedscope() == second.to_speedscope()
        assert first.snapshot() == second.snapshot()

    def test_wall_time_segregated_from_artifacts(self):
        _, profiler = self._profiled_run()
        assert any(b.wall_time_s > 0.0 for b in profiler.buckets())
        assert "wall" not in profiler.to_speedscope()
        assert "wall" not in profiler.to_collapsed()
        assert "wall" not in json.dumps(profiler.snapshot())
        wall = profiler.wall_snapshot()
        assert wall["wall"] is True
        assert all("sim_time_s" not in b for b in wall["buckets"])

    def test_profiler_does_not_perturb_the_simulation(self):
        bare = Machine.build(COMET_LAKE, seed=9)
        bare.write_voltage_offset(-100)
        bare.advance(5e-3)
        profiled = Machine.build(COMET_LAKE, seed=9)
        SimProfiler().install(profiled)
        profiled.write_voltage_offset(-100)
        profiled.advance(5e-3)
        assert profiled.now == bare.now
        assert profiled.simulator.processed_events == bare.simulator.processed_events
        assert profiled.conditions(0).voltage_volts == bare.conditions(0).voltage_volts

    def test_speedscope_document_shape(self, tmp_path):
        _, profiler = self._profiled_run()
        path = profiler.write_speedscope(tmp_path / "out" / "p.json")
        document = json.loads(path.read_text())
        frames = document["shared"]["frames"]
        assert document["profiles"][0]["unit"] == "seconds"
        assert document["profiles"][1]["unit"] == "none"
        for profile in document["profiles"]:
            assert len(profile["samples"]) == len(profile["weights"])
            for stack in profile["samples"]:
                assert all(0 <= index < len(frames) for index in stack)

    def test_collapsed_weights_are_event_counts(self, tmp_path):
        _, profiler = self._profiled_run()
        path = profiler.write_collapsed(tmp_path / "stacks.txt")
        total = 0
        for line in path.read_text().splitlines():
            stack, weight = line.rsplit(" ", 1)
            assert ";" in stack
            total += int(weight)
        assert total == profiler.total_events


# ---------------------------------------------------------------------------
# FlightRecorder
# ---------------------------------------------------------------------------


def _traced_machine(seed: int = 3) -> Machine:
    return Machine.build(COMET_LAKE, seed=seed, telemetry=Telemetry.flight(64))


class TestFlightRecorder:
    def test_env_knob(self):
        assert flight_dir_from_env({}) is None
        assert flight_dir_from_env({"REPRO_FLIGHT_DIR": "  "}) is None
        assert str(flight_dir_from_env({"REPRO_FLIGHT_DIR": "dumps"})) == "dumps"

    def test_dump_round_trip(self):
        machine = _traced_machine()
        recorder = FlightRecorder(machine, capacity=8)
        machine.write_voltage_offset(-50)
        machine.advance(2e-3)
        text = recorder.make_dump("manual")
        dump = load_flight_dump(text)
        assert dump.reason == "manual"
        assert dump.header["machine"]["codename"] == COMET_LAKE.codename
        assert dump.header["machine"]["seed"] == 3
        assert dump.header["sim_time_s"] == machine.now
        assert len(dump.events) == dump.header["events"] <= 8
        assert tuple(dump.events) == machine.telemetry.tracer.events[-8:]

    def test_dump_is_deterministic(self):
        def produce():
            machine = _traced_machine(seed=5)
            recorder = FlightRecorder(machine, capacity=16)
            machine.write_voltage_offset(-70)
            machine.advance(1e-3)
            return recorder.make_dump("manual")

        assert produce() == produce()

    def test_violation_dump_written(self, tmp_path, monkeypatch):
        _break_decode_sign(monkeypatch)
        machine = _traced_machine()
        recorder = FlightRecorder(machine, dump_dir=tmp_path)
        machine.install_invariants()
        with pytest.raises(InvariantViolation):
            machine.write_voltage_offset(-50)
        assert len(recorder.dump_paths) == 1
        dump = load_flight_dump(recorder.dump_paths[0])
        assert dump.reason == "invariant-violation"
        assert dump.header["violation"]["invariant"] == "ocm-roundtrip"

    def test_checker_picks_up_recorder_set_after_install(self, monkeypatch):
        _break_decode_sign(monkeypatch)
        machine = _traced_machine()
        machine.install_invariants()
        recorder = FlightRecorder(machine)
        machine.verifier.flight = recorder
        with pytest.raises(InvariantViolation):
            machine.write_voltage_offset(-50)
        assert recorder.last_dump is not None

    def test_crash_dumps_are_opt_in(self, tmp_path):
        machine = _traced_machine()
        recorder = FlightRecorder(machine, dump_dir=tmp_path)
        machine.reboot()
        assert recorder.dump_paths == []
        recorder.record_crashes = True
        machine.reboot()
        assert len(recorder.dump_paths) == 1
        assert load_flight_dump(recorder.dump_paths[0]).reason == "machine-check"

    def test_max_dumps_cap(self, tmp_path):
        machine = _traced_machine()
        recorder = FlightRecorder(
            machine, dump_dir=tmp_path, record_crashes=True, max_dumps=2
        )
        for _ in range(5):
            machine.reboot()
        assert len(recorder.dump_paths) == 2
        assert recorder.last_dump is not None  # memory copy still current

    def test_no_dir_keeps_dump_in_memory(self):
        machine = _traced_machine()
        recorder = FlightRecorder(machine)
        recorder.record("unhandled-exception", error=RuntimeError("kaput"))
        assert recorder.dump_paths == []
        dump = load_flight_dump(recorder.last_dump)
        assert dump.header["error"] == {"type": "RuntimeError", "message": "kaput"}

    def test_loader_rejects_garbage(self, tmp_path):
        with pytest.raises(ObserveError):
            load_flight_dump("")
        with pytest.raises(ObserveError):
            load_flight_dump('{"kind":"something-else"}\n')
        bad_schema = json.dumps({"kind": "flight-recorder", "schema": 99})
        with pytest.raises(ObserveError):
            load_flight_dump(bad_schema + "\n")
        path = tmp_path / "x.json"
        path.write_text("[]\n")
        assert not is_flight_dump(path)
        assert not is_flight_dump(tmp_path / "missing.jsonl")


@dataclass(frozen=True)
class _BoomJob(JobSpec):
    """A job that traces one event and then dies unexpectedly."""

    kind: ClassVar[str] = "boom"

    seed: int = 0

    def seed_path(self) -> Tuple[str, ...]:
        return ("boom",)

    def run(self, telemetry: Any) -> Any:
        telemetry.tracer.instant("boom.pre", "test", 1e-3, track="sim", step=1)
        raise RuntimeError("worker exploded")


class TestJobFailureDumps:
    def test_execute_job_dumps_on_unhandled_exception(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        job = _BoomJob()
        with pytest.raises(RuntimeError):
            execute_job(job)
        dumps = list(tmp_path.glob("job-*.flight.jsonl"))
        assert len(dumps) == 1
        dump = load_flight_dump(dumps[0])
        assert dump.reason == "unhandled-exception"
        assert dump.header["error"]["type"] == "RuntimeError"
        assert dump.header["context"]["job"]["kind"] == "boom"
        assert dump.header["context"]["job"]["fingerprint"] == job.fingerprint()
        assert dump.events[0].name == "boom.pre"

    def test_no_env_no_dump(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_FLIGHT_DIR", raising=False)
        assert dump_job_failure(_BoomJob(), Telemetry(), RuntimeError("x")) is None
        with pytest.raises(RuntimeError):
            execute_job(_BoomJob())

    def test_successful_jobs_leave_no_dump(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        execute_job(FuzzJob(codename="Comet Lake", seed=0, case_index=0))
        assert list(tmp_path.glob("job-*.flight.jsonl")) == []


class TestFuzzFlightDumps:
    def test_violating_schedule_dumps_and_replays(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        _break_decode_sign(monkeypatch)
        schedule = FuzzSchedule(
            codename="Comet Lake",
            machine_seed=1,
            actions=schedule_for_job(
                FuzzJob(codename="Comet Lake", seed=0, case_index=0)
            ).actions,
        )
        summary = run_schedule(schedule)
        assert summary["violation"] is not None
        assert summary["flight_dump"] is not None
        dump = load_flight_dump(summary["flight_dump"])
        assert dump.reason == "invariant-violation"
        assert dump.schedule is not None
        # The embedded schedule IS the replayable artifact.
        replayed = run_schedule(FuzzSchedule.from_dict(dump.schedule))
        assert replayed["violation"]["invariant"] == (
            summary["violation"]["invariant"]
        )

    def test_clean_schedule_reports_no_dump(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        summary = run_schedule(
            schedule_for_job(FuzzJob(codename="Comet Lake", seed=0, case_index=1))
        )
        assert summary["violation"] is None
        assert summary["flight_dump"] is None


# ---------------------------------------------------------------------------
# OpenMetrics + serving
# ---------------------------------------------------------------------------


class TestOpenMetrics:
    def test_metric_name_sanitization(self):
        assert metric_name("countermeasure.polls") == "repro_countermeasure_polls"
        assert metric_name("a-b c.d") == "repro_a_b_c_d"
        assert metric_name("0weird").startswith("repro__")

    def test_render_families_and_eof(self):
        registry = Registry()
        registry.counter("countermeasure.polls").inc(9)
        registry.gauge("engine.progress.completed").set(4)
        hist = registry.histogram("countermeasure.turnaround_s")
        for value in (1e-4, 2e-4, 3e-4):
            hist.observe(value)
        text = render_openmetrics(registry)
        assert "# TYPE repro_countermeasure_polls counter" in text
        assert "repro_countermeasure_polls_total 9" in text
        assert "countermeasure.polls" in text  # dotted name in HELP
        assert "repro_engine_progress_completed 4" in text
        assert 'quantile="0.5"' in text
        assert "repro_countermeasure_turnaround_s_count 3" in text
        assert text.endswith("# EOF\n")

    def test_empty_registry_is_just_eof(self):
        assert render_openmetrics(Registry()) == "# EOF\n"

    def test_truncated_summary_quantiles_use_exact_extremes(self):
        registry = Registry()
        hist = registry.histogram("lat", max_samples=1)
        for value in (5.0, 1.0, 9.0):
            hist.observe(value)
        text = render_openmetrics(registry)
        # p99 over the 1-sample window would report 5.0; the exact-max
        # clamp keeps the scrape honest.
        assert 'repro_lat{quantile="0.99"} 5.0' in text


class TestMetricsServer:
    def _get(self, url: str) -> str:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.read().decode("utf-8")

    def test_serves_metrics_and_healthz(self):
        registry = Registry()
        registry.counter("countermeasure.polls").inc(2)
        with MetricsServer(registry) as server:
            assert server.port != 0
            body = self._get(server.url)
            assert "repro_countermeasure_polls_total 2" in body
            assert body.endswith("# EOF\n")
            assert self._get(server.url.replace("/metrics", "/healthz")) == "ok\n"
            registry.counter("countermeasure.polls").inc(3)
            assert "repro_countermeasure_polls_total 5" in self._get(server.url)

    def test_unknown_path_404(self):
        with MetricsServer(Registry()) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(server.url.replace("/metrics", "/nope"))
            assert excinfo.value.code == 404

    def test_provider_follows_current_registry(self):
        box = {"registry": Registry()}
        with MetricsServer(provider=lambda: box["registry"]) as server:
            replacement = Registry()
            replacement.counter("swapped.counter").inc(1)
            box["registry"] = replacement
            assert "repro_swapped_counter_total 1" in self._get(server.url)

    def test_constructor_validation(self):
        with pytest.raises(ObserveError):
            MetricsServer()
        with pytest.raises(ObserveError):
            MetricsServer(Registry(), provider=lambda: None)

    def test_double_start_rejected(self):
        server = MetricsServer(Registry()).start()
        try:
            with pytest.raises(ObserveError):
                server.start()
        finally:
            server.stop()
        server.stop()  # idempotent


# ---------------------------------------------------------------------------
# Run manifests + reports
# ---------------------------------------------------------------------------


class TestRunManifest:
    def _session_with_history(self) -> EngineSession:
        session = EngineSession(executor=SerialExecutor())
        jobs = [
            FuzzJob(codename="Comet Lake", seed=0, case_index=index)
            for index in range(2)
        ]
        session.run_jobs(jobs)
        session.run_jobs(jobs)  # second batch served from cache
        return session

    def test_progress_gauges_track_jobs(self):
        session = self._session_with_history()
        counters = {g.name: g.value for g in session.telemetry.registry.gauges()}
        assert counters["engine.progress.total"] == 4
        assert counters["engine.progress.completed"] == 4
        session.close()

    def test_manifest_shape_and_provenance(self):
        session = self._session_with_history()
        manifest = session.run_manifest()
        session.close()
        assert load_manifest(manifest) is manifest
        assert manifest["jobs"] == {
            "total": 4,
            "cached": 2,
            "executed": 2,
            "resumed": 0,
            "quarantined": 0,
            "remote": 0,
            "remote_cached": 0,
        }
        assert len(manifest["batches"]) == 2
        first, second = manifest["batches"]
        assert [job["cached"] for job in first["jobs"]] == [False, False]
        assert [job["cached"] for job in second["jobs"]] == [True, True]
        assert first["jobs"][0]["seed_path"] == ["fuzz", "Comet Lake", "case@0"]
        assert first["jobs"][0]["fingerprint"] == second["jobs"][0]["fingerprint"]
        assert "counters" in manifest["metrics"]

    def test_write_and_render(self, tmp_path):
        session = self._session_with_history()
        path = session.write_run_report(tmp_path / "out" / "run.json")
        session.close()
        manifest = json.loads(path.read_text())
        markdown = render_markdown(manifest)
        assert "# Campaign run report" in markdown
        assert "hit rate 50%" in markdown
        assert "`fuzz/Comet Lake/case@0`" in markdown
        assert "non-deterministic" in markdown  # wall_s clearly labelled

    def test_load_manifest_rejects_garbage(self):
        with pytest.raises(ObserveError):
            load_manifest({"kind": "nope"})
        with pytest.raises(ObserveError):
            load_manifest({"kind": "run-report", "schema": 99})


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------


class TestCLI:
    def _run(self, capsys, argv):
        from repro.cli import main

        code = main(argv)
        return code, capsys.readouterr().out

    def test_report_command(self, capsys, tmp_path):
        session = EngineSession(executor=SerialExecutor())
        session.run_jobs([FuzzJob(codename="Comet Lake", seed=0, case_index=0)])
        manifest_path = session.write_run_report(tmp_path / "run.json")
        session.close()
        code, out = self._run(capsys, ["report", str(manifest_path)])
        assert code == 0
        assert "# Campaign run report" in out
        md_path = tmp_path / "run.md"
        code, _ = self._run(
            capsys, ["report", str(manifest_path), "--md", str(md_path)]
        )
        assert code == 0
        assert "## Jobs" in md_path.read_text()

    def test_fuzz_replay_accepts_flight_dump(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        _break_decode_sign(monkeypatch)
        summary = run_schedule(
            schedule_for_job(FuzzJob(codename="Comet Lake", seed=0, case_index=0))
        )
        assert summary["flight_dump"] is not None
        code, out = self._run(
            capsys, ["fuzz", "--replay", summary["flight_dump"]]
        )
        assert code == 1
        assert "replay reproduced" in out

    def test_observe_replay_command(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        _break_decode_sign(monkeypatch)
        summary = run_schedule(
            schedule_for_job(FuzzJob(codename="Comet Lake", seed=0, case_index=0))
        )
        code, out = self._run(
            capsys, ["observe", "replay", summary["flight_dump"]]
        )
        assert code == 1
        assert "recorded violation" in out
        assert "replay reproduced" in out

    def test_observe_replay_without_schedule(self, capsys, tmp_path):
        machine = _traced_machine()
        recorder = FlightRecorder(machine, dump_dir=tmp_path, record_crashes=True)
        machine.reboot()
        code, out = self._run(
            capsys, ["observe", "replay", str(recorder.dump_paths[0])]
        )
        assert code == 2
        assert "no schedule" in out
