"""The programmatic experiment-regeneration API."""

from __future__ import annotations

import pytest

from repro.cpu import COMET_LAKE, SKY_LAKE
from repro.experiments import (
    characterization,
    maximal_safe_deployments,
    prevention_matrix,
    protected_machine,
    table2_overhead,
)


class TestCharacterizationCache:
    def test_cached_per_model_and_seed(self):
        a = characterization(COMET_LAKE)
        b = characterization(COMET_LAKE)
        assert a is b
        c = characterization(COMET_LAKE, seed=99)
        assert c is not a

    def test_models_independent(self):
        assert characterization(SKY_LAKE) is not characterization(COMET_LAKE)


class TestProtectedMachine:
    def test_module_loaded_and_bound(self):
        machine, module = protected_machine(COMET_LAKE)
        assert machine.modules.is_loaded(module.name)
        assert module.unsafe_states is characterization(COMET_LAKE).unsafe_states


class TestTable2:
    def test_full_report(self):
        report = table2_overhead()
        assert len(report.rows) == 23
        assert 0.001 < report.mean_base_overhead < 0.006


class TestPreventionMatrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        return prevention_matrix(include_aes=False)

    def test_cell_counts(self, matrix):
        # 3 CPUs x 2 defense states x 3 campaigns (AES skipped).
        assert len(matrix.cells) == 18

    def test_headline_claim(self, matrix):
        assert matrix.protected_faults == 0
        for cell in matrix.outcomes(protected=True):
            assert not cell.outcome.succeeded

    def test_undefended_attacks_work(self, matrix):
        for codename in ("Sky Lake", "Comet Lake"):
            cells = matrix.outcomes(codename=codename, protected=False)
            assert any(c.outcome.succeeded for c in cells)

    def test_filtering(self, matrix):
        sky = matrix.outcomes(codename="Sky Lake")
        assert len(sky) == 6
        assert all(c.codename == "Sky Lake" for c in sky)


class TestDeployments:
    def test_three_depths_ordered(self):
        outcomes = {d.deployment: d.outcome for d in maximal_safe_deployments()}
        assert outcomes["polling only"].faults_observed > 0
        assert outcomes["polling + microcode (5.1)"].faults_observed == 0
        assert outcomes["polling + MSR clamp (5.2)"].faults_observed == 0


class TestDefenseComparison:
    def test_comparison_reflects_paper_claims(self):
        from repro.experiments import defense_comparison

        comparison = defense_comparison(attempts=20)
        # Access control protects but blocks the benign request too.
        assert comparison.sa00289_blocks_attack
        assert comparison.sa00289_blocks_benign
        # Minefield detects statistically, collapses under stepping.
        assert comparison.minefield_detected_plain > 0
        assert comparison.minefield_detected_stepped == 0
        assert comparison.minefield_exploited_stepped > 0
        # Polling: benign undervolt applied, attack offset never reached.
        assert comparison.polling_benign_accepted
        assert abs(comparison.polling_benign_applied_mv + 30) <= 1.0
        assert comparison.polling_attack_applied_mv > -100
        # Polling is the cheapest defense of the three.
        assert comparison.polling_overhead < 0.01
        assert comparison.polling_overhead < comparison.minefield_overhead
