"""CSV/JSON export of experiment results."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.analysis.export import (
    boundary_to_csv,
    characterization_to_csv,
    characterization_to_json,
    overhead_to_csv,
    unsafe_set_from_json,
    write_text,
)
from repro.bench.runner import SpecOverheadRunner
from repro.core import PollingCountermeasure
from repro.cpu import COMET_LAKE
from repro.testbench import Machine


class TestCharacterizationCSV:
    def test_one_row_per_cell(self, comet_characterization):
        text = characterization_to_csv(comet_characterization)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == len(comet_characterization.cells)
        assert set(rows[0]) == {"frequency_ghz", "offset_mv", "fault_count", "crashed"}

    def test_values_parse_back(self, comet_characterization):
        text = characterization_to_csv(comet_characterization)
        rows = list(csv.DictReader(io.StringIO(text)))
        crashed = [r for r in rows if r["crashed"] == "1"]
        assert len(crashed) == comet_characterization.crashes


class TestBoundaryCSV:
    def test_one_row_per_frequency(self, comet_characterization):
        text = boundary_to_csv(comet_characterization)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == len(COMET_LAKE.frequency_table)
        for row in rows:
            assert float(row["first_fault_mv"]) < 0
            assert float(row["crash_mv"]) <= float(row["first_fault_mv"])


class TestJSONBundle:
    def test_bundle_contents(self, comet_characterization):
        payload = json.loads(characterization_to_json(comet_characterization))
        assert payload["model"]["codename"] == "Comet Lake"
        assert payload["model"]["microcode"] == 0xF4
        assert payload["crashes"] == comet_characterization.crashes
        assert payload["maximal_safe_offset_mv"] == pytest.approx(
            comet_characterization.maximal_safe_offset_mv()
        )

    def test_unsafe_set_roundtrip(self, comet_characterization):
        text = characterization_to_json(comet_characterization)
        restored = unsafe_set_from_json(text)
        original = comet_characterization.unsafe_states
        for f in original.frequencies_ghz():
            assert restored.boundary_mv(f) == original.boundary_mv(f)
        assert restored.maximal_safe_offset_mv() == original.maximal_safe_offset_mv()

    def test_restored_set_drives_a_module(self, comet_characterization):
        # The bundle is deployable: a module built from the JSON behaves
        # like one built from the live characterization.
        restored = unsafe_set_from_json(
            characterization_to_json(comet_characterization)
        )
        machine = Machine.build(COMET_LAKE, seed=8)
        module = PollingCountermeasure(machine, restored)
        machine.modules.insmod(module)
        machine.set_frequency(2.0)
        machine.write_voltage_offset(-250)
        machine.advance(2e-3)
        assert module.stats.detections >= 1


class TestOverheadCSV:
    def test_rows_and_columns(self, comet_characterization):
        machine = Machine.build(COMET_LAKE, seed=3)
        module = PollingCountermeasure(machine, comet_characterization.unsafe_states)
        machine.modules.insmod(module)
        report = SpecOverheadRunner(machine, module).run()
        rows = list(csv.DictReader(io.StringIO(overhead_to_csv(report))))
        assert len(rows) == 23
        assert float(rows[0]["base_slowdown_pct"]) < 0


class TestWriteText:
    def test_creates_parents(self, tmp_path):
        target = write_text(tmp_path / "deep" / "dir" / "x.csv", "a,b\n1,2\n")
        assert target.read_text() == "a,b\n1,2\n"
