"""Imul loop (EXECUTE thread) and the faultable ALU."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.cpu.models import COMET_LAKE
from repro.faults.alu import FaultableALU
from repro.faults.imul import DEFAULT_ITERATIONS, ImulLoop
from repro.faults.injector import FaultInjector
from repro.faults.margin import FaultModel
from repro.faults.workloads import (
    IMUL_LOOP,
    VECTOR_MULTIPLY,
    WORKLOAD_CATALOG,
    InstructionWorkload,
)

_MASK64 = (1 << 64) - 1


@pytest.fixture
def fault_model() -> FaultModel:
    return FaultModel(COMET_LAKE)


@pytest.fixture
def injector(fault_model) -> FaultInjector:
    return FaultInjector(fault_model, np.random.default_rng(3))


class TestImulLoop:
    def test_default_is_one_million(self):
        assert ImulLoop().iterations == DEFAULT_ITERATIONS == 1_000_000

    def test_nonpositive_iterations_rejected(self):
        with pytest.raises(ConfigurationError):
            ImulLoop(0)

    def test_duration_scales_with_frequency(self):
        loop = ImulLoop(1_000_000)
        assert loop.duration_s(2.0) == pytest.approx(loop.duration_s(4.0) * 2)

    def test_safe_run_has_no_faults(self, injector, fault_model):
        report = ImulLoop(1_000_000).run(
            injector, fault_model.conditions_for_offset(2.0, 0.0)
        )
        assert not report.faulted
        assert report.fault_count == 0
        assert report.faults == ()

    def test_unsafe_run_reports_concrete_faults(self, injector, fault_model):
        vcrit = fault_model.critical_voltage(2.0)
        conditions = fault_model.conditions_for_offset(2.0, 0.0)
        conditions = type(conditions)(2.0, vcrit, -999)
        report = ImulLoop(1_000_000).run(injector, conditions)
        assert report.faulted
        for fault in report.faults:
            # The observed product differs from lhs*rhs in exactly one bit.
            assert fault.observed != fault.expected
            assert fault.expected == (fault.lhs * fault.rhs) & _MASK64
            assert bin(fault.observed ^ fault.expected).count("1") == 1


class TestWorkloadCatalog:
    def test_catalog_contents(self):
        assert "imul loop" in WORKLOAD_CATALOG
        assert IMUL_LOOP.instruction == "imul"
        assert VECTOR_MULTIPLY.instruction == "vmulpd"

    def test_unknown_instruction_rejected(self):
        with pytest.raises(ConfigurationError):
            InstructionWorkload(name="bad", instruction="fdiv")

    def test_nonpositive_cpi_rejected(self):
        with pytest.raises(ConfigurationError):
            InstructionWorkload(name="bad", instruction="imul", cycles_per_op=0.0)

    def test_duration(self):
        assert IMUL_LOOP.duration_s(2_000_000, 2.0) == pytest.approx(1e-3)

    def test_execute_safe(self, injector, fault_model):
        outcome = IMUL_LOOP.execute(
            injector, fault_model.conditions_for_offset(1.8, 0.0), 100_000
        )
        assert outcome.fault_count == 0


class TestFaultableALU:
    def make_alu(self, injector, fault_model, offset_mv: float) -> FaultableALU:
        conditions = fault_model.conditions_for_offset(2.0, offset_mv)
        return FaultableALU(injector=injector, conditions_source=lambda: conditions)

    def test_imul64_correct_when_safe(self, injector, fault_model):
        alu = self.make_alu(injector, fault_model, 0.0)
        assert alu.imul64(3, 5) == 15
        assert alu.imul64(1 << 63, 2) == 0  # wraps mod 2^64
        assert alu.stats.imul_count == 2
        assert alu.stats.fault_count == 0

    def test_bigmul_exact_when_safe(self, injector, fault_model):
        alu = self.make_alu(injector, fault_model, 0.0)
        a = 123456789012345678901234567890
        b = 987654321098765432109876543210
        assert alu.bigmul(a, b) == a * b

    def test_bigmul_rejects_negative(self, injector, fault_model):
        alu = self.make_alu(injector, fault_model, 0.0)
        with pytest.raises(ConfigurationError):
            alu.bigmul(-1, 2)

    def test_modexp_matches_pow_when_safe(self, injector, fault_model):
        alu = self.make_alu(injector, fault_model, 0.0)
        assert alu.modexp(7, 131, 1009) == pow(7, 131, 1009)

    def test_modexp_validates(self, injector, fault_model):
        alu = self.make_alu(injector, fault_model, 0.0)
        with pytest.raises(ConfigurationError):
            alu.modexp(2, -1, 5)
        with pytest.raises(ConfigurationError):
            alu.modmul(2, 3, 0)

    def test_bigmul_faults_flip_single_bit(self, fault_model):
        vcrit = fault_model.critical_voltage(2.0)
        conditions = type(fault_model.conditions_for_offset(2.0, 0.0))(
            2.0, vcrit - 0.005, -999
        )
        injector = FaultInjector(fault_model, np.random.default_rng(5))
        alu = FaultableALU(injector=injector, conditions_source=lambda: conditions)
        a = (1 << 512) - 12345
        b = (1 << 512) - 67891
        faulted = 0
        for _ in range(2000):
            result = alu.bigmul(a, b)
            if result != a * b:
                faulted += 1
                assert bin(result ^ (a * b)).count("1") == 1
        assert faulted > 0
        assert alu.stats.fault_count == faulted

    def test_conditions_source_called_live(self, injector, fault_model):
        calls = []

        def source():
            calls.append(1)
            return fault_model.conditions_for_offset(2.0, 0.0)

        alu = FaultableALU(injector=injector, conditions_source=source)
        alu.imul64(2, 3)
        alu.imul64(4, 5)
        assert len(calls) == 2
