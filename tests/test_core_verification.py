"""Deployment verification and polling jitter robustness."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.core import PollingCountermeasure
from repro.core.unsafe_states import UnsafeStateSet
from repro.core.verification import verify_deployment
from repro.cpu import COMET_LAKE
from repro.testbench import Machine


@pytest.fixture
def protected(comet_characterization):
    machine = Machine.build(COMET_LAKE, seed=51)
    module = PollingCountermeasure(machine, comet_characterization.unsafe_states)
    machine.modules.insmod(module)
    return machine, module


class TestVerifyDeployment:
    def test_protected_machine_passes(self, protected, comet_characterization):
        machine, module = protected
        report = verify_deployment(
            machine, comet_characterization.unsafe_states, samples=8
        )
        assert report.passed
        assert report.total_faults == 0
        assert report.crashes == 0
        assert len(report.probes) == 8
        # The module visibly intervened on the probes.
        assert any(p.detected for p in report.probes)
        assert "PASS" in report.summary()

    def test_undefended_machine_fails(self, comet_characterization):
        machine = Machine.build(COMET_LAKE, seed=51)
        report = verify_deployment(
            machine, comet_characterization.unsafe_states, samples=8
        )
        assert not report.passed
        assert report.total_faults > 0 or report.crashes > 0
        assert "FAIL" in report.summary()
        assert not any(p.detected for p in report.probes)

    def test_probes_target_characterized_unsafe_cells(
        self, protected, comet_characterization
    ):
        machine, _ = protected
        unsafe = comet_characterization.unsafe_states
        report = verify_deployment(machine, unsafe, samples=10)
        for probe in report.probes:
            assert unsafe.is_unsafe(probe.frequency_ghz, probe.offset_mv)

    def test_validation(self, protected, comet_characterization):
        machine, _ = protected
        with pytest.raises(ConfigurationError):
            verify_deployment(machine, comet_characterization.unsafe_states, samples=0)
        with pytest.raises(ConfigurationError):
            verify_deployment(machine, UnsafeStateSet(), samples=3)

    def test_machine_restored_afterwards(self, protected, comet_characterization):
        machine, _ = protected
        verify_deployment(machine, comet_characterization.unsafe_states, samples=5)
        assert machine.processor.core(0).target_offset_mv() == pytest.approx(
            0.0, abs=1.0
        )


class TestJitteredPolling:
    def test_jitter_validated(self, comet_characterization):
        machine = Machine.build(COMET_LAKE, seed=51)
        with pytest.raises(ConfigurationError):
            PollingCountermeasure(
                machine, comet_characterization.unsafe_states, period_jitter=1.0
            )

    def test_jittered_module_still_passes_verification(self, comet_characterization):
        # 20% scheduling jitter on a 400 us period: worst interval 480 us,
        # still under the 650 us regulator delay — prevention holds.
        machine = Machine.build(COMET_LAKE, seed=51)
        module = PollingCountermeasure(
            machine,
            comet_characterization.unsafe_states,
            period_s=400e-6,
            period_jitter=0.2,
        )
        machine.modules.insmod(module)
        report = verify_deployment(
            machine, comet_characterization.unsafe_states, samples=8
        )
        assert report.passed
        assert module.stats.polls > 0

    def test_jittered_intervals_vary(self, comet_characterization):
        machine = Machine.build(COMET_LAKE, seed=51)
        module = PollingCountermeasure(
            machine,
            comet_characterization.unsafe_states,
            period_s=500e-6,
            period_jitter=0.2,
        )
        machine.modules.insmod(module)
        times = []
        original = module._poll_once

        def spy():
            times.append(machine.now)
            original()

        module._poll_once = spy  # type: ignore[method-assign]
        machine.advance(20e-3)
        intervals = {round(b - a, 7) for a, b in zip(times, times[1:])}
        assert len(intervals) > 3  # genuinely jittered
        assert all(0.4e-3 <= i <= 0.6e-3 for i in intervals)

    def test_jittered_module_unloads_cleanly(self, comet_characterization):
        machine = Machine.build(COMET_LAKE, seed=51)
        module = PollingCountermeasure(
            machine, comet_characterization.unsafe_states, period_jitter=0.1
        )
        machine.modules.insmod(module)
        machine.advance(3e-3)
        polls = module.stats.polls
        machine.modules.rmmod(module.name)
        machine.advance(3e-3)
        assert module.stats.polls == polls
