"""The observability layer: metrics, tracing, exporters, determinism.

Covers the contract the rest of the stack builds on: counter/histogram
semantics, the disabled-mode no-op fast path, JSONL round-trips, the
Chrome ``trace_event`` export shape, byte-identical traces across
identical seeded runs, and the machine-level ``telemetry=`` hook
threading events out of every instrumented layer.
"""

from __future__ import annotations

import json

import pytest

from repro.core import PollingCountermeasure
from repro.cpu import COMET_LAKE
from repro.errors import ConfigurationError
from repro.telemetry import (
    NULL_TELEMETRY,
    Counter,
    Histogram,
    Registry,
    Telemetry,
    TraceEvent,
    Tracer,
    events_from_jsonl,
    to_chrome_trace,
    to_jsonl,
    write_trace,
)


class TestInstruments:
    def test_counter_semantics(self):
        counter = Counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0

    def test_gauge_holds_last_value(self):
        registry = Registry()
        gauge = registry.gauge("level")
        gauge.set(3.5)
        gauge.set(-1.0)
        assert gauge.value == -1.0

    def test_histogram_aggregates(self):
        hist = Histogram("lat")
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == pytest.approx(6.0)
        assert hist.mean == pytest.approx(2.0)
        assert hist.min == 1.0
        assert hist.max == 3.0
        assert hist.values == (1.0, 3.0, 2.0)
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 3.0

    def test_histogram_sample_cap_keeps_exact_aggregates(self):
        hist = Histogram("lat", max_samples=2)
        for value in range(10):
            hist.observe(float(value))
        assert hist.count == 10
        assert len(hist.values) == 2
        assert hist.max == 9.0

    def test_histogram_percentile_validation(self):
        hist = Histogram("lat")
        with pytest.raises(ConfigurationError):
            hist.percentile(50)  # empty
        hist.observe(1.0)
        with pytest.raises(ConfigurationError):
            hist.percentile(101)

    def test_registry_get_or_create_shares_instruments(self):
        registry = Registry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_registry_snapshot_and_render(self):
        registry = Registry()
        registry.counter("polls").inc(7)
        registry.histogram("turnaround").observe(1e-4)
        snap = registry.snapshot()
        assert snap["counters"]["polls"] == 7
        assert snap["histograms"]["turnaround"]["count"] == 1
        assert "polls" in registry.render()


class TestDisabledMode:
    def test_null_telemetry_instruments_are_noops(self):
        telemetry = Telemetry.disabled()
        counter = telemetry.registry.counter("anything")
        counter.inc(100)
        assert counter.value == 0
        hist = telemetry.registry.histogram("h")
        hist.observe(1.0)
        assert hist.count == 0
        gauge = telemetry.registry.gauge("g")
        gauge.set(5.0)
        assert gauge.value == 0.0

    def test_null_tracer_records_nothing(self):
        telemetry = Telemetry.disabled()
        telemetry.tracer.instant("x", "cat", 0.0)
        telemetry.tracer.complete("y", "cat", 0.0, 1.0)
        telemetry.tracer.counter_sample("z", "cat", 0.0, 1.0)
        assert len(telemetry.tracer.events) == 0
        assert telemetry.tracer.enabled is False

    def test_disabled_is_shared_singleton(self):
        assert Telemetry.disabled() is NULL_TELEMETRY

    def test_machine_default_is_disabled(self):
        from repro.testbench import Machine

        machine = Machine.build(COMET_LAKE, seed=1)
        assert machine.telemetry.enabled is False
        machine.write_voltage_offset(-50)
        machine.advance(2e-3)
        assert len(machine.telemetry.tracer.events) == 0


class TestTracer:
    def test_phases_and_filtering(self):
        tracer = Tracer()
        tracer.instant("a.b", "a", 1.0, track="t", k=1)
        tracer.complete("a.c", "a", 2.0, 0.5, track="t")
        tracer.counter_sample("v", "volt", 3.0, -50.0)
        assert [e.phase for e in tracer.events] == ["i", "X", "C"]
        assert len(tracer.events_by_category("a")) == 2
        assert tracer.events_by_name("a.b")[0].args_dict == {"k": 1}

    def test_args_are_key_sorted_for_determinism(self):
        tracer = Tracer()
        tracer.instant("e", "c", 0.0, zebra=1, apple=2)
        assert tracer.events[0].args == (("apple", 2), ("zebra", 1))


def _traced_run(seed: int = 29) -> Telemetry:
    """A short protected attack scenario touching every hot path."""
    from repro.core.characterization import CharacterizationFramework
    from repro.testbench import Machine

    unsafe = CharacterizationFramework(
        COMET_LAKE, seed=5
    ).run().unsafe_states
    telemetry = Telemetry()
    machine = Machine.build(COMET_LAKE, seed=seed, telemetry=telemetry)
    module = PollingCountermeasure(machine, unsafe)
    machine.modules.insmod(module)
    machine.set_frequency(2.0)
    machine.write_voltage_offset(-250)
    machine.advance(2e-3)
    machine.run_imul_window(iterations=100_000)
    return telemetry


@pytest.fixture(scope="module")
def traced() -> Telemetry:
    return _traced_run()


class TestMachineHook:
    def test_all_layers_emit(self, traced):
        categories = {e.category for e in traced.tracer.events}
        assert {"msr", "ocm", "regulator", "pstate", "countermeasure"} <= categories

    def test_msr_spans_carry_ioctl_latency(self, traced):
        reads = traced.tracer.events_by_name("msr.read")
        assert reads
        assert all(
            e.duration_s == pytest.approx(COMET_LAKE.msr_ioctl_latency_s)
            for e in reads
        )

    def test_regulator_ramp_has_direction_args(self, traced):
        ramps = traced.tracer.events_by_name("regulator.ramp")
        assert ramps
        first = ramps[0].args_dict
        assert {"plane", "from_mv", "to_mv"} <= set(first)

    def test_detection_and_remediation_recorded(self, traced):
        detections = traced.tracer.events_by_name("countermeasure.detection")
        remediations = traced.tracer.events_by_name("countermeasure.remediation")
        assert detections and remediations
        # Remediation spans start at their detection instant.
        assert remediations[0].time_s == detections[0].time_s

    def test_counters_match_polling_stats(self, traced):
        registry = traced.registry
        polls = registry.counter("countermeasure.polls").value
        checks = registry.counter("countermeasure.core_checks").value
        assert polls > 0
        assert checks == polls * COMET_LAKE.core_count
        assert registry.counter("countermeasure.detections").value >= 1
        assert registry.counter("msr.reads").value > 0
        assert registry.counter("sim.events_processed").value > 0

    def test_timestamps_are_sim_time_and_monotone_per_track(self, traced):
        events = traced.tracer.events
        assert all(e.time_s >= 0.0 for e in events)
        assert max(e.time_s for e in events) < 1.0  # a 2 ms scenario, not wall-clock


class TestExportRoundTrip:
    def test_jsonl_round_trip(self, traced):
        text = to_jsonl(traced.tracer.events)
        parsed = events_from_jsonl(text)
        assert parsed == list(traced.tracer.events)

    def test_jsonl_empty(self):
        assert to_jsonl([]) == ""
        assert events_from_jsonl("") == []

    def test_chrome_trace_shape(self, traced):
        document = json.loads(to_chrome_trace(traced.tracer.events))
        trace_events = document["traceEvents"]
        metadata = [e for e in trace_events if e["ph"] == "M"]
        spans = [e for e in trace_events if e["ph"] == "X"]
        assert metadata and spans
        # Microsecond timestamps: the 2 ms scenario spans ~2000 us.
        payload = [e for e in trace_events if e["ph"] != "M"]
        assert 100 < max(e["ts"] for e in payload) < 1e5
        # Every event's tid resolves to a named track.
        tids = {e["tid"] for e in metadata}
        assert all(e["tid"] in tids for e in payload)

    def test_write_trace_rejects_unknown_format(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_trace(tmp_path / "t.bin", [], fmt="protobuf")

    def test_write_trace_files(self, tmp_path, traced):
        jsonl = write_trace(tmp_path / "t.jsonl", traced.tracer.events, fmt="jsonl")
        chrome = write_trace(tmp_path / "t.json", traced.tracer.events, fmt="chrome")
        assert events_from_jsonl(jsonl.read_text())
        assert json.loads(chrome.read_text())["traceEvents"]


class TestDeterminism:
    def test_identical_runs_export_byte_identical_traces(self):
        first = _traced_run(seed=31)
        second = _traced_run(seed=31)
        assert to_jsonl(first.tracer.events) == to_jsonl(second.tracer.events)
        assert to_chrome_trace(first.tracer.events) == to_chrome_trace(
            second.tracer.events
        )
        assert json.dumps(first.registry.snapshot(), sort_keys=True) == json.dumps(
            second.registry.snapshot(), sort_keys=True
        )

    def test_telemetry_does_not_perturb_physics(self):
        # The instrumented and uninstrumented runs see identical timelines.
        from repro.testbench import Machine

        outcomes = []
        for telemetry in (None, Telemetry()):
            machine = Machine.build(COMET_LAKE, seed=77, telemetry=telemetry)
            machine.set_frequency(2.0)
            machine.write_voltage_offset(-90)
            machine.advance(2e-3)
            outcome = machine.run_imul_window(iterations=200_000)
            outcomes.append((outcome.fault_count, machine.now))
        assert outcomes[0] == outcomes[1]


class TestPollingStatsBackwardCompat:
    def test_standalone_stats_still_count(self):
        from repro.core.polling_module import PollingStats

        stats = PollingStats()
        stats.record_poll()
        stats.record_core_check()
        stats.record_detection()
        assert (stats.polls, stats.core_checks, stats.detections) == (1, 1, 1)

    def test_disabled_machine_stats_use_private_registry(self):
        from repro.core.characterization import CharacterizationFramework
        from repro.testbench import Machine

        unsafe = CharacterizationFramework(COMET_LAKE, seed=5).run().unsafe_states
        machine = Machine.build(COMET_LAKE, seed=3)  # telemetry disabled
        module = PollingCountermeasure(machine, unsafe)
        machine.modules.insmod(module)
        machine.advance(2e-3)
        assert module.stats.polls > 0  # counts survive disabled telemetry


class TestCLI:
    def test_trace_export_jsonl(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "run.jsonl"
        assert main(
            ["trace", "--cpu", "Comet Lake", "--export", "jsonl", "--out", str(out)]
        ) == 0
        events = events_from_jsonl(out.read_text())
        assert {"msr", "countermeasure"} <= {e.category for e in events}

    def test_trace_export_chrome(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "run.json"
        assert main(
            ["trace", "--cpu", "Comet Lake", "--export", "chrome", "--out", str(out)]
        ) == 0
        document = json.loads(out.read_text())
        assert document["traceEvents"]
        assert "perfetto" in capsys.readouterr().out

    def test_status_dumps_counters(self, capsys):
        from repro.cli import main

        assert main(["status", "--cpu", "Comet Lake"]) == 0
        out = capsys.readouterr().out
        assert "telemetry counters" in out
        assert "countermeasure.polls" in out

    def test_log_level_flag(self, capsys):
        import logging

        from repro.cli import main

        assert main(["--log-level", "warning", "list-cpus"]) == 0
        assert logging.getLogger("repro").level == logging.WARNING


class TestHistogramExactAggregates:
    """PR-4 satellite: stddev + truncation-aware percentiles."""

    def test_stddev_matches_population_formula(self):
        hist = Histogram("lat")
        values = [1.0, 2.0, 4.0, 8.0]
        for value in values:
            hist.observe(value)
        mean = sum(values) / len(values)
        expected = (sum((v - mean) ** 2 for v in values) / len(values)) ** 0.5
        assert hist.stddev() == pytest.approx(expected)
        assert hist.sum_sq == pytest.approx(sum(v * v for v in values))

    def test_stddev_exact_despite_truncation(self):
        full = Histogram("full")
        capped = Histogram("capped", max_samples=3)
        for value in range(100):
            full.observe(float(value))
            capped.observe(float(value))
        assert capped.truncated
        assert not full.truncated
        assert capped.stddev() == pytest.approx(full.stddev())

    def test_stddev_empty_and_constant(self):
        hist = Histogram("lat")
        assert hist.stddev() == 0.0
        hist.observe(5.0)
        hist.observe(5.0)
        assert hist.stddev() == 0.0

    def test_truncated_percentile_extremes_fall_back_to_aggregates(self):
        hist = Histogram("lat", max_samples=2)
        for value in range(100):
            hist.observe(float(value))
        # The retained window is [0, 1] — without the fallback both
        # extremes would be silently wrong.
        assert hist.percentile(0) == 0.0
        assert hist.percentile(100) == 99.0

    def test_truncated_interior_percentile_clamped_into_min_max(self):
        hist = Histogram("lat", max_samples=4)
        for value in (10.0, 20.0, 30.0, 40.0, 5.0, 50.0):
            hist.observe(value)
        assert hist.truncated
        for q in (25, 50, 75, 90):
            assert hist.min <= hist.percentile(q) <= hist.max

    def test_zero_window_uses_aggregates_only(self):
        hist = Histogram("lat", max_samples=0)
        for value in (3.0, 1.0, 2.0):
            hist.observe(value)
        assert hist.percentile(0) == 1.0
        assert hist.percentile(50) == 1.0
        assert hist.percentile(100) == 3.0

    def test_reset_clears_new_aggregates(self):
        hist = Histogram("lat", max_samples=1)
        hist.observe(2.0)
        hist.observe(4.0)
        hist.reset()
        assert hist.sum_sq == 0.0
        assert not hist.truncated

    def test_snapshot_carries_stddev_and_truncation(self):
        registry = Registry()
        hist = registry.histogram("turnaround", max_samples=1)
        hist.observe(1.0)
        hist.observe(3.0)
        stats = registry.snapshot()["histograms"]["turnaround"]
        assert stats["stddev"] == pytest.approx(1.0)
        assert stats["truncated"] is True

    def test_render_includes_percentile_columns(self):
        registry = Registry()
        registry.gauge("engine.progress.completed").set(3)
        hist = registry.histogram("turnaround")
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        rendered = registry.render()
        assert "engine.progress.completed" in rendered
        for column in ("p50=", "p95=", "p99=", "stddev="):
            assert column in rendered
        assert "window truncated" not in rendered
        registry.histogram("tiny", max_samples=1).observe(1.0)
        registry.histogram("tiny").observe(2.0)
        assert "window truncated" in registry.render()


class TestJsonlFieldFidelity:
    """PR-4 satellite: round trips preserve every TraceEvent field."""

    def _events(self):
        tracer = Tracer()
        tracer.instant("fault.injected", "fault", 1.5e-3, track="faults", core=0)
        tracer.complete(
            "msr.write", "msr", 2.0e-3, 4.2e-6, track="core0",
            address=0x150, value=-150,
        )
        tracer.counter_sample("voltage.applied", "voltage", 3.0e-3, 0.81, track="core0")
        return tracer.events

    def test_round_trip_preserves_every_field_for_all_kinds(self):
        events = self._events()
        restored = events_from_jsonl(to_jsonl(events))
        assert tuple(restored) == events
        for original, back in zip(events, restored):
            for field in (
                "name", "category", "phase", "time_s", "duration_s", "track", "args"
            ):
                assert getattr(back, field) == getattr(original, field)

    def test_round_trip_survives_ring_tracer(self):
        tracer = Tracer(max_events=2)
        for index in range(5):
            tracer.instant("tick", "sim", float(index), track="sim", i=index)
        events = tracer.events
        assert len(events) == 2
        assert events[0].args_dict["i"] == 3
        assert tuple(events_from_jsonl(to_jsonl(events))) == events

    def test_flight_telemetry_is_bounded(self):
        telemetry = Telemetry.flight(capacity=3)
        for index in range(10):
            telemetry.tracer.instant("tick", "sim", float(index))
        assert len(telemetry.tracer.events) == 3
        assert telemetry.tracer.events[-1].time_s == 9.0
