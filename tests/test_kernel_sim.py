"""Discrete-event simulator: ordering, recurrence, cooperative tasks."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.kernel.sim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(1.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        fired = []
        sim.schedule_at(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        sim.run()
        assert fired == []

    def test_event_scheduled_from_callback(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(1.0, lambda: order.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "second"]
        assert sim.now == pytest.approx(2.0)

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_firing_times_always_nondecreasing(self, delays):
        sim = Simulator()
        times = []
        for d in delays:
            sim.schedule(d, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)


class TestRunUntil:
    def test_stops_at_deadline(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run_until(2.0)
        assert fired == [1]
        assert sim.now == pytest.approx(2.0)

    def test_later_events_still_pending(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run_until(2.0)
        sim.run_until(6.0)
        assert fired == [5]

    def test_cannot_run_backwards(self):
        sim = Simulator()
        sim.run_until(2.0)
        with pytest.raises(SimulationError):
            sim.run_until(1.0)

    def test_inclusive_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append(1))
        sim.run_until(2.0)
        assert fired == [1]

    def test_cancelled_events_purged_when_stopping_early(self):
        # Regression: stopping before a live head used to leave cancelled
        # entries parked behind it, accumulating across run_until calls.
        sim = Simulator()
        fired = []
        sim.schedule(2.5, lambda: fired.append("live"))
        cancelled = sim.schedule(3.0, lambda: fired.append("cancelled"))
        cancelled.cancel()
        sim.run_until(2.0)
        assert fired == []
        assert not any(entry.event.cancelled for entry in sim._heap)
        sim.run_until(3.5)
        assert fired == ["live"]
        assert sim._heap == []


class TestRecurring:
    def test_fires_every_period(self):
        sim = Simulator()
        times = []
        sim.schedule_recurring(0.5, lambda: times.append(sim.now))
        sim.run_until(2.25)
        assert times == pytest.approx([0.5, 1.0, 1.5, 2.0])

    def test_cancel_stops_future_firings(self):
        sim = Simulator()
        count = [0]
        handle = sim.schedule_recurring(0.5, lambda: count.__setitem__(0, count[0] + 1))
        sim.run_until(1.1)
        handle.cancel()
        sim.run_until(5.0)
        assert count[0] == 2
        assert handle.fire_count == 2

    def test_nonpositive_period_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_recurring(0.0, lambda: None)


class TestTasks:
    def test_task_sleeps_between_yields(self):
        sim = Simulator()
        trace = []

        def body():
            trace.append(("start", sim.now))
            yield 1.0
            trace.append(("mid", sim.now))
            yield 2.0
            trace.append(("end", sim.now))
            return "done"

        task = sim.spawn(body())
        sim.run()
        assert task.done
        assert task.result == "done"
        assert trace == [("start", 0.0), ("mid", 1.0), ("end", 3.0)]

    def test_task_cancel(self):
        sim = Simulator()
        steps = []

        def body():
            while True:
                steps.append(sim.now)
                yield 1.0

        task = sim.spawn(body())
        sim.run_until(2.5)
        task.cancel()
        sim.run_until(10.0)
        assert len(steps) == 3  # t=0, 1, 2

    def test_task_error_propagates_and_is_recorded(self):
        sim = Simulator()

        def body():
            yield 0.1
            raise ValueError("boom")

        task = sim.spawn(body())
        with pytest.raises(ValueError):
            sim.run()
        assert task.done
        assert isinstance(task.error, ValueError)

    def test_negative_yield_rejected(self):
        sim = Simulator()

        def body():
            yield -1.0

        sim.spawn(body())
        with pytest.raises(SimulationError):
            sim.run()

    def test_concurrent_tasks_interleave(self):
        sim = Simulator()
        trace = []

        def worker(name, period):
            for _ in range(3):
                trace.append((name, round(sim.now, 6)))
                yield period

        sim.spawn(worker("fast", 1.0), name="fast")
        sim.spawn(worker("slow", 2.0), name="slow")
        sim.run()
        assert ("fast", 2.0) in trace
        assert ("slow", 2.0) in trace


class TestRunawayProtection:
    def test_max_events_guard(self):
        sim = Simulator()

        def rearm():
            sim.schedule(0.0, rearm)

        sim.schedule(0.0, rearm)
        with pytest.raises(SimulationError):
            sim.run(max_events=1000)

    def test_run_while_predicate(self):
        sim = Simulator()
        count = [0]
        sim.schedule_recurring(1.0, lambda: count.__setitem__(0, count[0] + 1))
        sim.run_while(lambda: count[0] < 5)
        assert count[0] == 5


class TestHeapHygiene:
    """Satellite coverage: cancelled-entry purge x RecurringEvent re-arm."""

    def test_pending_entries_snapshot(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        cancelled = sim.schedule(2.0, lambda: None)
        cancelled.cancel()
        assert sorted(sim.pending_entries()) == [(1.0, False), (2.0, True)]

    def test_prune_drops_only_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None).cancel()
        sim.prune()
        assert sim.pending_entries() == [(1.0, False)]

    def test_private_prune_alias_kept(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None).cancel()
        sim._prune_cancelled()
        assert sim.pending_entries() == []

    def test_recurring_rearm_storm_does_not_grow_heap(self):
        # A sysfs set_period storm: cancel + re-create the recurring event
        # many times between windows.  Each cancel strands one entry until
        # the next purge; the heap must never accumulate them.
        sim = Simulator()
        fired = []
        recurring = sim.schedule_recurring(1e-3, lambda: fired.append(sim.now))
        for index in range(50):
            recurring.cancel()
            recurring = sim.schedule_recurring(1e-3, lambda: fired.append(sim.now))
            sim.run_until(sim.now + 1e-4)
            assert len(sim.pending_entries()) == 1, f"iteration {index}"
        sim.run_until(sim.now + 5e-3)
        assert len(fired) >= 4

    def test_rearmed_recurring_keeps_firing(self):
        sim = Simulator()
        count = [0]
        recurring = sim.schedule_recurring(1.0, lambda: count.__setitem__(0, count[0] + 1))
        sim.run_until(2.5)
        assert count[0] == 2
        recurring.cancel()
        recurring = sim.schedule_recurring(0.5, lambda: count.__setitem__(0, count[0] + 1))
        sim.run_until(4.5)
        assert count[0] == 6
        assert not any(cancelled for _, cancelled in sim.pending_entries())

    def test_cancelled_recurring_purged_while_live_head_waits(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)  # live head beyond the window
        recurring = sim.schedule_recurring(5.0, lambda: None)
        recurring.cancel()
        sim.run_until(1.0)
        assert sim.pending_entries() == [(10.0, False)]
