"""The fault-space explorer: trace fidelity, pruning soundness, identity.

Three contracts matter here:

* the traced victim addresses the attack ALU's multiplication sequence
  one for one (region boundaries derived from the exponent structure);
* every pruned fault-space element is *provably* uninteresting — the
  brute-force tests below re-simulate pruned elements and demand the
  pruned verdict;
* the exploitability map is byte-identical across shardings and
  executors, reports a non-empty exploitable set on the undefended
  Sky Lake machine, and an exactly empty one with the polling
  countermeasure loaded.
"""

from __future__ import annotations

import json

import pytest

from repro.attacks.rsa_crt import RSAKey, bellcore_extract
from repro.engine import (
    EngineSession,
    ExploreInjectionJob,
    ExplorePointJob,
    ParallelExecutor,
    SerialExecutor,
)
from repro.engine.cache import ResultCache
from repro.errors import ConfigurationError
from repro.explore import (
    DEFAULT_FAULT_MODELS,
    ExplorePlan,
    ReplayALU,
    TracedOp,
    VictimTrace,
    canonical_json,
    corrupt,
    corruptor,
    coverage_holds,
    enumerate_injections,
    modexp_op_count,
    prune_points,
    replay_with_fault,
    run_explore,
    trace_victim,
)
from repro.telemetry import NULL_TELEMETRY

KEY = RSAKey.generate(128, seed=42)
MESSAGE = 0xDEADBEEF

#: A small but non-trivial plan: spans safe, feasible and crash offsets.
PLAN = ExplorePlan(
    codename="Sky Lake",
    frequencies_ghz=(2.0, 3.2),
    offsets_mv=(-40, -120, -200, -280),
)


@pytest.fixture(scope="module")
def trace():
    return trace_victim(KEY, MESSAGE)


@pytest.fixture(scope="module")
def open_map():
    session = EngineSession(executor=SerialExecutor(), cache=ResultCache(), registry=None)
    return run_explore(PLAN, session=session, rows_per_job=8)


class TestVictimTrace:
    def test_op_count_matches_exponent_structure(self, trace):
        expected = modexp_op_count(KEY.dp) + modexp_op_count(KEY.dq) + 2
        assert trace.op_count == expected

    def test_regions_partition_the_trace(self, trace):
        sizes = trace.region_sizes()
        assert sizes["sp"] == modexp_op_count(KEY.dp)
        assert sizes["sq"] == modexp_op_count(KEY.dq)
        assert sizes["recombine-h"] == 1
        assert sizes["recombine-mul"] == 1
        regions = [op.region for op in trace.ops]
        # Regions appear in order, contiguously.
        assert regions == sorted(regions, key=("sp", "sq", "recombine-h", "recombine-mul").index)

    def test_golden_signature_is_correct(self, trace):
        assert trace.golden_signature == pow(MESSAGE % KEY.n, KEY.d, KEY.n)

    def test_identity_replay_reproduces_golden(self, trace):
        signature = replay_with_fault(KEY, MESSAGE, 0, lambda value: value)
        assert signature == trace.golden_signature

    def test_replay_ops_match_traced_ops(self, trace):
        from repro.attacks.rsa_crt import RSACRTSigner

        alu = ReplayALU(target_index=-1, corruptor=lambda value: value)
        RSACRTSigner(KEY).sign(alu, MESSAGE)
        assert alu.op_count == trace.op_count

    def test_sp_fault_is_bellcore_exploitable(self, trace):
        faulty = replay_with_fault(KEY, MESSAGE, 0, corruptor("flip:0"))
        result = bellcore_extract(KEY.n, KEY.e, MESSAGE, faulty)
        assert result is not None
        assert result.factors() == tuple(sorted((KEY.p, KEY.q)))


class TestFaultModels:
    def test_catalog(self):
        assert corrupt("flip:3", 0b1) == 0b1001
        assert corrupt("zero", 12345) == 0
        assert corrupt("trunc64", (1 << 100) | 7) == 7

    def test_malformed_models_rejected(self):
        for name in ("flip:x", "flip:-1", "mystery"):
            with pytest.raises(ConfigurationError):
                corruptor(name)

    def test_plan_rejects_duplicates_and_empty(self):
        with pytest.raises(ConfigurationError):
            ExplorePlan("Sky Lake", (2.0,), (-100,), fault_models=("zero", "zero"))
        with pytest.raises(ConfigurationError):
            ExplorePlan("Sky Lake", (2.0,), (-100,), fault_models=())

    def test_protected_plan_requires_unsafe_json(self):
        with pytest.raises(ConfigurationError):
            ExplorePlan("Sky Lake", (2.0,), (-100,), protect=True)


class TestPruningSoundness:
    """Brute-force the small plan unpruned: every prune must be provable."""

    def test_masked_pairs_cannot_reach_the_signature(self, trace):
        plan = enumerate_injections(trace, DEFAULT_FAULT_MODELS)
        assert plan.enumerated == trace.op_count * len(DEFAULT_FAULT_MODELS)
        golden = trace.golden_signature
        for op_index, model in plan.masked:
            assert replay_with_fault(KEY, MESSAGE, op_index, corruptor(model)) == golden

    def test_equivalence_members_share_the_representative_verdict(self, trace):
        plan = enumerate_injections(trace, DEFAULT_FAULT_MODELS)

        def verdict(op_index, model):
            signature = replay_with_fault(KEY, MESSAGE, op_index, corruptor(model))
            if signature == trace.golden_signature:
                return "masked"
            result = bellcore_extract(KEY.n, KEY.e, MESSAGE, signature)
            if result is not None and result.factors() == tuple(sorted((KEY.p, KEY.q))):
                return "exploitable"
            return "corrupted"

        for cls in plan.classes:
            verdicts = {verdict(cls.op_index, model) for model in cls.members}
            assert len(verdicts) == 1

    def test_equivalence_collapses_identical_corruptions(self):
        # A product of exactly 2^64: trunc64 and zero both corrupt it to
        # 0, so they must land in one class with a single representative.
        op = TracedOp(index=0, lhs=1 << 32, rhs=1 << 32, product=1 << 64,
                      reduce_mod=KEY.p, region="sp")
        trace = VictimTrace(key=KEY, message=MESSAGE, golden_signature=0, ops=(op,))
        plan = enumerate_injections(trace, ("trunc64", "zero"))
        assert plan.simulated == 1
        assert plan.pruned_equivalent == 1
        assert plan.classes[0].members == ("trunc64", "zero")

    def test_grid_safe_points_probe_safe_on_a_live_machine(self):
        point_plan = prune_points(PLAN, ("imul",))
        pruned = [
            point
            for point, status in zip(point_plan.points, point_plan.predicted)
            if status == "safe"
        ]
        assert pruned  # the plan's -40 mV column is inside the safe region
        job = ExplorePointJob(
            codename=PLAN.codename,
            points=tuple(pruned),
            protect=False,
            seed=PLAN.seed,
        )
        for record in job.run(NULL_TELEMETRY):
            assert record["status"] == "safe"

    def test_pruning_stats_account_for_everything(self, open_map):
        stats = open_map["stats"]
        assert stats["points_enumerated"] == (
            stats["points_pruned_safe"] + stats["points_probed"]
        )
        assert stats["injections_enumerated"] == (
            stats["injections_pruned_masked"]
            + stats["injections_pruned_equivalent"]
            + stats["injections_simulated"]
        )


class TestMapIdentity:
    def test_byte_identical_across_shardings(self, open_map):
        reference = canonical_json(open_map)
        for rows_per_job in (1, 3, 1000):
            session = EngineSession(
                executor=SerialExecutor(), cache=ResultCache(), registry=None
            )
            document = run_explore(PLAN, session=session, rows_per_job=rows_per_job)
            assert canonical_json(document) == reference

    def test_byte_identical_serial_vs_parallel(self, open_map):
        session = EngineSession(
            executor=ParallelExecutor(2), cache=ResultCache(), registry=None
        )
        try:
            document = session.explore(PLAN, rows_per_job=3)
        finally:
            session.close()
        assert canonical_json(document) == canonical_json(open_map)

    def test_map_round_trips_through_json(self, open_map):
        assert json.loads(canonical_json(open_map)) == open_map


class TestCoverage:
    def test_undefended_sky_lake_has_exploitable_points(self, open_map):
        assert open_map["summary"]["feasible_points"] > 0
        assert open_map["summary"]["exploitable_pairs"] > 0
        assert open_map["summary"]["exploitable_points"] > 0

    def test_countermeasure_drives_exploitable_set_to_zero(
        self, open_map, skylake_characterization
    ):
        unsafe_json = json.dumps(
            skylake_characterization.unsafe_states.to_dict(), sort_keys=True
        )
        protected_plan = ExplorePlan(
            codename=PLAN.codename,
            frequencies_ghz=PLAN.frequencies_ghz,
            offsets_mv=PLAN.offsets_mv,
            protect=True,
            unsafe_json=unsafe_json,
        )
        session = EngineSession(
            executor=SerialExecutor(), cache=ResultCache(), registry=None
        )
        protected_map = run_explore(protected_plan, session=session)
        assert protected_map["summary"]["feasible_points"] == 0
        assert protected_map["summary"]["exploitable_points"] == 0
        assert coverage_holds(open_map, protected_map)

    def test_injection_verdicts_by_region(self, open_map):
        # Faults in either exponentiation *and* in the recombination
        # leave one CRT residue intact, so Bellcore factoring works;
        # only masked corruptions escape.
        by_verdict = {}
        for entry in open_map["injections"]:
            by_verdict.setdefault(entry["verdict"], 0)
            by_verdict[entry["verdict"]] += 1
        assert by_verdict.get("exploitable", 0) > 0
        assert (
            sum(by_verdict.values())
            == open_map["stats"]["injections_enumerated"]
        )


class TestJobSpecs:
    def test_point_job_fingerprint_is_stable(self):
        job = ExplorePointJob(
            codename="Sky Lake", points=((2.0, -120),), protect=False, seed=5
        )
        clone = ExplorePointJob(
            codename="Sky Lake", points=((2.0, -120),), protect=False, seed=5
        )
        assert job.fingerprint() == clone.fingerprint()
        other = ExplorePointJob(
            codename="Sky Lake", points=((2.0, -121),), protect=False, seed=5
        )
        assert job.fingerprint() != other.fingerprint()

    def test_protected_point_job_requires_unsafe_json(self):
        with pytest.raises(ConfigurationError):
            ExplorePointJob(
                codename="Sky Lake", points=((2.0, -120),), protect=True, seed=5
            )

    def test_injection_job_regenerates_identical_verdicts(self):
        job = ExploreInjectionJob(
            key_bits=128, key_seed=42, message=MESSAGE, reps=((0, "flip:0"),)
        )
        first = job.run(NULL_TELEMETRY)
        second = job.run(NULL_TELEMETRY)
        assert first == second
        assert first[0]["verdict"] == "exploitable"
