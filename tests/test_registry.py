"""The run registry: content-addressed store, recording, reproduce, diff.

The registry's core promise is the acceptance criterion of this layer:
a campaign recorded on one day can be re-executed from nothing but its
manifest and must reproduce every result blob byte-for-byte — and a
store that has been tampered with (even one flipped bit) must fail the
reproduction loudly, naming the job whose payload no longer matches.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.engine import EngineSession, FuzzJob, SerialExecutor
from repro.engine.jobs import AttackCampaignJob
from repro.errors import RegistryError, RegistryIntegrityError
from repro.registry import (
    ObjectStore,
    RunRegistry,
    check_point,
    code_fingerprint,
    compute_run_id,
    diff_runs,
    encode_object,
    load_trajectory,
    make_point,
    record_point,
    reproduce_run,
    sha256_hex,
    write_trajectory,
)

CODENAMES = ("Sky Lake", "Kaby Lake R", "Comet Lake")


@pytest.fixture
def registry(tmp_path, monkeypatch) -> RunRegistry:
    """A fresh registry that is also the environment-selected one."""
    directory = tmp_path / "registry"
    monkeypatch.setenv("REPRO_REGISTRY_DIR", str(directory))
    monkeypatch.delenv("REPRO_REGISTRY", raising=False)
    return RunRegistry(directory)


def _session(registry: RunRegistry) -> EngineSession:
    return EngineSession(executor=SerialExecutor(), registry=registry)


def _fuzz_jobs(count: int = 1):
    return [
        FuzzJob(codename=codename, seed=5, case_index=case, num_actions=5)
        for codename in CODENAMES
        for case in range(count)
    ]


def _record_fuzz_run(registry: RunRegistry) -> str:
    session = _session(registry)
    session.run_jobs(_fuzz_jobs())
    run_id = session.record_run()
    session.close()
    assert run_id is not None
    return run_id


class TestObjectStore:
    def test_round_trip_and_dedup(self, tmp_path):
        store = ObjectStore(tmp_path)
        sha = store.put_bytes(b"hello volt")
        assert store.get_bytes(sha) == b"hello volt"
        again = store.put_bytes(b"hello volt")
        assert again == sha
        assert store.stats.dedup_hits == 1
        count, size = store.census()
        assert count == 1 and size == len(b"hello volt")

    def test_read_verifies_content_hash(self, tmp_path):
        store = ObjectStore(tmp_path)
        sha = store.put_bytes(b"payload")
        path = next((tmp_path / "objects").rglob(sha))
        data = bytearray(path.read_bytes())
        data[0] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(RegistryIntegrityError) as excinfo:
            store.get_bytes(sha)
        assert excinfo.value.sha256 == sha

    def test_missing_object_raises(self, tmp_path):
        store = ObjectStore(tmp_path)
        with pytest.raises(RegistryIntegrityError):
            store.get_bytes("0" * 64)

    def test_orphaned_tmp_file_is_ignored(self, tmp_path):
        store = ObjectStore(tmp_path)
        sha = sha256_hex(b"payload")
        torn = tmp_path / "objects" / sha[:2] / f"{sha}.tmp.999"
        torn.parent.mkdir(parents=True)
        torn.write_bytes(b"pay")  # a write SIGKILL tore mid-stream
        assert store.put_bytes(b"payload") == sha
        assert store.get_bytes(sha) == b"payload"


class TestRunId:
    def test_deterministic_over_provenance(self):
        manifest = {
            "schema": 3,
            "code": {"version": "1.0.0", "describe": "abc"},
            "env": {"result_affecting": {"REPRO_VERIFY": ""}},
            "batches": [{"jobs": [{"kind": "fuzz", "fingerprint": "f" * 64}]}],
        }
        assert compute_run_id(manifest) == compute_run_id(dict(manifest))

    def test_ignores_wall_time_and_sources(self):
        base = {
            "schema": 3,
            "code": {"version": "1.0.0", "describe": None},
            "env": {"result_affecting": {}},
            "batches": [
                {
                    "wall_s": 1.0,
                    "jobs": [
                        {"kind": "fuzz", "fingerprint": "a" * 64, "source": "executed"}
                    ],
                }
            ],
        }
        other = json.loads(json.dumps(base))
        other["batches"][0]["wall_s"] = 99.0
        other["batches"][0]["jobs"][0]["source"] = "cache"
        assert compute_run_id(base) == compute_run_id(other)

    def test_splits_on_job_fingerprint(self):
        base = {
            "schema": 3,
            "code": {},
            "env": {"result_affecting": {}},
            "batches": [{"jobs": [{"kind": "fuzz", "fingerprint": "a" * 64}]}],
        }
        other = json.loads(json.dumps(base))
        other["batches"][0]["jobs"][0]["fingerprint"] = "b" * 64
        assert compute_run_id(base) != compute_run_id(other)

    def test_code_fingerprint_has_version(self):
        import repro

        code = code_fingerprint()
        assert code["version"] == repro.__version__


class TestSessionRecording:
    def test_session_records_automatically_on_close(self, registry):
        session = _session(registry)
        session.run_jobs(_fuzz_jobs())
        session.close()
        runs = registry.runs()
        assert len(runs) == 1
        assert runs[0]["status"] == "complete"
        assert runs[0]["jobs_total"] == len(CODENAMES)
        assert sorted(runs[0]["codenames"]) == sorted(CODENAMES)

    def test_recording_is_idempotent(self, registry):
        session = _session(registry)
        session.run_jobs(_fuzz_jobs())
        first = session.record_run()
        second = session.record_run()
        session.close()
        assert first == second
        assert len(registry.runs()) == 1

    def test_same_campaign_same_run_id(self, registry):
        assert _record_fuzz_run(registry) == _record_fuzz_run(registry)
        assert len(registry.runs()) == 1

    def test_opt_out_disables_recording(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_REGISTRY", "0")
        session = EngineSession(executor=SerialExecutor())
        assert session.registry is None
        session.run_jobs(_fuzz_jobs())
        assert session.record_run() is None
        session.close()

    def test_manifest_is_schema3_with_run_id(self, registry):
        session = _session(registry)
        session.run_jobs(_fuzz_jobs())
        manifest = session.run_manifest()
        session.close()
        assert manifest["schema"] == 3
        assert manifest["run_id"] == compute_run_id(manifest)
        assert manifest["code"]["version"]
        assert "REPRO_VERIFY" in manifest["env"]["result_affecting"]

    def test_stored_manifest_round_trips(self, registry):
        run_id = _record_fuzz_run(registry)
        manifest = registry.manifest(run_id)
        assert manifest["run_id"] == run_id
        assert manifest["schema"] == 3

    def test_filters(self, registry):
        run_id = _record_fuzz_run(registry)
        assert registry.runs(codename="Sky Lake")
        assert not registry.runs(codename="Alder Lake")
        assert registry.runs(status="complete")
        assert not registry.runs(status="quarantined")
        fingerprint = registry.results_for(run_id)[0]["fingerprint"]
        assert registry.runs(fingerprint=fingerprint[:16])
        assert registry.runs(since="2000-01-01")
        assert not registry.runs(since="2999-01-01")

    def test_resolve_prefix(self, registry):
        run_id = _record_fuzz_run(registry)
        assert registry.resolve(run_id[:8]) == run_id
        with pytest.raises(RegistryError):
            registry.resolve("zzz")


class TestReproduce:
    def test_byte_identity_across_all_three_models(self, registry):
        run_id = _record_fuzz_run(registry)
        report = reproduce_run(registry, run_id)
        assert report.ok
        assert report.counts() == {"identical": len(CODENAMES)}
        assert all(job.status == "identical" for job in report.jobs)

    def test_attack_campaign_jobs_reproduce(self, registry):
        session = _session(registry)
        session.run_jobs(
            [
                AttackCampaignJob(
                    codename="Sky Lake", attack="imul", protected=False, seed=5
                )
            ]
        )
        run_id = session.record_run()
        session.close()
        report = reproduce_run(registry, run_id)
        assert report.ok and report.counts() == {"identical": 1}

    def test_tampered_blob_fails_naming_the_job(self, registry):
        run_id = _record_fuzz_run(registry)
        victim = registry.results_for(run_id)[1]
        blob = next(
            (registry.directory / "objects").rglob(victim["payload_sha"])
        )
        data = bytearray(blob.read_bytes())
        data[len(data) // 2] ^= 0x01  # one flipped bit
        blob.write_bytes(bytes(data))
        report = reproduce_run(registry, run_id)
        assert not report.ok
        assert report.counts()["tampered"] == 1
        rendered = report.render()
        assert victim["fingerprint"][:12] in rendered

    def test_mismatched_payload_fails_with_per_job_diff(self, registry):
        run_id = _record_fuzz_run(registry)
        victim = registry.results_for(run_id)[0]
        # A valid object containing the *wrong* payload: the store's
        # integrity check passes, so reproduction must catch it by
        # re-executing and comparing bytes.
        wrong_sha = registry.store.put_bytes(encode_object({"wrong": True}))
        import sqlite3

        with sqlite3.connect(registry.directory / "index.sqlite") as db:
            db.execute(
                "UPDATE results SET payload_sha = ? WHERE run_id = ? "
                "AND fingerprint = ?",
                (wrong_sha, run_id, victim["fingerprint"]),
            )
        report = reproduce_run(registry, run_id)
        assert not report.ok
        assert report.counts()["mismatch"] == 1
        job = next(j for j in report.jobs if j.status == "mismatch")
        assert job.fingerprint == victim["fingerprint"]
        assert job.detail  # the per-job payload diff
        assert victim["fingerprint"][:12] in report.render()

    def test_cli_reproduce_exit_codes(self, registry, capsys):
        run_id = _record_fuzz_run(registry)
        assert main(["reproduce", run_id[:12]]) == 0
        out = capsys.readouterr().out
        assert "byte-for-byte" in out
        blob = next(
            (registry.directory / "objects").rglob(
                registry.results_for(run_id)[0]["payload_sha"]
            )
        )
        data = bytearray(blob.read_bytes())
        data[0] ^= 0xFF
        blob.write_bytes(bytes(data))
        assert main(["reproduce", run_id[:12]]) == 1

    def test_unknown_run_id_exits_2(self, registry, capsys):
        assert main(["reproduce", "feedfacefeed"]) == 2
        assert "no run matching" in capsys.readouterr().err


class TestCrashSafety:
    def test_sigkill_mid_commit_leaves_index_consistent(self, registry):
        """A SIGKILL inside the commit transaction must roll back cleanly."""
        script = textwrap.dedent(
            f"""
            import os, signal, sys
            sys.path.insert(0, {str(Path("src").resolve())!r})
            from repro.registry.registry import RunRegistry

            registry = RunRegistry({str(registry.directory)!r})
            row = registry.stage_result(
                kind="fuzz",
                fingerprint="f" * 64,
                seed_path=["fuzz", "Sky Lake", "case@0"],
                source="executed",
                spec_bytes=b"spec-bytes",
                payload_bytes=b"payload-bytes",
            )
            db = registry._connect()
            db.execute("BEGIN")
            db.execute(
                "INSERT INTO runs (run_id, created_at, status, schema, "
                "manifest_sha, code_json, env_json, codenames_json, "
                "jobs_total, jobs_executed, jobs_cached, jobs_resumed, "
                "jobs_quarantined) VALUES (?, ?, ?, ?, ?, ?, ?, ?, 1, 1, 0, 0, 0)",
                ("a" * 64, "2026-01-01T00:00:00Z", "complete", 3,
                 row["spec_sha"], "{{}}", "{{}}", "[]"),
            )
            print("MID_TRANSACTION", flush=True)
            os.kill(os.getpid(), signal.SIGKILL)
            """
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            cwd=str(Path(__file__).resolve().parent.parent),
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert "MID_TRANSACTION" in completed.stdout
        assert completed.returncode == -signal.SIGKILL
        # The uncommitted run row rolled back; staged blobs survive and
        # verify; the index accepts new work.
        assert registry.runs() == []
        count, _ = registry.store.census()
        assert count == 2  # spec + payload blobs, both valid orphans
        run_id = _record_fuzz_run(registry)
        assert reproduce_run(registry, run_id).ok

    def test_sigkill_before_commit_records_nothing(self, registry):
        script = textwrap.dedent(
            f"""
            import os, signal, sys
            sys.path.insert(0, {str(Path("src").resolve())!r})
            os.environ["REPRO_REGISTRY_DIR"] = {str(registry.directory)!r}
            from repro.engine import EngineSession, FuzzJob, SerialExecutor

            session = EngineSession(executor=SerialExecutor())
            session.run_jobs(
                [FuzzJob(codename="Sky Lake", seed=5, case_index=0, num_actions=5)]
            )
            print("STAGED", flush=True)
            os.kill(os.getpid(), signal.SIGKILL)  # dies before record_run
            """
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            cwd=str(Path(__file__).resolve().parent.parent),
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert "STAGED" in completed.stdout
        assert registry.runs() == []
        count, _ = registry.store.census()
        assert count >= 2  # orphaned but valid staged blobs
        # The same campaign records fine afterwards and the orphans are
        # reused as cache hits at the store level (same content hash).
        session = _session(registry)
        session.run_jobs(
            [FuzzJob(codename="Sky Lake", seed=5, case_index=0, num_actions=5)]
        )
        assert session.record_run() is not None
        session.close()


class TestDiff:
    def test_identical_runs(self, registry, capsys):
        run_id = _record_fuzz_run(registry)
        diff = diff_runs(registry, run_id, run_id)
        assert diff.identical
        assert main(["diff", run_id[:12], run_id[:12]]) == 0
        assert "no drift" in capsys.readouterr().out

    def test_spec_drift_names_the_changed_field(self, registry):
        run_a = _record_fuzz_run(registry)
        session = _session(registry)
        session.run_jobs(
            [
                FuzzJob(codename=codename, seed=7, case_index=0, num_actions=5)
                for codename in CODENAMES
            ]
        )
        run_b = session.record_run()
        session.close()
        diff = diff_runs(registry, run_a, run_b)
        assert not diff.identical
        assert diff.code_drift is None
        assert len(diff.spec_drift) == len(CODENAMES)
        assert all("seed" in d.changed_fields for d in diff.spec_drift)
        assert "seed" in diff.render()

    def test_env_drift_attributed_before_results(self, registry, monkeypatch):
        run_a = _record_fuzz_run(registry)
        monkeypatch.setenv("REPRO_VERIFY", "1")
        run_b = _record_fuzz_run(registry)
        diff = diff_runs(registry, run_a, run_b)
        assert "REPRO_VERIFY" in diff.env_drift
        # The env change also re-fingerprints every spec (env is part of
        # job identity), and the identity comparison attributes that to
        # the env rung, not to opaque spec drift.
        assert diff.spec_drift
        assert all(d.changed_fields == ["env"] for d in diff.spec_drift)

    def test_composition_drift(self, registry):
        run_a = _record_fuzz_run(registry)
        session = _session(registry)
        session.run_jobs(_fuzz_jobs() + _fuzz_jobs(2)[3:])  # one extra case
        run_b = session.record_run()
        session.close()
        diff = diff_runs(registry, run_a, run_b)
        assert diff.only_in_b and not diff.only_in_a

    def test_cli_diff_json(self, registry, capsys):
        run_id = _record_fuzz_run(registry)
        assert main(["diff", run_id, run_id, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["identical"] is True


class TestTrajectory:
    def test_record_and_ratchet_check(self, registry, tmp_path):
        file = tmp_path / "BENCH_engine_campaign.json"
        for value in (2.0, 1.5, 1.8):
            record_point(
                make_point("engine_campaign", "serial_seconds", value),
                registry=registry,
                file=file,
            )
        assert len(registry.trajectory("engine_campaign")) == 3
        assert len(load_trajectory(file)) == 3
        baseline = load_trajectory(file)
        # The gate ratchets against the *best* point (1.5), not the last.
        ok = check_point(
            baseline,
            make_point("engine_campaign", "serial_seconds", 1.6),
            max_regress=0.10,
        )
        assert ok.ok and ok.baseline_best == 1.5
        regress = check_point(
            baseline,
            make_point("engine_campaign", "serial_seconds", 1.7),
            max_regress=0.10,
        )
        assert not regress.ok

    def test_higher_is_better_direction(self):
        baseline = [make_point("b", "speedup", 3.0, lower_is_better=False)]
        drop = check_point(
            baseline,
            make_point("b", "speedup", 2.0, lower_is_better=False),
            max_regress=0.25,
        )
        assert not drop.ok
        gain = check_point(
            baseline,
            make_point("b", "speedup", 3.5, lower_is_better=False),
            max_regress=0.25,
        )
        assert gain.ok

    def test_committed_baselines_are_nonempty_and_canonical(self):
        trajectories = Path(__file__).resolve().parent.parent / (
            "benchmarks/trajectories"
        )
        for name in ("BENCH_engine_campaign.json", "BENCH_telemetry_overhead.json"):
            path = trajectories / name
            points = load_trajectory(path)
            assert points, f"{name} must ship a non-empty baseline"
            canonical = json.dumps(points, sort_keys=True, indent=2) + "\n"
            assert path.read_text() == canonical, f"{name} is not canonical"
            assert all(
                isinstance(p["value"], float) and p["value"] > 0 for p in points
            )

    def test_synthetic_regression_fails_the_committed_gate(self, capsys):
        """The acceptance check: a 10x regression must fail the CI gate."""
        baseline = "benchmarks/trajectories/BENCH_engine_campaign.json"
        worst = max(p["value"] for p in load_trajectory(baseline))
        code = main(
            [
                "trajectory",
                "check",
                "engine_campaign",
                "--value",
                str(worst * 10),
                "--baseline",
                baseline,
                "--max-regress",
                "1.0",
            ]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_cli_record_check_and_list(self, registry, tmp_path, capsys):
        file = tmp_path / "BENCH_demo.json"
        assert main(
            ["trajectory", "record", "demo", "--value", "2.0",
             "--metric", "wall_s", "--file", str(file)]
        ) == 0
        assert main(
            ["trajectory", "check", "demo", "--value", "2.1",
             "--baseline", str(file)]
        ) == 0
        assert main(
            ["trajectory", "check", "demo", "--value", "9.0",
             "--baseline", str(file)]
        ) == 1
        assert main(["trajectory", "list"]) == 0
        assert "demo" in capsys.readouterr().out

    def test_check_without_baseline_exits_2(self, tmp_path, capsys):
        code = main(
            ["trajectory", "check", "ghost", "--value", "1.0",
             "--baseline", str(tmp_path / "BENCH_ghost.json")]
        )
        assert code == 2
        assert "missing or empty" in capsys.readouterr().err

    def test_artifact_metric_extraction(self, registry, tmp_path, capsys):
        artifact = tmp_path / "bench.json"
        artifact.write_text(json.dumps({"serial_seconds": 1.25, "other": "x"}))
        assert main(
            ["trajectory", "record", "engine_campaign",
             "--from", str(artifact), "--metric", "serial_seconds"]
        ) == 0
        points = registry.trajectory("engine_campaign")
        assert points and points[-1]["value"] == 1.25


class TestCLIRunsAndStatus:
    def test_runs_list_show_and_porcelain(self, registry, capsys):
        run_id = _record_fuzz_run(registry)
        assert main(["runs", "list"]) == 0
        out = capsys.readouterr().out
        assert run_id[:12] in out and "Sky Lake" in out
        assert main(["runs", "list", "--porcelain"]) == 0
        assert capsys.readouterr().out.strip() == run_id
        assert main(["runs", "list", "--cpu", "Alder Lake"]) == 0
        assert "no recorded runs" in capsys.readouterr().out
        assert main(["runs", "show", run_id[:10]]) == 0
        out = capsys.readouterr().out
        assert run_id in out
        assert "fuzz/Sky Lake/case@0" in out

    def test_status_registry(self, registry, capsys):
        _record_fuzz_run(registry)
        record_point(
            make_point("engine_campaign", "serial_seconds", 1.0),
            registry=registry,
        )
        assert main(["status", "--registry"]) == 0
        out = capsys.readouterr().out
        assert "recorded runs" in out
        assert "dedup hit-rate" in out
        assert "engine_campaign" in out

    def test_registry_flag_overrides_env(self, registry, tmp_path, capsys):
        other = tmp_path / "other-registry"
        assert main(["runs", "list", "--registry", str(other)]) == 0
        assert "no recorded runs" in capsys.readouterr().out


class TestFlightRegistration:
    def test_dumps_are_recorded_with_hashes(self, registry, tmp_path, monkeypatch):
        from repro.observe.flight import dump_job_failure
        from repro.telemetry import Telemetry

        flight_dir = tmp_path / "flights"
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(flight_dir))
        session = _session(registry)
        jobs = _fuzz_jobs()
        session.run_jobs(jobs)
        # A failed attempt left a dump for a job that later succeeded —
        # exactly what a retry under supervision looks like.
        dump = dump_job_failure(
            jobs[0], Telemetry(), RuntimeError("injected"), dump_dir=flight_dir
        )
        run_id = session.record_run()
        session.close()
        flights = registry.flights_for(run_id)
        assert [f["path"] for f in flights] == [str(dump)]
        assert flights[0]["sha256"] == sha256_hex(dump.read_bytes())
        assert flights[0]["reason"] == "failed-attempt"

    def test_runs_show_lists_dumps_and_replay_accepts_run_id(
        self, registry, tmp_path, monkeypatch, capsys
    ):
        from repro.observe.flight import dump_job_failure
        from repro.telemetry import Telemetry

        flight_dir = tmp_path / "flights"
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(flight_dir))
        session = _session(registry)
        jobs = _fuzz_jobs()
        session.run_jobs(jobs)
        dump_job_failure(
            jobs[0], Telemetry(), RuntimeError("injected"), dump_dir=flight_dir
        )
        run_id = session.record_run()
        session.close()
        assert main(["runs", "show", run_id[:12]]) == 0
        assert "flight dumps:" in capsys.readouterr().out
        # `observe replay <run-id>` resolves the run's recorded dumps;
        # this dump carries no schedule, which replay reports (exit 2)
        # after listing what it found.
        assert main(["observe", "replay", run_id[:12]]) == 2
        out = capsys.readouterr().out
        assert "recorded flight dump(s)" in out

    def test_register_flight_api(self, registry, tmp_path):
        run_id = _record_fuzz_run(registry)
        dump = tmp_path / "manual.flight.jsonl"
        dump.write_text('{"kind":"flight-recorder"}\n')
        record = registry.register_flight(run_id, dump, reason="manual")
        assert record["sha256"] == sha256_hex(dump.read_bytes())
        assert registry.flights_for(run_id)[0]["reason"] == "manual"


class TestReportSchemas:
    def test_schema3_manifest_renders_provenance(self, registry):
        from repro.observe import render_markdown

        session = _session(registry)
        session.run_jobs(_fuzz_jobs())
        manifest = session.run_manifest()
        session.close()
        rendered = render_markdown(manifest)
        assert "## Provenance" in rendered
        assert manifest["run_id"] in rendered
        assert "Result-affecting environment" in rendered

    def test_schema2_manifest_still_renders(self):
        from repro.observe import render_markdown

        manifest = {
            "kind": "run-report",
            "schema": 2,
            "engine": {"executor": "serial", "workers": 1, "cache": {}},
            "env": {"REPRO_EXECUTOR": "serial"},
            "jobs": {"total": 1, "cached": 0, "executed": 1, "quarantined": 0},
            "quarantined": [],
            "batches": [],
            "metrics": {},
        }
        rendered = render_markdown(manifest)
        assert "## Provenance" not in rendered
        assert "REPRO_EXECUTOR" in rendered

    def test_describe_exposes_registry(self, registry):
        session = _session(registry)
        session.run_jobs(_fuzz_jobs())
        description = session.describe()
        session.close()
        assert description["registry"]["staged"] == len(CODENAMES)

    def test_registry_describe_counts(self, registry):
        _record_fuzz_run(registry)
        _record_fuzz_run(registry)  # same campaign: same run id, deduped
        info = registry.describe()
        assert info["runs"] == 1
        assert info["jobs"]["total"] == len(CODENAMES)
        assert info["objects"] > 0 and info["store_bytes"] > 0
