"""Thermal RC model and its coupling to the fault boundary."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.cpu import COMET_LAKE
from repro.cpu.thermal import ThermalModel, ThermalParameters
from repro.faults.margin import FaultModel


@pytest.fixture
def thermal() -> ThermalModel:
    return ThermalModel(COMET_LAKE)


class TestParameters:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ThermalParameters(r_th_k_per_w=0.0)
        with pytest.raises(ConfigurationError):
            ThermalParameters(tau_s=-1.0)
        with pytest.raises(ConfigurationError):
            ThermalParameters(ambient_c=50.0, t_junction_max_c=45.0)


class TestSteadyState:
    def test_idle_is_ambient(self, thermal):
        assert thermal.temperature_c(0.0) == thermal.parameters.ambient_c

    def test_turbo_runs_hotter_than_base(self, thermal):
        assert thermal.steady_state_c(4.9, 0.0) > thermal.steady_state_c(1.8, 0.0)

    def test_undervolting_cools(self, thermal):
        assert thermal.steady_state_c(2.0, -60.0) < thermal.steady_state_c(2.0, 0.0)

    def test_capped_at_tjmax(self, thermal):
        assert thermal.steady_state_c(4.9, 0.0) <= thermal.parameters.t_junction_max_c


class TestRCDynamics:
    def test_exponential_approach(self, thermal):
        thermal.set_operating_point(4.9, 0.0, now=0.0)
        target = thermal.steady_state_c(4.9, 0.0)
        ambient = thermal.parameters.ambient_c
        tau = thermal.parameters.tau_s
        after_one_tau = thermal.temperature_c(tau)
        expected = target + (ambient - target) * math.exp(-1.0)
        assert after_one_tau == pytest.approx(expected, abs=0.2)

    def test_settles_at_steady_state(self, thermal):
        thermal.set_operating_point(4.9, 0.0, now=0.0)
        assert thermal.temperature_c(10 * thermal.parameters.tau_s) == pytest.approx(
            thermal.steady_state_c(4.9, 0.0), abs=0.1
        )

    def test_idle_relaxes_back(self, thermal):
        thermal.set_operating_point(4.9, 0.0, now=0.0)
        thermal.idle(now=20.0)
        assert thermal.temperature_c(60.0) == pytest.approx(
            thermal.parameters.ambient_c, abs=0.5
        )

    def test_monotone_heating(self, thermal):
        thermal.set_operating_point(4.9, 0.0, now=0.0)
        temps = [thermal.temperature_c(t) for t in (0.0, 1.0, 2.0, 5.0, 10.0)]
        assert temps == sorted(temps)

    def test_no_time_travel(self, thermal):
        thermal.set_operating_point(2.0, 0.0, now=5.0)
        with pytest.raises(ConfigurationError):
            thermal.temperature_c(4.0)

    def test_time_to_reach(self, thermal):
        thermal.set_operating_point(4.9, 0.0, now=0.0)
        target = 70.0
        eta = thermal.time_to_reach_c(target, now=0.0)
        assert 0.0 < eta < math.inf
        assert thermal.temperature_c(eta) == pytest.approx(target, abs=0.2)

    def test_time_to_reach_unreachable(self, thermal):
        # Idle: ambient never reaches 90 C.
        assert thermal.time_to_reach_c(90.0, now=0.0) == math.inf

    def test_time_to_reach_already_there(self, thermal):
        thermal.set_operating_point(4.9, 0.0, now=0.0)
        hot = thermal.temperature_c(30.0)
        thermal.set_operating_point(4.9, 0.0, now=30.0)
        assert thermal.time_to_reach_c(hot - 5.0, now=30.0) == 0.0


class TestBoundaryDrift:
    def test_self_heating_moves_the_turbo_boundary(self, thermal):
        # A sustained turbo workload heats the die from ambient to
        # steady state; the fault model's critical voltage at turbo rises
        # with it — the boundary the attacker needs gets shallower while
        # the machine is busy.
        fault_model = FaultModel(COMET_LAKE)
        thermal.set_operating_point(4.9, 0.0, now=0.0)

        fault_model.set_temperature(thermal.temperature_c(0.0))
        cold_vcrit = fault_model.critical_voltage(4.9)
        fault_model.set_temperature(thermal.temperature_c(30.0))
        hot_vcrit = fault_model.critical_voltage(4.9)
        assert hot_vcrit > cold_vcrit
        assert (hot_vcrit - cold_vcrit) * 1e3 > 5.0  # material drift (mV)


class TestThermalProperties:
    from hypothesis import given as _given, settings as _settings
    from hypothesis import strategies as _st

    @_given(
        frequency=_st.sampled_from([0.4, 1.8, 3.0, 4.9]),
        offset=_st.floats(min_value=-150.0, max_value=0.0, allow_nan=False),
        probe_s=_st.floats(min_value=0.0, max_value=120.0, allow_nan=False),
    )
    @_settings(max_examples=60, deadline=None)
    def test_temperature_always_within_physical_bounds(
        self, frequency, offset, probe_s
    ):
        thermal = ThermalModel(COMET_LAKE)
        thermal.set_operating_point(frequency, offset, now=0.0)
        temperature = thermal.temperature_c(probe_s)
        assert thermal.parameters.ambient_c - 1e-9 <= temperature
        assert temperature <= thermal.parameters.t_junction_max_c + 1e-9

    @_given(frequency=_st.sampled_from([1.8, 4.9]))
    @_settings(max_examples=10, deadline=None)
    def test_monotone_convergence_to_steady_state(self, frequency):
        thermal = ThermalModel(COMET_LAKE)
        thermal.set_operating_point(frequency, 0.0, now=0.0)
        steady = thermal.steady_state_c(frequency, 0.0)
        previous_gap = abs(thermal.temperature_c(0.0) - steady)
        for t in (1.0, 3.0, 8.0, 20.0, 60.0):
            gap = abs(thermal.temperature_c(t) - steady)
            assert gap <= previous_gap + 1e-9
            previous_gap = gap
