"""Repository quality gates: docstrings and export hygiene.

Deliverable-level checks: every public module, class and function in the
library carries a docstring, and every name a package ``__all__``
advertises is actually importable.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.timing",
    "repro.cpu",
    "repro.faults",
    "repro.kernel",
    "repro.sgx",
    "repro.attacks",
    "repro.defenses",
    "repro.bench",
    "repro.analysis",
    "repro.telemetry",
]


def iter_modules():
    seen = set()
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                name = f"{package_name}.{info.name}"
                if name not in seen:
                    seen.add(name)
                    yield importlib.import_module(name)


ALL_MODULES = list(iter_modules())


class TestDocstrings:
    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_module_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), module.__name__

    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_public_classes_and_functions_documented(self, module):
        undocumented = []
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
                continue
            if inspect.isclass(obj):
                for member_name, member in vars(obj).items():
                    if member_name.startswith("_"):
                        continue
                    if inspect.isfunction(member) and not (
                        member.__doc__ and member.__doc__.strip()
                    ):
                        undocumented.append(f"{name}.{member_name}")
        assert not undocumented, f"{module.__name__}: {undocumented}"


class TestExports:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_names_resolve(self, package_name):
        package = importlib.import_module(package_name)
        exported = getattr(package, "__all__", [])
        for name in exported:
            assert hasattr(package, name), f"{package_name}.__all__ lists {name}"

    def test_top_level_version(self):
        assert repro.__version__ == "1.0.0"
