"""Temperature dependence of the timing physics."""

from __future__ import annotations

import pytest

from repro.core import CharacterizationFramework
from repro.cpu import COMET_LAKE
from repro.faults.margin import FaultModel
from repro.timing.constants import INTEL_14NM, ProcessCharacteristics
from repro.timing.delay_model import DelayModel
from repro.timing.safety import SafetyAnalyzer
from repro.timing.path import scaled_path


@pytest.fixture
def model() -> DelayModel:
    return DelayModel(INTEL_14NM)


class TestThresholdShift:
    def test_vth_drops_with_temperature(self):
        assert INTEL_14NM.vth_at(100.0) < INTEL_14NM.vth_volts
        assert INTEL_14NM.vth_at(20.0) > INTEL_14NM.vth_volts

    def test_vth_at_reference_unchanged(self):
        assert INTEL_14NM.vth_at(INTEL_14NM.reference_temperature_c) == (
            INTEL_14NM.vth_volts
        )

    def test_negative_mobility_exponent_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ProcessCharacteristics(mobility_temp_exponent=-1.0)


class TestDelayVsTemperature:
    def test_default_matches_reference_temperature(self, model):
        assert model.raw_delay(0.9) == model.raw_delay(
            0.9, INTEL_14NM.reference_temperature_c
        )

    def test_heat_slows_logic_at_nominal_voltage(self, model):
        # High supply: mobility degradation dominates.
        assert model.raw_delay(1.05, 95.0) > model.raw_delay(1.05, 45.0)

    def test_temperature_inversion_near_threshold(self, model):
        # Low supply: the Vth drop dominates — heat *speeds up* logic.
        assert model.raw_delay(0.62, 95.0) < model.raw_delay(0.62, 45.0)

    def test_scale_unity_only_at_reference(self, model):
        assert model.scale(1.0) == pytest.approx(1.0)
        assert model.scale(1.0, 95.0) != pytest.approx(1.0)


class TestCriticalVoltageVsTemperature:
    def test_hot_die_needs_more_voltage_at_high_frequency(self):
        analyzer = SafetyAnalyzer(scaled_path(COMET_LAKE.path_delay_ps, COMET_LAKE.process))
        cold = analyzer.critical_voltage(4.0, temperature_c=45.0)
        hot = analyzer.critical_voltage(4.0, temperature_c=95.0)
        # At high frequency the budget is tight and the operating voltage
        # high: mobility loss dominates, the boundary rises with heat.
        assert hot > cold

    def test_fault_model_temperature_switch(self):
        fault_model = FaultModel(COMET_LAKE)
        reference = fault_model.critical_voltage(3.0)
        fault_model.set_temperature(95.0)
        hot = fault_model.critical_voltage(3.0)
        fault_model.set_temperature(None)
        back = fault_model.critical_voltage(3.0)
        assert hot != pytest.approx(reference, abs=1e-5)
        assert back == pytest.approx(reference)


class TestCharacterizationShiftsWithTemperature:
    def test_hot_boundary_shallower_at_turbo(self):
        from repro.core.characterization import CharacterizationConfig

        config = CharacterizationConfig(
            offset_start_mv=-40, offset_stop_mv=-250, offset_step_mv=2,
            frequencies_ghz=[4.5],
        )

        def boundary(temperature):
            framework = CharacterizationFramework(COMET_LAKE, config=config, seed=5)
            # Reach into the framework's machine-free path via a fault
            # model at the requested temperature.
            from repro.core.characterization import CharacterizationResult
            from repro.core.unsafe_states import UnsafeStateSet
            from repro.faults.imul import ImulLoop
            from repro.faults.injector import FaultInjector
            import numpy as np

            fault_model = FaultModel(COMET_LAKE, temperature_c=temperature)
            injector = FaultInjector(fault_model, np.random.default_rng(5))
            loop = ImulLoop(config.iterations)
            result = CharacterizationResult(
                model=COMET_LAKE, config=config,
                unsafe_states=UnsafeStateSet(system="t"),
            )
            from repro.errors import MachineCheckError

            for offset in config.offsets_mv():
                conditions = fault_model.conditions_for_offset(4.5, offset)
                try:
                    report = loop.run(injector, conditions)
                except MachineCheckError:
                    result.unsafe_states.add_crash(4.5, offset)
                    break
                if report.fault_count:
                    result.unsafe_states.add_unsafe(4.5, offset)
            return result.unsafe_states.boundary_mv(4.5)

        hot = boundary(95.0)
        cold = boundary(45.0)
        # A hot die faults at shallower undervolts: characterizing cold
        # and running hot would under-protect — characterize at worst case.
        assert hot > cold
        assert hot - cold >= 4.0
