"""Algorithm 1 and the countermeasure-side codecs."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidPlaneError, InvalidVoltageOffsetError
from repro.core.encoding import (
    decode_core_status,
    decode_offset_mv,
    offset_voltage,
    read_request,
)
from repro.cpu import ocm, perf_status


class TestAlgorithm1:
    def test_literal_transcription(self):
        # Recompute Algo 1 by hand for -100 mV, plane 0.
        val = int(-100 * 1024 / 1000)           # line 2 -> -102
        val = 0xFFE00000 & ((val & 0xFFF) << 21)  # line 3
        val = val | 0x8000001100000000          # line 4
        val = val | (0 << 40)                   # line 5
        assert offset_voltage(-100, plane=0) == val

    def test_zero_offset(self):
        assert offset_voltage(0, plane=0) == 0x8000001100000000

    def test_plane_select(self):
        for plane in range(5):
            assert (offset_voltage(-50, plane) >> 40) & 0x7 == plane

    def test_invalid_plane(self):
        with pytest.raises(InvalidPlaneError):
            offset_voltage(-50, plane=5)

    def test_offset_overflow(self):
        with pytest.raises(InvalidVoltageOffsetError):
            offset_voltage(-1200, plane=0)

    @given(st.integers(min_value=-999, max_value=0))
    def test_matches_ocm_encoder(self, offset_mv):
        # Algo 1 and the hardware-side encoder agree bit for bit.
        assert offset_voltage(offset_mv, 0) == ocm.encode_write(offset_mv, 0)

    @given(st.integers(min_value=-999, max_value=0))
    def test_roundtrip_through_decode(self, offset_mv):
        value = offset_voltage(offset_mv, 0)
        assert decode_offset_mv(value) == pytest.approx(offset_mv, abs=1.0)


class TestReadRequest:
    def test_read_request_is_command_0x10(self):
        value = read_request(plane=0)
        assert (value >> 32) & 0xFF == 0x10
        assert value >> 63 == 1


class TestCoreStatus:
    def test_combines_both_registers(self):
        msr198 = perf_status.encode(20, 0.85)
        msr150 = ocm.encode_response(ocm.mv_to_units(-75), ocm.VoltagePlane.CORE)
        status = decode_core_status(msr198, msr150)
        assert status.frequency_ghz == pytest.approx(2.0)
        assert status.voltage_volts == pytest.approx(0.85, abs=1e-3)
        assert status.offset_mv == pytest.approx(-75, abs=1.0)

    def test_zero_state(self):
        status = decode_core_status(perf_status.encode(18, 0.8), 0)
        assert status.offset_mv == 0.0
        assert status.frequency_ghz == pytest.approx(1.8)
