"""Adversarial corner cases against the polling module.

Beyond the straight campaigns: attackers who know the module's period
and try to race it, and benign users whose own governor activity walks
them into an unsafe pair.
"""

from __future__ import annotations

import pytest

from repro.core import PollingCountermeasure
from repro.cpu import COMET_LAKE
from repro.kernel.cpufreq import ScalingGovernor
from repro.kernel.victim import ContinuousVictim
from repro.testbench import Machine


@pytest.fixture
def protected(comet_characterization):
    machine = Machine.build(COMET_LAKE, seed=43)
    module = PollingCountermeasure(machine, comet_characterization.unsafe_states)
    machine.modules.insmod(module)
    return machine, module


class TestPollRacing:
    def test_toggling_around_polls_never_applies_the_deep_offset(self, protected):
        """Attacker hides the unsafe target from every poll instant.

        Polls fire at exact multiples of the period.  The attacker writes
        the deep offset right *after* each poll and a safe value right
        *before* the next, so no poll ever observes an unsafe target —
        zero detections.  It still achieves nothing: every overwrite
        restarts the regulator's hold window from the still-safe applied
        value, so the deep offset never becomes electrically effective.
        """
        machine, module = protected
        machine.set_frequency(2.0)
        victim = ContinuousVictim(machine, chunk_ops=50_000)
        victim.start()
        period = module.period_s
        for _ in range(40):
            machine.advance(period * 0.1)   # just after a poll
            machine.write_voltage_offset(-250)
            machine.advance(period * 0.8)   # most of the period unsafe target
            machine.write_voltage_offset(-20)  # hide before the poll
            machine.advance(period * 0.1)
        assert module.stats.detections == 0  # the attacker did evade detection
        assert victim.trace.total_faults == 0  # and gained nothing
        assert victim.trace.crashes == 0

    def test_sustained_spam_is_caught_or_harmless(self, protected):
        """Writing the deep target continuously (every 100 us) only keeps
        resetting its own apply window; polls that do see it remediate."""
        machine, module = protected
        machine.set_frequency(2.0)
        victim = ContinuousVictim(machine, chunk_ops=50_000)
        victim.start()
        for _ in range(200):
            machine.write_voltage_offset(-250)
            machine.advance(100e-6)
        assert victim.trace.total_faults == 0
        assert victim.trace.crashes == 0
        applied = machine.processor.core(0).applied_offset_mv(machine.now)
        assert applied > -100


class TestBenignSelfEndangerment:
    def test_governor_raise_onto_benign_undervolt_is_remediated(
        self, protected, comet_characterization
    ):
        """A benign user undervolts deep-but-safe at low frequency; later
        the ondemand governor reacts to load and raises the frequency,
        making the *pair* unsafe.  The module clamps the offset — the
        protection applies to accidents exactly as to attacks."""
        machine, module = protected
        unsafe = comet_characterization.unsafe_states
        machine.cpufreq.set_governor(0, ScalingGovernor.ONDEMAND)
        machine.cpufreq.report_load(0, 0.0)  # low load -> min frequency
        low_f = machine.processor.core(0).frequency_ghz
        benign = int(unsafe.boundary_mv(low_f)) + 25  # safe at low frequency
        machine.write_voltage_offset(benign)
        machine.advance(2e-3)
        assert module.stats.detections == 0

        machine.cpufreq.report_load(0, 1.0)  # load spike -> max frequency
        high_f = machine.processor.core(0).frequency_ghz
        assert unsafe.is_unsafe(high_f, benign)  # the pair became unsafe
        machine.advance(2e-3)
        assert module.stats.detections >= 1
        applied = machine.processor.core(0).applied_offset_mv(machine.now)
        assert applied > unsafe.boundary_mv(high_f)

    def test_no_remediation_when_pair_stays_safe(self, protected, comet_characterization):
        machine, module = protected
        unsafe = comet_characterization.unsafe_states
        machine.set_frequency(0.8)
        shallow = -25  # safe at every frequency
        machine.write_voltage_offset(shallow)
        machine.advance(2e-3)
        machine.set_frequency(4.9)
        machine.advance(2e-3)
        assert module.stats.detections == 0
        assert machine.processor.core(0).applied_offset_mv(machine.now) == (
            pytest.approx(shallow, abs=1.0)
        )
