"""Observability layer: sim-time metrics and structured event tracing.

The subsystem has three parts:

* :mod:`repro.telemetry.registry` — counters, gauges and sim-time
  histograms with a no-op fast path when disabled;
* :mod:`repro.telemetry.events` — a typed event tracer (spans, instants,
  counter samples) stamped with :meth:`Simulator.now`;
* :mod:`repro.telemetry.export` — deterministic JSONL and Chrome
  ``trace_event`` serializers, so a whole prevention run opens in
  Perfetto or ``chrome://tracing``.

:class:`Telemetry` bundles a registry and a tracer; pass one to
``Machine.build(..., telemetry=Telemetry())`` to instrument a run.  See
``docs/observability.md`` for the event taxonomy.
"""

from repro.telemetry.events import (
    NULL_TRACER,
    PHASE_COMPLETE,
    PHASE_COUNTER,
    PHASE_INSTANT,
    TraceEvent,
    Tracer,
)
from repro.telemetry.export import (
    EXPORT_FORMATS,
    event_from_dict,
    event_to_dict,
    events_from_jsonl,
    to_chrome_trace,
    to_jsonl,
    write_trace,
)
from repro.telemetry.hub import NULL_TELEMETRY, Telemetry
from repro.telemetry.registry import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    Registry,
)

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "Registry",
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_REGISTRY",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "Tracer",
    "TraceEvent",
    "NULL_TRACER",
    "PHASE_COMPLETE",
    "PHASE_INSTANT",
    "PHASE_COUNTER",
    "EXPORT_FORMATS",
    "event_to_dict",
    "event_from_dict",
    "to_jsonl",
    "events_from_jsonl",
    "to_chrome_trace",
    "write_trace",
]
