"""The :class:`Telemetry` facade: one handle for metrics + tracing.

A :class:`~repro.testbench.Machine` owns exactly one ``Telemetry``; every
instrumented component (the event simulator, the MSR driver, the
processor's OCM/P-state hooks, the per-core voltage regulators, the
fault injector, the polling module, the bench runner) receives it at
construction and binds its instruments once.  The default is the shared
:data:`NULL_TELEMETRY`, whose registry hands out no-op instruments and
whose tracer drops events — the disabled fast path the sub-percent
overhead budget of Table 2 requires.

Timestamps always come from the simulation clock, so enabling telemetry
never perturbs the simulated timeline: two runs of the same seeded
scenario, one instrumented and one not, see identical physics.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.telemetry.events import NULL_TRACER, Tracer
from repro.telemetry.export import write_trace
from repro.telemetry.registry import NULL_REGISTRY, Registry


class Telemetry:
    """Bundled metric registry and event tracer for one machine/run."""

    def __init__(self, *, enabled: bool = True, max_events: Optional[int] = None) -> None:
        self.enabled = enabled
        self.registry: Registry = Registry() if enabled else NULL_REGISTRY
        self.tracer: Tracer = (
            Tracer(max_events=max_events) if enabled else NULL_TRACER
        )
        # Span recorder, bound lazily: repro.observe imports this module,
        # so the recorder class cannot be imported at module level.
        # ``execute_job`` installs the per-attempt recorder directly; an
        # ad-hoc handle gets one (or the shared null) on first access.
        self._spans = None

    @property
    def spans(self):
        """The span recorder job code marks phases on (never ``None``).

        Disabled telemetry — or ``REPRO_SPANS=0`` — hands out the shared
        no-op recorder, keeping the hot path branch-free.
        """
        if self._spans is None:
            from repro.observe.spans import NULL_SPANS, SpanRecorder, spans_enabled

            self._spans = (
                SpanRecorder() if (self.enabled and spans_enabled()) else NULL_SPANS
            )
        return self._spans

    @classmethod
    def disabled(cls) -> "Telemetry":
        """The shared disabled instance (no-op instruments, no state)."""
        return NULL_TELEMETRY

    @classmethod
    def flight(cls, capacity: int = 512) -> "Telemetry":
        """An enabled handle whose tracer keeps only the last ``capacity``
        events — the bounded always-cheap mode the flight recorder
        (:mod:`repro.observe.flight`) rides on."""
        return cls(max_events=capacity)

    def export(self, path: Union[str, Path], *, fmt: str = "chrome") -> Path:
        """Write the recorded trace to ``path`` (``chrome`` or ``jsonl``)."""
        return write_trace(path, self.tracer.events, fmt=fmt)

    def render_metrics(self) -> str:
        """Human-readable dump of every counter/gauge/histogram."""
        return self.registry.render()

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Telemetry({state}, events={len(self.tracer.events)})"


#: The process-wide disabled telemetry.  Its instruments never mutate, so
#: sharing it across machines cannot leak state between runs.
NULL_TELEMETRY = Telemetry(enabled=False)
