"""Metric instruments: counters, gauges and sim-time histograms.

The registry is the numeric half of :mod:`repro.telemetry` (the event
tracer is the other).  Instruments are keyed by dotted names following
the module-path convention (``countermeasure.polls``,
``msr.reads``, ...) and are handed out once, at *instrument time*: a
component asks the registry for its counter during construction and then
increments a plain attribute on the hot path.  A disabled registry hands
out shared no-op instruments instead, so the disabled fast path costs a
single no-op method call and no branching logic spreads through the
instrumented code.

All histogram observations are *simulated-time* quantities (seconds on
the :class:`~repro.kernel.sim.Simulator` clock) or other deterministic
values — never wall-clock — so two identical runs produce identical
metric state.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A metric that holds the last value it was set to."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level of the tracked quantity."""
        self.value = float(value)

    def reset(self) -> None:
        """Zero the gauge."""
        self.value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """A distribution of observed values (sim-time latencies, sizes...).

    Keeps the raw observations (bounded by ``max_samples``) together with
    exact aggregate count/sum/sum-of-squares/min/max, so tests can assert
    on individual latencies while long runs stay bounded in memory.
    """

    __slots__ = (
        "name", "count", "total", "sum_sq", "min", "max", "_values", "_max_samples"
    )

    def __init__(self, name: str, *, max_samples: int = 100_000) -> None:
        if max_samples < 0:
            raise ConfigurationError("max_samples must be non-negative")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.sum_sq = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._values: List[float] = []
        self._max_samples = max_samples

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        self.sum_sq += value * value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._values) < self._max_samples:
            self._values.append(value)

    @property
    def values(self) -> Tuple[float, ...]:
        """The recorded raw observations (up to ``max_samples``)."""
        return tuple(self._values)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    @property
    def truncated(self) -> bool:
        """Whether ``max_samples`` has dropped raw observations.

        The aggregates (``count``/``total``/``sum_sq``/``min``/``max``)
        stay exact either way; only the raw-sample window is incomplete.
        """
        return self.count > len(self._values)

    def stddev(self) -> float:
        """Population standard deviation, exact even when truncated.

        Computed from the running sum-of-squares, so it covers every
        observation regardless of the ``max_samples`` window.
        """
        if not self.count:
            return 0.0
        mean = self.mean
        variance = self.sum_sq / self.count - mean * mean
        return math.sqrt(variance) if variance > 0.0 else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile; exact aggregates at the extremes.

        ``q`` lies in [0, 100]; raises when the histogram is empty.  When
        ``max_samples`` truncation has dropped raw observations, the
        extreme ranks fall back to the exact ``min``/``max`` aggregates
        and interior ranks are computed over the retained window but
        clamped into ``[min, max]`` — never silently reported from a
        window that no longer covers the distribution's tails.
        """
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"percentile {q} outside [0, 100]")
        if not self.count:
            raise ConfigurationError(f"histogram {self.name} is empty")
        if self.truncated:
            if q == 0.0:
                return self.min
            if q == 100.0:
                return self.max
        if not self._values:
            # max_samples=0: only the exact aggregates exist.
            return self.min if q <= 50.0 else self.max
        ordered = sorted(self._values)
        rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
        value = ordered[int(rank)]
        if self.truncated:
            value = max(self.min, min(self.max, value))
        return value

    def marshal(self) -> Dict[str, object]:
        """A JSON/pickle-safe snapshot that :meth:`merge` can absorb.

        Carries the exact aggregates plus the retained raw-sample window
        — this is how worker-process histogram observations cross the
        pool boundary inside a :class:`~repro.engine.jobs.JobResult`.
        """
        return {
            "count": self.count,
            "total": self.total,
            "sum_sq": self.sum_sq,
            "min": self.min,
            "max": self.max,
            "values": list(self._values),
        }

    def merge(self, snapshot: Dict[str, object]) -> None:
        """Fold a :meth:`marshal` snapshot into this histogram.

        Aggregates add exactly (count/total/sum_sq are commutative,
        min/max are joins); the raw-sample window extends until this
        histogram's own ``max_samples`` cap.  Merging results in input
        order therefore produces identical state whichever executor
        collected the snapshots.
        """
        count = int(snapshot.get("count", 0))
        if not count:
            return
        self.count += count
        self.total += float(snapshot.get("total", 0.0))
        self.sum_sq += float(snapshot.get("sum_sq", 0.0))
        other_min = snapshot.get("min")
        if other_min is not None and (self.min is None or other_min < self.min):
            self.min = float(other_min)
        other_max = snapshot.get("max")
        if other_max is not None and (self.max is None or other_max > self.max):
            self.max = float(other_max)
        for value in snapshot.get("values", []):
            if len(self._values) >= self._max_samples:
                break
            self._values.append(float(value))

    def reset(self) -> None:
        """Drop all observations."""
        self.count = 0
        self.total = 0.0
        self.sum_sq = 0.0
        self.min = None
        self.max = None
        self._values.clear()

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.3g})"


class _NullCounter(Counter):
    """Counter that discards increments (disabled-telemetry fast path)."""

    def inc(self, amount: int = 1) -> None:  # noqa: D102 - inherited contract
        """Discard the increment."""


class _NullGauge(Gauge):
    """Gauge that discards sets."""

    def set(self, value: float) -> None:  # noqa: D102 - inherited contract
        """Discard the value."""


class _NullHistogram(Histogram):
    """Histogram that discards observations."""

    def observe(self, value: float) -> None:  # noqa: D102 - inherited contract
        """Discard the observation."""

    def merge(self, snapshot: Dict[str, object]) -> None:  # noqa: D102
        """Discard the snapshot."""


#: Shared no-op instruments handed out by disabled registries.  They are
#: stateless (no mutation ever lands), so one of each suffices globally.
NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge("null")
NULL_HISTOGRAM = _NullHistogram("null", max_samples=0)


class Registry:
    """Named metric instruments for one machine/run.

    ``counter``/``gauge``/``histogram`` get-or-create by name, so
    independent components referring to the same dotted name share one
    instrument — that sharing is what lets :class:`PollingStats` and
    ``repro status`` read a single source of truth.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, *, max_samples: int = 100_000) -> Histogram:
        """Get or create the histogram called ``name``."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, max_samples=max_samples)
        return instrument

    def counters(self) -> Iterator[Counter]:
        """All counters, in name order (deterministic for dumps)."""
        for name in sorted(self._counters):
            yield self._counters[name]

    def counter_values(self) -> Dict[str, int]:
        """Name → value snapshot of every counter (conservation audits)."""
        return {c.name: c.value for c in self.counters()}

    def gauges(self) -> Iterator[Gauge]:
        """All gauges, in name order."""
        for name in sorted(self._gauges):
            yield self._gauges[name]

    def histograms(self) -> Iterator[Histogram]:
        """All histograms, in name order."""
        for name in sorted(self._histograms):
            yield self._histograms[name]

    def snapshot(self) -> Dict[str, object]:
        """A JSON-safe dump of every instrument's current state."""
        return {
            "counters": {c.name: c.value for c in self.counters()},
            "gauges": {g.name: g.value for g in self.gauges()},
            "histograms": {
                h.name: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.min,
                    "max": h.max,
                    "mean": h.mean,
                    "stddev": h.stddev(),
                    "truncated": h.truncated,
                }
                for h in self.histograms()
            },
        }

    def render(self) -> str:
        """Human-readable dump for ``repro status``."""
        lines = []
        for counter in self.counters():
            lines.append(f"{counter.name:40s} {counter.value}")
        for gauge in self.gauges():
            lines.append(f"{gauge.name:40s} {gauge.value:g}")
        for hist in self.histograms():
            line = f"{hist.name:40s} count={hist.count} mean={hist.mean:.3g}"
            if hist.count:
                line += (
                    f" min={hist.min:.3g} max={hist.max:.3g}"
                    f" p50={hist.percentile(50):.3g}"
                    f" p95={hist.percentile(95):.3g}"
                    f" p99={hist.percentile(99):.3g}"
                    f" stddev={hist.stddev():.3g}"
                )
                if hist.truncated:
                    line += " (window truncated)"
            lines.append(line)
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def reset(self) -> None:
        """Reset every instrument (counters to 0, histograms emptied)."""
        for instrument in (*self._counters.values(), *self._gauges.values(),
                           *self._histograms.values()):
            instrument.reset()


class _NullRegistry(Registry):
    """Registry that hands out shared no-op instruments."""

    enabled = False

    def counter(self, name: str) -> Counter:
        """Return the shared no-op counter."""
        return NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        """Return the shared no-op gauge."""
        return NULL_GAUGE

    def histogram(self, name: str, *, max_samples: int = 100_000) -> Histogram:
        """Return the shared no-op histogram."""
        return NULL_HISTOGRAM


#: Shared disabled registry (stateless, safe to share across machines).
NULL_REGISTRY = _NullRegistry()


class CompositeRegistry(Registry):
    """A read-only union view over several registries.

    Serves the iteration/snapshot side of the :class:`Registry` API
    across member registries (first member wins on name collisions, name
    order within each iterator is preserved by a merged sort).  This is
    what lets the metrics endpoint expose the session's deterministic
    telemetry *and* its wall-clock latency registry as one scrape
    without ever mixing their instruments.  Instrument creation is
    rejected — create on a member instead.
    """

    def __init__(self, *members: Registry) -> None:
        super().__init__()
        self.members: Tuple[Registry, ...] = tuple(members)

    def _union(self, iterators) -> Iterator:
        seen: Dict[str, object] = {}
        for iterator in iterators:
            for instrument in iterator:
                seen.setdefault(instrument.name, instrument)
        for name in sorted(seen):
            yield seen[name]

    def counters(self) -> Iterator[Counter]:
        """Iterate counters across all members, sorted, first member wins."""
        return self._union(member.counters() for member in self.members)

    def gauges(self) -> Iterator[Gauge]:
        """Iterate gauges across all members, sorted, first member wins."""
        return self._union(member.gauges() for member in self.members)

    def histograms(self) -> Iterator[Histogram]:
        """Iterate histograms across all members, sorted, first member wins."""
        return self._union(member.histograms() for member in self.members)

    def counter(self, name: str) -> Counter:
        """Reject creation — the composite view is read-only."""
        raise ConfigurationError(
            "CompositeRegistry is read-only; create instruments on a member"
        )

    gauge = counter  # type: ignore[assignment]

    def histogram(self, name: str, *, max_samples: int = 100_000) -> Histogram:
        """Reject creation — the composite view is read-only."""
        raise ConfigurationError(
            "CompositeRegistry is read-only; create instruments on a member"
        )

    def reset(self) -> None:
        """Reset every member registry."""
        for member in self.members:
            member.reset()
