"""Trace exporters: JSONL and Chrome ``trace_event`` format.

Both serializations are fully deterministic — keys are sorted, floats
use Python's shortest-repr, and event order is emission order — so two
identical (same seed, same scenario) runs export byte-identical files.
The Chrome exporter produces the JSON object format understood by
Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``: timestamps
and durations in *microseconds*, one ``pid`` per trace, tracks mapped to
``tid`` with ``thread_name`` metadata so swimlanes are labelled.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from repro.errors import ConfigurationError
from repro.telemetry.events import PHASE_COMPLETE, PHASE_COUNTER, TraceEvent

#: Export format names accepted by :func:`write_trace` and the CLI.
EXPORT_FORMATS = ("jsonl", "chrome")


def event_to_dict(event: TraceEvent) -> Dict[str, object]:
    """JSON-safe dict for one event (the JSONL line payload)."""
    payload: Dict[str, object] = {
        "name": event.name,
        "cat": event.category,
        "ph": event.phase,
        "ts": event.time_s,
        "track": event.track,
        "args": dict(event.args),
    }
    if event.phase == PHASE_COMPLETE:
        payload["dur"] = event.duration_s
    return payload


def event_from_dict(payload: Dict[str, object]) -> TraceEvent:
    """Inverse of :func:`event_to_dict`."""
    args = payload.get("args") or {}
    if not isinstance(args, dict):
        raise ConfigurationError("trace event 'args' must be an object")
    return TraceEvent(
        name=str(payload["name"]),
        category=str(payload["cat"]),
        phase=str(payload["ph"]),
        time_s=float(payload["ts"]),  # type: ignore[arg-type]
        duration_s=float(payload.get("dur", 0.0)),  # type: ignore[arg-type]
        track=str(payload.get("track", "main")),
        args=tuple(sorted(args.items())),
    )


def to_jsonl(events: Iterable[TraceEvent]) -> str:
    """Serialize events to JSON Lines (one event per line)."""
    lines = [
        json.dumps(event_to_dict(event), sort_keys=True, separators=(",", ":"))
        for event in events
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def events_from_jsonl(text: str) -> List[TraceEvent]:
    """Parse a JSONL trace back into events (round-trip of :func:`to_jsonl`)."""
    events = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            events.append(event_from_dict(json.loads(line)))
    return events


def _track_ids(events: Sequence[TraceEvent]) -> Dict[str, int]:
    """Stable track -> tid mapping (first-appearance order)."""
    ids: Dict[str, int] = {}
    for event in events:
        if event.track not in ids:
            ids[event.track] = len(ids)
    return ids


def to_chrome_trace(events: Sequence[TraceEvent], *, pid: int = 0) -> str:
    """Serialize events to the Chrome ``trace_event`` JSON object format.

    The output opens directly in Perfetto or ``chrome://tracing``; span
    events stack per track, instants draw as markers, and counter
    samples render as value charts.
    """
    events = list(events)
    tracks = _track_ids(events)
    trace_events: List[Dict[str, object]] = [
        {
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": track},
        }
        for track, tid in tracks.items()
    ]
    for event in events:
        record: Dict[str, object] = {
            "name": event.name,
            "cat": event.category,
            "ph": event.phase,
            "ts": event.time_s * 1e6,
            "pid": pid,
            "tid": tracks[event.track],
        }
        if event.phase == PHASE_COMPLETE:
            record["dur"] = event.duration_s * 1e6
        if event.phase == PHASE_COUNTER:
            # Counter tracks chart their args values directly.
            record["args"] = dict(event.args)
        elif event.args:
            record["args"] = dict(event.args)
        trace_events.append(record)
    document = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def write_trace(
    path: Union[str, Path], events: Sequence[TraceEvent], *, fmt: str = "chrome"
) -> Path:
    """Write a trace file in the requested format; returns the path."""
    if fmt not in EXPORT_FORMATS:
        raise ConfigurationError(
            f"unknown trace format {fmt!r}; expected one of {EXPORT_FORMATS}"
        )
    text = to_jsonl(events) if fmt == "jsonl" else to_chrome_trace(events)
    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text)
    return target
