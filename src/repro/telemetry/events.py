"""Structured event tracing on the simulated timeline.

The tracer records typed events whose timestamps come from
:meth:`repro.kernel.sim.Simulator.now` — never wall-clock — so two
identical runs produce identical traces.  The phase vocabulary mirrors
the Chrome ``trace_event`` format the exporter targets:

* ``X`` — *complete* event: a span with a start time and a duration
  (an MSR ioctl, a regulator ramp, a poll iteration, a benchmark
  interval);
* ``i`` — *instant* event: a point occurrence (a fault injection, an
  unsafe-state detection, a P-state transition);
* ``C`` — *counter sample*: a named value at a time (the sampled applied
  voltage), rendered as a track chart by Perfetto.

Every event carries a ``track`` — the logical thread it belongs to
(``core0``, ``sim``, ``faults``...) — which the Chrome exporter maps to
a ``tid`` so related events stack on one swimlane.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

#: Phase constants (Chrome trace_event vocabulary).
PHASE_COMPLETE = "X"
PHASE_INSTANT = "i"
PHASE_COUNTER = "C"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    Attributes
    ----------
    name:
        Event type, dotted by subsystem (``msr.read``, ``regulator.ramp``,
        ``countermeasure.detection``...).
    category:
        Coarse grouping used for filtering in trace viewers (``msr``,
        ``ocm``, ``regulator``, ``pstate``, ``fault``, ``countermeasure``,
        ``sim``, ``bench``, ``voltage``).
    phase:
        One of :data:`PHASE_COMPLETE`, :data:`PHASE_INSTANT`,
        :data:`PHASE_COUNTER`.
    time_s:
        Simulation time of the event start, seconds.
    duration_s:
        Span length for complete events, seconds (0 otherwise).
    track:
        Logical thread the event belongs to (exported as ``tid``).
    args:
        JSON-safe payload (offsets in mV, addresses, counts...).
    """

    name: str
    category: str
    phase: str
    time_s: float
    duration_s: float = 0.0
    track: str = "main"
    args: Tuple[Tuple[str, Any], ...] = ()

    @property
    def args_dict(self) -> Dict[str, Any]:
        """The payload as a plain dict."""
        return dict(self.args)


def _freeze_args(args: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Sort payload keys so event equality and export are deterministic."""
    return tuple(sorted(args.items()))


class Tracer:
    """Appending recorder of :class:`TraceEvent` objects.

    Instrumented components bind the tracer once at construction and
    guard hot-path emission with the ``enabled`` flag, so a disabled
    tracer costs one attribute test per potential event.

    ``max_events`` bounds the recorder to a ring of the most recent
    events (the flight-recorder mode of :mod:`repro.observe`): recording
    stays O(1) and memory stays constant however long the run, at the
    price of forgetting the oldest events.  The default ``None`` keeps
    everything, which is what trace exports want.
    """

    enabled = True

    def __init__(self, *, max_events: Optional[int] = None) -> None:
        self.max_events = max_events
        self._events: Any = [] if max_events is None else deque(maxlen=max_events)

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        """All recorded events, in emission order."""
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def instant(
        self, name: str, category: str, time_s: float, *, track: str = "main", **args: Any
    ) -> None:
        """Record a point event at ``time_s``."""
        self._events.append(
            TraceEvent(
                name=name,
                category=category,
                phase=PHASE_INSTANT,
                time_s=time_s,
                track=track,
                args=_freeze_args(args),
            )
        )

    def complete(
        self,
        name: str,
        category: str,
        time_s: float,
        duration_s: float,
        *,
        track: str = "main",
        **args: Any,
    ) -> None:
        """Record a span starting at ``time_s`` lasting ``duration_s``."""
        self._events.append(
            TraceEvent(
                name=name,
                category=category,
                phase=PHASE_COMPLETE,
                time_s=time_s,
                duration_s=duration_s,
                track=track,
                args=_freeze_args(args),
            )
        )

    def counter_sample(
        self, name: str, category: str, time_s: float, value: float, *, track: str = "main"
    ) -> None:
        """Record a counter-track sample (rendered as a chart by Perfetto)."""
        self._events.append(
            TraceEvent(
                name=name,
                category=category,
                phase=PHASE_COUNTER,
                time_s=time_s,
                track=track,
                args=(("value", value),),
            )
        )

    def events_by_category(self, category: str) -> Tuple[TraceEvent, ...]:
        """All events in one category, in emission order."""
        return tuple(e for e in self._events if e.category == category)

    def events_by_name(self, name: str) -> Tuple[TraceEvent, ...]:
        """All events with one name, in emission order."""
        return tuple(e for e in self._events if e.name == name)

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()


class _NullTracer(Tracer):
    """Tracer that records nothing (disabled-telemetry fast path)."""

    enabled = False

    def instant(self, name, category, time_s, *, track="main", **args):  # noqa: D102
        """Discard the event."""

    def complete(self, name, category, time_s, duration_s, *, track="main", **args):  # noqa: D102
        """Discard the event."""

    def counter_sample(self, name, category, time_s, value, *, track="main"):  # noqa: D102
        """Discard the sample."""


#: Shared disabled tracer (stateless, safe to share across machines).
NULL_TRACER = _NullTracer()
