"""Circuit-timing substrate: Eq. 1-3 of the paper as an executable model.

The subpackage provides

* :class:`~repro.timing.constants.ProcessCharacteristics` — per-process
  constants (``Vth``, ``alpha``, ``T_setup``, ``T_eps``, retention floor),
* :class:`~repro.timing.delay_model.DelayModel` — alpha-power-law voltage
  to gate-delay scaling,
* :class:`~repro.timing.path.CriticalPath` — the F1/comb/F2 pair of Fig. 1,
* :class:`~repro.timing.safety.SafetyAnalyzer` — the safe/unsafe predicate
  (Eq. 2/Eq. 3) and its inversions (critical voltage, crash voltage,
  factory design voltage, max safe frequency).
"""

from repro.timing.constants import INTEL_14NM, INTEL_14NM_PLUS, ProcessCharacteristics
from repro.timing.delay_model import DelayModel
from repro.timing.path import CriticalPath, scaled_path
from repro.timing.safety import OperatingPoint, SafetyAnalyzer, TimingBudget, budget_for

__all__ = [
    "INTEL_14NM",
    "INTEL_14NM_PLUS",
    "ProcessCharacteristics",
    "DelayModel",
    "CriticalPath",
    "scaled_path",
    "OperatingPoint",
    "SafetyAnalyzer",
    "TimingBudget",
    "budget_for",
]
