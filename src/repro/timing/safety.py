"""Safe-state predicates: Eq. 1, Eq. 2 and Eq. 3 of the paper.

A sequential element is **safe** iff its output is stabilised by the time
the next sequential element is clocked (Sec. 3, informal definition), i.e.

    T_src + T_prop <= T_clk - T_setup - T_eps          (Eq. 2, safe)
    T_src + T_prop  > T_clk - T_setup - T_eps          (Eq. 3, unsafe)

This module evaluates those predicates for a :class:`~repro.timing.path.CriticalPath`
at arbitrary (frequency, voltage) operating points, and — crucially for the
countermeasure — inverts them: for a given frequency it solves for the
*critical voltage* below which the system leaves the safe state, and for
the deeper *crash voltage* below which timing violations corrupt pipeline
control state badly enough that the machine dies (the paper observes
exactly this while charting the width of the unsafe region, Sec. 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.timing.constants import ProcessCharacteristics
from repro.timing.path import CriticalPath
from repro.units import clock_period_ps


@dataclass(frozen=True)
class TimingBudget:
    """The right-hand side of Eq. 1 for one clock frequency."""

    frequency_ghz: float
    t_clk_ps: float
    t_setup_ps: float
    t_eps_ps: float

    @property
    def slack_budget_ps(self) -> float:
        """``T_clk - T_setup - T_eps``: the time the data path may consume."""
        return self.t_clk_ps - self.t_setup_ps - self.t_eps_ps


def budget_for(frequency_ghz: float, process: ProcessCharacteristics) -> TimingBudget:
    """Build the timing budget at a frequency for a given process.

    ``T_setup`` and ``T_eps`` are voltage-independent (observation O1/O2),
    so the budget depends only on the frequency and the process constants.
    """
    t_clk = clock_period_ps(frequency_ghz)
    budget = TimingBudget(
        frequency_ghz=frequency_ghz,
        t_clk_ps=t_clk,
        t_setup_ps=process.t_setup_ps,
        t_eps_ps=process.t_eps_ps,
    )
    if budget.slack_budget_ps <= 0:
        raise ConfigurationError(
            f"frequency {frequency_ghz} GHz leaves no positive timing budget"
        )
    return budget


@dataclass(frozen=True)
class OperatingPoint:
    """A (frequency, voltage) pair together with its timing verdict."""

    frequency_ghz: float
    voltage_volts: float
    path_delay_ps: float
    slack_budget_ps: float

    @property
    def slack_ps(self) -> float:
        """Positive slack means the safe inequality (Eq. 2) holds."""
        return self.slack_budget_ps - self.path_delay_ps

    @property
    def violation_ps(self) -> float:
        """How far past the deadline the data arrives (0 when safe)."""
        return max(0.0, -self.slack_ps)

    @property
    def is_safe(self) -> bool:
        """Whether Eq. 2 holds at this operating point."""
        return self.slack_ps >= 0.0


class SafetyAnalyzer:
    """Evaluates and inverts the safe-state predicate for one critical path.

    This is the *ground-truth physics* of the simulation.  The paper's
    countermeasure never sees this object: it must rediscover the safe
    boundary empirically via Algo 2, exactly as the real kernel module
    must on real silicon.
    """

    def __init__(self, path: CriticalPath) -> None:
        self._path = path

    @property
    def path(self) -> CriticalPath:
        """The flip-flop pair under analysis."""
        return self._path

    @property
    def process(self) -> ProcessCharacteristics:
        """Process constants backing the analysis."""
        return self._path.process

    def operating_point(
        self,
        frequency_ghz: float,
        voltage_volts: float,
        temperature_c: float | None = None,
    ) -> OperatingPoint:
        """Evaluate Eq. 1 at a (frequency, voltage[, temperature]) point."""
        budget = budget_for(frequency_ghz, self.process)
        return OperatingPoint(
            frequency_ghz=frequency_ghz,
            voltage_volts=voltage_volts,
            path_delay_ps=self._path.delay_at(voltage_volts, temperature_c),
            slack_budget_ps=budget.slack_budget_ps,
        )

    def slack_ps(self, frequency_ghz: float, voltage_volts: float) -> float:
        """Timing slack (ps); negative values are unsafe states (Eq. 3)."""
        return self.operating_point(frequency_ghz, voltage_volts).slack_ps

    def is_safe(self, frequency_ghz: float, voltage_volts: float) -> bool:
        """Whether the flip-flop pair is in a safe state (Eq. 2)."""
        return self.operating_point(frequency_ghz, voltage_volts).is_safe

    def critical_voltage(
        self, frequency_ghz: float, temperature_c: float | None = None
    ) -> float:
        """Lowest voltage at which Eq. 2 still holds for this frequency.

        Solves ``T_src(V) + T_prop(V) == T_clk - T_setup - T_eps`` at the
        given die temperature.  Any voltage strictly below the returned
        value puts the system in an unsafe state at this frequency.
        """
        budget = budget_for(frequency_ghz, self.process)
        return self._path.voltage_for_delay(budget.slack_budget_ps, temperature_c)

    def crash_voltage(self, frequency_ghz: float, *, crash_fraction: float = 0.035) -> float:
        """Voltage below which the simulated machine crashes outright.

        Small violations flip data bits (exploitable faults); once the
        violation exceeds ``crash_fraction * T_clk`` the corruption reaches
        pipeline control logic and the machine checks.  The gap between
        :meth:`critical_voltage` and this value is the *width* of the
        unsafe region the paper characterises per frequency.

        The retention floor of the process is also honoured: the returned
        voltage never drops below ``v_retention_volts``.
        """
        if crash_fraction <= 0:
            raise ConfigurationError("crash_fraction must be positive")
        budget = budget_for(frequency_ghz, self.process)
        crash_delay = budget.slack_budget_ps + crash_fraction * budget.t_clk_ps
        voltage = self._path.voltage_for_delay(crash_delay)
        return max(voltage, self.process.v_retention_volts)

    def design_voltage(self, frequency_ghz: float, *, guardband: float) -> float:
        """The factory operating voltage for a frequency.

        Designers provision a *guardband*: the shipped V/f curve places the
        path delay at ``(1 - guardband)`` of the budget, leaving margin for
        aging, temperature and droop.  The gap between this voltage and
        :meth:`critical_voltage` is precisely the room an undervolting
        adversary burns through before faults appear — i.e. the width of
        the *safe* undervolt band in Figs. 2-4.
        """
        if not 0.0 <= guardband < 1.0:
            raise ConfigurationError("guardband must lie in [0, 1)")
        budget = budget_for(frequency_ghz, self.process)
        return self._path.voltage_for_delay(budget.slack_budget_ps * (1.0 - guardband))

    def max_safe_frequency(
        self, voltage_volts: float, *, f_lo: float = 0.1, f_hi: float = 6.0
    ) -> float:
        """Highest frequency that is still safe at a fixed voltage.

        Used by frequency-manipulation attacks (VoltJockey-style): with the
        voltage pinned, raising the clock beyond this frequency shrinks
        ``T_clk`` past the data-path delay and violates Eq. 2.
        """
        delay = self._path.delay_at(voltage_volts)
        # T_clk = delay + setup + eps  =>  f = 1000 / T_clk (ps -> GHz)
        t_clk_ps = delay + self.process.t_setup_ps + self.process.t_eps_ps
        frequency = 1e3 / t_clk_ps
        return min(max(frequency, f_lo), f_hi)
