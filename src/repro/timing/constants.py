"""Process-technology constants for the circuit-timing model.

The paper (Sec. 3) reasons about a single flip-flop pair ``F1 -> comb ->
F2`` driven by a common clock, with the constraint

    T_src + T_prop <= T_clk - T_setup - T_eps          (Eq. 1 / Eq. 2)

Undervolting slows transistor switching and therefore inflates ``T_src``
and ``T_prop``; frequency scaling changes ``T_clk``; ``T_setup`` and
``T_eps`` are voltage-independent.  This module collects the constants
that parametrize that relationship for a given process node.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ProcessCharacteristics:
    """Voltage/timing characteristics of a silicon process.

    Parameters
    ----------
    vth_volts:
        Effective transistor threshold voltage.  Gate delay diverges as
        the supply approaches this value.
    alpha:
        Velocity-saturation exponent of the alpha-power-law delay model
        (``~1.3`` for deeply scaled CMOS, ``2.0`` for long-channel).
    t_setup_ps:
        Setup time of the capturing flip-flop F2 (``T_setup`` in Eq. 1).
    t_eps_ps:
        Maximum clock uncertainty (``T_eps`` in Eq. 1): skew, jitter and
        distribution-network variation, modelled as a worst-case early
        clock arrival.
    v_retention_volts:
        Minimum supply at which sequential state is retained at all.
        Below this the machine crashes outright regardless of frequency.
    reference_voltage_volts:
        Voltage at which critical-path delays are specified.
    reference_temperature_c:
        Die temperature at which critical-path delays are specified.
    vth_temp_coeff_v_per_c:
        Threshold-voltage temperature coefficient (negative: Vth drops as
        the die heats, which *speeds up* near-threshold logic).
    mobility_temp_exponent:
        Carrier-mobility degradation exponent: drive current scales as
        ``(T/T_ref)^-exponent``, slowing logic as the die heats.  The two
        temperature effects oppose each other — the well-known
        *temperature inversion* at low supply voltages.
    """

    vth_volts: float = 0.55
    alpha: float = 1.3
    t_setup_ps: float = 15.0
    t_eps_ps: float = 8.0
    v_retention_volts: float = 0.58
    reference_voltage_volts: float = 1.00
    reference_temperature_c: float = 60.0
    vth_temp_coeff_v_per_c: float = -0.0008
    mobility_temp_exponent: float = 1.2

    def __post_init__(self) -> None:
        if self.vth_volts <= 0:
            raise ConfigurationError("vth_volts must be positive")
        if self.alpha < 1.0:
            raise ConfigurationError("alpha must be >= 1 for a physical delay model")
        if self.t_setup_ps < 0 or self.t_eps_ps < 0:
            raise ConfigurationError("setup time and clock uncertainty must be non-negative")
        if self.v_retention_volts <= self.vth_volts:
            raise ConfigurationError(
                "retention voltage must exceed the threshold voltage "
                f"({self.v_retention_volts} <= {self.vth_volts})"
            )
        if self.reference_voltage_volts <= self.vth_volts:
            raise ConfigurationError("reference voltage must exceed the threshold voltage")
        if self.mobility_temp_exponent < 0:
            raise ConfigurationError("mobility exponent must be non-negative")

    def vth_at(self, temperature_c: float) -> float:
        """Effective threshold voltage at a die temperature."""
        return self.vth_volts + self.vth_temp_coeff_v_per_c * (
            temperature_c - self.reference_temperature_c
        )


#: Default characteristics loosely modelling Intel 14 nm (Sky Lake family).
INTEL_14NM = ProcessCharacteristics()

#: Slightly leakier variant used for the 14nm+ / 14nm++ refreshes.
INTEL_14NM_PLUS = ProcessCharacteristics(vth_volts=0.53, alpha=1.32, v_retention_volts=0.56)

#: A 10 nm-class node: lower threshold, tighter setup, more clock
#: uncertainty from the denser distribution network.  Used by the
#: extended (non-paper) CPU catalog to show the pipeline generalising
#: across process nodes.
INTEL_10NM = ProcessCharacteristics(
    vth_volts=0.48,
    alpha=1.25,
    t_setup_ps=12.0,
    t_eps_ps=9.0,
    v_retention_volts=0.51,
    reference_voltage_volts=0.95,
)
