"""Alpha-power-law gate-delay model.

The delay of a CMOS gate as a function of its supply voltage ``V`` is well
approximated by Sakurai and Newton's alpha-power law::

    d(V)  =  k * V / (V - Vth)^alpha

The model captures exactly the behaviour the paper relies on (Sec. 3.2,
observation O3): lowering the supply voltage shrinks the gate overdrive
``V - Vth``, slows transistor switching, and inflates ``T_src`` and
``T_prop`` — while leaving ``T_clk``, ``T_setup`` and ``T_eps`` untouched.

All delays in this module are *relative*: :class:`DelayModel` exposes a
scale factor normalised to 1.0 at the process reference voltage, and the
critical-path model (:mod:`repro.timing.path`) multiplies it into absolute
picosecond figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.timing.constants import ProcessCharacteristics


@dataclass(frozen=True)
class DelayModel:
    """Voltage-to-delay scaling for a given silicon process."""

    process: ProcessCharacteristics

    def raw_delay(self, voltage_volts: float, temperature_c: float | None = None) -> float:
        """Un-normalised alpha-power-law delay at a voltage and temperature.

        ``d(V, T) = (T/T_ref)^mu * V / (V - Vth(T))^alpha`` — carrier
        mobility degrades with absolute temperature while the threshold
        voltage drops, producing the temperature-inversion behaviour of
        real silicon (heat slows logic at high supply, can speed it up
        near threshold).

        Raises
        ------
        ConfigurationError
            If the voltage does not exceed the (temperature-adjusted)
            threshold voltage; gates simply do not switch there and no
            finite delay exists.
        """
        process = self.process
        if temperature_c is None:
            temperature_c = process.reference_temperature_c
        vth = process.vth_at(temperature_c)
        overdrive = voltage_volts - vth
        if overdrive <= 0:
            raise ConfigurationError(
                f"supply voltage {voltage_volts:.3f} V does not exceed "
                f"threshold {vth:.3f} V at {temperature_c:.0f} C"
            )
        kelvin_ratio = (temperature_c + 273.15) / (process.reference_temperature_c + 273.15)
        mobility_factor = kelvin_ratio ** process.mobility_temp_exponent
        return mobility_factor * voltage_volts / (overdrive ** process.alpha)

    def scale(self, voltage_volts: float, temperature_c: float | None = None) -> float:
        """Delay multiplier relative to the reference voltage/temperature.

        ``scale(reference_voltage) == 1.0`` at the reference temperature;
        the factor grows monotonically as the voltage drops towards
        ``Vth``.
        """
        return self.raw_delay(voltage_volts, temperature_c) / self.raw_delay(
            self.process.reference_voltage_volts
        )

    def voltage_for_scale(
        self,
        target_scale: float,
        *,
        temperature_c: float | None = None,
        v_lo: float | None = None,
        v_hi: float = 2.5,
        tolerance: float = 1e-9,
    ) -> float:
        """Invert :meth:`scale`: find the voltage with a given delay factor.

        The alpha-power-law delay is strictly decreasing in voltage for
        ``V > Vth`` (the derivative of ``V (V-Vth)^-alpha`` is negative
        whenever ``alpha >= 1``), so a bisection over ``[Vth+, v_hi]``
        converges to the unique solution.

        Parameters
        ----------
        target_scale:
            Desired delay multiplier (relative to the reference voltage).
        v_lo, v_hi:
            Bracketing voltages.  ``v_lo`` defaults to a hair above the
            threshold voltage.
        tolerance:
            Absolute voltage tolerance of the bisection.
        """
        if target_scale <= 0:
            raise ConfigurationError("target delay scale must be positive")
        if temperature_c is None:
            temperature_c = self.process.reference_temperature_c
        vth = self.process.vth_at(temperature_c)
        lo = vth + 1e-6 if v_lo is None else v_lo
        hi = v_hi
        if self.scale(hi, temperature_c) > target_scale:
            raise ConfigurationError(
                f"delay scale {target_scale:.4f} unreachable below {v_hi:.2f} V"
            )
        # scale(lo) is huge (near-threshold), scale(hi) <= target: bisect.
        while hi - lo > tolerance:
            mid = 0.5 * (lo + hi)
            if self.scale(mid, temperature_c) > target_scale:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)
