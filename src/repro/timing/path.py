"""Critical-path timing: the F1 -> combinational logic -> F2 pair of Fig. 1.

The paper restricts its safe-state definitions to the most basic sequential
unit — a pair of flip-flops around combinational logic — and notes that the
reasoning extends to arbitrary sequential designs because flip-flops are
their foundation (Sec. 3.1).  We model that pair directly:

* ``T_src``  — clock-to-Q delay of the launching flip-flop F1,
* ``T_prop`` — propagation delay of the combinational cloud,
* both scale with supply voltage through :class:`~repro.timing.delay_model.DelayModel`,
* ``T_setup`` and ``T_eps`` come from the process constants and do *not*
  scale with voltage (they are properties of F2 and of the clock network).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.timing.constants import ProcessCharacteristics
from repro.timing.delay_model import DelayModel


@dataclass(frozen=True)
class CriticalPath:
    """A launch/capture flip-flop pair around a combinational cloud.

    Parameters
    ----------
    t_src_ps:
        Clock-to-Q delay of F1 at the process reference voltage.
    t_prop_ps:
        Combinational propagation delay at the process reference voltage.
    process:
        Silicon process characteristics supplying ``Vth``, ``alpha``,
        ``T_setup`` and ``T_eps``.
    """

    t_src_ps: float
    t_prop_ps: float
    process: ProcessCharacteristics
    _delay_model: DelayModel = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.t_src_ps <= 0 or self.t_prop_ps < 0:
            raise ConfigurationError("path delays must be positive")
        object.__setattr__(self, "_delay_model", DelayModel(self.process))

    @property
    def delay_model(self) -> DelayModel:
        """The voltage-to-delay scaling shared by ``T_src`` and ``T_prop``."""
        return self._delay_model

    @property
    def nominal_delay_ps(self) -> float:
        """``T_src + T_prop`` at the process reference voltage."""
        return self.t_src_ps + self.t_prop_ps

    def t_src_at(self, voltage_volts: float, temperature_c: float | None = None) -> float:
        """``T_src`` (ps) at a given supply voltage and die temperature."""
        return self.t_src_ps * self._delay_model.scale(voltage_volts, temperature_c)

    def t_prop_at(self, voltage_volts: float, temperature_c: float | None = None) -> float:
        """``T_prop`` (ps) at a given supply voltage and die temperature."""
        return self.t_prop_ps * self._delay_model.scale(voltage_volts, temperature_c)

    def delay_at(self, voltage_volts: float, temperature_c: float | None = None) -> float:
        """Total data-path delay ``T_src + T_prop`` (ps)."""
        return self.nominal_delay_ps * self._delay_model.scale(voltage_volts, temperature_c)

    def voltage_for_delay(self, delay_ps: float, temperature_c: float | None = None) -> float:
        """Supply voltage at which the path delay equals ``delay_ps``.

        This is the workhorse of safe-state analysis: solving
        ``delay_at(V) == T_clk - T_setup - T_eps`` for ``V`` yields the
        critical voltage below which Eq. 3 (the unsafe condition) holds.
        """
        if delay_ps < self.nominal_delay_ps * 1e-6:
            raise ConfigurationError("requested delay is unphysically small")
        return self._delay_model.voltage_for_scale(
            delay_ps / self.nominal_delay_ps, temperature_c=temperature_c
        )


def scaled_path(
    nominal_delay_ps: float,
    process: ProcessCharacteristics,
    *,
    src_fraction: float = 0.12,
) -> CriticalPath:
    """Build a :class:`CriticalPath` from a total nominal delay.

    ``src_fraction`` apportions the total between the flip-flop clock-to-Q
    (``T_src``) and the combinational cloud (``T_prop``); a typical
    execution-unit path spends roughly a tenth of its budget in the
    launching register.
    """
    if not 0.0 < src_fraction < 1.0:
        raise ConfigurationError("src_fraction must lie strictly between 0 and 1")
    return CriticalPath(
        t_src_ps=nominal_delay_ps * src_fraction,
        t_prop_ps=nominal_delay_ps * (1.0 - src_fraction),
        process=process,
    )
