"""Fault-injection substrate.

Turns the timing physics into observable behaviour: the probability that
an instruction retires with a corrupted result at given (frequency,
voltage) conditions, concrete sampled bit flips, the crash boundary, and
the victim payloads (the ``imul`` loop of Algo 2's EXECUTE thread, the
RSA-CRT signer used to weaponise faults, and friends).
"""

from repro.faults.alu import ALUStats, BigIntALU, FaultableALU
from repro.faults.injector import FaultEvent, FaultInjector, WindowOutcome
from repro.faults.margin import (
    BASE_FAULT_RATE_PER_OP,
    INSTRUCTION_SENSITIVITY,
    FaultModel,
    OperatingConditions,
)

__all__ = [
    "ALUStats",
    "BigIntALU",
    "FaultableALU",
    "FaultEvent",
    "FaultInjector",
    "WindowOutcome",
    "BASE_FAULT_RATE_PER_OP",
    "INSTRUCTION_SENSITIVITY",
    "FaultModel",
    "OperatingConditions",
]
