"""Timing margin to fault probability.

The ground-truth physics (:class:`~repro.timing.safety.SafetyAnalyzer`)
yields a single critical voltage per frequency.  Real silicon holds
millions of near-critical paths whose individual critical voltages are
spread by process variation; as the supply drops below the typical
critical voltage, a growing *fraction* of paths violates Eq. 3.  We model
that population with a Gaussian spread of width ``sigma_mv``:

* ``violated_fraction(f, V) = Phi((V_crit(f) - V) / sigma)``
* a data-path fault lands in an instruction with probability proportional
  to the violated fraction and to the instruction's *sensitivity* (the
  paper, following Plundervolt/V0LTpwn/Minefield, notes ``imul`` is the
  most faultable instruction — it owns the longest multiplier paths);
* once the violated fraction exceeds ``crash_fraction`` the corruption
  reaches pipeline control logic and the machine crashes — exactly the
  crash the paper runs into while charting the unsafe-region width.

This spread is also what gives the fault band its realistic tens-of-mV
width in the reproduced Figs. 2-4: without it, the alpha-power law would
make the safe-to-crash transition essentially a single millivolt at low
frequencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.cpu.models import CPUModel
from repro.cpu.vf_curve import VFCurve
from repro.timing.safety import SafetyAnalyzer

#: Per-operation fault rate when *every* critical path is violated, for an
#: instruction with sensitivity 1.0.  Calibrated so a 1-million iteration
#: ``imul`` loop (Algo 2's EXECUTE thread) sees its first faults roughly
#: two sigma above the typical critical voltage.
BASE_FAULT_RATE_PER_OP = 5e-5

#: Violated-path fraction below which no observable fault can occur: with
#: only the extreme tail of the path population violated, the residual
#: slack of every *architecturally visible* path still absorbs the
#: violation (metastability resolves in time).  This makes "safe" states
#: genuinely fault-free rather than merely fault-improbable — matching
#: the paper's binary safe/unsafe characterization.
ONSET_FRACTION = 0.02

#: Relative fault sensitivities of modelled instructions (imul == 1.0).
INSTRUCTION_SENSITIVITY: Dict[str, float] = {
    "imul": 1.00,
    "mulsd": 0.72,
    "vmulpd": 0.80,
    "aesenc": 0.55,
    "add": 0.06,
    "xor": 0.03,
    "load": 0.10,
}


def _phi(z: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


@dataclass
class FaultModel:
    """Probabilistic fault behaviour of one CPU model.

    Built from a :class:`~repro.cpu.models.CPUModel`; owns the ground-truth
    analyzer and V/f curve.  The countermeasure code never touches this
    class — it observes faults only through executed workloads, as the
    paper's characterization framework does.
    """

    model: CPUModel
    #: Die temperature the silicon currently runs at; None means the
    #: process reference temperature.  Raising it shifts the critical
    #: voltage (mobility degradation vs threshold drop), which is why
    #: characterization should happen at the worst-case temperature.
    temperature_c: Optional[float] = None
    analyzer: SafetyAnalyzer = field(init=False, repr=False)
    vf_curve: VFCurve = field(init=False, repr=False)
    _vcrit_cache: Dict[tuple, float] = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        self.analyzer = self.model.safety_analyzer()
        self.vf_curve = self.model.vf_curve()

    def set_temperature(self, temperature_c: Optional[float]) -> None:
        """Change the die temperature (affects subsequent fault queries)."""
        self.temperature_c = temperature_c

    def critical_voltage(self, frequency_ghz: float) -> float:
        """Cached typical critical voltage (V) at the current temperature."""
        temp_key = (
            None if self.temperature_c is None else round(self.temperature_c, 1)
        )
        # Key on micro-hertz precision, not the 0.1 GHz characterization
        # grid: a coarse `round(f * 10)` bucket silently served one cached
        # critical voltage for *every* frequency within the same 0.1 GHz
        # (e.g. a fine explorer sweep probing 3.61 and 3.64 GHz).
        key = (round(frequency_ghz * 1e6), temp_key)
        cached = self._vcrit_cache.get(key)
        if cached is None:
            cached = self.analyzer.critical_voltage(
                frequency_ghz, temperature_c=self.temperature_c
            )
            self._vcrit_cache[key] = cached
        return cached

    def violated_fraction(self, frequency_ghz: float, voltage_volts: float) -> float:
        """Fraction of the critical-path population violating Eq. 3."""
        sigma_volts = self.model.sigma_mv * 1e-3
        z = (self.critical_voltage(frequency_ghz) - voltage_volts) / sigma_volts
        return _phi(z)

    def fault_probability(
        self,
        frequency_ghz: float,
        voltage_volts: float,
        *,
        instruction: str = "imul",
    ) -> float:
        """Per-retired-instruction probability of an observable fault."""
        try:
            sensitivity = INSTRUCTION_SENSITIVITY[instruction]
        except KeyError:
            known = ", ".join(sorted(INSTRUCTION_SENSITIVITY))
            raise ConfigurationError(
                f"unknown instruction {instruction!r}; known: {known}"
            ) from None
        fraction = self.violated_fraction(frequency_ghz, voltage_volts)
        if fraction < ONSET_FRACTION:
            return 0.0
        return min(1.0, sensitivity * BASE_FAULT_RATE_PER_OP * fraction)

    def is_crash(self, frequency_ghz: float, voltage_volts: float) -> bool:
        """Whether operating at this point crashes the machine outright."""
        if voltage_volts < self.model.process.v_retention_volts:
            return True
        return self.violated_fraction(frequency_ghz, voltage_volts) >= self.model.crash_fraction

    def conditions_for_offset(
        self, frequency_ghz: float, offset_mv: float
    ) -> "OperatingConditions":
        """Conditions at a frequency with a software voltage offset applied."""
        voltage = self.vf_curve.effective_voltage(frequency_ghz, offset_mv)
        return OperatingConditions(
            frequency_ghz=frequency_ghz,
            voltage_volts=voltage,
            offset_mv=offset_mv,
        )


@dataclass(frozen=True)
class OperatingConditions:
    """Snapshot of a core's electrical operating point."""

    frequency_ghz: float
    voltage_volts: float
    offset_mv: float
