"""Sampling concrete faults from the probabilistic model.

:class:`FaultInjector` turns the per-instruction fault probability of
:class:`~repro.faults.margin.FaultModel` into concrete corrupted values
for a window of executed instructions.  Corruption is modelled as single
random bit flips in the 64-bit result — the behaviour Plundervolt observed
for faulted ``imul`` (typically one flipped bit in the high half of the
product).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.errors import ConfigurationError, MachineCheckError
from repro.faults.margin import FaultModel, OperatingConditions
from repro.telemetry import NULL_TELEMETRY, Telemetry

_MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class FaultEvent:
    """One concrete injected fault."""

    op_index: int
    correct_value: int
    faulty_value: int
    flipped_bit: int


@dataclass(frozen=True)
class WindowOutcome:
    """Result of executing a window of instructions at fixed conditions."""

    ops: int
    fault_count: int
    crashed: bool
    conditions: OperatingConditions
    events: tuple  # tuple[FaultEvent, ...]

    @property
    def faulted(self) -> bool:
        """Whether at least one fault landed in the window."""
        return self.fault_count > 0


class FaultInjector:
    """Samples fault events for instruction windows.

    Parameters
    ----------
    fault_model:
        The CPU model's probabilistic fault behaviour.
    rng:
        Seeded generator owned by the enclosing scenario; all randomness
        flows through it so experiments are reproducible.
    max_recorded_events:
        Cap on the number of concrete :class:`FaultEvent` records kept per
        window (the *count* is always exact).
    telemetry:
        Optional observability hook; fault windows, injections and
        crashes are then counted and emitted as ``fault`` trace events.
    clock:
        Zero-argument time source for stamping fault events (the test
        bench passes ``simulator.clock()``); defaults to a constant 0.
    """

    def __init__(
        self,
        fault_model: FaultModel,
        rng: np.random.Generator,
        *,
        max_recorded_events: int = 16,
        telemetry: Optional[Telemetry] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if max_recorded_events < 0:
            raise ConfigurationError("max_recorded_events must be non-negative")
        self._fault_model = fault_model
        self._rng = rng
        self._max_recorded_events = max_recorded_events
        telemetry = telemetry or NULL_TELEMETRY
        self._tracer = telemetry.tracer
        self._trace_on = telemetry.tracer.enabled
        self._clock = clock or (lambda: 0.0)
        self._windows_counter = telemetry.registry.counter("faults.windows")
        self._injected_counter = telemetry.registry.counter("faults.injected")
        self._crashes_counter = telemetry.registry.counter("faults.crashes")
        #: Optional runtime-invariant observer (repro.verify); called as
        #: ``observer(conditions, fault_count, crashed, instruction)`` after
        #: every sampled window / single-instruction probe.
        self.observer: Optional[Callable] = None

    @property
    def fault_model(self) -> FaultModel:
        """The underlying probabilistic fault model."""
        return self._fault_model

    @property
    def rng(self) -> np.random.Generator:
        """The scenario-owned random generator all sampling flows through."""
        return self._rng

    def _record_crash(self, conditions: OperatingConditions) -> None:
        """Count a crash and emit its ``fault.crash`` trace instant.

        The single crash-recording path for both window and
        single-instruction execution, so crashes on the RSA-CRT /
        explorer path show up in traces and flight-recorder dumps
        exactly like characterization-window crashes do.
        """
        self._crashes_counter.inc()
        if self._trace_on:
            self._tracer.instant(
                "fault.crash", "fault", self._clock(), track="faults",
                frequency_ghz=conditions.frequency_ghz,
                offset_mv=conditions.offset_mv,
            )

    def flip_random_bit(self, value: int) -> FaultEvent:
        """Corrupt a 64-bit value by flipping one random bit."""
        bit = int(self._rng.integers(0, 64))
        faulty = (value ^ (1 << bit)) & _MASK64
        return FaultEvent(op_index=-1, correct_value=value & _MASK64,
                          faulty_value=faulty, flipped_bit=bit)

    def run_window(
        self,
        conditions: OperatingConditions,
        ops: int,
        *,
        instruction: str = "imul",
        correct_value: int = 0,
        raise_on_crash: bool = True,
    ) -> WindowOutcome:
        """Execute ``ops`` instructions at fixed operating conditions.

        Samples the number of faults from a binomial distribution and
        materialises up to ``max_recorded_events`` concrete bit flips.

        Raises
        ------
        MachineCheckError
            If the conditions lie beyond the crash boundary and
            ``raise_on_crash`` is true (default).  Characterization code
            catches this to record a crash cell and reboot.
        """
        if ops < 0:
            raise ConfigurationError("ops must be non-negative")
        self._windows_counter.inc()
        crashed = self._fault_model.is_crash(
            conditions.frequency_ghz, conditions.voltage_volts
        )
        if crashed:
            self._record_crash(conditions)
        if crashed and raise_on_crash:
            if self.observer is not None:
                self.observer(conditions, 0, True, instruction)
            raise MachineCheckError(
                f"machine check at {conditions.frequency_ghz:.1f} GHz / "
                f"{conditions.voltage_volts * 1e3:.1f} mV "
                f"(offset {conditions.offset_mv:+.0f} mV)",
                frequency_ghz=conditions.frequency_ghz,
                offset_mv=int(round(conditions.offset_mv)),
            )
        probability = self._fault_model.fault_probability(
            conditions.frequency_ghz, conditions.voltage_volts, instruction=instruction
        )
        fault_count = 0
        if ops > 0 and probability > 0.0:
            fault_count = int(self._rng.binomial(ops, probability))
        if fault_count:
            self._injected_counter.inc(fault_count)
            if self._trace_on:
                self._tracer.instant(
                    "fault.injection", "fault", self._clock(), track="faults",
                    ops=ops,
                    fault_count=fault_count,
                    instruction=instruction,
                    frequency_ghz=conditions.frequency_ghz,
                    offset_mv=conditions.offset_mv,
                )
        events: List[FaultEvent] = []
        if fault_count:
            recorded = min(fault_count, self._max_recorded_events)
            indices = self._rng.choice(ops, size=recorded, replace=False)
            for op_index in sorted(int(i) for i in indices):
                flip = self.flip_random_bit(correct_value)
                events.append(
                    FaultEvent(
                        op_index=op_index,
                        correct_value=flip.correct_value,
                        faulty_value=flip.faulty_value,
                        flipped_bit=flip.flipped_bit,
                    )
                )
        if self.observer is not None:
            self.observer(conditions, fault_count, crashed, instruction)
        return WindowOutcome(
            ops=ops,
            fault_count=fault_count,
            crashed=crashed,
            conditions=conditions,
            events=tuple(events),
        )

    def maybe_fault_value(
        self,
        conditions: OperatingConditions,
        value: int,
        *,
        instruction: str = "imul",
    ) -> Optional[FaultEvent]:
        """Single-instruction variant: returns a fault event or ``None``.

        Used by the RSA-CRT and single-stepping attack paths, where each
        individual arithmetic operation matters.  A probe counts as a
        one-instruction window, and a crash goes through the same
        recording path as :meth:`run_window` — so single-instruction
        crashes are visible in traces and counters too.
        """
        self._windows_counter.inc()
        if self._fault_model.is_crash(conditions.frequency_ghz, conditions.voltage_volts):
            self._record_crash(conditions)
            if self.observer is not None:
                self.observer(conditions, 0, True, instruction)
            raise MachineCheckError(
                "machine check during single-instruction execution",
                frequency_ghz=conditions.frequency_ghz,
                offset_mv=int(round(conditions.offset_mv)),
            )
        probability = self._fault_model.fault_probability(
            conditions.frequency_ghz, conditions.voltage_volts, instruction=instruction
        )
        if probability <= 0.0 or self._rng.random() >= probability:
            if self.observer is not None:
                self.observer(conditions, 0, False, instruction)
            return None
        flip = self.flip_random_bit(value)
        self._injected_counter.inc()
        if self.observer is not None:
            self.observer(conditions, 1, False, instruction)
        if self._trace_on:
            self._tracer.instant(
                "fault.injection", "fault", self._clock(), track="faults",
                ops=1,
                fault_count=1,
                instruction=instruction,
                frequency_ghz=conditions.frequency_ghz,
                offset_mv=conditions.offset_mv,
                flipped_bit=flip.flipped_bit,
            )
        return flip
