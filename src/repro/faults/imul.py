"""The faultable ``imul`` loop — payload of the EXECUTE thread (Sec. 4.2).

The paper's characterization runs "a tight loop of one million iterations
of ``imul`` instructions with varying 64-bit operands"; a fault is an
``imul`` result differing from the result under nominal conditions.  We
reproduce that: operands vary per iteration, the architecturally correct
64-bit product is computed in Python, and the fault injector flips bits in
it according to the margin model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector, WindowOutcome
from repro.faults.margin import OperatingConditions

_MASK64 = (1 << 64) - 1

#: Iteration count used throughout the paper's characterization.
DEFAULT_ITERATIONS = 1_000_000

#: Approximate cycles per retired ``imul`` in a tight dependency-free loop.
IMUL_CYCLES_PER_OP = 1.0


@dataclass(frozen=True)
class ImulFault:
    """One observed incorrect multiplication."""

    iteration: int
    lhs: int
    rhs: int
    expected: int
    observed: int
    flipped_bit: int


@dataclass(frozen=True)
class ImulRunReport:
    """Outcome of one EXECUTE-thread window."""

    iterations: int
    fault_count: int
    crashed: bool
    conditions: OperatingConditions
    faults: Tuple[ImulFault, ...]

    @property
    def faulted(self) -> bool:
        """Whether any multiplication produced a wrong result."""
        return self.fault_count > 0


class ImulLoop:
    """EXECUTE-thread payload: N ``imul`` iterations with varying operands."""

    instruction = "imul"

    def __init__(self, iterations: int = DEFAULT_ITERATIONS) -> None:
        if iterations <= 0:
            raise ConfigurationError("iterations must be positive")
        self.iterations = iterations

    def duration_s(self, frequency_ghz: float) -> float:
        """Wall time of the loop at a core frequency."""
        cycles = self.iterations * IMUL_CYCLES_PER_OP
        return cycles / (frequency_ghz * 1e9)

    def run(
        self,
        injector: FaultInjector,
        conditions: OperatingConditions,
        *,
        iterations: int | None = None,
    ) -> ImulRunReport:
        """Execute the loop at fixed conditions and report faults.

        Raises
        ------
        MachineCheckError
            If the conditions lie beyond the crash boundary (propagated
            from the injector; the characterization framework records the
            cell as a crash and reboots).
        """
        count = self.iterations if iterations is None else iterations
        outcome: WindowOutcome = injector.run_window(
            conditions, count, instruction=self.instruction
        )
        rng = np.random.default_rng(abs(hash((count, conditions.offset_mv))) % (2**32))
        faults = []
        for event in outcome.events:
            lhs = int(rng.integers(0, 1 << 62)) | 1
            rhs = int(rng.integers(0, 1 << 62)) | 1
            expected = (lhs * rhs) & _MASK64
            observed = expected ^ (1 << event.flipped_bit)
            faults.append(
                ImulFault(
                    iteration=event.op_index,
                    lhs=lhs,
                    rhs=rhs,
                    expected=expected,
                    observed=observed,
                    flipped_bit=event.flipped_bit,
                )
            )
        return ImulRunReport(
            iterations=count,
            fault_count=outcome.fault_count,
            crashed=outcome.crashed,
            conditions=conditions,
            faults=tuple(faults),
        )
