"""Victim workloads beyond the plain ``imul`` loop.

The characterization framework only needs the ``imul`` loop (it is the
most fault-sensitive instruction, Sec. 4.2), but the attack evaluations
exercise other payloads: multiplication-heavy vector code (V0LTpwn
targets), AES rounds, and mixed integer workloads.  Each workload knows
its dominant faultable instruction and its cycles-per-operation so the
event simulator can place it on the timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector, WindowOutcome
from repro.faults.margin import INSTRUCTION_SENSITIVITY, OperatingConditions


@dataclass(frozen=True)
class InstructionWorkload:
    """A tight loop dominated by one instruction class.

    Parameters
    ----------
    name:
        Human-readable workload name.
    instruction:
        Dominant faultable instruction (must be known to the fault model).
    cycles_per_op:
        Average retired-cycles per operation, used for wall-time placement
        on the simulated timeline.
    """

    name: str
    instruction: str
    cycles_per_op: float = 1.0

    def __post_init__(self) -> None:
        if self.instruction not in INSTRUCTION_SENSITIVITY:
            known = ", ".join(sorted(INSTRUCTION_SENSITIVITY))
            raise ConfigurationError(
                f"instruction {self.instruction!r} unknown to fault model; known: {known}"
            )
        if self.cycles_per_op <= 0:
            raise ConfigurationError("cycles_per_op must be positive")

    def duration_s(self, ops: int, frequency_ghz: float) -> float:
        """Wall time of ``ops`` operations at a core frequency."""
        return ops * self.cycles_per_op / (frequency_ghz * 1e9)

    def execute(
        self, injector: FaultInjector, conditions: OperatingConditions, ops: int
    ) -> WindowOutcome:
        """Run ``ops`` operations at fixed conditions."""
        return injector.run_window(conditions, ops, instruction=self.instruction)


#: The payloads used by the reproduced experiments.
IMUL_LOOP = InstructionWorkload(name="imul loop", instruction="imul", cycles_per_op=1.0)
VECTOR_MULTIPLY = InstructionWorkload(
    name="packed double multiply", instruction="vmulpd", cycles_per_op=0.5
)
AES_ROUNDS = InstructionWorkload(name="AES-NI rounds", instruction="aesenc", cycles_per_op=1.0)
SCALAR_FPU = InstructionWorkload(name="scalar FP multiply", instruction="mulsd", cycles_per_op=1.0)
INTEGER_ALU = InstructionWorkload(name="integer ALU", instruction="add", cycles_per_op=0.25)

WORKLOAD_CATALOG: Dict[str, InstructionWorkload] = {
    w.name: w
    for w in (IMUL_LOOP, VECTOR_MULTIPLY, AES_ROUNDS, SCALAR_FPU, INTEGER_ALU)
}
