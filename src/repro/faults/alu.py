"""A fault-aware arithmetic unit for victim payloads.

Workload-level windows (:class:`~repro.faults.injector.FaultInjector`)
are enough for the characterization loop, but *weaponising* a DVFS fault
(extracting an RSA key, corrupting an enclave decision) needs faults to
land inside concrete computations.  :class:`FaultableALU` provides that:
multiplications executed through it consult the core's live operating
conditions and occasionally return corrupted products, exactly the way a
real undervolted multiplier misbehaves.

Big-integer operations are decomposed into 64x64 limb multiplies so the
per-``imul`` fault probability composes realistically: a 512-bit modular
multiplication is ~64 limb products, any one of which may flip a bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.margin import OperatingConditions

_MASK64 = (1 << 64) - 1


@dataclass
class ALUStats:
    """Counters for one ALU lifetime."""

    imul_count: int = 0
    fault_count: int = 0


class BigIntALU:
    """Big-integer arithmetic expressed over an abstract ``bigmul``.

    ``modmul`` and ``modexp`` are defined once, here, purely in terms of
    :meth:`bigmul` — so every subclass (the fault-injecting
    :class:`FaultableALU`, the tracing/replaying ALUs of
    :mod:`repro.explore`) issues *exactly* the same multiplication
    sequence for the same inputs.  That shared op sequence is what lets
    the explorer's traced operation indices address the attack ALU's
    multiplications one for one.
    """

    def bigmul(self, lhs: int, rhs: int) -> int:
        """Arbitrary-precision multiply (subclasses implement)."""
        raise NotImplementedError

    def modmul(self, lhs: int, rhs: int, modulus: int) -> int:
        """Modular multiplication through :meth:`bigmul`."""
        if modulus <= 0:
            raise ConfigurationError("modulus must be positive")
        return self.bigmul(lhs, rhs) % modulus

    def modexp(self, base: int, exponent: int, modulus: int) -> int:
        """Square-and-multiply modular exponentiation.

        The workhorse of the RSA-CRT victim: hundreds of modular
        multiplications per exponentiation, every one through
        :meth:`bigmul`.
        """
        if modulus <= 0:
            raise ConfigurationError("modulus must be positive")
        if exponent < 0:
            raise ConfigurationError("exponent must be non-negative")
        result = 1 % modulus
        acc = base % modulus
        e = exponent
        while e:
            if e & 1:
                result = self.modmul(result, acc, modulus)
            e >>= 1
            if e:
                acc = self.modmul(acc, acc, modulus)
        return result


@dataclass
class FaultableALU(BigIntALU):
    """Executes arithmetic under live (frequency, voltage) conditions.

    Parameters
    ----------
    injector:
        The machine's fault injector.
    conditions_source:
        Zero-argument callable returning the executing core's current
        :class:`~repro.faults.margin.OperatingConditions`; typically
        ``lambda: machine.conditions(core_index)`` so mid-computation
        voltage changes (the attack!) are observed.
    """

    injector: FaultInjector
    conditions_source: Callable[[], OperatingConditions]
    stats: ALUStats = field(default_factory=ALUStats)

    def _conditions(self) -> OperatingConditions:
        return self.conditions_source()

    def imul64(self, lhs: int, rhs: int) -> int:
        """One 64x64 -> 64 multiply, possibly faulted.

        Raises
        ------
        MachineCheckError
            If the core is past the crash boundary.
        """
        product = (lhs * rhs) & _MASK64
        self.stats.imul_count += 1
        event = self.injector.maybe_fault_value(
            self._conditions(), product, instruction="imul"
        )
        if event is None:
            return product
        self.stats.fault_count += 1
        return event.faulty_value

    def bigmul(self, lhs: int, rhs: int) -> int:
        """Arbitrary-precision multiply built from faultable limb products.

        The value is computed exactly; a fault flips one bit of the exact
        product at a limb-aligned position.  The number of fault trials
        equals the number of 64x64 partial products a schoolbook
        multiplier would issue.
        """
        if lhs < 0 or rhs < 0:
            raise ConfigurationError("bigmul operates on non-negative integers")
        product = lhs * rhs
        lhs_limbs = max(1, (lhs.bit_length() + 63) // 64)
        rhs_limbs = max(1, (rhs.bit_length() + 63) // 64)
        trials = lhs_limbs * rhs_limbs
        self.stats.imul_count += trials
        conditions = self._conditions()
        outcome = self.injector.run_window(
            conditions, trials, instruction="imul", raise_on_crash=True
        )
        if not outcome.fault_count:
            return product
        # A fault hit one partial product: flip one bit of the exact
        # result at a limb-aligned position.
        event = outcome.events[0]
        row, col = divmod(event.op_index, rhs_limbs)
        fault_bit = (row + col) * 64 + event.flipped_bit
        self.stats.fault_count += 1
        return product ^ (1 << fault_bit)
