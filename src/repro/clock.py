"""Time sources.

Hardware components (regulator, MSR synthesis) are *time-driven*: they
take "now" from a clock callable instead of owning a scheduler.  Any
zero-argument callable returning seconds works; :class:`ManualClock` is
the trivial implementation used by unit tests, and the discrete-event
simulator (:mod:`repro.kernel.sim`) exposes a compatible callable.
"""

from __future__ import annotations

from repro.errors import SimulationError


class ManualClock:
    """A clock advanced explicitly by the caller."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    @property
    def now(self) -> float:
        """Current time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` seconds; returns the new time."""
        if delta < 0:
            raise SimulationError("time cannot move backwards")
        self._now += delta
        return self._now

    def set(self, now: float) -> None:
        """Jump to an absolute time (must not be in the past)."""
        if now < self._now:
            raise SimulationError("time cannot move backwards")
        self._now = float(now)
