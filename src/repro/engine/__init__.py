"""The campaign engine: the control plane of every experiment path.

The paper's compute shape is a handful of long campaigns — the Algo 2
characterization sweep (thousands of (frequency, offset) cells per CPU,
Figs. 2-4), the attack/defense prevention matrix (Sec. 4.3) and the SPEC
overhead run (Table 2).  This package turns each of those from a
hand-rolled serial loop into

* a frozen, hashable :class:`~repro.engine.jobs.JobSpec` with a
  content-hash fingerprint,
* a named deterministic seed stream
  (:mod:`repro.engine.seeds`) keyed by the job's identity,
* an :class:`~repro.engine.executors.Executor` — serial or
  process-pool — that runs job batches and reports per-worker telemetry
  counters home,
* and a persistent :class:`~repro.engine.cache.ResultCache` addressed by
  job fingerprint.

:class:`~repro.engine.session.EngineSession` ties the four together; the
experiment API, the CLI and both conftests share one default session via
:func:`~repro.engine.session.get_session`.
"""

from repro.engine.cache import CacheStats, ResultCache
from repro.engine.checkpoint import CampaignCheckpoint
from repro.engine.executors import (
    COORDINATOR_ENV,
    EXECUTOR_ENV,
    EXECUTOR_KINDS,
    WORKERS_ENV,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    executor_from_env,
    make_executor,
)
from repro.engine.resilience import (
    ChaosPolicy,
    Quarantined,
    RetryPolicy,
    SupervisedTask,
    SupervisionStats,
    execute_supervised,
)
from repro.engine.jobs import (
    ATTACK_KINDS,
    RESULT_AFFECTING_ENV,
    AttackCampaignJob,
    BatchCharacterizationJob,
    CharacterizationJob,
    CharacterizationRowJob,
    ExploreInjectionJob,
    ExplorePointJob,
    FuzzJob,
    JobResult,
    JobSpec,
    OverheadJob,
    environment_fingerprint,
    execute_job,
)
from repro.engine.seeds import SeedStream, seed_stream
from repro.engine.session import (
    DEFAULT_SEED,
    EngineSession,
    batch_enabled,
    batch_rows_per_job,
    clear_session_cache,
    get_session,
    reset_session,
    set_session,
)

__all__ = [
    "ATTACK_KINDS",
    "AttackCampaignJob",
    "BatchCharacterizationJob",
    "CacheStats",
    "CampaignCheckpoint",
    "ChaosPolicy",
    "CharacterizationJob",
    "CharacterizationRowJob",
    "ExploreInjectionJob",
    "ExplorePointJob",
    "DEFAULT_SEED",
    "COORDINATOR_ENV",
    "EXECUTOR_ENV",
    "EXECUTOR_KINDS",
    "EngineSession",
    "Executor",
    "FuzzJob",
    "JobResult",
    "JobSpec",
    "OverheadJob",
    "ParallelExecutor",
    "Quarantined",
    "RESULT_AFFECTING_ENV",
    "ResultCache",
    "RetryPolicy",
    "SeedStream",
    "SerialExecutor",
    "SupervisedTask",
    "SupervisionStats",
    "WORKERS_ENV",
    "batch_enabled",
    "batch_rows_per_job",
    "clear_session_cache",
    "environment_fingerprint",
    "execute_job",
    "execute_supervised",
    "executor_from_env",
    "get_session",
    "make_executor",
    "reset_session",
    "seed_stream",
    "set_session",
]
