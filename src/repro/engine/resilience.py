"""Supervision primitives for resilient campaign execution.

Large characterization/attack campaigns (Tables 3-5 of the paper) run
for a long time across many worker processes; production campaign
runners survive their own failures.  This module holds the pieces the
supervised :class:`~repro.engine.executors.ParallelExecutor` is built
from:

* :class:`RetryPolicy` — per-job timeouts, bounded retries with a
  *deterministic* backoff schedule, and the quarantine/strict switch.
  Retries replay the job's exact named seed stream, so a job that
  succeeds on attempt 3 returns the byte-identical payload it would
  have returned on attempt 1.
* :class:`ChaosPolicy` — seeded, deterministic fault injection (worker
  kills, job exceptions, job stalls, torn cache writes).  The decision
  for a given (job fingerprint, attempt) is a pure function of the
  chaos seed, so a chaos run is exactly reproducible, and because
  injected faults never change what a job *computes*, a supervised
  campaign under chaos converges to the failure-free result byte for
  byte (the ``repro chaos`` double-run contract).
* :class:`SupervisionStats` — what the supervisor did: retries,
  timeouts, requeues, pool respawns, quarantines, degraded-inline jobs.
  The engine session folds the deltas into ``engine.retries`` /
  ``engine.requeues`` / ``engine.quarantined`` telemetry counters.
* :class:`Quarantined` — the payload standing in for a poison job's
  result after every attempt failed: the campaign continues, the
  quarantine record lands in the run report, and a flight dump
  preserves the scene (:func:`repro.observe.flight.dump_quarantine`).
* :func:`execute_supervised` — the process-pool entry point wrapping
  :func:`repro.engine.jobs.execute_job` with chaos injection.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Optional

from repro.engine.jobs import JobResult, JobSpec, execute_job
from repro.errors import ChaosError, ConfigurationError

#: Environment knobs steering the default retry policy.
JOB_RETRIES_ENV = "REPRO_JOB_RETRIES"
JOB_TIMEOUT_ENV = "REPRO_JOB_TIMEOUT"
RETRY_BACKOFF_ENV = "REPRO_RETRY_BACKOFF"

#: Chaos actions a policy can schedule for one (fingerprint, attempt).
CHAOS_ACTIONS = ("kill", "error", "stall")

#: Network chaos actions a policy can schedule for one request attempt
#: (see :meth:`ChaosPolicy.network_action_for`).
NETWORK_CHAOS_ACTIONS = ("drop", "tear", "stall", "duplicate")

#: Separator keeping ("a","bc") and ("ab","c") on distinct draws.
_DRAW_SEPARATOR = "\x1f"


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor treats one job's attempts.

    ``max_attempts`` bounds total tries (1 = no retries).  ``timeout_s``
    is the per-attempt wall-clock budget (``None`` = unbounded; a timed
    out attempt cannot be preempted, it is abandoned and its late result
    discarded).  Backoff before attempt *n+1* is the deterministic
    ``backoff_s * backoff_factor**(n-1)`` — no jitter, so two runs of
    the same campaign retry on the same schedule.  With ``quarantine``
    on (the default) a job that exhausts its budget is quarantined and
    the campaign continues; off, the executor raises
    :class:`~repro.errors.JobFailedError` carrying the batch's completed
    results.  ``max_pool_respawns`` bounds how many times one batch may
    rebuild a broken process pool before degrading to inline execution.
    """

    max_attempts: int = 3
    timeout_s: Optional[float] = None
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    quarantine: bool = True
    max_pool_respawns: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive (or None)")
        if self.backoff_s < 0 or self.backoff_factor < 1.0:
            raise ConfigurationError(
                "backoff_s must be >= 0 and backoff_factor >= 1"
            )
        if self.max_pool_respawns < 0:
            raise ConfigurationError("max_pool_respawns must be >= 0")

    def backoff_for(self, attempt: int) -> float:
        """Seconds to wait before re-running after failed ``attempt``."""
        return self.backoff_s * self.backoff_factor ** (attempt - 1)

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """The policy selected by ``REPRO_JOB_RETRIES`` / ``REPRO_JOB_TIMEOUT``
        / ``REPRO_RETRY_BACKOFF`` (unset knobs keep their defaults)."""
        kwargs: Dict[str, Any] = {}
        raw = os.environ.get(JOB_RETRIES_ENV)
        if raw:
            try:
                kwargs["max_attempts"] = int(raw)
            except ValueError as error:
                raise ConfigurationError(
                    f"{JOB_RETRIES_ENV} must be an integer, got {raw!r}"
                ) from error
        raw = os.environ.get(JOB_TIMEOUT_ENV)
        if raw:
            try:
                kwargs["timeout_s"] = float(raw)
            except ValueError as error:
                raise ConfigurationError(
                    f"{JOB_TIMEOUT_ENV} must be a number of seconds, got {raw!r}"
                ) from error
        raw = os.environ.get(RETRY_BACKOFF_ENV)
        if raw:
            try:
                kwargs["backoff_s"] = float(raw)
            except ValueError as error:
                raise ConfigurationError(
                    f"{RETRY_BACKOFF_ENV} must be a number of seconds, got {raw!r}"
                ) from error
        return cls(**kwargs)


@dataclass(frozen=True)
class ChaosPolicy:
    """Seeded deterministic fault injection for the chaos harness.

    Every decision is a pure function of ``(seed, fingerprint, attempt)``
    via sha256, so the same chaos run replays exactly.  Faults are only
    scheduled for attempts ``<= max_faulted_attempts`` (default 1): a
    retried attempt always runs clean, which is what makes a chaos
    campaign *provably converge* to the failure-free result as long as
    the retry budget exceeds the faulted-attempt budget.

    ``kill_rate`` maps to ``os._exit(1)`` in the worker (breaks the
    whole pool — or, for a remote worker agent, dies mid-lease so the
    coordinator re-leases the batch), ``error_rate`` to a
    :class:`~repro.errors.ChaosError`, ``stall_rate`` to a ``stall_s``
    sleep (trips per-job timeouts), and ``torn_write_rate`` to a
    corrupted on-disk cache entry injected by the engine session right
    after a ``put``.

    The ``drop_rate`` / ``torn_body_rate`` / ``net_stall_rate`` /
    ``duplicate_rate`` quartet schedules *network* faults for the
    multi-host campaign service (:mod:`repro.serve`): a dropped
    response (the request was processed, the reply never arrived), a
    torn/truncated body, a stalled socket, and a duplicated delivery
    of the same request.  They are addressed per (request name,
    transport attempt) via :meth:`network_action_for` and obey the same
    ``max_faulted_attempts`` convergence rule as the worker faults:
    retried deliveries always run clean, and because every service
    request is idempotent, a chaos-ridden remote campaign converges to
    the undisturbed result byte for byte.
    """

    seed: int = 0
    kill_rate: float = 0.0
    error_rate: float = 0.0
    stall_rate: float = 0.0
    torn_write_rate: float = 0.0
    stall_s: float = 0.5
    max_faulted_attempts: int = 1
    drop_rate: float = 0.0
    torn_body_rate: float = 0.0
    net_stall_rate: float = 0.0
    duplicate_rate: float = 0.0
    net_stall_s: float = 0.2

    def __post_init__(self) -> None:
        rates = (
            self.kill_rate, self.error_rate, self.stall_rate, self.torn_write_rate,
            self.drop_rate, self.torn_body_rate, self.net_stall_rate,
            self.duplicate_rate,
        )
        if any(rate < 0.0 or rate > 1.0 for rate in rates):
            raise ConfigurationError("chaos rates must lie in [0, 1]")
        if self.kill_rate + self.error_rate + self.stall_rate > 1.0:
            raise ConfigurationError(
                "kill_rate + error_rate + stall_rate must not exceed 1"
            )
        if (
            self.drop_rate + self.torn_body_rate + self.net_stall_rate
            + self.duplicate_rate
        ) > 1.0:
            raise ConfigurationError(
                "drop_rate + torn_body_rate + net_stall_rate + "
                "duplicate_rate must not exceed 1"
            )
        if self.stall_s < 0 or self.net_stall_s < 0:
            raise ConfigurationError("stall_s must be >= 0")
        if self.max_faulted_attempts < 0:
            raise ConfigurationError("max_faulted_attempts must be >= 0")

    # -- deterministic draws -----------------------------------------------------

    def _draw(self, *names: str) -> float:
        """A uniform [0, 1) variate addressed by ``names`` under the seed."""
        blob = _DRAW_SEPARATOR.join((str(self.seed),) + names).encode("utf-8")
        digest = hashlib.sha256(blob).digest()
        return int.from_bytes(digest[:8], "little") / 2.0**64

    def action_for(self, fingerprint: str, attempt: int) -> Optional[str]:
        """The fault scheduled for this attempt (``None`` = run clean)."""
        if attempt > self.max_faulted_attempts:
            return None
        draw = self._draw(fingerprint, str(attempt), "action")
        if draw < self.kill_rate:
            return "kill"
        if draw < self.kill_rate + self.error_rate:
            return "error"
        if draw < self.kill_rate + self.error_rate + self.stall_rate:
            return "stall"
        return None

    def should_tear_cache(self, fingerprint: str) -> bool:
        """Whether the disk cache entry for this result gets torn."""
        return self._draw(fingerprint, "tear") < self.torn_write_rate

    def network_action_for(self, name: str, attempt: int) -> Optional[str]:
        """The network fault scheduled for one request delivery.

        ``name`` addresses the request (method, path and the batch or
        result fingerprint it carries); ``attempt`` is the transport
        attempt number.  Like :meth:`action_for`, faults are only
        scheduled for attempts ``<= max_faulted_attempts``, so a
        retried delivery always runs clean and the retry budget bounds
        convergence.  Returns one of :data:`NETWORK_CHAOS_ACTIONS` or
        ``None`` (deliver clean).
        """
        if attempt > self.max_faulted_attempts:
            return None
        draw = self._draw("net", name, str(attempt), "action")
        if draw < self.drop_rate:
            return "drop"
        if draw < self.drop_rate + self.torn_body_rate:
            return "tear"
        if draw < self.drop_rate + self.torn_body_rate + self.net_stall_rate:
            return "stall"
        if draw < (
            self.drop_rate + self.torn_body_rate + self.net_stall_rate
            + self.duplicate_rate
        ):
            return "duplicate"
        return None

    # -- worker-side application -------------------------------------------------

    def apply(self, fingerprint: str, attempt: int) -> None:
        """Inject this attempt's scheduled fault (worker side).

        A *kill* takes the whole worker down with ``os._exit`` (the
        parent sees ``BrokenProcessPool`` and respawns); an *error*
        raises :class:`~repro.errors.ChaosError`; a *stall* sleeps for
        ``stall_s`` and then lets the job run (the parent's per-job
        timeout fires first and the late result is discarded).
        """
        action = self.action_for(fingerprint, attempt)
        if action == "kill":
            os._exit(1)
        if action == "error":
            raise ChaosError(
                f"injected fault for job {fingerprint[:12]} attempt {attempt}"
            )
        if action == "stall":
            time.sleep(self.stall_s)

    # -- parent-side application -------------------------------------------------

    def tear(self, cache: Any, fingerprint: str) -> bool:
        """Tear the cache entry for ``fingerprint`` (parent side).

        Truncates/corrupts the on-disk pickle (when the cache has a disk
        layer) and drops the in-memory copy, so the next lookup must
        detect the corruption, quarantine the file and recompute.
        Returns whether anything was torn.
        """
        torn = False
        path = cache._disk_path(fingerprint)
        if path is not None and path.exists():
            raw = path.read_bytes()
            # Keep the integrity header prefix but truncate the payload:
            # the worst kind of torn write, undetectable by length-zero
            # checks, caught only by digest verification.
            path.write_bytes(raw[: max(1, len(raw) // 2)])
            torn = True
        if cache._memory.pop(fingerprint, None) is not None:
            torn = True
        return torn

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe description for CLI output and run reports."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class SupervisionStats:
    """What a supervised executor did over its lifetime (cumulative)."""

    retries: int = 0
    timeouts: int = 0
    requeues: int = 0
    respawns: int = 0
    quarantined: int = 0
    degraded: int = 0

    def copy(self) -> "SupervisionStats":
        return replace(self)

    def delta(self, since: "SupervisionStats") -> "SupervisionStats":
        """The increments accumulated after the ``since`` snapshot."""
        return SupervisionStats(
            **{
                f.name: getattr(self, f.name) - getattr(since, f.name)
                for f in fields(self)
            }
        )

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class Quarantined:
    """The stand-in payload for a job whose every attempt failed.

    The supervised executor returns this instead of raising, so one
    poison job cannot abort a campaign; the session keeps a quarantine
    list for the run report and never caches these.
    """

    fingerprint: str
    kind: str
    attempts: int
    error_type: str
    error_message: str
    flight_dump: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "kind": self.kind,
            "attempts": self.attempts,
            "error_type": self.error_type,
            "error_message": self.error_message,
            "flight_dump": self.flight_dump,
        }


@dataclass(frozen=True)
class SupervisedTask:
    """One attempt shipped to a worker: the job, which try, what chaos.

    ``span_context`` is the session's propagated trace position
    (:class:`repro.observe.spans.SpanContext`); it rides on the task —
    *not* on the :class:`JobSpec` — because trace position is scheduling
    metadata that must never enter a job's fingerprint.
    """

    job: JobSpec
    attempt: int = 1
    chaos: Optional[ChaosPolicy] = None
    span_context: Optional[Any] = None


def execute_supervised(task: SupervisedTask) -> JobResult:
    """Worker entry point for supervised execution.

    Applies the chaos policy's scheduled fault for this attempt (if
    any), then runs the job exactly as :func:`execute_job` would — the
    job draws from the same named seed stream regardless of the attempt
    number, so retries are byte-identical to first tries.  Top-level by
    design so the process pool pickles it by reference.
    """
    if task.chaos is not None:
        task.chaos.apply(task.job.fingerprint(), task.attempt)
    result = execute_job(
        task.job, span_context=task.span_context, attempt=task.attempt
    )
    result.attempts = task.attempt
    return result
