"""Content-addressed result cache for campaign jobs.

Keys are job fingerprints (sha256 of the canonical job identity, see
:meth:`repro.engine.jobs.JobSpec.fingerprint`); values are the job
payloads (``CharacterizationResult``, ``AttackOutcome``,
``OverheadReport`` — anything picklable).

Two layers:

* an in-process LRU dict with a hard ``max_entries`` bound — this is the
  replacement for the old module-global ``_CHARACTERIZATION_CACHE`` that
  leaked across tests and could never be cleared or bounded;
* an optional on-disk layer (``directory`` argument, or the
  ``REPRO_CACHE_DIR`` environment variable) that persists results across
  processes, so pool workers and repeated CLI invocations share sweeps.
  The disk layer is bounded too: ``max_disk_entries`` (or
  ``REPRO_CACHE_MAX_DISK``) caps the entry count with an oldest-mtime
  eviction sweep on every ``put``.

Disk entries carry an integrity header — a magic tag plus the sha256 of
the pickled payload — so a torn write from a killed worker (or a chaos
injection, see :class:`repro.engine.resilience.ChaosPolicy`) is
*detected*, not silently loaded: the damaged file is quarantined by
renaming it to ``<name>.corrupt`` and the lookup reports a miss, which
makes ``__contains__`` and :meth:`get` agree on exactly which entries
exist.  Entries written by older engine versions (no header) are treated
the same way.

A cache hit on the in-memory layer returns the *same object* — callers
that relied on ``characterization(model) is characterization(model)``
keep that identity.  Disk hits return an equal, freshly unpickled copy
and are promoted into memory.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, List, Optional, Union

from repro.errors import ConfigurationError

#: Default in-memory entry bound; full three-model campaigns use ~30.
DEFAULT_MAX_ENTRIES = 128

#: Environment variable naming the persistent cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable capping the on-disk entry count.
CACHE_MAX_DISK_ENV = "REPRO_CACHE_MAX_DISK"

#: Disk-entry integrity header: magic tag + sha256 of the pickle bytes.
DISK_MAGIC = b"RPVC1\n"
_DIGEST_BYTES = 32

_SENTINEL = object()


@dataclass
class CacheStats:
    """Counters describing cache effectiveness for one session."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    evictions: int = 0
    stores: int = 0
    disk_evictions: int = 0
    corrupt: int = 0

    def as_dict(self) -> dict:
        """JSON-safe dump for bench artifacts and ``repro campaign``."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "evictions": self.evictions,
            "stores": self.stores,
            "disk_evictions": self.disk_evictions,
            "corrupt": self.corrupt,
        }


@dataclass
class ResultCache:
    """Bounded LRU mapping job fingerprints to result payloads."""

    max_entries: int = DEFAULT_MAX_ENTRIES
    directory: Optional[Union[str, Path]] = None
    max_disk_entries: Optional[int] = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ConfigurationError("max_entries must be at least 1")
        if self.max_disk_entries is not None and self.max_disk_entries < 1:
            raise ConfigurationError("max_disk_entries must be at least 1")
        if self.directory is not None:
            self.directory = Path(self.directory)
        self._memory: "OrderedDict[str, Any]" = OrderedDict()

    @classmethod
    def from_env(cls, *, max_entries: int = DEFAULT_MAX_ENTRIES) -> "ResultCache":
        """A cache following ``REPRO_CACHE_DIR`` / ``REPRO_CACHE_MAX_DISK``."""
        directory = os.environ.get(CACHE_DIR_ENV) or None
        max_disk: Optional[int] = None
        raw = os.environ.get(CACHE_MAX_DISK_ENV)
        if raw:
            try:
                max_disk = int(raw)
            except ValueError as error:
                raise ConfigurationError(
                    f"{CACHE_MAX_DISK_ENV} must be an integer, got {raw!r}"
                ) from error
        return cls(
            max_entries=max_entries, directory=directory, max_disk_entries=max_disk
        )

    # -- disk entry format -------------------------------------------------------

    def _disk_path(self, fingerprint: str) -> Optional[Path]:
        if self.directory is None:
            return None
        return Path(self.directory) / f"{fingerprint}.pkl"

    @staticmethod
    def _encode(payload: Any) -> bytes:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        return DISK_MAGIC + hashlib.sha256(blob).digest() + blob

    @staticmethod
    def _verify(raw: bytes) -> Optional[bytes]:
        """The pickle bytes if the integrity header checks out, else None."""
        header = len(DISK_MAGIC) + _DIGEST_BYTES
        if len(raw) < header or not raw.startswith(DISK_MAGIC):
            return None
        digest = raw[len(DISK_MAGIC):header]
        blob = raw[header:]
        if hashlib.sha256(blob).digest() != digest:
            return None
        return blob

    def _quarantine(self, path: Path) -> None:
        """Set a damaged entry aside as ``<name>.corrupt`` (never load it)."""
        self.stats.corrupt += 1
        try:
            path.replace(path.with_name(path.name + ".corrupt"))
        except OSError:
            pass

    def _load_disk(self, fingerprint: str, *, unpickle: bool) -> Any:
        """The verified disk payload (or pickle bytes), else ``_SENTINEL``.

        Corrupted entries — torn writes, truncations, flipped bits,
        pre-integrity-format files — are quarantined on sight, so the
        answer is consistent across repeated calls and between
        ``__contains__`` and :meth:`get`.
        """
        path = self._disk_path(fingerprint)
        if path is None or not path.exists():
            return _SENTINEL
        try:
            raw = path.read_bytes()
        except OSError:
            return _SENTINEL
        blob = self._verify(raw)
        if blob is None:
            self._quarantine(path)
            return _SENTINEL
        if not unpickle:
            return blob
        try:
            return pickle.loads(blob)
        except Exception:
            # Hash-valid but unloadable (e.g. a class that no longer
            # exists): quarantine rather than silently missing forever.
            self._quarantine(path)
            return _SENTINEL

    # -- lookup ------------------------------------------------------------------

    def get(self, fingerprint: str, default: Any = None) -> Any:
        """The cached payload for a fingerprint, or ``default``."""
        value = self._memory.get(fingerprint, _SENTINEL)
        if value is not _SENTINEL:
            self._memory.move_to_end(fingerprint)
            self.stats.hits += 1
            return value
        value = self._load_disk(fingerprint, unpickle=True)
        if value is not _SENTINEL:
            self.stats.hits += 1
            self.stats.disk_hits += 1
            self._store_memory(fingerprint, value)
            return value
        self.stats.misses += 1
        return default

    def __contains__(self, fingerprint: str) -> bool:
        if fingerprint in self._memory:
            return True
        # Verify (and quarantine) rather than testing bare existence, so
        # a torn on-disk entry is not reported present and then missed
        # by get().
        return self._load_disk(fingerprint, unpickle=False) is not _SENTINEL

    def __len__(self) -> int:
        return len(self._memory)

    # -- storage ---------------------------------------------------------------

    def _store_memory(self, fingerprint: str, payload: Any) -> None:
        self._memory[fingerprint] = payload
        self._memory.move_to_end(fingerprint)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def _disk_entries_by_age(self) -> List[Path]:
        """Every disk entry, oldest mtime first (name-tiebroken)."""
        root = Path(self.directory)
        if not root.exists():
            return []
        entries = []
        for entry in root.glob("*.pkl"):
            try:
                entries.append((entry.stat().st_mtime, entry.name, entry))
            except OSError:
                continue
        return [entry for _, _, entry in sorted(entries)]

    def _sweep_disk(self) -> None:
        """Evict oldest entries until the disk layer fits its bound."""
        if self.max_disk_entries is None:
            return
        entries = self._disk_entries_by_age()
        excess = len(entries) - self.max_disk_entries
        for entry in entries[:max(0, excess)]:
            try:
                entry.unlink()
                self.stats.disk_evictions += 1
            except OSError:
                pass

    def put(self, fingerprint: str, payload: Any) -> None:
        """Store a payload under its fingerprint (memory + disk)."""
        self._store_memory(fingerprint, payload)
        self.stats.stores += 1
        path = self._disk_path(fingerprint)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic publish: a reader never sees a half-written entry, and
        # the integrity digest catches anything that still tears.
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_bytes(self._encode(payload))
        tmp.replace(path)
        self._sweep_disk()

    def clear(self) -> None:
        """Drop every entry, memory and disk (including quarantined files)."""
        self._memory.clear()
        if self.directory is not None:
            root = Path(self.directory)
            if root.exists():
                for pattern in ("*.pkl", "*.pkl.corrupt"):
                    for entry in root.glob(pattern):
                        try:
                            entry.unlink()
                        except OSError:
                            pass
