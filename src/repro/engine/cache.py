"""Content-addressed result cache for campaign jobs.

Keys are job fingerprints (sha256 of the canonical job identity, see
:meth:`repro.engine.jobs.JobSpec.fingerprint`); values are the job
payloads (``CharacterizationResult``, ``AttackOutcome``,
``OverheadReport`` — anything picklable).

Two layers:

* an in-process LRU dict with a hard ``max_entries`` bound — this is the
  replacement for the old module-global ``_CHARACTERIZATION_CACHE`` that
  leaked across tests and could never be cleared or bounded;
* an optional on-disk layer (``directory`` argument, or the
  ``REPRO_CACHE_DIR`` environment variable) that persists results across
  processes, so pool workers and repeated CLI invocations share sweeps.

A cache hit on the in-memory layer returns the *same object* — callers
that relied on ``characterization(model) is characterization(model)``
keep that identity.  Disk hits return an equal, freshly unpickled copy
and are promoted into memory.
"""

from __future__ import annotations

import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from repro.errors import ConfigurationError

#: Default in-memory entry bound; full three-model campaigns use ~30.
DEFAULT_MAX_ENTRIES = 128

#: Environment variable naming the persistent cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_SENTINEL = object()


@dataclass
class CacheStats:
    """Counters describing cache effectiveness for one session."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    evictions: int = 0
    stores: int = 0

    def as_dict(self) -> dict:
        """JSON-safe dump for bench artifacts and ``repro campaign``."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "evictions": self.evictions,
            "stores": self.stores,
        }


@dataclass
class ResultCache:
    """Bounded LRU mapping job fingerprints to result payloads."""

    max_entries: int = DEFAULT_MAX_ENTRIES
    directory: Optional[Union[str, Path]] = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ConfigurationError("max_entries must be at least 1")
        if self.directory is not None:
            self.directory = Path(self.directory)
        self._memory: "OrderedDict[str, Any]" = OrderedDict()

    @classmethod
    def from_env(cls, *, max_entries: int = DEFAULT_MAX_ENTRIES) -> "ResultCache":
        """A cache whose disk layer follows ``REPRO_CACHE_DIR`` (if set)."""
        directory = os.environ.get(CACHE_DIR_ENV) or None
        return cls(max_entries=max_entries, directory=directory)

    # -- lookup ------------------------------------------------------------------

    def _disk_path(self, fingerprint: str) -> Optional[Path]:
        if self.directory is None:
            return None
        return Path(self.directory) / f"{fingerprint}.pkl"

    def get(self, fingerprint: str, default: Any = None) -> Any:
        """The cached payload for a fingerprint, or ``default``."""
        value = self._memory.get(fingerprint, _SENTINEL)
        if value is not _SENTINEL:
            self._memory.move_to_end(fingerprint)
            self.stats.hits += 1
            return value
        path = self._disk_path(fingerprint)
        if path is not None and path.exists():
            try:
                value = pickle.loads(path.read_bytes())
            except (OSError, pickle.PickleError, EOFError):
                # A torn write from a dead worker is a miss, not an error.
                self.stats.misses += 1
                return default
            self.stats.hits += 1
            self.stats.disk_hits += 1
            self._store_memory(fingerprint, value)
            return value
        self.stats.misses += 1
        return default

    def __contains__(self, fingerprint: str) -> bool:
        if fingerprint in self._memory:
            return True
        path = self._disk_path(fingerprint)
        return path is not None and path.exists()

    def __len__(self) -> int:
        return len(self._memory)

    # -- storage ---------------------------------------------------------------

    def _store_memory(self, fingerprint: str, payload: Any) -> None:
        self._memory[fingerprint] = payload
        self._memory.move_to_end(fingerprint)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def put(self, fingerprint: str, payload: Any) -> None:
        """Store a payload under its fingerprint (memory + disk)."""
        self._store_memory(fingerprint, payload)
        self.stats.stores += 1
        path = self._disk_path(fingerprint)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic publish: a reader never sees a half-written pickle.
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_bytes(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        tmp.replace(path)

    def clear(self) -> None:
        """Drop every entry, memory and disk."""
        self._memory.clear()
        if self.directory is not None:
            root = Path(self.directory)
            if root.exists():
                for entry in root.glob("*.pkl"):
                    try:
                        entry.unlink()
                    except OSError:
                        pass
