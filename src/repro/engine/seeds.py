"""Deterministic named seed streams for the campaign engine.

Every piece of randomness in a campaign — the fault sampling of one
characterization row, the run-to-run noise of a SPEC measurement, the
machine build of an attack cell — draws from a :class:`SeedStream`
addressed by a *name path* under a root seed::

    seed_stream(5, "characterization", "Comet Lake", "row@20").rng()
    seed_stream(5, "campaign", "Sky Lake", "plundervolt", "machine").integer()

Streams are derived with :class:`numpy.random.SeedSequence` using an
explicit ``spawn_key`` computed from the path, i.e. the order-independent
form of ``SeedSequence.spawn``: the stream a job receives depends only on
the root seed and the job's identity, never on how many other jobs ran
first or on which worker process it landed.  This is what lets the
process-pool executor shard a sweep across workers and still reproduce
the serial run byte for byte, and it replaces the ad-hoc ``seed + 6`` /
``seed=13`` offsets the CLI and experiment helpers used to carry.

Two sibling streams are statistically independent (SeedSequence's spawn
guarantee); the same path always yields the same stream.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Number of 32-bit words of the path digest folded into the spawn key.
_SPAWN_KEY_WORDS = 4

#: Separator that keeps ("a", "bc") and ("ab", "c") on distinct streams.
_PATH_SEPARATOR = "\x1f"


def _spawn_key(path: Tuple[str, ...]) -> Tuple[int, ...]:
    """Collapse a name path to a SeedSequence spawn key.

    The empty path maps to the empty key so ``seed_stream(s)`` is exactly
    ``SeedSequence(s)`` — the root stream is the plain user seed.
    """
    if not path:
        return ()
    digest = hashlib.sha256(_PATH_SEPARATOR.join(path).encode("utf-8")).digest()
    return tuple(
        int.from_bytes(digest[4 * i : 4 * i + 4], "little")
        for i in range(_SPAWN_KEY_WORDS)
    )


@dataclass(frozen=True)
class SeedStream:
    """One named, deterministic randomness stream under a root seed."""

    root: int
    path: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not all(isinstance(part, str) and part for part in self.path):
            raise ConfigurationError("seed stream path parts must be non-empty strings")

    @property
    def sequence(self) -> np.random.SeedSequence:
        """The underlying SeedSequence (pure — safe to rebuild at will)."""
        return np.random.SeedSequence(entropy=self.root, spawn_key=_spawn_key(self.path))

    def child(self, *names: str) -> "SeedStream":
        """A sub-stream addressed by appending ``names`` to the path."""
        return SeedStream(self.root, self.path + tuple(str(n) for n in names))

    def rng(self) -> np.random.Generator:
        """A fresh, independently seeded generator for this stream."""
        return np.random.default_rng(self.sequence)

    def integer(self, *, bits: int = 31) -> int:
        """A deterministic non-negative integer seed for legacy ``seed=`` APIs.

        Components that still take a plain integer seed (``Machine.build``,
        ``RSAKey.generate``, the SPEC noise generator) are bridged through
        this: the integer is the first word of the stream's generated
        state, masked to ``bits`` bits.
        """
        if not 1 <= bits <= 64:
            raise ConfigurationError("bits must lie in [1, 64]")
        state = self.sequence.generate_state(2, np.uint64)
        return int(state[0] & ((1 << bits) - 1))

    def describe(self) -> str:
        """Human-readable stream address (used in docs and trace notes)."""
        return f"{self.root}/" + "/".join(self.path)


def seed_stream(root: int, *names: str) -> SeedStream:
    """The stream addressed by ``names`` under ``root``."""
    return SeedStream(int(root), tuple(str(n) for n in names))
