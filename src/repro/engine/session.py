"""The engine session: one executor + one cache + one telemetry registry.

:class:`EngineSession` is the front door every experiment path goes
through: ``repro.experiments``, the CLI (including ``repro campaign``),
the test and benchmark conftests.  It

* turns characterization requests into per-frequency row jobs, runs them
  through the configured executor, folds the rows back together and
  caches the folded result under the sweep's content hash;
* submits attack-campaign and overhead jobs, consulting the same cache;
* merges the telemetry counter increments every worker reports back into
  its own registry, so ``session.telemetry`` reflects the whole campaign
  regardless of which process did the work.

A process-global default session (shared by the experiment API, both
conftests and the CLI) is reachable via :func:`get_session`; tests that
need isolation construct their own.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
from pathlib import Path
from time import perf_counter
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.core.characterization import (
    CharacterizationConfig,
    CharacterizationResult,
)
from repro.cpu.models import CPUModel, EXTENDED_MODELS, model_by_codename
from repro.engine.cache import ResultCache
from repro.engine.executors import Executor, executor_from_env
from repro.engine.jobs import (
    CharacterizationJob,
    JobResult,
    JobSpec,
    execute_job,
)
from repro.engine.seeds import SeedStream, seed_stream
from repro.telemetry import Telemetry

#: Root seed of the canonical paper reproduction (matches the benchmarks
#: and the historical ``experiments.CANONICAL_SEED``).
DEFAULT_SEED = 5


def _normalize_config(
    config: Optional[CharacterizationConfig],
) -> CharacterizationConfig:
    """Default + freeze the sweep config so job specs stay hashable."""
    config = config or CharacterizationConfig()
    if config.frequencies_ghz is not None and not isinstance(
        config.frequencies_ghz, tuple
    ):
        import dataclasses

        config = dataclasses.replace(
            config, frequencies_ghz=tuple(config.frequencies_ghz)
        )
    return config


class EngineSession:
    """One campaign-engine context: executor, cache, telemetry."""

    def __init__(
        self,
        *,
        executor: Optional[Executor] = None,
        cache: Optional[ResultCache] = None,
        telemetry: Optional[Telemetry] = None,
        verifier: Optional[Any] = None,
    ) -> None:
        self.executor = executor or executor_from_env()
        self.cache = cache or ResultCache.from_env()
        self.telemetry = telemetry or Telemetry()
        #: Optional invariant checker; when set, every executed batch is
        #: audited for counter conservation (worker-reported increments
        #: must merge into the session registry without loss, whichever
        #: executor ran them).  ``None`` costs nothing.
        self.verifier = verifier
        self._jobs_counter = self.telemetry.registry.counter("engine.jobs_executed")
        self._cache_hit_counter = self.telemetry.registry.counter("engine.cache_hits")
        self._cache_miss_counter = self.telemetry.registry.counter("engine.cache_misses")
        # Live progress gauges: cumulative jobs submitted / finished this
        # session (cached jobs finish instantly).  The per-job executor
        # callback keeps "completed" current mid-batch, which is what the
        # repro.observe metrics endpoint serves during a campaign.
        self._progress_total = 0
        self._progress_done = 0
        self._progress_total_gauge = self.telemetry.registry.gauge(
            "engine.progress.total"
        )
        self._progress_done_gauge = self.telemetry.registry.gauge(
            "engine.progress.completed"
        )
        #: Per-batch provenance records feeding :meth:`run_manifest` —
        #: which jobs ran, which came from cache, and each batch's wall
        #: time (the manifest's only non-deterministic field).
        self.history: List[Dict[str, Any]] = []

    # -- seed streams ------------------------------------------------------------

    def seed_stream(self, root: int, *names: str) -> SeedStream:
        """A named stream under ``root`` (convenience re-export)."""
        return seed_stream(root, *names)

    # -- generic submission ------------------------------------------------------

    def _merge_counters(self, results: Iterable[JobResult]) -> None:
        registry = self.telemetry.registry
        for result in results:
            for name, value in result.counters.items():
                registry.counter(name).inc(value)

    def _announce_jobs(self, submitted: int, finished: int) -> None:
        """Advance the progress gauges by whole-job counts."""
        self._progress_total += submitted
        self._progress_done += finished
        self._progress_total_gauge.set(self._progress_total)
        self._progress_done_gauge.set(self._progress_done)

    def _note_progress(self, _done: int, _result: JobResult) -> None:
        """Executor per-job callback: one more job finished."""
        self._progress_done += 1
        self._progress_done_gauge.set(self._progress_done)

    def _record_batch(
        self, jobs: Sequence[JobSpec], cached: Iterable[int], wall_s: float
    ) -> None:
        """Append one provenance record to :attr:`history`."""
        cached_set = set(cached)
        self.history.append(
            {
                "wall_s": wall_s,
                "jobs": [
                    {
                        "kind": job.kind,
                        "fingerprint": job.fingerprint(),
                        "seed_path": list(job.seed_path()),
                        "cached": index in cached_set,
                    }
                    for index, job in enumerate(jobs)
                ],
            }
        )

    def run_jobs(
        self, jobs: Sequence[JobSpec], *, cache: bool = True
    ) -> List[Any]:
        """Execute jobs (cache-aware) and return payloads in input order.

        Cached jobs are served without touching the executor; the misses
        are sharded through it in one batch, their results cached, and
        their worker counters merged into the session registry.
        """
        jobs = list(jobs)
        payloads: List[Any] = [None] * len(jobs)
        pending: List[int] = []
        started = perf_counter()
        if cache:
            for index, job in enumerate(jobs):
                hit = self.cache.get(job.fingerprint(), default=_MISS)
                if hit is not _MISS:
                    self._cache_hit_counter.inc()
                    payloads[index] = hit
                else:
                    self._cache_miss_counter.inc()
                    pending.append(index)
        else:
            pending = list(range(len(jobs)))
        self._announce_jobs(len(jobs), len(jobs) - len(pending))
        if pending:
            before = self.counters() if self.verifier is not None else None
            results = self.executor.run_jobs(
                [jobs[i] for i in pending], progress=self._note_progress
            )
            self._merge_counters(results)
            if self.verifier is not None:
                self.verifier.check_counter_conservation(
                    before, self.counters(), results
                )
            self._jobs_counter.inc(len(results))
            for index, result in zip(pending, results):
                payloads[index] = result.payload
                if cache:
                    self.cache.put(result.fingerprint, result.payload)
        cached_indices = [i for i in range(len(jobs)) if i not in set(pending)]
        self._record_batch(jobs, cached_indices, perf_counter() - started)
        return payloads

    def run_job(self, job: JobSpec, *, cache: bool = True) -> Any:
        """Single-job convenience wrapper around :meth:`run_jobs`."""
        return self.run_jobs([job], cache=cache)[0]

    # -- characterization --------------------------------------------------------

    def characterize(
        self,
        model: Union[CPUModel, str],
        *,
        seed: int = DEFAULT_SEED,
        config: Optional[CharacterizationConfig] = None,
    ) -> CharacterizationResult:
        """The full Algo 2 sweep for a model, sharded by frequency row.

        The folded :class:`CharacterizationResult` is cached under the
        sweep's content hash; repeated in-process calls return the same
        object (the identity the experiment API has always promised).
        """
        if isinstance(model, str):
            model = model_by_codename(model)
        config = _normalize_config(config)
        job = CharacterizationJob(
            codename=model.codename, config=config, seed=int(seed)
        )
        fingerprint = job.fingerprint()
        cached = self.cache.get(fingerprint, default=_MISS)
        if cached is not _MISS:
            self._cache_hit_counter.inc()
            return cached
        self._cache_miss_counter.inc()
        if model.codename in EXTENDED_MODELS:
            started = perf_counter()
            row_jobs = job.row_jobs()
            self._announce_jobs(len(row_jobs), 0)
            before = self.counters() if self.verifier is not None else None
            row_results = self.executor.run_jobs(
                row_jobs, progress=self._note_progress
            )
            self._merge_counters(row_results)
            if self.verifier is not None:
                self.verifier.check_counter_conservation(
                    before, self.counters(), row_results
                )
            self._jobs_counter.inc(len(row_results))
            self._record_batch(row_jobs, (), perf_counter() - started)
            result = job.fold([r.payload for r in row_results])
        else:
            # Models outside the catalog cannot be rebuilt by codename in
            # a worker process; run their sweep inline instead.
            from repro.core.characterization import CharacterizationFramework

            result = CharacterizationFramework(
                model, config=config, seed=int(seed)
            ).run()
        self.cache.put(fingerprint, result)
        return result

    # -- lifecycle ---------------------------------------------------------------

    def clear_cache(self) -> None:
        """Drop every cached result (memory and disk)."""
        self.cache.clear()

    def counters(self) -> dict:
        """Name → value snapshot of the merged session counters."""
        return {c.name: c.value for c in self.telemetry.registry.counters()}

    def describe(self) -> dict:
        """JSON-safe session summary for CLI output and bench artifacts."""
        workers = getattr(self.executor, "workers", 1)
        return {
            "executor": self.executor.name,
            "workers": workers,
            "cache": self.cache.stats.as_dict(),
            "cached_entries": len(self.cache),
        }

    # -- run reports -------------------------------------------------------------

    def run_manifest(self) -> dict:
        """The ``run.json`` provenance manifest for this session so far.

        Records what actually happened — per-batch job fingerprints and
        seed-stream paths, cache versus execution, the ``REPRO_*``
        environment in force, and a registry snapshot.  Everything is
        deterministic for a given seed except the clearly labelled
        ``wall_s`` batch durations.  Renderable with
        :func:`repro.observe.render_markdown` / ``repro report``.
        """
        all_jobs = [job for batch in self.history for job in batch["jobs"]]
        cached = sum(1 for job in all_jobs if job["cached"])
        return {
            "kind": "run-report",
            "schema": 1,
            "engine": self.describe(),
            "env": {
                name: value
                for name, value in sorted(os.environ.items())
                if name.startswith("REPRO_")
            },
            "jobs": {
                "total": len(all_jobs),
                "cached": cached,
                "executed": len(all_jobs) - cached,
            },
            "batches": self.history,
            "metrics": self.telemetry.registry.snapshot(),
        }

    def write_run_report(self, path) -> Path:
        """Write :meth:`run_manifest` as JSON to ``path``; returns it."""
        target = Path(path)
        if target.parent and not target.parent.exists():
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.run_manifest(), sort_keys=True, indent=2) + "\n"
        )
        return target

    def close(self) -> None:
        """Shut down the executor's workers (cache contents survive)."""
        self.executor.close()

    def __enter__(self) -> "EngineSession":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


_MISS = object()

_session_lock = threading.Lock()
_session: Optional[EngineSession] = None


def get_session() -> EngineSession:
    """The process-global default session (created on first use)."""
    global _session
    with _session_lock:
        if _session is None:
            _session = EngineSession()
        return _session


def set_session(session: EngineSession) -> EngineSession:
    """Install ``session`` as the process-global default."""
    global _session
    with _session_lock:
        previous, _session = _session, session
    if previous is not None and previous is not session:
        previous.close()
    return session


def reset_session() -> None:
    """Drop the default session (next :func:`get_session` builds anew)."""
    global _session
    with _session_lock:
        previous, _session = _session, None
    if previous is not None:
        previous.close()


def clear_session_cache() -> None:
    """Clear the default session's result cache (if one exists)."""
    with _session_lock:
        session = _session
    if session is not None:
        session.cache.clear()


def _close_default_session() -> None:
    """Shut the default session's worker pool down before interpreter exit.

    Without this a process-pool session that is still alive at shutdown
    gets torn down by garbage collection mid-finalization, which spews a
    spurious traceback from concurrent.futures.
    """
    with _session_lock:
        session = _session
    if session is not None:
        session.close()


atexit.register(_close_default_session)
