"""The engine session: one executor + one cache + one telemetry registry.

:class:`EngineSession` is the front door every experiment path goes
through: ``repro.experiments``, the CLI (including ``repro campaign``),
the test and benchmark conftests.  It

* turns characterization requests into per-frequency row jobs, runs them
  through the configured executor, folds the rows back together and
  caches the folded result under the sweep's content hash;
* submits attack-campaign and overhead jobs, consulting the same cache;
* merges the telemetry counter increments every worker reports back into
  its own registry, so ``session.telemetry`` reflects the whole campaign
  regardless of which process did the work.

A process-global default session (shared by the experiment API, both
conftests and the CLI) is reachable via :func:`get_session`; tests that
need isolation construct their own.
"""

from __future__ import annotations

import atexit
import json
import threading
from typing import Any, Iterable, List, Optional, Sequence, Union

from repro.core.characterization import (
    CharacterizationConfig,
    CharacterizationResult,
)
from repro.cpu.models import CPUModel, EXTENDED_MODELS, model_by_codename
from repro.engine.cache import ResultCache
from repro.engine.executors import Executor, executor_from_env
from repro.engine.jobs import (
    CharacterizationJob,
    JobResult,
    JobSpec,
    execute_job,
)
from repro.engine.seeds import SeedStream, seed_stream
from repro.telemetry import Telemetry

#: Root seed of the canonical paper reproduction (matches the benchmarks
#: and the historical ``experiments.CANONICAL_SEED``).
DEFAULT_SEED = 5


def _normalize_config(
    config: Optional[CharacterizationConfig],
) -> CharacterizationConfig:
    """Default + freeze the sweep config so job specs stay hashable."""
    config = config or CharacterizationConfig()
    if config.frequencies_ghz is not None and not isinstance(
        config.frequencies_ghz, tuple
    ):
        import dataclasses

        config = dataclasses.replace(
            config, frequencies_ghz=tuple(config.frequencies_ghz)
        )
    return config


class EngineSession:
    """One campaign-engine context: executor, cache, telemetry."""

    def __init__(
        self,
        *,
        executor: Optional[Executor] = None,
        cache: Optional[ResultCache] = None,
        telemetry: Optional[Telemetry] = None,
        verifier: Optional[Any] = None,
    ) -> None:
        self.executor = executor or executor_from_env()
        self.cache = cache or ResultCache.from_env()
        self.telemetry = telemetry or Telemetry()
        #: Optional invariant checker; when set, every executed batch is
        #: audited for counter conservation (worker-reported increments
        #: must merge into the session registry without loss, whichever
        #: executor ran them).  ``None`` costs nothing.
        self.verifier = verifier
        self._jobs_counter = self.telemetry.registry.counter("engine.jobs_executed")
        self._cache_hit_counter = self.telemetry.registry.counter("engine.cache_hits")
        self._cache_miss_counter = self.telemetry.registry.counter("engine.cache_misses")

    # -- seed streams ------------------------------------------------------------

    def seed_stream(self, root: int, *names: str) -> SeedStream:
        """A named stream under ``root`` (convenience re-export)."""
        return seed_stream(root, *names)

    # -- generic submission ------------------------------------------------------

    def _merge_counters(self, results: Iterable[JobResult]) -> None:
        registry = self.telemetry.registry
        for result in results:
            for name, value in result.counters.items():
                registry.counter(name).inc(value)

    def run_jobs(
        self, jobs: Sequence[JobSpec], *, cache: bool = True
    ) -> List[Any]:
        """Execute jobs (cache-aware) and return payloads in input order.

        Cached jobs are served without touching the executor; the misses
        are sharded through it in one batch, their results cached, and
        their worker counters merged into the session registry.
        """
        jobs = list(jobs)
        payloads: List[Any] = [None] * len(jobs)
        pending: List[int] = []
        if cache:
            for index, job in enumerate(jobs):
                hit = self.cache.get(job.fingerprint(), default=_MISS)
                if hit is not _MISS:
                    self._cache_hit_counter.inc()
                    payloads[index] = hit
                else:
                    self._cache_miss_counter.inc()
                    pending.append(index)
        else:
            pending = list(range(len(jobs)))
        if pending:
            before = self.counters() if self.verifier is not None else None
            results = self.executor.run_jobs([jobs[i] for i in pending])
            self._merge_counters(results)
            if self.verifier is not None:
                self.verifier.check_counter_conservation(
                    before, self.counters(), results
                )
            self._jobs_counter.inc(len(results))
            for index, result in zip(pending, results):
                payloads[index] = result.payload
                if cache:
                    self.cache.put(result.fingerprint, result.payload)
        return payloads

    def run_job(self, job: JobSpec, *, cache: bool = True) -> Any:
        """Single-job convenience wrapper around :meth:`run_jobs`."""
        return self.run_jobs([job], cache=cache)[0]

    # -- characterization --------------------------------------------------------

    def characterize(
        self,
        model: Union[CPUModel, str],
        *,
        seed: int = DEFAULT_SEED,
        config: Optional[CharacterizationConfig] = None,
    ) -> CharacterizationResult:
        """The full Algo 2 sweep for a model, sharded by frequency row.

        The folded :class:`CharacterizationResult` is cached under the
        sweep's content hash; repeated in-process calls return the same
        object (the identity the experiment API has always promised).
        """
        if isinstance(model, str):
            model = model_by_codename(model)
        config = _normalize_config(config)
        job = CharacterizationJob(
            codename=model.codename, config=config, seed=int(seed)
        )
        fingerprint = job.fingerprint()
        cached = self.cache.get(fingerprint, default=_MISS)
        if cached is not _MISS:
            self._cache_hit_counter.inc()
            return cached
        self._cache_miss_counter.inc()
        if model.codename in EXTENDED_MODELS:
            before = self.counters() if self.verifier is not None else None
            row_results = self.executor.run_jobs(job.row_jobs())
            self._merge_counters(row_results)
            if self.verifier is not None:
                self.verifier.check_counter_conservation(
                    before, self.counters(), row_results
                )
            self._jobs_counter.inc(len(row_results))
            result = job.fold([r.payload for r in row_results])
        else:
            # Models outside the catalog cannot be rebuilt by codename in
            # a worker process; run their sweep inline instead.
            from repro.core.characterization import CharacterizationFramework

            result = CharacterizationFramework(
                model, config=config, seed=int(seed)
            ).run()
        self.cache.put(fingerprint, result)
        return result

    # -- lifecycle ---------------------------------------------------------------

    def clear_cache(self) -> None:
        """Drop every cached result (memory and disk)."""
        self.cache.clear()

    def counters(self) -> dict:
        """Name → value snapshot of the merged session counters."""
        return {c.name: c.value for c in self.telemetry.registry.counters()}

    def describe(self) -> dict:
        """JSON-safe session summary for CLI output and bench artifacts."""
        workers = getattr(self.executor, "workers", 1)
        return {
            "executor": self.executor.name,
            "workers": workers,
            "cache": self.cache.stats.as_dict(),
            "cached_entries": len(self.cache),
        }

    def close(self) -> None:
        """Shut down the executor's workers (cache contents survive)."""
        self.executor.close()

    def __enter__(self) -> "EngineSession":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


_MISS = object()

_session_lock = threading.Lock()
_session: Optional[EngineSession] = None


def get_session() -> EngineSession:
    """The process-global default session (created on first use)."""
    global _session
    with _session_lock:
        if _session is None:
            _session = EngineSession()
        return _session


def set_session(session: EngineSession) -> EngineSession:
    """Install ``session`` as the process-global default."""
    global _session
    with _session_lock:
        previous, _session = _session, session
    if previous is not None and previous is not session:
        previous.close()
    return session


def reset_session() -> None:
    """Drop the default session (next :func:`get_session` builds anew)."""
    global _session
    with _session_lock:
        previous, _session = _session, None
    if previous is not None:
        previous.close()


def clear_session_cache() -> None:
    """Clear the default session's result cache (if one exists)."""
    with _session_lock:
        session = _session
    if session is not None:
        session.cache.clear()


def _close_default_session() -> None:
    """Shut the default session's worker pool down before interpreter exit.

    Without this a process-pool session that is still alive at shutdown
    gets torn down by garbage collection mid-finalization, which spews a
    spurious traceback from concurrent.futures.
    """
    with _session_lock:
        session = _session
    if session is not None:
        session.close()


atexit.register(_close_default_session)
