"""The engine session: one executor + one cache + one telemetry registry.

:class:`EngineSession` is the front door every experiment path goes
through: ``repro.experiments``, the CLI (including ``repro campaign``),
the test and benchmark conftests.  It

* turns characterization requests into per-frequency row jobs, runs them
  through the configured executor, folds the rows back together and
  caches the folded result under the sweep's content hash;
* submits attack-campaign and overhead jobs, consulting the same cache;
* merges the telemetry counter increments every worker reports back into
  its own registry, so ``session.telemetry`` reflects the whole campaign
  regardless of which process did the work.

A process-global default session (shared by the experiment API, both
conftests and the CLI) is reachable via :func:`get_session`; tests that
need isolation construct their own.
"""

from __future__ import annotations

import atexit
import json
import logging
import os
import threading
from pathlib import Path
from time import perf_counter
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.core.characterization import (
    CharacterizationConfig,
    CharacterizationResult,
)
from repro.cpu.models import CPUModel, EXTENDED_MODELS, model_by_codename
from repro.engine.cache import ResultCache
from repro.engine.checkpoint import CampaignCheckpoint
from repro.engine.executors import Executor, executor_from_env
from repro.engine.jobs import (
    CharacterizationJob,
    JobResult,
    JobSpec,
    environment_fingerprint,
    execute_job,
)
from repro.engine.resilience import ChaosPolicy, Quarantined, SupervisionStats
from repro.engine.seeds import SeedStream, seed_stream
from repro.errors import ReproError
from repro.observe.spans import FleetTimeline, spans_enabled
from repro.registry.registry import RunRegistry, code_fingerprint, compute_run_id
from repro.registry.store import encode_object
from repro.telemetry import Telemetry
from repro.telemetry.registry import CompositeRegistry, Registry

#: Root seed of the canonical paper reproduction (matches the benchmarks
#: and the historical ``experiments.CANONICAL_SEED``).
DEFAULT_SEED = 5

logger = logging.getLogger(__name__)


def batch_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the batch-path switch: explicit override, else environment.

    The vectorized fast path is the default; ``REPRO_BATCH=0`` (or
    ``false`` / ``no`` / ``off``) falls back to the scalar oracle.  The
    knob is deliberately *not* part of any job fingerprint: both paths
    are byte-identical, so they share cache entries (see
    ``RESULT_AFFECTING_ENV`` in :mod:`repro.engine.jobs`).
    """
    if override is not None:
        return bool(override)
    return os.environ.get("REPRO_BATCH", "").strip().lower() not in (
        "0",
        "false",
        "no",
        "off",
    )


def batch_rows_per_job(default: int = 8) -> int:
    """Rows per batch shard (``REPRO_BATCH_ROWS``, default 8).

    Purely a scheduling knob — per-row seed streams make the folded
    result independent of the chunking.
    """
    raw = os.environ.get("REPRO_BATCH_ROWS", "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError as error:
        raise ReproError(f"REPRO_BATCH_ROWS must be an integer, got {raw!r}") from error
    if value <= 0:
        raise ReproError(f"REPRO_BATCH_ROWS must be positive, got {value}")
    return value


def _normalize_config(
    config: Optional[CharacterizationConfig],
) -> CharacterizationConfig:
    """Default + freeze the sweep config so job specs stay hashable."""
    config = config or CharacterizationConfig()
    if config.frequencies_ghz is not None and not isinstance(
        config.frequencies_ghz, tuple
    ):
        import dataclasses

        config = dataclasses.replace(
            config, frequencies_ghz=tuple(config.frequencies_ghz)
        )
    return config


class EngineSession:
    """One campaign-engine context: executor, cache, telemetry."""

    def __init__(
        self,
        *,
        executor: Optional[Executor] = None,
        cache: Optional[ResultCache] = None,
        telemetry: Optional[Telemetry] = None,
        verifier: Optional[Any] = None,
        checkpoint: Optional[CampaignCheckpoint] = None,
        chaos: Optional[ChaosPolicy] = None,
        registry: Union[None, str, RunRegistry] = "auto",
    ) -> None:
        self.executor = executor or executor_from_env()
        # `cache if ... is not None`, not `cache or ...`: ResultCache has
        # __len__, so a freshly built (empty) cache is falsy and a bare
        # `or` would silently swap in the environment default.
        self.cache = cache if cache is not None else ResultCache.from_env()
        self.telemetry = telemetry or Telemetry()
        #: Optional campaign checkpoint: completed results are persisted
        #: as they land (so a SIGKILLed campaign resumes losslessly) and
        #: consulted before execution on the next run.
        self.checkpoint = checkpoint
        #: Optional session-side chaos (torn cache writes).  Worker-side
        #: chaos (kills/errors/stalls) travels on the executor instead.
        self.chaos = chaos
        #: Quarantine records for poison jobs this session gave up on
        #: (the campaign continued without them; see the run report).
        self.quarantined: List[Dict[str, Any]] = []
        #: Optional invariant checker; when set, every executed batch is
        #: audited for counter conservation (worker-reported increments
        #: must merge into the session registry without loss, whichever
        #: executor ran them).  ``None`` costs nothing.
        self.verifier = verifier
        self._jobs_counter = self.telemetry.registry.counter("engine.jobs_executed")
        self._cache_hit_counter = self.telemetry.registry.counter("engine.cache_hits")
        self._cache_miss_counter = self.telemetry.registry.counter("engine.cache_misses")
        # Supervision counters, fed from the executor's cumulative
        # SupervisionStats deltas after every batch.
        self._retries_counter = self.telemetry.registry.counter("engine.retries")
        self._requeues_counter = self.telemetry.registry.counter("engine.requeues")
        self._quarantined_counter = self.telemetry.registry.counter(
            "engine.quarantined"
        )
        self._timeouts_counter = self.telemetry.registry.counter("engine.timeouts")
        self._respawns_counter = self.telemetry.registry.counter(
            "engine.pool_respawns"
        )
        self._resumed_counter = self.telemetry.registry.counter("engine.resumed")
        # Live progress gauges: cumulative jobs submitted / finished this
        # session (cached jobs finish instantly).  The per-job executor
        # callback keeps "completed" current mid-batch, which is what the
        # repro.observe metrics endpoint serves during a campaign.
        self._progress_total = 0
        self._progress_done = 0
        self._progress_total_gauge = self.telemetry.registry.gauge(
            "engine.progress.total"
        )
        self._progress_done_gauge = self.telemetry.registry.gauge(
            "engine.progress.completed"
        )
        #: The fleet-wide span timeline (``None`` when ``REPRO_SPANS=0``):
        #: every executed batch opens a batch span whose context is
        #: propagated to workers, and their buffers merge back here.
        self.timeline: Optional[FleetTimeline] = (
            FleetTimeline() if spans_enabled() else None
        )
        #: Wall-clock latency instruments (queue wait / execute time per
        #: job kind, worker occupancy).  Deliberately a *separate*
        #: registry: ``self.telemetry`` stays fully deterministic, and
        #: :meth:`metrics_view` serves both together for scrapes.
        self.wall_registry = Registry()
        self.wall_registry.gauge("engine.wall.workers").set(
            getattr(self.executor, "workers", 1)
        )
        self._inflight_gauge = self.wall_registry.gauge("engine.wall.in_flight")
        self.executor.on_inflight = self._inflight_gauge.set
        #: Per-batch provenance records feeding :meth:`run_manifest` —
        #: which jobs ran, which came from cache, and each batch's wall
        #: time (the manifest's only non-deterministic field).
        self.history: List[Dict[str, Any]] = []
        #: Optional run registry (:mod:`repro.registry`): every batch's
        #: job specs and payloads are staged into its content-addressed
        #: blob store as they land, and :meth:`record_run` commits the
        #: run to the sqlite index.  ``"auto"`` follows the environment
        #: (``REPRO_REGISTRY=0`` opts out, ``REPRO_REGISTRY_DIR`` points
        #: elsewhere); pass ``None`` to disable outright.
        if registry == "auto":
            try:
                registry = RunRegistry.from_env()
            except Exception:
                # A broken registry directory must never take the
                # campaign down; run unrecorded instead.
                registry = None
        self.registry: Optional[RunRegistry] = registry
        #: Pending result rows for :meth:`record_run`, keyed by job
        #: fingerprint (first occurrence wins; identical fingerprints
        #: carry identical payloads by construction).
        self._registry_rows: Dict[str, Dict[str, Any]] = {}
        #: (batch count, run id) of the last :meth:`record_run` commit,
        #: so closing an already-recorded session does not re-commit.
        self._recorded: Optional[tuple] = None

    # -- seed streams ------------------------------------------------------------

    def seed_stream(self, root: int, *names: str) -> SeedStream:
        """A named stream under ``root`` (convenience re-export)."""
        return seed_stream(root, *names)

    # -- generic submission ------------------------------------------------------

    def _merge_telemetry(self, results: Iterable[JobResult]) -> None:
        """Fold worker-marshalled telemetry into the session registry.

        Counters add, histogram snapshots merge exactly (aggregates are
        commutative, the raw-sample window extends in input order) and
        gauges take the last written value — all in input order, so the
        merged state is byte-identical whichever executor ran the batch.
        """
        registry = self.telemetry.registry
        for result in results:
            for name, value in result.counters.items():
                registry.counter(name).inc(value)
            for name, snapshot in getattr(result, "histograms", {}).items():
                registry.histogram(name).merge(snapshot)
            for name, value in getattr(result, "gauges", {}).items():
                registry.gauge(name).set(value)

    def _announce_jobs(self, submitted: int, finished: int) -> None:
        """Advance the progress gauges by whole-job counts."""
        self._progress_total += submitted
        self._progress_done += finished
        self._progress_total_gauge.set(self._progress_total)
        self._progress_done_gauge.set(self._progress_done)

    def _note_progress(self, _done: int, result: JobResult) -> None:
        """Executor per-job callback: one more job finished.

        Completed results are checkpointed *here*, as they land, not at
        batch end — that is what makes a SIGKILLed campaign resumable
        without losing finished work.
        """
        self._progress_done += 1
        self._progress_done_gauge.set(self._progress_done)
        if self.checkpoint is not None and not isinstance(
            result.payload, Quarantined
        ):
            self.checkpoint.record(result)

    def _sync_supervision(self, before: SupervisionStats) -> None:
        """Fold the executor's supervision deltas into session counters."""
        delta = self.executor.stats.delta(before)
        self._retries_counter.inc(delta.retries)
        self._requeues_counter.inc(delta.requeues)
        self._quarantined_counter.inc(delta.quarantined)
        self._timeouts_counter.inc(delta.timeouts)
        self._respawns_counter.inc(delta.respawns)

    def _execute_batch(self, jobs: Sequence[JobSpec]) -> List[JobResult]:
        """Run one batch through the executor with full bookkeeping."""
        before = self.counters() if self.verifier is not None else None
        supervision_before = self.executor.stats.copy()
        context = (
            self.timeline.begin_batch([job.fingerprint() for job in jobs])
            if self.timeline is not None
            else None
        )
        started = perf_counter()
        try:
            results = self.executor.run_jobs(
                jobs, progress=self._note_progress, span_context=context
            )
        finally:
            self._sync_supervision(supervision_before)
        self._merge_telemetry(results)
        failures = self.executor.drain_failed_attempts()
        if self.timeline is not None and context is not None:
            self.timeline.end_batch(
                context,
                results,
                failures=failures,
                wall_s=perf_counter() - started,
            )
            self._observe_wall_latency(results)
        if self.verifier is not None:
            self.verifier.check_counter_conservation(
                before, self.counters(), results
            )
        self._jobs_counter.inc(len(results))
        return results

    def _observe_wall_latency(self, results: Iterable[JobResult]) -> None:
        """Feed per-kind queue-wait/exec histograms from landed spans.

        Wall-clock only, into :attr:`wall_registry` — never the
        deterministic session telemetry.
        """
        for result in results:
            for record in getattr(result, "spans", ()):
                if record.get("kind") != "job":
                    continue
                entry = result.span_wall.get(record["span_id"])
                if entry:
                    kind = record["name"]
                    if "duration_s" in entry:
                        self.wall_registry.histogram(
                            f"engine.wall.exec.{kind}"
                        ).observe(entry["duration_s"])
                    if "queue_wait_s" in entry:
                        self.wall_registry.histogram(
                            f"engine.wall.queue_wait.{kind}"
                        ).observe(entry["queue_wait_s"])
                break

    def _record_batch(
        self, jobs: Sequence[JobSpec], sources: Sequence[str], wall_s: float
    ) -> None:
        """Append one provenance record to :attr:`history`.

        ``sources`` names where each payload came from: ``cache``,
        ``resumed`` (checkpoint), ``executed`` or ``quarantined``.
        """
        self.history.append(
            {
                "wall_s": wall_s,
                "jobs": [
                    {
                        "kind": job.kind,
                        "fingerprint": job.fingerprint(),
                        "seed_path": list(job.seed_path()),
                        "cached": source == "cache",
                        "source": source,
                    }
                    for job, source in zip(jobs, sources)
                ],
            }
        )

    def _stage_registry(self, job: JobSpec, payload: Any, source: str) -> None:
        """Stage one job's spec + payload blobs for :meth:`record_run`.

        Blob publishes are atomic and content-deduplicated, so staging
        as results land (rather than at record time) costs one pickle
        per new payload and makes a SIGKILL mid-campaign lose nothing
        already staged.  Registry trouble never fails the campaign: the
        session drops to unrecorded operation instead.
        """
        if self.registry is None:
            return
        fingerprint = job.fingerprint()
        if fingerprint in self._registry_rows:
            return
        quarantined = isinstance(payload, Quarantined)
        try:
            row = self.registry.stage_result(
                kind=job.kind,
                fingerprint=fingerprint,
                seed_path=job.seed_path(),
                source=source,
                identity=job.identity(),
                spec_bytes=encode_object(job),
                payload_bytes=None if quarantined else encode_object(payload),
            )
        except Exception:
            logger.warning(
                "run registry at %s failed while staging %s; disabling "
                "recording for this session",
                getattr(self.registry, "directory", "?"),
                fingerprint[:12],
                exc_info=True,
            )
            self.registry = None
            return
        self._registry_rows[fingerprint] = row

    def _quarantine_payload(self, payload: Quarantined) -> None:
        """Record one poison job the executor gave up on."""
        info = payload.as_dict()
        self.quarantined.append(info)
        if self.checkpoint is not None:
            self.checkpoint.record_quarantine(info)

    def run_jobs(
        self, jobs: Sequence[JobSpec], *, cache: bool = True
    ) -> List[Any]:
        """Execute jobs (cache-aware) and return payloads in input order.

        Cached jobs are served without touching the executor; a
        configured checkpoint serves results completed by a previous
        (possibly killed) run of the same campaign; the remaining misses
        are sharded through the executor in one batch, their results
        cached and checkpointed, and their worker counters merged into
        the session registry.  A poison job the supervised executor
        quarantined yields its :class:`Quarantined` marker as the
        payload — the rest of the batch is unaffected.
        """
        jobs = list(jobs)
        payloads: List[Any] = [None] * len(jobs)
        sources: List[str] = ["executed"] * len(jobs)
        pending: List[int] = []
        started = perf_counter()
        for index, job in enumerate(jobs):
            fingerprint = job.fingerprint()
            if cache:
                hit = self.cache.get(fingerprint, default=_MISS)
                if hit is not _MISS:
                    self._cache_hit_counter.inc()
                    payloads[index] = hit
                    sources[index] = "cache"
                    continue
                self._cache_miss_counter.inc()
            if self.checkpoint is not None:
                hit = self.checkpoint.get(fingerprint, default=_MISS)
                if hit is not _MISS:
                    self._resumed_counter.inc()
                    payloads[index] = hit
                    sources[index] = "resumed"
                    if cache:
                        self.cache.put(fingerprint, hit)
                    continue
            pending.append(index)
        self._announce_jobs(len(jobs), len(jobs) - len(pending))
        if pending:
            results = self._execute_batch([jobs[i] for i in pending])
            for index, result in zip(pending, results):
                payloads[index] = result.payload
                if isinstance(result.payload, Quarantined):
                    sources[index] = "quarantined"
                    self._quarantine_payload(result.payload)
                    continue
                # A remote executor tags where each payload actually
                # came from ("remote" = executed by the fleet,
                # "remote-cache" = served from the coordinator's dedup
                # store).  Origins never enter run ids — compute_run_id
                # folds only job identities — so provenance cannot
                # perturb byte-identity.
                origin = getattr(result, "origin", None)
                if origin is not None:
                    sources[index] = origin
                if cache:
                    self.cache.put(result.fingerprint, result.payload)
                    if self.chaos is not None and self.chaos.should_tear_cache(
                        result.fingerprint
                    ):
                        self.chaos.tear(self.cache, result.fingerprint)
        if self.registry is not None:
            for job, payload, source in zip(jobs, payloads, sources):
                self._stage_registry(job, payload, source)
        self._record_batch(jobs, sources, perf_counter() - started)
        return payloads

    def run_job(self, job: JobSpec, *, cache: bool = True) -> Any:
        """Single-job convenience wrapper around :meth:`run_jobs`."""
        return self.run_jobs([job], cache=cache)[0]

    # -- characterization --------------------------------------------------------

    def characterize(
        self,
        model: Union[CPUModel, str],
        *,
        seed: int = DEFAULT_SEED,
        config: Optional[CharacterizationConfig] = None,
        batch: Optional[bool] = None,
    ) -> CharacterizationResult:
        """The full Algo 2 sweep for a model, sharded by frequency row.

        The folded :class:`CharacterizationResult` is cached under the
        sweep's content hash; repeated in-process calls return the same
        object (the identity the experiment API has always promised).

        ``batch`` selects the vectorized fast path (multi-row
        :class:`BatchCharacterizationJob` shards through
        ``repro.vector``); ``None`` defers to the environment —
        ``REPRO_BATCH=0`` opts out, anything else (including unset) means
        on.  Both paths produce byte-identical results and share the same
        cache slot, so the switch is pure scheduling.
        """
        if isinstance(model, str):
            model = model_by_codename(model)
        config = _normalize_config(config)
        use_batch = batch_enabled(batch)
        job = CharacterizationJob(
            codename=model.codename, config=config, seed=int(seed)
        )
        fingerprint = job.fingerprint()
        cached = self.cache.get(fingerprint, default=_MISS)
        if cached is not _MISS:
            self._cache_hit_counter.inc()
            return cached
        self._cache_miss_counter.inc()
        if model.codename in EXTENDED_MODELS:
            # Row/batch jobs go through run_jobs (cache=False: only the
            # folded sweep is cached) so they are checkpointed and
            # resumable like any other job.
            if use_batch:
                jobs: List[JobSpec] = list(
                    job.batch_jobs(rows_per_job=batch_rows_per_job())
                )
            else:
                jobs = list(job.row_jobs())
            payloads = self.run_jobs(jobs, cache=False)
            lost = sum(1 for p in payloads if isinstance(p, Quarantined))
            if lost:
                # A sweep folded from partial rows would be silently
                # wrong; characterization demands every row.
                raise ReproError(
                    f"characterization sweep for {model.codename} lost "
                    f"{lost} {'batch' if use_batch else 'row'} job(s) to "
                    "quarantine; see the run report's quarantine list"
                )
            if use_batch:
                # Each batch payload is a chunk of rows, in frequency order.
                rows = [row for payload in payloads for row in payload]
            else:
                rows = payloads
            result = job.fold(rows)
        else:
            # Models outside the catalog cannot be rebuilt by codename in
            # a worker process; run their sweep inline instead.
            from repro.core.characterization import CharacterizationFramework

            result = CharacterizationFramework(
                model, config=config, seed=int(seed)
            ).run(batch=use_batch)
        self.cache.put(fingerprint, result)
        return result

    # -- fault-space exploration -------------------------------------------------

    def explore(self, plan, *, rows_per_job: int = 8) -> dict:
        """Run an :class:`repro.explore.ExplorePlan` through this session.

        Thin delegate to :func:`repro.explore.runner.run_explore`: the
        plan is pruned, the surviving fault-space shards run as
        cache-aware, checkpointable, registry-recorded jobs like any
        other campaign, and the canonical exploitability map comes back.
        ``rows_per_job`` is pure scheduling — the map is byte-identical
        whatever the chunking or executor.
        """
        from repro.explore.runner import run_explore

        return run_explore(plan, session=self, rows_per_job=rows_per_job)

    # -- lifecycle ---------------------------------------------------------------

    def clear_cache(self) -> None:
        """Drop every cached result (memory and disk)."""
        self.cache.clear()

    def counters(self) -> dict:
        """Name → value snapshot of the merged session counters."""
        return {c.name: c.value for c in self.telemetry.registry.counters()}

    def metrics_view(self) -> CompositeRegistry:
        """One scrape surface: deterministic telemetry + wall latency.

        What ``repro campaign --serve-port`` exposes and ``repro top``
        renders — the session registry's counters/gauges/histograms
        plus the wall-clock queue-wait/exec/occupancy instruments.
        """
        return CompositeRegistry(self.telemetry.registry, self.wall_registry)

    def export_spans(self, path, *, fmt: str = "chrome", wall_path=None) -> Path:
        """Write the merged span timeline as a trace file; returns it.

        The main export contains only sim-time/identity fields, so it is
        byte-identical across executors for the same campaign.
        ``wall_path`` (optional) additionally writes the labelled
        non-deterministic wall-clock lane layout.
        """
        if self.timeline is None:
            raise ReproError(
                "span recording is disabled (REPRO_SPANS=0); nothing to export"
            )
        from repro.telemetry.export import write_trace

        target = write_trace(path, self.timeline.to_events(), fmt=fmt)
        if wall_path is not None:
            write_trace(wall_path, self.timeline.wall_events(), fmt=fmt)
        return target

    def describe(self) -> dict:
        """JSON-safe session summary for CLI output and bench artifacts."""
        workers = getattr(self.executor, "workers", 1)
        description = {
            "executor": self.executor.name,
            "workers": workers,
            "cache": self.cache.stats.as_dict(),
            "cached_entries": len(self.cache),
            "supervision": self.executor.stats.as_dict(),
        }
        if self.checkpoint is not None:
            description["checkpoint"] = self.checkpoint.describe()
        if self.registry is not None:
            description["registry"] = {
                "directory": str(self.registry.directory),
                "staged": len(self._registry_rows),
            }
        return description

    # -- run reports -------------------------------------------------------------

    def run_manifest(self) -> dict:
        """The ``run.json`` provenance manifest for this session so far.

        Records what actually happened — per-batch job fingerprints and
        seed-stream paths, cache versus execution, the ``REPRO_*``
        environment in force, and a registry snapshot.  Everything is
        deterministic for a given seed except the clearly labelled
        ``wall_s`` batch durations.  Renderable with
        :func:`repro.observe.render_markdown` / ``repro report``.
        """
        all_jobs = [job for batch in self.history for job in batch["jobs"]]
        by_source = {
            source: sum(
                1 for job in all_jobs if job.get("source", "executed") == source
            )
            for source in (
                "cache",
                "resumed",
                "executed",
                "quarantined",
                "remote",
                "remote-cache",
            )
        }
        env = {
            name: value
            for name, value in sorted(os.environ.items())
            if name.startswith("REPRO_")
        }
        # Schema 3 (the registry schema) additionally pins the resolved
        # result-affecting environment — including *unset* variables,
        # which the REPRO_* scan above cannot see — so reproduction can
        # re-establish it and the run id can fold it in.
        env["result_affecting"] = environment_fingerprint()
        manifest = {
            "kind": "run-report",
            "schema": 3,
            "code": code_fingerprint(),
            "engine": self.describe(),
            "env": env,
            "jobs": {
                "total": len(all_jobs),
                "cached": by_source["cache"],
                "resumed": by_source["resumed"],
                "executed": by_source["executed"],
                "quarantined": by_source["quarantined"],
                "remote": by_source["remote"],
                "remote_cached": by_source["remote-cache"],
            },
            "quarantined": list(self.quarantined),
            "batches": self.history,
            "metrics": self.telemetry.registry.snapshot(),
        }
        if self.timeline is not None and len(self.timeline):
            # Everything in the summary except its "wall" key is
            # deterministic; compute_run_id folds neither in.
            manifest["spans"] = self.timeline.summary()
        manifest["run_id"] = compute_run_id(manifest)
        return manifest

    def _collect_flights(self) -> List[Dict[str, Any]]:
        """Flight dumps belonging to this session's jobs, with hashes.

        Dump filenames embed ``fingerprint[:12]`` (see
        :mod:`repro.observe.flight`), so the session's own dumps can be
        picked out of a shared ``REPRO_FLIGHT_DIR`` by matching staged
        fingerprints; quarantine records name their dump path directly.
        """
        from repro.observe.flight import flight_dir_from_env
        from repro.registry.store import sha256_hex

        prefixes = {fp[:12] for fp in self._registry_rows}
        candidates: List[Path] = []
        directory = flight_dir_from_env()
        if directory is not None and directory.exists():
            candidates.extend(sorted(directory.glob("*.flight.jsonl")))
        for info in self.quarantined:
            dump = info.get("flight_dump")
            if dump:
                candidates.append(Path(dump))
        records, seen = [], set()
        for path in candidates:
            key = str(path)
            if key in seen or not path.exists():
                continue
            if not any(prefix in path.name for prefix in prefixes):
                continue
            seen.add(key)
            try:
                blob = path.read_bytes()
            except OSError:
                continue
            records.append(
                {
                    "path": key,
                    "sha256": sha256_hex(blob),
                    "reason": (
                        "quarantined-job"
                        if path.name.startswith("quarantine-")
                        else "failed-attempt"
                    ),
                }
            )
        return records

    def record_run(self) -> Optional[str]:
        """Commit this session's run to the registry; returns the run id.

        Idempotent per batch count: recording again without new batches
        returns the already-committed id without touching the index.
        Called automatically from :meth:`close`; safe to call earlier
        (e.g. right after a campaign) to learn the run id.  Returns
        ``None`` when recording is disabled or nothing ran.
        """
        if self.registry is None or not self.history:
            return None
        progress = len(self.history)
        if self._recorded is not None and self._recorded[0] == progress:
            return self._recorded[1]
        manifest = self.run_manifest()
        try:
            run_id = self.registry.record_run(
                manifest,
                list(self._registry_rows.values()),
                flights=self._collect_flights(),
            )
        except Exception:
            logger.warning(
                "run registry at %s failed to commit; run not recorded",
                getattr(self.registry, "directory", "?"),
                exc_info=True,
            )
            return None
        if self.timeline is not None and len(self.timeline):
            try:
                self.registry.record_spans(run_id, self.timeline.to_dict())
            except Exception:
                logger.warning(
                    "failed to record span timeline for run %s",
                    run_id,
                    exc_info=True,
                )
        self._recorded = (progress, run_id)
        return run_id

    def write_run_report(self, path) -> Path:
        """Write :meth:`run_manifest` as JSON to ``path``; returns it."""
        target = Path(path)
        if target.parent and not target.parent.exists():
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.run_manifest(), sort_keys=True, indent=2) + "\n"
        )
        return target

    def close(self) -> None:
        """Record the run, then shut down the executor's workers.

        Cache contents survive; registry commit failures are logged and
        swallowed (closing a session must never raise over bookkeeping).
        """
        try:
            self.record_run()
        except Exception:
            logger.warning("run registry commit failed on close", exc_info=True)
        self.executor.close()

    def __enter__(self) -> "EngineSession":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


_MISS = object()

_session_lock = threading.Lock()
_session: Optional[EngineSession] = None


def get_session() -> EngineSession:
    """The process-global default session (created on first use)."""
    global _session
    with _session_lock:
        if _session is None:
            _session = EngineSession()
        return _session


def set_session(session: EngineSession) -> EngineSession:
    """Install ``session`` as the process-global default."""
    global _session
    with _session_lock:
        previous, _session = _session, session
    if previous is not None and previous is not session:
        previous.close()
    return session


def reset_session() -> None:
    """Drop the default session (next :func:`get_session` builds anew)."""
    global _session
    with _session_lock:
        previous, _session = _session, None
    if previous is not None:
        previous.close()


def clear_session_cache() -> None:
    """Clear the default session's result cache (if one exists)."""
    with _session_lock:
        session = _session
    if session is not None:
        session.cache.clear()


def _close_default_session() -> None:
    """Shut the default session's worker pool down before interpreter exit.

    Without this a process-pool session that is still alive at shutdown
    gets torn down by garbage collection mid-finalization, which spews a
    spurious traceback from concurrent.futures.
    """
    with _session_lock:
        session = _session
    if session is not None:
        session.close()


atexit.register(_close_default_session)
