"""Pluggable job executors: in-process serial and supervised process-pool.

Executors run batches of :class:`~repro.engine.jobs.JobSpec` and return
:class:`~repro.engine.jobs.JobResult` lists *in input order*.  Because
every job derives its randomness from a seed stream keyed by its own
identity, the two executors are interchangeable: sharding a sweep across
worker processes reproduces the serial output byte for byte, only
faster.  Selection is config-driven:

* ``REPRO_EXECUTOR`` — ``serial`` (default) or ``process``;
* ``REPRO_WORKERS`` — worker count for the process pool;
* ``REPRO_JOB_RETRIES`` / ``REPRO_JOB_TIMEOUT`` / ``REPRO_RETRY_BACKOFF``
  — the supervision policy (see :class:`~repro.engine.resilience.RetryPolicy`);
* the CLI's ``--executor`` / ``--workers`` flags override the first two.

:class:`ParallelExecutor` is a *supervised* executor: instead of a bare
``pool.map`` (where one worker crash or hung job aborted the whole batch
and discarded every completed result) it drives submit/wait futures with
per-job timeouts, bounded deterministic-backoff retries,
``BrokenProcessPool`` recovery (respawn, requeue in-flight jobs, keep
completed results), poison-job quarantine, and graceful degradation to
inline execution when the pool cannot be rebuilt.  None of this can
perturb results: a retried job replays its exact seed stream.
"""

from __future__ import annotations

import os
import time
from abc import ABC, abstractmethod
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.engine.jobs import JobResult, JobSpec, execute_job
from repro.engine.resilience import (
    ChaosPolicy,
    Quarantined,
    RetryPolicy,
    SupervisedTask,
    SupervisionStats,
    execute_supervised,
)
from repro.errors import ConfigurationError, JobFailedError

#: Environment variables steering executor selection.
EXECUTOR_ENV = "REPRO_EXECUTOR"
WORKERS_ENV = "REPRO_WORKERS"

#: Recognised executor kinds.
EXECUTOR_KINDS = ("serial", "process", "remote")

#: Coordinator URL consulted when ``REPRO_EXECUTOR=remote``.
COORDINATOR_ENV = "REPRO_COORDINATOR"


#: Per-job completion callback: ``progress(done_count, result)``.  Used
#: by the engine session to keep live progress gauges current while a
#: batch is in flight (``repro.observe`` serves them over ``/metrics``)
#: and to checkpoint completed results incrementally.
ProgressCallback = Callable[[int, JobResult], None]


class Executor(ABC):
    """Runs job batches; concrete classes choose where the work lands."""

    #: Kind tag used by config, CLI output and bench artifacts.
    name: str = "abstract"

    def __init__(self) -> None:
        #: Cumulative supervision bookkeeping; the session snapshots
        #: deltas into ``engine.retries`` / ``engine.requeues`` /
        #: ``engine.quarantined`` counters after every batch.
        self.stats = SupervisionStats()
        #: Failed-attempt records (fingerprint, kind, attempt,
        #: error_type) accumulated until the session drains them into the
        #: fleet timeline as ``attempt`` spans.
        self.failed_attempts: List[Dict[str, str]] = []
        #: Optional occupancy hook: called with the current in-flight
        #: attempt count as it changes (the ``repro top`` worker
        #: occupancy gauge rides on this).
        self.on_inflight: Optional[Callable[[int], None]] = None

    def _record_failed_attempt(
        self, job: JobSpec, attempt: int, error: BaseException
    ) -> None:
        self.failed_attempts.append(
            {
                "fingerprint": job.fingerprint(),
                "kind": job.kind,
                "attempt": int(attempt),
                "error_type": type(error).__name__,
            }
        )

    def drain_failed_attempts(self) -> List[Dict[str, str]]:
        """Return and clear the accumulated failed-attempt records."""
        drained, self.failed_attempts = self.failed_attempts, []
        return drained

    @abstractmethod
    def run_jobs(
        self,
        jobs: Sequence[JobSpec],
        *,
        progress: Optional[ProgressCallback] = None,
        span_context=None,
    ) -> List[JobResult]:
        """Execute every job and return results in input order.

        ``progress`` (when given) is invoked in the calling process as
        each result lands, with the running completed count and the
        result — results still return in input order either way.
        ``span_context`` (a :class:`repro.observe.spans.SpanContext`) is
        propagated to every attempt so worker-recorded spans join the
        session's trace.
        """

    def close(self) -> None:
        """Release any held workers (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def _quarantine_result(
    job: JobSpec, attempts: int, error: BaseException
) -> JobResult:
    """The stand-in result for a poison job, with a parent-side flight dump."""
    from repro.observe.flight import dump_quarantine

    path = dump_quarantine(job, error, attempts)
    payload = Quarantined(
        fingerprint=job.fingerprint(),
        kind=job.kind,
        attempts=attempts,
        error_type=type(error).__name__,
        error_message=str(error),
        flight_dump=str(path) if path is not None else None,
    )
    return JobResult(
        fingerprint=payload.fingerprint,
        payload=payload,
        counters={},
        attempts=attempts,
    )


class SerialExecutor(Executor):
    """Runs every job inline in the calling process.

    Carries the same retry/quarantine supervision as the pool executor
    (minus worker kills and timeouts, which need a process boundary), so
    a campaign degraded to serial execution keeps its failure semantics.
    """

    name = "serial"

    def __init__(self, *, policy: Optional[RetryPolicy] = None) -> None:
        super().__init__()
        self.policy = policy or RetryPolicy()

    def _run_one(
        self,
        job: JobSpec,
        completed: Sequence[JobResult],
        span_context=None,
    ) -> JobResult:
        from repro.observe.spans import note_queue_wait

        policy = self.policy
        attempt = 0
        while True:
            attempt += 1
            submitted = time.monotonic()
            try:
                result = execute_job(
                    job, span_context=span_context, attempt=attempt
                )
                result.attempts = attempt
                note_queue_wait(result.spans, result.span_wall, submitted)
                return result
            except Exception as error:
                self._record_failed_attempt(job, attempt, error)
                if attempt < policy.max_attempts:
                    self.stats.retries += 1
                    time.sleep(policy.backoff_for(attempt))
                    continue
                if policy.quarantine:
                    self.stats.quarantined += 1
                    return _quarantine_result(job, attempt, error)
                raise JobFailedError(job, attempt, error, completed) from error

    def run_jobs(
        self,
        jobs: Sequence[JobSpec],
        *,
        progress: Optional[ProgressCallback] = None,
        span_context=None,
    ) -> List[JobResult]:
        results: List[JobResult] = []
        for job in jobs:
            result = self._run_one(job, results, span_context)
            results.append(result)
            if progress is not None:
                progress(len(results), result)
        return results


class ParallelExecutor(Executor):
    """Supervised sharding across a ``concurrent.futures`` process pool.

    The pool is created lazily on first use and reused across batches
    for the lifetime of the session, so repeated engine calls do not pay
    the fork cost again.  Worker results carry their telemetry counter
    increments home in :class:`JobResult.counters`; the session merges
    them into its registry.

    Supervision (per :class:`RetryPolicy`):

    * every attempt is a tracked future with an optional wall-clock
      deadline; a timed-out attempt is abandoned (its late result, and
      its late counters, are discarded) and the job retried;
    * a failed attempt retries after a deterministic backoff, up to
      ``max_attempts``, then is quarantined (default) or raises
      :class:`~repro.errors.JobFailedError` carrying the batch's
      completed results;
    * ``BrokenProcessPool`` respawns the pool and requeues every
      in-flight job — completed results are never lost, and a requeue
      consumes one attempt so a chaos-killed job reruns on a clean
      (never re-faulted) attempt number;
    * after ``max_pool_respawns`` pool rebuilds in one batch the
      executor degrades gracefully: the remaining jobs finish inline in
      the calling process (without chaos injection — a kill would take
      the session down) and the batch still completes.

    An optional :class:`ChaosPolicy` is shipped to workers with every
    attempt; see :mod:`repro.engine.resilience`.
    """

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        policy: Optional[RetryPolicy] = None,
        chaos: Optional[ChaosPolicy] = None,
    ) -> None:
        super().__init__()
        if workers is not None and workers < 1:
            raise ConfigurationError("workers must be at least 1")
        self.workers = workers or max(1, os.cpu_count() or 1)
        self.policy = policy or RetryPolicy()
        self.chaos = chaos
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _respawn_pool(self):
        """Replace a broken pool with a fresh one."""
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
        self.stats.respawns += 1
        return self._ensure_pool()

    def run_jobs(
        self,
        jobs: Sequence[JobSpec],
        *,
        progress: Optional[ProgressCallback] = None,
        span_context=None,
    ) -> List[JobResult]:
        from concurrent.futures import FIRST_COMPLETED, Future, wait
        from concurrent.futures.process import BrokenProcessPool

        from repro.observe.spans import note_queue_wait

        jobs = list(jobs)
        if not jobs:
            return []
        policy = self.policy
        pool = self._ensure_pool()

        results: List[Optional[JobResult]] = [None] * len(jobs)
        completed = 0
        attempts = [0] * len(jobs)
        queue = deque(range(len(jobs)))
        #: future -> (job index, wall-clock deadline or None, submit time)
        in_flight: Dict[Future, Tuple[int, Optional[float], float]] = {}
        #: timed-out futures whose (stale) results must be discarded.
        abandoned: Set[Future] = set()
        respawns_this_batch = 0
        degraded = False

        def completed_results() -> List[JobResult]:
            return [r for r in results if r is not None]

        def land(index: int, result: JobResult) -> None:
            nonlocal completed
            result.attempts = attempts[index]
            results[index] = result
            completed += 1
            if progress is not None:
                progress(completed, result)

        def fail_attempt(index: int, error: BaseException) -> None:
            """One attempt failed: back off and requeue, or give up."""
            self._record_failed_attempt(jobs[index], attempts[index], error)
            if attempts[index] < policy.max_attempts:
                self.stats.retries += 1
                time.sleep(policy.backoff_for(attempts[index]))
                queue.append(index)
                return
            if policy.quarantine:
                self.stats.quarantined += 1
                land(index, _quarantine_result(jobs[index], attempts[index], error))
                return
            raise JobFailedError(
                jobs[index], attempts[index], error, completed_results()
            ) from error

        def submit(index: int) -> None:
            nonlocal pool
            attempts[index] += 1
            task = SupervisedTask(
                job=jobs[index],
                attempt=attempts[index],
                chaos=self.chaos,
                span_context=span_context,
            )
            try:
                future = pool.submit(execute_supervised, task)
            except BrokenProcessPool:
                # The pool died between batches; rebuilding here is free
                # (no in-flight work to lose yet).
                pool = self._respawn_pool()
                future = pool.submit(execute_supervised, task)
            submitted = time.monotonic()
            deadline = (
                submitted + policy.timeout_s
                if policy.timeout_s is not None
                else None
            )
            in_flight[future] = (index, deadline, submitted)

        def recover_broken_pool(error: BaseException) -> None:
            """Respawn (or degrade) and requeue every in-flight job."""
            nonlocal pool, respawns_this_batch, degraded
            casualties = sorted(index for index, _, _ in in_flight.values())
            in_flight.clear()
            abandoned.clear()
            # A requeue keeps the attempt it consumed: the job that
            # killed the worker must not re-run on the same (possibly
            # chaos-faulted) attempt number, and innocent casualties
            # rerun identically regardless (same seed stream).
            self.stats.requeues += len(casualties)
            for index in casualties:
                if attempts[index] >= policy.max_attempts:
                    # The crash consumed the last attempt.
                    if policy.quarantine:
                        self.stats.quarantined += 1
                        land(
                            index,
                            _quarantine_result(jobs[index], attempts[index], error),
                        )
                    else:
                        raise JobFailedError(
                            jobs[index], attempts[index], error, completed_results()
                        ) from error
                else:
                    queue.appendleft(index)
            respawns_this_batch += 1
            if respawns_this_batch > policy.max_pool_respawns:
                degraded = True
            else:
                pool = self._respawn_pool()

        while completed < len(results) and not degraded:
            # Keep at most `workers` attempts in flight — counting
            # abandoned (timed-out but unpreemptable) attempts that
            # still occupy a worker — so a submitted attempt starts
            # (nearly) immediately and its deadline measures execution,
            # not queueing.
            capacity = self.workers - len(abandoned)
            if queue and capacity <= 0:
                # Every worker is wedged on a timed-out attempt; the
                # only way forward is a fresh pool (the old processes
                # are left to finish and die on their own).
                recover_broken_pool(
                    TimeoutError("every pool worker is stuck on a timed-out job")
                )
                continue
            try:
                while queue and len(in_flight) < capacity:
                    submit(queue.popleft())
            except BrokenProcessPool as error:
                recover_broken_pool(error)
                continue

            if self.on_inflight is not None:
                self.on_inflight(len(in_flight))
            if not in_flight:
                break
            now = time.monotonic()
            deadlines = [d for _, d, _ in in_flight.values() if d is not None]
            wait_s = (
                max(0.0, min(deadlines) - now) + 1e-3 if deadlines else None
            )
            done, _ = wait(
                set(in_flight) | abandoned,
                timeout=wait_s,
                return_when=FIRST_COMPLETED,
            )

            for future in done:
                if future in abandoned:
                    # A late arrival from a timed-out attempt: discard
                    # the result *and* its counters so nothing is
                    # double-merged.
                    abandoned.discard(future)
                    continue
                if future not in in_flight:
                    continue
                index, _deadline, submitted = in_flight.pop(future)
                try:
                    result = future.result()
                except BrokenProcessPool as error:
                    # counted as casualty
                    in_flight[future] = (index, _deadline, submitted)
                    recover_broken_pool(error)
                    break
                except Exception as error:
                    fail_attempt(index, error)
                else:
                    note_queue_wait(result.spans, result.span_wall, submitted)
                    land(index, result)

            # Expire attempts past their deadline (they cannot be
            # preempted: the future is abandoned, the job retried).
            now = time.monotonic()
            for future, (index, deadline, _submitted) in list(in_flight.items()):
                if deadline is None or now < deadline or future.done():
                    continue
                del in_flight[future]
                future.cancel()
                if not future.cancelled():
                    abandoned.add(future)
                self.stats.timeouts += 1
                fail_attempt(
                    index,
                    TimeoutError(
                        f"job attempt exceeded {policy.timeout_s:g}s timeout"
                    ),
                )

        if degraded:
            # The pool could not be kept alive; finish inline so the
            # batch still completes.  Chaos injection stays off in this
            # mode (an inline kill would take the session down), which
            # cannot change payloads — only chaos bookkeeping.
            inline = SerialExecutor(policy=policy)
            pending = sorted(set(queue) | {i for i, _, _ in in_flight.values()})
            queue.clear()
            in_flight.clear()
            for index in pending:
                self.stats.degraded += 1
                result = inline._run_one(
                    jobs[index], completed_results(), span_context
                )
                attempts[index] += result.attempts
                land(index, result)
            self.stats.retries += inline.stats.retries
            self.stats.quarantined += inline.stats.quarantined
            self.failed_attempts.extend(inline.drain_failed_attempts())

        if self.on_inflight is not None:
            self.on_inflight(0)

        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_executor(
    kind: str,
    *,
    workers: Optional[int] = None,
    policy: Optional[RetryPolicy] = None,
    chaos: Optional[ChaosPolicy] = None,
    url: Optional[str] = None,
) -> Executor:
    """Build an executor by kind name (``serial``/``process``/``remote``)."""
    kind = (kind or "serial").lower()
    if kind == "serial":
        return SerialExecutor(policy=policy)
    if kind == "process":
        return ParallelExecutor(workers, policy=policy, chaos=chaos)
    if kind == "remote":
        if not url:
            raise ConfigurationError(
                "the remote executor needs a coordinator URL "
                f"(--remote / {COORDINATOR_ENV})"
            )
        # Imported here: repro.serve depends on this module.
        from repro.serve.client import RemoteExecutor

        return RemoteExecutor(url, policy=policy, chaos=chaos)
    raise ConfigurationError(
        f"unknown executor {kind!r}; expected one of {EXECUTOR_KINDS}"
    )


def executor_from_env(*, workers: Optional[int] = None) -> Executor:
    """The executor selected by ``REPRO_EXECUTOR`` / ``REPRO_WORKERS``,
    supervised per ``REPRO_JOB_RETRIES`` / ``REPRO_JOB_TIMEOUT``."""
    kind = os.environ.get(EXECUTOR_ENV, "serial")
    if workers is None:
        raw = os.environ.get(WORKERS_ENV)
        if raw is not None:
            try:
                workers = int(raw)
            except ValueError as error:
                raise ConfigurationError(
                    f"{WORKERS_ENV} must be an integer, got {raw!r}"
                ) from error
    return make_executor(
        kind,
        workers=workers,
        policy=RetryPolicy.from_env(),
        url=os.environ.get(COORDINATOR_ENV),
    )
