"""Pluggable job executors: in-process serial and process-pool parallel.

Executors run batches of :class:`~repro.engine.jobs.JobSpec` and return
:class:`~repro.engine.jobs.JobResult` lists *in input order*.  Because
every job derives its randomness from a seed stream keyed by its own
identity, the two executors are interchangeable: sharding a sweep across
worker processes reproduces the serial output byte for byte, only
faster.  Selection is config-driven:

* ``REPRO_EXECUTOR`` — ``serial`` (default) or ``process``;
* ``REPRO_WORKERS`` — worker count for the process pool;
* the CLI's ``--executor`` / ``--workers`` flags override both.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Callable, List, Optional, Sequence

from repro.engine.jobs import JobResult, JobSpec, execute_job
from repro.errors import ConfigurationError

#: Environment variables steering executor selection.
EXECUTOR_ENV = "REPRO_EXECUTOR"
WORKERS_ENV = "REPRO_WORKERS"

#: Recognised executor kinds.
EXECUTOR_KINDS = ("serial", "process")


#: Per-job completion callback: ``progress(done_count, result)``.  Used
#: by the engine session to keep live progress gauges current while a
#: batch is in flight (``repro.observe`` serves them over ``/metrics``).
ProgressCallback = Callable[[int, JobResult], None]


class Executor(ABC):
    """Runs job batches; concrete classes choose where the work lands."""

    #: Kind tag used by config, CLI output and bench artifacts.
    name: str = "abstract"

    @abstractmethod
    def run_jobs(
        self,
        jobs: Sequence[JobSpec],
        *,
        progress: Optional[ProgressCallback] = None,
    ) -> List[JobResult]:
        """Execute every job and return results in input order.

        ``progress`` (when given) is invoked in the calling process as
        each result lands, with the running completed count and the
        result — results still return in input order either way.
        """

    def close(self) -> None:
        """Release any held workers (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class SerialExecutor(Executor):
    """Runs every job inline in the calling process."""

    name = "serial"

    def run_jobs(
        self,
        jobs: Sequence[JobSpec],
        *,
        progress: Optional[ProgressCallback] = None,
    ) -> List[JobResult]:
        results: List[JobResult] = []
        for job in jobs:
            result = execute_job(job)
            results.append(result)
            if progress is not None:
                progress(len(results), result)
        return results


class ParallelExecutor(Executor):
    """Shards jobs across a :class:`concurrent.futures.ProcessPoolExecutor`.

    The pool is created lazily on first use and reused across batches for
    the lifetime of the session, so repeated engine calls do not pay the
    fork cost again.  Worker results carry their telemetry counter
    increments home in :class:`JobResult.counters`; the session merges
    them into its registry.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError("workers must be at least 1")
        self.workers = workers or max(1, os.cpu_count() or 1)
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def run_jobs(
        self,
        jobs: Sequence[JobSpec],
        *,
        progress: Optional[ProgressCallback] = None,
    ) -> List[JobResult]:
        jobs = list(jobs)
        if not jobs:
            return []
        pool = self._ensure_pool()
        chunksize = max(1, len(jobs) // (self.workers * 4))
        # pool.map yields in input order as results complete, so the
        # progress callback fires incrementally without reordering.
        results: List[JobResult] = []
        for result in pool.map(execute_job, jobs, chunksize=chunksize):
            results.append(result)
            if progress is not None:
                progress(len(results), result)
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_executor(kind: str, *, workers: Optional[int] = None) -> Executor:
    """Build an executor by kind name (``serial`` or ``process``)."""
    kind = (kind or "serial").lower()
    if kind == "serial":
        return SerialExecutor()
    if kind == "process":
        return ParallelExecutor(workers)
    raise ConfigurationError(
        f"unknown executor {kind!r}; expected one of {EXECUTOR_KINDS}"
    )


def executor_from_env(*, workers: Optional[int] = None) -> Executor:
    """The executor selected by ``REPRO_EXECUTOR`` / ``REPRO_WORKERS``."""
    kind = os.environ.get(EXECUTOR_ENV, "serial")
    if workers is None:
        raw = os.environ.get(WORKERS_ENV)
        if raw is not None:
            try:
                workers = int(raw)
            except ValueError as error:
                raise ConfigurationError(
                    f"{WORKERS_ENV} must be an integer, got {raw!r}"
                ) from error
    return make_executor(kind, workers=workers)
