"""Frozen, hashable job specifications for the campaign engine.

A :class:`JobSpec` is a pure value: everything a worker process needs to
execute one unit of campaign work (a characterization row, an attack
cell, a SPEC overhead run) plus the identity that addresses its seed
stream and its cache slot.  Jobs are frozen dataclasses so they can be
hashed, pickled across the process-pool boundary, and fingerprinted into
a content hash that keys the persistent result cache.

``execute_job`` is the single worker entry point: it runs the job under a
fresh telemetry handle and returns the payload together with the job's
counter increments, which the session merges back into its registry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Optional, Tuple

from repro.core.characterization import (
    CharacterizationConfig,
    CharacterizationFramework,
    CharacterizationResult,
)
from repro.core.unsafe_states import CellResult, UnsafeStateSet
from repro.cpu.models import model_by_codename
from repro.engine.seeds import SeedStream, seed_stream
from repro.errors import ConfigurationError
from repro.telemetry import Telemetry

#: Bumped whenever job execution semantics change, so stale persistent
#: cache entries from older engine versions can never be replayed.
#: v2: result-affecting environment knobs folded into the identity.
JOB_SCHEMA_VERSION = 2

#: Environment knobs that can change job *outputs* and therefore belong
#: in every job fingerprint.  ``REPRO_VERIFY`` qualifies because an
#: installed invariant checker can abort a run mid-way (turning a payload
#: into a raised violation).  ``REPRO_EXECUTOR`` / ``REPRO_WORKERS`` are
#: deliberately absent: the engine's parity contract (tested by
#: ``benchmarks/test_bench_engine_campaign.py``) asserts they cannot
#: change results, so folding them in would only fragment the cache.
#: ``REPRO_BATCH`` is absent for the same reason — the vectorized row
#: evaluator is byte-identical to the scalar oracle (the identity suite
#: is the proof), so scalar and batch sweeps share cache entries.
RESULT_AFFECTING_ENV: Tuple[str, ...] = ("REPRO_VERIFY",)

#: Attack kinds :class:`AttackCampaignJob` can mount.
ATTACK_KINDS = ("imul", "plundervolt", "v0ltpwn", "voltjockey", "aes-dfa")


def environment_fingerprint() -> Dict[str, str]:
    """The result-affecting environment, canonicalized for hashing.

    Unset and empty are the same state (both mean "feature off"), so the
    cache is not fragmented by how the absence is spelled.
    """
    return {name: os.environ.get(name, "") for name in RESULT_AFFECTING_ENV}


def _canonical(value: Any) -> Any:
    """Reduce a field value to JSON-stable primitives."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: _canonical(v) for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    return value


@dataclass(frozen=True)
class JobSpec:
    """Base class for engine jobs: identity, fingerprint, execution."""

    #: Job family tag, part of the identity (subclasses override).
    kind: ClassVar[str] = "job"

    def identity(self) -> Dict[str, Any]:
        """The canonical identity dict the fingerprint is computed from."""
        payload: Dict[str, Any] = {
            "kind": self.kind,
            "schema": JOB_SCHEMA_VERSION,
            "env": environment_fingerprint(),
        }
        for field in dataclasses.fields(self):
            payload[field.name] = _canonical(getattr(self, field.name))
        return payload

    def fingerprint(self) -> str:
        """Content hash of the job identity — the cache key.

        Memoized per instance, keyed by the resolved result-affecting
        environment so an env change between calls still re-hashes.  The
        memo lives outside the dataclass fields (``object.__setattr__``
        on the frozen instance), so it never enters :meth:`identity`.
        """
        env = environment_fingerprint()
        memo = self.__dict__.get("_fingerprint_memo")
        if memo is not None and memo[0] == env:
            return memo[1]
        blob = json.dumps(self.identity(), sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()
        object.__setattr__(self, "_fingerprint_memo", (env, digest))
        return digest

    def seed_path(self) -> Tuple[str, ...]:
        """The named seed-stream path this job's randomness hangs off."""
        raise NotImplementedError

    def stream(self) -> SeedStream:
        """The job's seed stream (root seed comes from the job itself)."""
        return seed_stream(getattr(self, "seed"), *self.seed_path())

    def run(self, telemetry: Telemetry) -> Any:
        """Execute the job and return its payload (subclasses override)."""
        raise NotImplementedError


@dataclass(frozen=True)
class CharacterizationRowJob(JobSpec):
    """One frequency row of the Algo 2 sweep (Figs. 2-4)."""

    kind: ClassVar[str] = "characterization-row"

    codename: str
    frequency_ghz: float
    config: CharacterizationConfig
    seed: int

    def seed_path(self) -> Tuple[str, ...]:
        return (
            "characterization",
            self.codename,
            f"row@{int(round(self.frequency_ghz * 10))}",
        )

    def run(self, telemetry: Telemetry) -> List[CellResult]:
        framework = CharacterizationFramework(
            model_by_codename(self.codename), config=self.config, seed=self.seed
        )
        with telemetry.spans.phase(f"row@{self.frequency_ghz:g}GHz"):
            return framework.run_row(self.frequency_ghz, telemetry=telemetry)


@dataclass(frozen=True)
class BatchCharacterizationJob(JobSpec):
    """A chunk of Algo 2 rows evaluated on the vectorized fast path.

    The batch analogue of :class:`CharacterizationRowJob`: one job covers
    ``frequencies_ghz`` (a contiguous chunk of the sweep's frequency
    table) and evaluates each row with
    :meth:`CharacterizationFramework.run_row_batch`.  Row randomness
    still comes from the per-row named seed streams — keyed by (seed,
    system, row frequency) only — so the produced cells are byte-identical
    to the scalar row jobs' and independent of how rows are chunked into
    batch jobs.  The *fingerprint* is distinct from the row jobs' (kind
    and fields differ), which is what the cross-path cache tests pin.
    """

    kind: ClassVar[str] = "characterization-batch"

    codename: str
    frequencies_ghz: Tuple[float, ...]
    config: CharacterizationConfig
    seed: int

    def seed_path(self) -> Tuple[str, ...]:
        first = int(round(self.frequencies_ghz[0] * 10)) if self.frequencies_ghz else 0
        last = int(round(self.frequencies_ghz[-1] * 10)) if self.frequencies_ghz else 0
        return (
            "characterization",
            self.codename,
            f"batch@{first}-{last}",
        )

    def run(self, telemetry: Telemetry) -> List[List[CellResult]]:
        framework = CharacterizationFramework(
            model_by_codename(self.codename), config=self.config, seed=self.seed
        )
        rows: List[List[CellResult]] = []
        for frequency in self.frequencies_ghz:
            with telemetry.spans.phase(f"row@{frequency:g}GHz"):
                rows.append(framework.run_row_batch(frequency, telemetry=telemetry))
        return rows


@dataclass(frozen=True)
class CharacterizationJob(JobSpec):
    """A full per-model sweep; the unit the result cache stores."""

    kind: ClassVar[str] = "characterization"

    codename: str
    config: CharacterizationConfig
    seed: int

    def seed_path(self) -> Tuple[str, ...]:
        return ("characterization", self.codename)

    def row_jobs(self) -> List[CharacterizationRowJob]:
        """The sweep sharded into independent per-frequency row jobs."""
        model = model_by_codename(self.codename)
        return [
            CharacterizationRowJob(
                codename=self.codename,
                frequency_ghz=frequency,
                config=self.config,
                seed=self.seed,
            )
            for frequency in self.config.frequency_list(model)
        ]

    def batch_jobs(self, *, rows_per_job: int = 8) -> List[BatchCharacterizationJob]:
        """The sweep sharded into vectorized multi-row batch jobs.

        Chunking is a pure scheduling choice: per-row seed streams make
        the folded result independent of ``rows_per_job`` (and identical
        to :meth:`row_jobs`), so the knob only trades dispatch overhead
        against shard-level parallelism.
        """
        if rows_per_job <= 0:
            raise ConfigurationError("rows_per_job must be positive")
        model = model_by_codename(self.codename)
        frequencies = self.config.frequency_list(model)
        return [
            BatchCharacterizationJob(
                codename=self.codename,
                frequencies_ghz=tuple(frequencies[start : start + rows_per_job]),
                config=self.config,
                seed=self.seed,
            )
            for start in range(0, len(frequencies), rows_per_job)
        ]

    def fold(self, rows: List[List[CellResult]]) -> CharacterizationResult:
        """Merge executed rows (in frequency order) into one result."""
        framework = CharacterizationFramework(
            model_by_codename(self.codename), config=self.config, seed=self.seed
        )
        result = framework.empty_result()
        for cells in rows:
            framework.fold_row(result, cells)
        return result

    def run(self, telemetry: Telemetry) -> CharacterizationResult:
        return self.fold([job.run(telemetry) for job in self.row_jobs()])


@dataclass(frozen=True)
class AttackCampaignJob(JobSpec):
    """One (CPU, defense state, attack) cell of a prevention campaign.

    The job is self-contained: it builds a fresh machine (seeded from its
    own stream), optionally deploys the polling countermeasure from the
    serialized unsafe-state set, mounts the named attack and returns the
    :class:`~repro.attacks.base.AttackOutcome`.  Because the defense
    configuration travels inside the spec (``unsafe_json``), the
    fingerprint covers exactly what the outcome depends on.
    """

    kind: ClassVar[str] = "attack-campaign"

    codename: str
    attack: str
    protected: bool
    seed: int
    #: ``UnsafeStateSet.to_dict()`` as canonical JSON (required when
    #: ``protected`` — it is the deployed defense's whole configuration).
    unsafe_json: Optional[str] = None
    #: imul-campaign sweep points (ignored by the enclave attacks).
    offsets_mv: Optional[Tuple[int, ...]] = None
    frequency_ghz: Optional[float] = None
    iterations_per_point: int = 500_000
    max_signing_attempts: int = 40
    max_attempts: int = 20
    payload_ops: int = 500_000
    rsa_key_seed: int = 42
    aes_key_hex: str = "2b7e151628aed2a6abf7158809cf4f3c"
    #: VoltJockey cross-frequency parameters (ignored by the others).
    voltjockey_offset_mv: Optional[int] = None
    voltjockey_repetitions: int = 3

    def __post_init__(self) -> None:
        if self.attack not in ATTACK_KINDS:
            raise ConfigurationError(
                f"unknown attack {self.attack!r}; expected one of {ATTACK_KINDS}"
            )
        if self.protected and self.unsafe_json is None:
            raise ConfigurationError(
                "protected campaign jobs must carry the characterized "
                "unsafe-state set (unsafe_json)"
            )

    def seed_path(self) -> Tuple[str, ...]:
        return (
            "campaign",
            self.codename,
            self.attack,
            "protected" if self.protected else "open",
        )

    def build_machine(self, telemetry: Optional[Telemetry] = None):
        """The victim machine (plus module when protected) for this cell."""
        from repro.core.polling_module import PollingCountermeasure
        from repro.testbench import Machine

        model = model_by_codename(self.codename)
        machine = Machine.build(
            model, seed=self.stream().child("machine").integer(), telemetry=telemetry
        )
        module = None
        if self.protected:
            unsafe = UnsafeStateSet.from_dict(json.loads(self.unsafe_json))
            module = PollingCountermeasure(machine, unsafe)
            machine.modules.insmod(module)
        return machine, module

    def run(self, telemetry: Telemetry) -> Any:
        from repro.attacks import (
            AESDFAAttack,
            AESDFAConfig,
            ImulCampaign,
            PlundervoltAttack,
            PlundervoltConfig,
            RSACRTSigner,
            RSAKey,
            V0ltpwnAttack,
            V0ltpwnConfig,
            VectorChecksumPayload,
            VoltJockeyAttack,
            VoltJockeyConfig,
        )
        from repro.sgx import EnclaveHost

        with telemetry.spans.phase("build-machine") as build_phase:
            machine, _module = self.build_machine(telemetry)
            build_phase.end_sim = machine.now
        model = machine.model
        base = (
            self.frequency_ghz
            if self.frequency_ghz is not None
            else model.frequency_table.base_ghz
        )
        if self.attack == "imul":
            offsets = (
                self.offsets_mv
                if self.offsets_mv is not None
                else tuple(range(-60, -301, -10))
            )
            attack = ImulCampaign(
                machine,
                frequency_ghz=base,
                offsets_mv=offsets,
                iterations_per_point=self.iterations_per_point,
            )
        elif self.attack == "plundervolt":
            host = EnclaveHost(machine)
            attack = PlundervoltAttack(
                machine,
                host.create_enclave("rsa"),
                RSACRTSigner(RSAKey.generate(512, seed=self.rsa_key_seed)),
                message=0xDEADBEEF,
                config=PlundervoltConfig(
                    frequency_ghz=base, max_signing_attempts=self.max_signing_attempts
                ),
            )
        elif self.attack == "v0ltpwn":
            host = EnclaveHost(machine)
            attack = V0ltpwnAttack(
                machine,
                host.create_enclave("vec"),
                VectorChecksumPayload(ops=self.payload_ops),
                V0ltpwnConfig(frequency_ghz=base, max_attempts=self.max_attempts),
            )
        elif self.attack == "aes-dfa":
            attack = AESDFAAttack(
                machine,
                bytes.fromhex(self.aes_key_hex),
                AESDFAConfig(frequency_ghz=base),
            )
        else:  # voltjockey
            table = model.frequency_table
            attack = VoltJockeyAttack(
                machine,
                VoltJockeyConfig(
                    table.min_ghz,
                    table.max_ghz,
                    offset_mv=self.voltjockey_offset_mv or -200,
                    repetitions=self.voltjockey_repetitions,
                ),
            )
        with telemetry.spans.phase("mount", sim_start_s=machine.now) as mount_phase:
            outcome = attack.mount()
            mount_phase.end_sim = machine.now
        return outcome


@dataclass(frozen=True)
class OverheadJob(JobSpec):
    """One Table 2 SPEC overhead measurement on a protected machine."""

    kind: ClassVar[str] = "spec-overhead"

    codename: str
    seed: int
    unsafe_json: str
    interval_s: float = 0.05

    def seed_path(self) -> Tuple[str, ...]:
        return ("overhead", self.codename)

    def run(self, telemetry: Telemetry) -> Any:
        from repro.bench.runner import SpecOverheadRunner
        from repro.core.polling_module import PollingCountermeasure
        from repro.testbench import Machine

        model = model_by_codename(self.codename)
        stream = self.stream()
        with telemetry.spans.phase("build-machine") as build_phase:
            machine = Machine.build(
                model, seed=stream.child("machine").integer(), telemetry=telemetry
            )
            unsafe = UnsafeStateSet.from_dict(json.loads(self.unsafe_json))
            module = PollingCountermeasure(machine, unsafe)
            machine.modules.insmod(module)
            build_phase.end_sim = machine.now
        runner = SpecOverheadRunner(
            machine,
            module,
            interval_s=self.interval_s,
            seed=stream.child("noise").integer(),
        )
        with telemetry.spans.phase("measure", sim_start_s=machine.now) as measure_phase:
            report = runner.run()
            measure_phase.end_sim = machine.now
        return report


@dataclass(frozen=True)
class FuzzJob(JobSpec):
    """One adversarial-schedule fuzz case run under the invariant checker.

    The schedule itself is *not* stored: it regenerates deterministically
    from the job's seed stream (``fuzz/<codename>/case@<index>``), so the
    spec stays tiny, the fingerprint still covers the whole case, and a
    violating case can be re-materialized for shrinking from nothing but
    this spec.
    """

    kind: ClassVar[str] = "fuzz"

    codename: str
    seed: int
    case_index: int
    num_actions: int = 12
    #: Optional characterized unsafe set (canonical JSON) enabling the
    #: module load/unload race actions; ``None`` records them as no-ops.
    unsafe_json: Optional[str] = None

    def seed_path(self) -> Tuple[str, ...]:
        return ("fuzz", self.codename, f"case@{self.case_index}")

    def schedule(self):
        """The deterministic :class:`repro.verify.FuzzSchedule` this runs."""
        from repro.verify.fuzz import schedule_for_job

        return schedule_for_job(self)

    def run(self, telemetry: Telemetry) -> Dict[str, Any]:
        from repro.verify.fuzz import run_schedule

        return run_schedule(self.schedule(), telemetry=telemetry)


@dataclass(frozen=True)
class ExplorePointJob(JobSpec):
    """A shard of explore operating points probed on live machines.

    Each point gets a *fresh* machine seeded from its own named stream
    (keyed by codename, frequency and offset only), so the probed record
    is independent of how points are chunked into jobs and of which
    executor runs the shard — the same byte-identity contract the
    characterization shards honour.  The probe writes the attacker's
    (frequency, offset) through the public interfaces, waits out the
    regulator (and, when protected, several countermeasure poll
    periods), then classifies the *realized* conditions with the scalar
    fault model — no instruction windows run, so a predicted-crash point
    cannot take the worker down.
    """

    kind: ClassVar[str] = "explore-point"

    codename: str
    points: Tuple[Tuple[float, int], ...]
    protect: bool
    seed: int
    #: ``UnsafeStateSet.to_dict()`` as canonical JSON (required when
    #: ``protect`` — the deployed defense's whole configuration).
    unsafe_json: Optional[str] = None
    instructions: Tuple[str, ...] = ("imul",)

    def __post_init__(self) -> None:
        if self.protect and self.unsafe_json is None:
            raise ConfigurationError(
                "protected explore-point jobs must carry the characterized "
                "unsafe-state set (unsafe_json)"
            )

    def seed_path(self) -> Tuple[str, ...]:
        first = self.points[0] if self.points else (0.0, 0)
        return (
            "explore",
            self.codename,
            "protected" if self.protect else "open",
            f"points@{first[0]:.6f}/{first[1]}",
        )

    def _point_seed(self, frequency_ghz: float, offset_mv: int) -> int:
        """Per-point machine seed, independent of the job's chunking."""
        return (
            seed_stream(
                self.seed,
                "explore",
                self.codename,
                f"point@{frequency_ghz:.6f}/{offset_mv}",
            )
            .child("machine")
            .integer()
        )

    def probe_point(
        self, frequency_ghz: float, offset_mv: int, telemetry: Telemetry
    ) -> Dict[str, Any]:
        """Probe one operating point on a fresh (optionally defended) machine."""
        from repro.core.polling_module import PollingCountermeasure
        from repro.faults.margin import FaultModel
        from repro.testbench import Machine

        model = model_by_codename(self.codename)
        with telemetry.spans.phase(
            f"point@{frequency_ghz:.6f}/{offset_mv}"
        ) as point_phase:
            machine = Machine.build(
                model,
                seed=self._point_seed(frequency_ghz, offset_mv),
                telemetry=telemetry,
            )
            settle = model.regulator_latency_s * 1.2
            if self.protect:
                unsafe = UnsafeStateSet.from_dict(json.loads(self.unsafe_json))
                module = PollingCountermeasure(machine, unsafe)
                machine.modules.insmod(module)
                settle += 4.0 * module.period_s
            machine.cpupower.frequency_set(frequency_ghz, core_index=0)
            machine.write_voltage_offset(offset_mv, 0)
            machine.advance(settle)
            point_phase.end_sim = machine.now
        realized = machine.conditions(0)
        fault_model = FaultModel(model)
        probabilities = {
            instruction: fault_model.fault_probability(
                realized.frequency_ghz,
                realized.voltage_volts,
                instruction=instruction,
            )
            for instruction in self.instructions
        }
        crash = fault_model.is_crash(
            realized.frequency_ghz, realized.voltage_volts
        )
        if crash:
            status = "crash"
        elif any(probability > 0.0 for probability in probabilities.values()):
            status = "feasible"
        else:
            status = "safe"
        return {
            "frequency_ghz": frequency_ghz,
            "offset_mv": offset_mv,
            "status": status,
            "realized_frequency_ghz": realized.frequency_ghz,
            "realized_offset_mv": realized.offset_mv,
            "realized_voltage_volts": realized.voltage_volts,
            "fault_probability": {
                name: probabilities[name] for name in sorted(probabilities)
            },
        }

    def run(self, telemetry: Telemetry) -> List[Dict[str, Any]]:
        return [
            self.probe_point(frequency, offset, telemetry)
            for frequency, offset in self.points
        ]


@dataclass(frozen=True)
class ExploreInjectionJob(JobSpec):
    """A shard of single-fault replays of the RSA-CRT victim.

    Pure arithmetic: the key and golden signature regenerate
    deterministically from the spec (the FuzzJob pattern — the spec
    stays tiny, the fingerprint still covers the whole replay), each
    (op_index, model) representative replays the signature with exactly
    that operation corrupted, and the verdict is one of ``masked`` (the
    signature survived), ``exploitable`` (Bellcore factoring recovered
    the key's primes) or ``corrupted`` (wrong but unexploitable).
    """

    kind: ClassVar[str] = "explore-injection"

    key_bits: int
    key_seed: int
    message: int
    #: (op_index, fault_model) representatives to replay.
    reps: Tuple[Tuple[int, str], ...]
    seed: int = 0

    def seed_path(self) -> Tuple[str, ...]:
        first = self.reps[0] if self.reps else (0, "-")
        return ("explore", "inject", f"reps@{first[0]}/{first[1]}")

    def run(self, telemetry: Telemetry) -> List[Dict[str, Any]]:
        from repro.attacks.rsa_crt import RSAKey, bellcore_extract
        from repro.explore.faultspace import corruptor
        from repro.explore.victim import replay_with_fault, trace_victim

        key = RSAKey.generate(self.key_bits, seed=self.key_seed)
        trace = trace_victim(key, self.message)
        verdicts: List[Dict[str, Any]] = []
        for op_index, model in self.reps:
            signature = replay_with_fault(
                key, self.message, op_index, corruptor(model)
            )
            if signature == trace.golden_signature:
                verdict = "masked"
            else:
                result = bellcore_extract(key.n, key.e, self.message, signature)
                if result is not None and result.factors() == tuple(
                    sorted((key.p, key.q))
                ):
                    verdict = "exploitable"
                else:
                    verdict = "corrupted"
            verdicts.append(
                {"op_index": op_index, "model": model, "verdict": verdict}
            )
        return verdicts


@dataclass
class JobResult:
    """What one executed job hands back to the session."""

    fingerprint: str
    payload: Any
    #: Counter increments observed while the job ran, merged into the
    #: session registry (this is how per-worker telemetry survives the
    #: process boundary).
    counters: Dict[str, int]
    #: Which attempt produced this result (1 = first try).  Retried
    #: attempts replay the job's exact seed stream, so the payload is
    #: independent of this number — it exists for supervision
    #: bookkeeping and run reports only, and is therefore deliberately
    #: *not* part of any fingerprint.
    attempts: int = 1
    #: Histogram snapshots (:meth:`repro.telemetry.registry.Histogram.marshal`)
    #: and gauge values observed while the job ran — the rest of the
    #: worker telemetry, marshalled home alongside the counters so
    #: percentile columns survive the process boundary.
    histograms: Dict[str, Dict[str, Any]] = dataclasses.field(default_factory=dict)
    gauges: Dict[str, float] = dataclasses.field(default_factory=dict)
    #: Deterministic span records for this attempt (job span + phases;
    #: see :mod:`repro.observe.spans`) and their wall-clock sidecar,
    #: kept strictly apart so the session's merged timeline stays
    #: byte-identical across executors.
    spans: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    span_wall: Dict[str, Dict[str, Any]] = dataclasses.field(default_factory=dict)


def execute_job(job: JobSpec, *, span_context=None, attempt: int = 1) -> JobResult:
    """Worker entry point: run one job under fresh telemetry.

    Top-level by design so :class:`concurrent.futures.ProcessPoolExecutor`
    can pickle it by reference; the job spec itself travels by value.
    ``span_context`` is the session's propagated trace position
    (:class:`repro.observe.spans.SpanContext`); with spans enabled the
    attempt runs under a fresh :class:`~repro.observe.spans.SpanRecorder`
    whose buffers ride home in the result.

    An exception escaping the job (including an invariant violation) is
    re-raised unchanged, but first the job's trace tail is frozen into a
    flight-recorder dump when ``REPRO_FLIGHT_DIR`` selects a directory —
    in a process-pool worker the traceback alone crosses the boundary,
    the dump preserves the scene.
    """
    from repro.observe.spans import NULL_SPANS, SpanRecorder, spans_enabled

    telemetry = Telemetry()
    recorder = None
    if spans_enabled():
        recorder = SpanRecorder()
        recorder.begin_job(
            fingerprint=job.fingerprint(),
            kind=job.kind,
            attempt=attempt,
            context=span_context,
        )
        telemetry._spans = recorder
    else:
        telemetry._spans = NULL_SPANS
    try:
        payload = job.run(telemetry)
    except Exception as error:
        from repro.observe.flight import dump_job_failure

        dump_job_failure(job, telemetry, error)
        raise
    counters = {
        counter.name: int(counter.value)
        for counter in telemetry.registry.counters()
        if counter.value
    }
    histograms = {
        histogram.name: histogram.marshal()
        for histogram in telemetry.registry.histograms()
        if histogram.count
    }
    gauges = {gauge.name: gauge.value for gauge in telemetry.registry.gauges()}
    spans: List[Dict[str, Any]] = []
    span_wall: Dict[str, Dict[str, Any]] = {}
    if recorder is not None:
        recorder.finish_job()
        spans, span_wall = recorder.export()
    return JobResult(
        fingerprint=job.fingerprint(),
        payload=payload,
        counters=counters,
        histograms=histograms,
        gauges=gauges,
        spans=spans,
        span_wall=span_wall,
    )
