"""Campaign checkpointing: persist completed results, resume, converge.

A :class:`CampaignCheckpoint` is a directory the engine session writes
every completed :class:`~repro.engine.jobs.JobResult` into *as it
lands* (via the executor's per-job progress callback), so a campaign
killed at any instant — SIGKILL included — can be resumed with
``repro campaign --resume <dir>`` and only re-executes the jobs that
had not finished.  Because every job's payload depends only on its own
fingerprint-addressed seed stream, a resumed campaign *provably
converges* to the uninterrupted run: served-from-checkpoint payloads
are byte-identical to freshly computed ones.

Layout::

    <dir>/checkpoint.json     # metadata: schema, counts, quarantine list
    <dir>/entries/<fp>.pkl    # one integrity-checked payload per job

Entry files reuse :class:`~repro.engine.cache.ResultCache`'s disk
format (magic + sha256 + pickle) and its torn-write quarantine: a
payload half-written at kill time is detected, set aside as
``.corrupt`` and simply recomputed on resume.  Both the entry publish
and the metadata flush are atomic (write-temp + rename), so there is no
instant at which a crash can corrupt the checkpoint itself.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.engine.cache import ResultCache
from repro.engine.jobs import JobResult
from repro.errors import ObserveError

#: Metadata schema tag; stale checkpoints fail loudly instead of
#: resuming wrongly.
CHECKPOINT_SCHEMA_VERSION = 1

#: Metadata discriminator.
CHECKPOINT_KIND = "campaign-checkpoint"

#: Metadata file name inside the checkpoint directory.
MANIFEST_NAME = "checkpoint.json"

_MISS = object()


class CampaignCheckpoint:
    """One resumable campaign's persisted progress."""

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        flush_every: int = 1,
        max_memory_entries: int = 16,
    ) -> None:
        self.directory = Path(directory)
        self.flush_every = max(1, int(flush_every))
        # The entry store *is* a disk ResultCache: integrity format,
        # atomic publish and corruption quarantine come for free.  The
        # memory layer is kept small — checkpoint reads mostly happen
        # once, at resume.
        self._store = ResultCache(
            max_entries=max_memory_entries, directory=self.directory / "entries"
        )
        self._recorded_since_flush = 0
        #: Quarantine records carried across resumes (run-report fodder).
        self.quarantined: List[Dict[str, Any]] = []
        self._completed = 0
        self._load_manifest()

    # -- metadata ----------------------------------------------------------------

    def _manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def _load_manifest(self) -> None:
        path = self._manifest_path()
        if not path.exists():
            return
        try:
            manifest = json.loads(path.read_text())
        except (OSError, ValueError) as error:
            raise ObserveError(
                f"unreadable campaign checkpoint manifest at {path}"
            ) from error
        if not isinstance(manifest, dict) or manifest.get("kind") != CHECKPOINT_KIND:
            raise ObserveError(f"{path} is not a campaign checkpoint manifest")
        if manifest.get("schema") != CHECKPOINT_SCHEMA_VERSION:
            raise ObserveError(
                f"campaign checkpoint schema {manifest.get('schema')!r} != "
                f"{CHECKPOINT_SCHEMA_VERSION}"
            )
        self.quarantined = list(manifest.get("quarantined", []))

    def flush(self) -> Path:
        """Atomically publish the metadata file; returns its path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest = {
            "kind": CHECKPOINT_KIND,
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "completed": self.completed_count(),
            "quarantined": self.quarantined,
        }
        path = self._manifest_path()
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(manifest, sort_keys=True, indent=2) + "\n")
        tmp.replace(path)
        self._recorded_since_flush = 0
        return path

    # -- recording ---------------------------------------------------------------

    def record(self, result: JobResult) -> None:
        """Persist one completed result (called as each job lands).

        The entry publish itself is atomic and immediate — a kill right
        after this call loses nothing; the metadata flush is merely
        batched (``flush_every``) because correctness never depends on
        it (resume trusts the integrity-checked entry files, not the
        manifest's counters).
        """
        self._store.put(result.fingerprint, result.payload)
        self._completed += 1
        self._recorded_since_flush += 1
        if self._recorded_since_flush >= self.flush_every:
            self.flush()

    def record_quarantine(self, info: Dict[str, Any]) -> None:
        """Persist one quarantine record (poison jobs re-run on resume)."""
        self.quarantined.append(dict(info))
        self.flush()

    # -- resume ------------------------------------------------------------------

    def get(self, fingerprint: str, default: Any = None) -> Any:
        """The checkpointed payload for a job, or ``default``.

        A torn entry (killed mid-write before the atomic rename, or
        corrupted on disk afterwards) fails integrity verification, is
        quarantined and reads as absent — the session then simply
        re-executes that job.
        """
        value = self._store.get(fingerprint, default=_MISS)
        return default if value is _MISS else value

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._store

    def completed_count(self) -> int:
        """How many distinct results the entry store currently holds."""
        entries = self._store.directory
        if entries is None or not Path(entries).exists():
            return 0
        return sum(1 for _ in Path(entries).glob("*.pkl"))

    def describe(self) -> Dict[str, Any]:
        """JSON-safe summary for CLI output and run manifests."""
        return {
            "directory": str(self.directory),
            "completed": self.completed_count(),
            "quarantined": len(self.quarantined),
        }
