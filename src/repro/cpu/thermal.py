"""First-order thermal model: power -> die temperature -> timing.

Closes the physical loop between :mod:`repro.cpu.power` and the
temperature-aware timing model: dissipated power heats the die through a
thermal resistance, and the die temperature relaxes exponentially toward
the steady state with one RC time constant,

    T_ss(P)  = T_ambient + P * R_th
    T(t)     = T_ss + (T(t0) - T_ss) * exp(-(t - t0) / tau)

The model is *time-driven* like the voltage regulator: callers notify it
of operating-point changes and query the temperature at arbitrary times.
It is an analysis tool — experiments use it to drive
:meth:`~repro.faults.margin.FaultModel.set_temperature` and study how a
sustained workload's self-heating moves the fault boundary (see the
thermal-drift benchmark).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.cpu.models import CPUModel
from repro.cpu.power import CorePowerModel


@dataclass
class ThermalParameters:
    """RC constants of the die/heatsink stack."""

    #: Ambient (idle) die temperature.
    ambient_c: float = 40.0
    #: Junction-to-ambient thermal resistance, Kelvin per Watt.
    r_th_k_per_w: float = 6.0
    #: Thermal time constant, seconds (small mobile package).
    tau_s: float = 4.0
    #: Throttle trip point (PROCHOT); queries report at most this value.
    t_junction_max_c: float = 100.0

    def __post_init__(self) -> None:
        if self.r_th_k_per_w <= 0 or self.tau_s <= 0:
            raise ConfigurationError("thermal resistance and tau must be positive")
        if self.t_junction_max_c <= self.ambient_c:
            raise ConfigurationError("Tj,max must exceed the ambient temperature")


@dataclass
class ThermalModel:
    """Per-core die temperature driven by the power model."""

    model: CPUModel
    parameters: ThermalParameters = field(default_factory=ThermalParameters)
    _power: CorePowerModel = field(init=False, repr=False)
    _anchor_time_s: float = 0.0
    _anchor_temp_c: float = field(init=False)
    _steady_state_c: float = field(init=False)

    def __post_init__(self) -> None:
        self._power = CorePowerModel(self.model)
        self._anchor_temp_c = self.parameters.ambient_c
        self._steady_state_c = self.parameters.ambient_c

    def steady_state_c(self, frequency_ghz: float, offset_mv: float) -> float:
        """Equilibrium die temperature at an operating point."""
        watts = self._power.power_at_offset_w(frequency_ghz, offset_mv)
        return min(
            self.parameters.ambient_c + watts * self.parameters.r_th_k_per_w,
            self.parameters.t_junction_max_c,
        )

    def set_operating_point(
        self, frequency_ghz: float, offset_mv: float, now: float
    ) -> None:
        """Record an operating-point change; the RC curve re-anchors."""
        self._anchor_temp_c = self.temperature_c(now)
        self._anchor_time_s = now
        self._steady_state_c = self.steady_state_c(frequency_ghz, offset_mv)

    def idle(self, now: float) -> None:
        """Drop to idle dissipation (relax toward ambient)."""
        self._anchor_temp_c = self.temperature_c(now)
        self._anchor_time_s = now
        self._steady_state_c = self.parameters.ambient_c

    def temperature_c(self, now: float) -> float:
        """Die temperature at time ``now``."""
        if now < self._anchor_time_s:
            raise ConfigurationError("thermal queries cannot go backwards in time")
        elapsed = now - self._anchor_time_s
        decay = math.exp(-elapsed / self.parameters.tau_s)
        temperature = self._steady_state_c + (self._anchor_temp_c - self._steady_state_c) * decay
        return min(temperature, self.parameters.t_junction_max_c)

    def time_to_reach_c(self, target_c: float, now: float) -> float:
        """Seconds until the die first reaches ``target_c`` (inf if never)."""
        current = self.temperature_c(now)
        target_gap = self._steady_state_c - target_c
        current_gap = self._steady_state_c - current
        if current_gap == 0.0 or (target_c - current) * (self._steady_state_c - current) <= 0:
            return 0.0 if current >= target_c else math.inf
        ratio = target_gap / current_gap
        if ratio <= 0:
            return math.inf
        return -self.parameters.tau_s * math.log(ratio)
