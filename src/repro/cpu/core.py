"""A single simulated CPU core.

Combines the P-state machine, the per-core voltage regulator and the
factory V/f curve into the quantity everything else cares about: the
core's *effective operating conditions* — (frequency, voltage) — at a
point in simulated time.

Note on voltage-plane scope: on real client parts the core voltage plane
is package-wide; the paper's polling module nevertheless inspects "each
CPU core" (Algo 3, line 3).  We model the regulator per core, which is
strictly more general (a package-wide plane is the special case where the
attacker writes every core the same offset) and keeps the per-core polling
loop meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cpu.models import CPUModel
from repro.cpu.ocm import VoltagePlane
from repro.cpu.pstates import PStateMachine
from repro.cpu.vf_curve import VFCurve
from repro.cpu.voltage_regulator import VoltageRegulator
from repro.faults.margin import OperatingConditions
from repro.telemetry import Telemetry


@dataclass
class Core:
    """One core of a :class:`~repro.cpu.processor.SimulatedProcessor`."""

    index: int
    model: CPUModel
    vf_curve: VFCurve
    telemetry: Optional[Telemetry] = None
    pstate: PStateMachine = field(init=False)
    regulator: VoltageRegulator = field(init=False)

    def __post_init__(self) -> None:
        self.pstate = PStateMachine(self.model.frequency_table)
        tracer = self.telemetry.tracer if self.telemetry is not None else None
        self.regulator = VoltageRegulator(
            latency_s=self.model.regulator_latency_s,
            raise_latency_s=self.model.regulator_raise_latency_s,
            tracer=tracer,
            track=f"core{self.index}",
        )

    @property
    def frequency_ghz(self) -> float:
        """Current P-state frequency."""
        return self.pstate.frequency_ghz

    @property
    def ratio(self) -> int:
        """Current P-state ratio."""
        return self.pstate.ratio

    def set_frequency(self, frequency_ghz: float, now: float = 0.0) -> None:
        """Switch P-state (validated against the frequency table)."""
        self.pstate.set_frequency(frequency_ghz, now)

    def request_offset(self, plane: VoltagePlane, offset_mv: float, now: float) -> float:
        """Forward an OCM offset request to the regulator."""
        return self.regulator.request_offset(plane, offset_mv, now)

    def target_offset_mv(self, plane: VoltagePlane = VoltagePlane.CORE) -> float:
        """Last requested offset on a plane (what 0x150 reads back)."""
        return self.regulator.target_offset_mv(plane)

    def applied_offset_mv(self, now: float, plane: VoltagePlane = VoltagePlane.CORE) -> float:
        """Electrically effective offset at time ``now``."""
        return self.regulator.applied_offset_mv(plane, now)

    def effective_voltage(self, now: float) -> float:
        """Core supply voltage (V): factory base + applied core offset."""
        return self.vf_curve.effective_voltage(
            self.frequency_ghz, self.applied_offset_mv(now)
        )

    def conditions(self, now: float) -> OperatingConditions:
        """Snapshot the core's electrical operating point."""
        return OperatingConditions(
            frequency_ghz=self.frequency_ghz,
            voltage_volts=self.effective_voltage(now),
            offset_mv=self.applied_offset_mv(now),
        )

    def reset(self) -> None:
        """Reboot-time reset: base P-state, zero offsets."""
        self.pstate.reset()
        self.regulator.reset()
