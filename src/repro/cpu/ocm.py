"""Overclocking-mailbox (MSR 0x150) bit-level semantics.

Table 1 of the paper (matching the Plundervolt reverse engineering):

===========  =============  ======================================
Bits         Function       Explanation
===========  =============  ======================================
0 - 20       (reserved)
21 - 31      offset         voltage offset, two's complement,
                            units of 1/1024 V (~1 mV)
32           write-enable   part of the command byte
33 - 39      (reserved)     remainder of the command byte
40 - 42      plane select   0 = core, 1 = GPU, 2 = cache,
                            3 = uncore, 4 = analog I/O
43 - 62      (reserved)
63           fixed          must be 1 for the command to be accepted
===========  =============  ======================================

Commands: byte ``0x11`` in bits [39:32] writes the offset for the selected
plane; byte ``0x10`` requests a read — a subsequent ``rdmsr`` of 0x150
then returns the plane's current offset in bits [31:21].
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import InvalidPlaneError, InvalidVoltageOffsetError, OCMProtocolError

_MASK64 = (1 << 64) - 1

#: Bit positions / masks for the 0x150 fields.
OFFSET_SHIFT = 21
OFFSET_FIELD_MASK = 0xFFE00000  # bits 31:21
COMMAND_SHIFT = 32
COMMAND_MASK = 0xFF
PLANE_SHIFT = 40
PLANE_MASK = 0x7
BUSY_BIT = 1 << 63

#: Command bytes observed by the Plundervolt reverse engineering.
COMMAND_WRITE = 0x11
COMMAND_READ = 0x10

#: ``0x8000001100000000`` — the constant from Algo 1, line 4: busy bit set
#: plus the write command byte.
WRITE_COMMAND_BASE = BUSY_BIT | (COMMAND_WRITE << COMMAND_SHIFT)

#: Read-request base: busy bit plus the read command byte.
READ_COMMAND_BASE = BUSY_BIT | (COMMAND_READ << COMMAND_SHIFT)

#: Voltage-offset resolution: units of 1/1024 V.
UNITS_PER_VOLT = 1024

#: Encodable offset range for the 11-bit two's-complement field, in units.
MIN_OFFSET_UNITS = -(1 << 10)
MAX_OFFSET_UNITS = (1 << 10) - 1


class VoltagePlane(enum.IntEnum):
    """Voltage domains selectable through bits [42:40] (Table 1)."""

    CORE = 0
    GPU = 1
    CACHE = 2
    UNCORE = 3
    ANALOG_IO = 4


def mv_to_units(offset_mv: float) -> int:
    """Convert a millivolt offset to mailbox units (1/1024 V).

    Algo 1, line 2 computes ``offset * 1024 / 1000`` with integer
    truncation; we follow the same convention so encoded values match the
    paper bit for bit.
    """
    return int(offset_mv * UNITS_PER_VOLT / 1000)


def units_to_mv(units: int) -> float:
    """Convert mailbox units back to millivolts."""
    return units * 1000.0 / UNITS_PER_VOLT


def validate_offset_units(units: int) -> int:
    """Reject unit counts that do not fit the signed 11-bit field.

    The Algo 1 literal ``(val & 0xFFF) << 21`` would otherwise silently
    truncate 12-bit inputs into bits [31:21]: ``0x400`` (+1024) masks to
    the same field bits as ``-0x400`` (-1024), turning a requested
    *overvolt* into a 1 V *undervolt*.  Every encode path funnels through
    this check so out-of-range offsets fail loudly instead.

    Raises
    ------
    InvalidVoltageOffsetError
        If ``units`` lies outside ``[-0x400, +0x3FF]``.
    """
    if not MIN_OFFSET_UNITS <= units <= MAX_OFFSET_UNITS:
        raise InvalidVoltageOffsetError(
            f"offset {units} units ({units_to_mv(units):+.1f} mV) outside "
            f"[{MIN_OFFSET_UNITS}, {MAX_OFFSET_UNITS}] "
            f"({units_to_mv(MIN_OFFSET_UNITS):+.1f} mV to "
            f"{units_to_mv(MAX_OFFSET_UNITS):+.1f} mV)"
        )
    return units


def encode_offset_field(units: int) -> int:
    """Place a two's-complement unit count into bits [31:21].

    Raises
    ------
    InvalidVoltageOffsetError
        If the value does not fit the signed 11-bit field.
    """
    validate_offset_units(units)
    return ((units & 0x7FF) << OFFSET_SHIFT) & OFFSET_FIELD_MASK


def decode_offset_field(value: int) -> int:
    """Extract the signed unit count from bits [31:21] of a 0x150 value."""
    raw = (value >> OFFSET_SHIFT) & 0x7FF
    if raw & 0x400:  # sign bit of the 11-bit field
        raw -= 0x800
    return raw


def encode_write(offset_mv: float, plane: int) -> int:
    """Algorithm 1 of the paper: build the 64-bit write command.

    ``set val <- (offset*1024/1000)``
    ``set val <- 0xFFE00000 and ((val and 0xFFF) left-shift 21)``
    ``set val <- val or 0x8000001100000000``
    ``set val <- val or (plane left-shift 40)``
    """
    if not 0 <= plane <= PLANE_MASK or plane not in tuple(VoltagePlane):
        raise InvalidPlaneError(f"plane {plane} outside Table 1 range 0-4")
    units = mv_to_units(offset_mv)
    value = encode_offset_field(units)
    value |= WRITE_COMMAND_BASE
    value |= plane << PLANE_SHIFT
    return value & _MASK64


def encode_read_request(plane: int) -> int:
    """Build the read-request command for a plane."""
    if plane not in tuple(VoltagePlane):
        raise InvalidPlaneError(f"plane {plane} outside Table 1 range 0-4")
    return (READ_COMMAND_BASE | (plane << PLANE_SHIFT)) & _MASK64


@dataclass(frozen=True)
class OCMCommand:
    """A decoded 0x150 command."""

    command: int
    plane: VoltagePlane
    offset_mv: float
    offset_units: int

    @property
    def is_write(self) -> bool:
        """Whether this command writes a new offset."""
        return self.command == COMMAND_WRITE

    @property
    def is_read_request(self) -> bool:
        """Whether this command requests a read-back."""
        return self.command == COMMAND_READ


def decode_command(value: int) -> OCMCommand:
    """Decode a value written to 0x150 into its protocol fields.

    Raises
    ------
    OCMProtocolError
        If bit 63 is clear or the command byte is not a known command.
    InvalidPlaneError
        If the plane select is outside the Table 1 range.
    """
    if not value & BUSY_BIT:
        raise OCMProtocolError("bit 63 must be set for 0x150 commands (Sec. 2.3)")
    command = (value >> COMMAND_SHIFT) & COMMAND_MASK
    if command not in (COMMAND_WRITE, COMMAND_READ):
        raise OCMProtocolError(f"unknown OCM command byte 0x{command:02x}")
    plane_bits = (value >> PLANE_SHIFT) & PLANE_MASK
    try:
        plane = VoltagePlane(plane_bits)
    except ValueError:
        raise InvalidPlaneError(f"plane {plane_bits} outside Table 1 range 0-4") from None
    units = decode_offset_field(value)
    return OCMCommand(
        command=command,
        plane=plane,
        offset_mv=units_to_mv(units),
        offset_units=units,
    )


def describe_command(command: OCMCommand) -> dict:
    """JSON-safe summary of a decoded command for telemetry trace events.

    Flattens the protocol fields into primitives (plane by name, offset
    in millivolts) so OCM transactions serialize cleanly into JSONL and
    Chrome ``trace_event`` exports.
    """
    return {
        "command": "write" if command.is_write else "read_request",
        "plane": command.plane.name,
        "offset_mv": command.offset_mv,
        "offset_units": command.offset_units,
    }


def encode_response(offset_units: int, plane: VoltagePlane) -> int:
    """Build the value ``rdmsr 0x150`` returns after a command completes.

    Hardware clears the busy bit to signal completion and leaves the
    offset/plane fields populated.
    """
    return (encode_offset_field(offset_units) | (int(plane) << PLANE_SHIFT)) & _MASK64
