"""Catalog of simulated Intel CPU models.

The paper evaluates three generations (Sec. 4.2):

* Intel Core i5-6500  @ 3.20 GHz — codename Sky Lake,   microcode 0xf0
* Intel Core i5-8250U @ 1.60 GHz — codename Kaby Lake R, microcode 0xf4
* Intel Core i7-10510U @ 1.80 GHz — codename Comet Lake,  microcode 0xf4

Each :class:`CPUModel` bundles everything the simulation needs: the
frequency table, the silicon process, the critical-path delay that fixes
the part's V/f curve, the process-variation spread that smears the fault
boundary, and the latencies (regulator ramp, MSR ioctl) that determine the
countermeasure's turnaround time (Sec. 5).

The numeric parameters are calibrated so the *shape* of the safe/unsafe
characterization matches the published figures: a safe undervolt band at
every frequency, a fault band a few tens of millivolts wide below it, a
crash beyond that, and a boundary that moves towards shallower offsets as
frequency rises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.cpu.frequency_table import FrequencyTable
from repro.cpu.vf_curve import VFCurve
from repro.timing.constants import INTEL_10NM, INTEL_14NM, INTEL_14NM_PLUS, ProcessCharacteristics
from repro.timing.path import CriticalPath, scaled_path
from repro.timing.safety import SafetyAnalyzer


@dataclass(frozen=True)
class CPUModel:
    """Static description of one simulated processor model."""

    name: str
    codename: str
    microcode: int
    core_count: int
    frequency_table: FrequencyTable
    process: ProcessCharacteristics
    #: Critical-path delay (ps) at the process reference voltage.
    path_delay_ps: float
    #: Fraction of the timing budget the factory reserves as margin.
    guardband: float
    #: Minimum operating voltage of the factory V/f curve.
    v_floor_volts: float
    #: Fixed voltage guardband (V) added on top of the timing-derived curve.
    v_margin_volts: float
    #: Std-dev (mV) of the per-path critical-voltage spread from process
    #: variation; controls the width of the fault band before crash.
    sigma_mv: float
    #: Fraction of critical paths that must be violated before corruption
    #: reaches control logic and the machine crashes.
    crash_fraction: float
    #: Latency (s) between a write to MSR 0x150 and the regulator settling
    #: when the voltage is being lowered (the slow direction).
    regulator_latency_s: float
    #: Settle latency (s) when the voltage is being raised (regulators
    #: prioritise upward slew, so remediation writes apply quickly).
    regulator_raise_latency_s: float
    #: Latency (s) of one MSR read/write through the kernel msr driver.
    msr_ioctl_latency_s: float

    def __post_init__(self) -> None:
        if self.core_count <= 0:
            raise ConfigurationError("core_count must be positive")
        if not 0.0 < self.crash_fraction <= 1.0:
            raise ConfigurationError("crash_fraction must lie in (0, 1]")
        if self.sigma_mv <= 0:
            raise ConfigurationError("sigma_mv must be positive")
        if self.regulator_latency_s < 0 or self.msr_ioctl_latency_s < 0:
            raise ConfigurationError("latencies must be non-negative")

    def critical_path(self) -> CriticalPath:
        """The model's critical path at reference voltage."""
        return scaled_path(self.path_delay_ps, self.process)

    def safety_analyzer(self) -> SafetyAnalyzer:
        """Ground-truth timing analyzer for the model."""
        return SafetyAnalyzer(self.critical_path())

    def vf_curve(self) -> VFCurve:
        """Factory voltage/frequency curve for the model."""
        return VFCurve(
            analyzer=self.safety_analyzer(),
            table=self.frequency_table,
            guardband=self.guardband,
            v_floor_volts=self.v_floor_volts,
            v_margin_volts=self.v_margin_volts,
        )

    def describe(self) -> str:
        """One-line human-readable identification string."""
        return (
            f"{self.name} (codename: {self.codename}, "
            f"microcode version: 0x{self.microcode:x}, {self.core_count} cores)"
        )


SKY_LAKE = CPUModel(
    name="Intel(R) Core(TM) i5-6500 CPU @ 3.20GHz",
    codename="Sky Lake",
    microcode=0xF0,
    core_count=4,
    frequency_table=FrequencyTable(min_ghz=0.8, max_ghz=3.6, base_ghz=3.2),
    process=INTEL_14NM,
    path_delay_ps=269.0,
    guardband=0.09,
    v_floor_volts=0.80,
    v_margin_volts=0.075,
    sigma_mv=10.0,
    crash_fraction=0.75,
    regulator_latency_s=680e-6,
    regulator_raise_latency_s=85e-6,
    msr_ioctl_latency_s=0.8e-6,
)

KABY_LAKE_R = CPUModel(
    name="Intel(R) Core(TM) i5-8250U CPU @ 1.60GHz",
    codename="Kaby Lake R",
    microcode=0xF4,
    core_count=4,
    frequency_table=FrequencyTable(min_ghz=0.4, max_ghz=3.4, base_ghz=1.6),
    process=INTEL_14NM_PLUS,
    path_delay_ps=254.0,
    guardband=0.09,
    v_floor_volts=0.76,
    v_margin_volts=0.080,
    sigma_mv=12.0,
    crash_fraction=0.75,
    regulator_latency_s=700e-6,
    regulator_raise_latency_s=90e-6,
    msr_ioctl_latency_s=0.9e-6,
)

COMET_LAKE = CPUModel(
    name="Intel(R) Core(TM) i7-10510U CPU @ 1.80GHz",
    codename="Comet Lake",
    microcode=0xF4,
    core_count=4,
    frequency_table=FrequencyTable(min_ghz=0.4, max_ghz=4.9, base_ghz=1.8),
    process=INTEL_14NM_PLUS,
    path_delay_ps=193.0,
    guardband=0.10,
    v_floor_volts=0.73,
    v_margin_volts=0.072,
    sigma_mv=11.0,
    crash_fraction=0.75,
    regulator_latency_s=650e-6,
    regulator_raise_latency_s=75e-6,
    msr_ioctl_latency_s=0.7e-6,
)

ICE_LAKE = CPUModel(
    name="Intel(R) Core(TM) i7-1065G7 CPU @ 1.30GHz",
    codename="Ice Lake",
    microcode=0xB8,
    core_count=4,
    frequency_table=FrequencyTable(min_ghz=0.4, max_ghz=3.9, base_ghz=1.3),
    process=INTEL_10NM,
    path_delay_ps=232.0,
    guardband=0.10,
    v_floor_volts=0.66,
    v_margin_volts=0.060,
    sigma_mv=12.0,
    crash_fraction=0.75,
    regulator_latency_s=620e-6,
    regulator_raise_latency_s=70e-6,
    msr_ioctl_latency_s=0.7e-6,
)

#: All models evaluated in the paper, keyed by codename.
PAPER_MODELS: Dict[str, CPUModel] = {
    SKY_LAKE.codename: SKY_LAKE,
    KABY_LAKE_R.codename: KABY_LAKE_R,
    COMET_LAKE.codename: COMET_LAKE,
}

#: The three paper models as an ordered tuple (publication order).
PAPER_MODEL_TUPLE: Tuple[CPUModel, ...] = (SKY_LAKE, KABY_LAKE_R, COMET_LAKE)

#: Extended catalog: the paper's parts plus post-publication silicon the
#: pipeline generalises to (not part of any reproduced figure).
EXTENDED_MODELS: Dict[str, CPUModel] = {**PAPER_MODELS, ICE_LAKE.codename: ICE_LAKE}


def model_by_codename(codename: str) -> CPUModel:
    """Look up one of the paper's CPU models by codename.

    Raises
    ------
    ConfigurationError
        If the codename is not in the catalog.
    """
    try:
        return EXTENDED_MODELS[codename]
    except KeyError:
        known = ", ".join(sorted(EXTENDED_MODELS))
        raise ConfigurationError(f"unknown CPU codename {codename!r}; known: {known}") from None
