"""IA32_PERF_STATUS (MSR 0x198) field codec.

The paper's polling countermeasure reads 0x198 to learn the current core
frequency (and the current operating voltage, Sec. 2.3).  On real parts
the register carries:

* bits [15:8]  — current P-state ratio (frequency = ratio x 100 MHz),
* bits [47:32] — current core voltage in units of 1/8192 V.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import PERF_STATUS_UNITS_PER_VOLT, ratio_to_ghz

_MASK64 = (1 << 64) - 1

RATIO_SHIFT = 8
RATIO_MASK = 0xFF
VOLTAGE_SHIFT = 32
VOLTAGE_MASK = 0xFFFF


@dataclass(frozen=True)
class PerfStatus:
    """Decoded contents of IA32_PERF_STATUS."""

    ratio: int
    voltage_volts: float

    @property
    def frequency_ghz(self) -> float:
        """Current core frequency implied by the P-state ratio."""
        return ratio_to_ghz(self.ratio)


def encode(ratio: int, voltage_volts: float) -> int:
    """Build the 64-bit register value from live core state."""
    if not 0 <= ratio <= RATIO_MASK:
        raise ConfigurationError(f"P-state ratio {ratio} outside 8-bit field")
    if voltage_volts < 0:
        raise ConfigurationError("voltage must be non-negative")
    units = int(round(voltage_volts * PERF_STATUS_UNITS_PER_VOLT))
    if units > VOLTAGE_MASK:
        raise ConfigurationError(
            f"voltage {voltage_volts:.3f} V overflows the 16-bit field"
        )
    return ((ratio << RATIO_SHIFT) | (units << VOLTAGE_SHIFT)) & _MASK64


def decode(value: int) -> PerfStatus:
    """Extract ratio and voltage from a register value."""
    ratio = (value >> RATIO_SHIFT) & RATIO_MASK
    units = (value >> VOLTAGE_SHIFT) & VOLTAGE_MASK
    return PerfStatus(ratio=ratio, voltage_volts=units / PERF_STATUS_UNITS_PER_VOLT)
