"""SVID-style voltage regulator with write-to-apply latency.

The paper identifies "the delay between a successful write to MSR 0x150
and the actual change in voltage by the voltage regulator" as one of the
two contributors to the countermeasure's turnaround time (Sec. 5, citing
Plundervolt's measurements — Plundervolt conservatively waits ~650 us
after each mailbox write).  We model the mailbox/regulator handshake as a
hold-then-step: the supply keeps its old value for the latency window and
then steps to the target.  Lowering the supply is slow (the handshake plus
a controlled downward ramp); *raising* it is much faster, because
regulators prioritise upward slew to protect against droop — which is
exactly why a remediation write (which raises the voltage) takes effect
quickly.

An optional linear-slew mode interpolates during the window instead of
stepping, for sensitivity studies in the turnaround ablation.

The regulator is *time-driven*: callers pass the current simulation time
to every query, so the class has no dependency on the event scheduler and
is trivially testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.errors import ConfigurationError
from repro.cpu.ocm import VoltagePlane
from repro.telemetry import NULL_TRACER, Tracer


@dataclass
class _Transition:
    """One in-flight offset change on a plane."""

    request_time: float
    latency_s: float
    old_offset_mv: float
    new_offset_mv: float

    @property
    def settle_time(self) -> float:
        """Absolute time at which the new offset is fully applied."""
        return self.request_time + self.latency_s


@dataclass
class VoltageRegulator:
    """Per-plane offset state with asymmetric settle latency.

    Parameters
    ----------
    latency_s:
        Settle time when the request *lowers* the voltage (deeper offset).
    raise_latency_s:
        Settle time when the request *raises* the voltage; defaults to an
        eighth of the lowering latency.
    slew:
        If true, the offset moves linearly from old to new over the
        window; if false (default) it holds the old value and steps at the
        end of the window — the hold-then-step behaviour the mailbox
        handshake exhibits.
    tracer:
        Optional telemetry tracer; every :meth:`request_offset` then
        emits a ``regulator.ramp`` span from the request to the settle
        time, on the ``track`` swimlane.
    track:
        Trace track name (the owning core sets ``core<N>``).
    """

    latency_s: float
    raise_latency_s: Optional[float] = None
    slew: bool = False
    tracer: Optional[Tracer] = None
    track: str = "regulator"
    #: Optional runtime-invariant observer (repro.verify); called as
    #: ``observer(regulator, plane, transition, now)`` after each request.
    observer: Optional[Callable] = field(default=None, repr=False)
    _transitions: Dict[VoltagePlane, _Transition] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ConfigurationError("regulator latency must be non-negative")
        if self.raise_latency_s is None:
            self.raise_latency_s = self.latency_s / 8.0
        if self.raise_latency_s < 0:
            raise ConfigurationError("raise latency must be non-negative")
        if self.tracer is None:
            self.tracer = NULL_TRACER
        self._trace_on = self.tracer.enabled

    def latency_for(self, old_offset_mv: float, new_offset_mv: float) -> float:
        """Settle latency for a transition, by direction."""
        assert self.raise_latency_s is not None
        if new_offset_mv >= old_offset_mv:
            return self.raise_latency_s
        return self.latency_s

    def request_offset(self, plane: VoltagePlane, offset_mv: float, now: float) -> float:
        """Request a new offset; returns the time it will have settled."""
        current = self.applied_offset_mv(plane, now)
        transition = _Transition(
            request_time=now,
            latency_s=self.latency_for(current, offset_mv),
            old_offset_mv=current,
            new_offset_mv=offset_mv,
        )
        self._transitions[plane] = transition
        if self._trace_on:
            assert self.tracer is not None
            self.tracer.complete(
                "regulator.ramp",
                "regulator",
                now,
                transition.latency_s,
                track=self.track,
                plane=plane.name,
                from_mv=current,
                to_mv=offset_mv,
            )
        if self.observer is not None:
            self.observer(self, plane, transition, now)
        return transition.settle_time

    def target_offset_mv(self, plane: VoltagePlane) -> float:
        """The most recently requested offset (what a read-back reports)."""
        transition = self._transitions.get(plane)
        return transition.new_offset_mv if transition else 0.0

    def applied_offset_mv(self, plane: VoltagePlane, now: float) -> float:
        """The electrically effective offset at time ``now``."""
        transition = self._transitions.get(plane)
        if transition is None:
            return 0.0
        # Compare against the settle time rather than re-deriving the
        # elapsed window: ``(request_time + latency_s) - request_time``
        # can round below ``latency_s``, which would leave the old offset
        # visible at the exact instant ``settle_time``/``is_settled``
        # report the transition as complete.
        if transition.latency_s == 0.0 or now >= transition.settle_time:
            return transition.new_offset_mv
        if not self.slew:
            return transition.old_offset_mv
        progress = min(1.0, (now - transition.request_time) / transition.latency_s)
        return (
            transition.old_offset_mv
            + (transition.new_offset_mv - transition.old_offset_mv) * progress
        )

    def settle_time(self, plane: VoltagePlane) -> float:
        """Absolute time at which the plane's last request settles."""
        transition = self._transitions.get(plane)
        if transition is None:
            return 0.0
        return transition.settle_time

    def is_settled(self, plane: VoltagePlane, now: float) -> bool:
        """Whether the plane has reached its target offset."""
        return now >= self.settle_time(plane)

    def reset(self) -> None:
        """Drop all offsets (machine reboot)."""
        self._transitions.clear()
