"""The simulated multi-core processor.

Wires cores, the MSR file and the overclocking-mailbox protocol together:

* ``wrmsr 0x150`` runs the OCM protocol (:mod:`repro.cpu.ocm`) and lands
  in the per-core voltage regulator with settle latency;
* ``rdmsr 0x150`` returns the mailbox response (current target offset);
* ``rdmsr 0x198`` synthesises IA32_PERF_STATUS from live core state —
  current ratio and *electrically effective* voltage;
* ``wrmsr 0x199`` switches the P-state (the path the cpufreq driver uses);
* microcode hooks can be installed around ``wrmsr`` to realise the
  Sec. 5.1 deployment, and the Sec. 5.2 clamp MSR is pre-defined.

The processor is deliberately ignorant of the fault model: faults are a
property of *executing instructions* under given conditions and live in
:mod:`repro.faults`, combined with the processor by the test bench.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import CoreIndexError
from repro.cpu import ocm
from repro.cpu import perf_status
from repro.cpu.core import Core
from repro.cpu.models import CPUModel
from repro.cpu.msr import (
    IA32_PERF_CTL,
    IA32_PERF_STATUS,
    MSR_DRAM_POWER_INFO,
    MSR_DRAM_POWER_LIMIT,
    MSR_OC_MAILBOX,
    MSR_PLATFORM_INFO,
    MSR_VOLTAGE_OFFSET_LIMIT,
    MSRFile,
)
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.units import ratio_to_ghz


class SimulatedProcessor:
    """A multi-core processor instance for one :class:`CPUModel`.

    Parameters
    ----------
    model:
        Static CPU description (frequency table, latencies, physics).
    clock:
        Zero-argument callable returning the current time in seconds;
        supplied by the test bench (manual clock or event simulator).
    """

    def __init__(
        self,
        model: CPUModel,
        clock: Callable[[], float],
        *,
        shared_voltage_plane: bool = False,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.model = model
        self._clock = clock
        telemetry = telemetry or NULL_TELEMETRY
        self.telemetry = telemetry
        self._tracer = telemetry.tracer
        self._trace_on = telemetry.tracer.enabled
        self._pstate_counter = telemetry.registry.counter("pstate.transitions")
        self._ocm_counter = telemetry.registry.counter("ocm.transactions")
        #: Real client parts expose one package-wide core-voltage plane:
        #: a 0x150 write from ANY core moves EVERY core's voltage.  The
        #: default per-core mode is strictly more general (see
        #: repro.cpu.core); the shared mode enables the cross-core attack
        #: scenarios (attacker thread on one core, victim on another).
        self.shared_voltage_plane = shared_voltage_plane
        self.vf_curve = model.vf_curve()
        #: Currently loaded microcode revision (updates bump it at reset).
        self.microcode_revision = model.microcode
        self.cores: List[Core] = [
            Core(index=i, model=model, vf_curve=self.vf_curve, telemetry=telemetry)
            for i in range(model.core_count)
        ]
        self.msr = MSRFile()
        self.reboot_count = 0
        #: Optional runtime-invariant observer (repro.verify).  Called as
        #: ``observer(phase, core_index, value, command, response)`` with
        #: ``phase`` of ``"command"`` (response ``None``, before the mailbox
        #: acts) and ``"response"`` (after).  ``None`` keeps the 0x150 hot
        #: path free of any extra work beyond one identity comparison.
        self.ocm_observer: Optional[Callable] = None
        self._define_msrs()

    # -- construction ---------------------------------------------------------

    def _define_msrs(self) -> None:
        table = self.model.frequency_table
        platform_info = (table.base_ratio & 0xFF) << 8
        self.msr.define(MSR_PLATFORM_INFO, writable=False, reset_value=platform_info)
        self.msr.define(MSR_OC_MAILBOX)
        self.msr.define(IA32_PERF_STATUS, writable=False)
        self.msr.define(IA32_PERF_CTL)
        self.msr.define(MSR_DRAM_POWER_LIMIT)
        self.msr.define(MSR_DRAM_POWER_INFO)
        self.msr.define(MSR_VOLTAGE_OFFSET_LIMIT)
        self.msr.add_write_hook(MSR_OC_MAILBOX, self._ocm_write_hook)
        self.msr.add_read_hook(IA32_PERF_STATUS, self._perf_status_read_hook)
        self.msr.add_write_hook(IA32_PERF_CTL, self._perf_ctl_write_hook)

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time seen by the processor."""
        return self._clock()

    # -- core access -----------------------------------------------------------

    def core(self, index: int) -> Core:
        """Fetch a core by index."""
        try:
            return self.cores[index]
        except IndexError:
            raise CoreIndexError(
                f"core {index} out of range (have {len(self.cores)})"
            ) from None

    # -- MSR access (the rdmsr/wrmsr instructions) ------------------------------

    def rdmsr(self, core_index: int, address: int) -> int:
        """Architectural ``rdmsr`` on a core."""
        self.core(core_index)
        return self.msr.read(core_index, address)

    def wrmsr(self, core_index: int, address: int, value: int) -> bool:
        """Architectural ``wrmsr``; returns False if microcode ignored it."""
        self.core(core_index)
        return self.msr.write(core_index, address, value)

    # -- hook implementations ----------------------------------------------------

    def _ocm_write_hook(self, core_index: int, value: int) -> Optional[int]:
        """Run the overclocking-mailbox protocol for a 0x150 write."""
        command = ocm.decode_command(value)
        core = self.core(core_index)
        self._ocm_counter.inc()
        if self.ocm_observer is not None:
            # Command-phase check runs BEFORE the mailbox acts so a broken
            # decode is attributed to the protocol, not to whatever error
            # the bogus offset triggers downstream.
            self.ocm_observer("command", core_index, value, command, None)
        if self._trace_on:
            name = "ocm.write" if command.is_write else "ocm.read_request"
            self._tracer.instant(
                name, "ocm", self.now, track=f"core{core_index}",
                **ocm.describe_command(command),
            )
        if command.is_write:
            targets = self.cores if self.shared_voltage_plane else [core]
            for target in targets:
                target.request_offset(command.plane, command.offset_mv, self.now)
            responded_units = command.offset_units
        else:
            responded_units = ocm.mv_to_units(core.target_offset_mv(command.plane))
        # The stored value is the mailbox response: busy bit cleared,
        # offset/plane fields reflecting the plane's target offset.
        response = ocm.encode_response(responded_units, command.plane)
        if self.ocm_observer is not None:
            self.ocm_observer("response", core_index, value, command, response)
        return response

    def _perf_status_read_hook(self, core_index: int, _stored: int) -> int:
        """Synthesise IA32_PERF_STATUS from live core state."""
        core = self.core(core_index)
        return perf_status.encode(core.ratio, core.effective_voltage(self.now))

    def _perf_ctl_write_hook(self, core_index: int, value: int) -> Optional[int]:
        """Apply a requested P-state ratio from IA32_PERF_CTL bits [15:8]."""
        ratio = (value >> 8) & 0xFF
        frequency = self.model.frequency_table.clamp(ratio_to_ghz(ratio))
        core = self.core(core_index)
        previous = core.frequency_ghz
        core.set_frequency(frequency, self.now)
        self._pstate_counter.inc()
        if self._trace_on:
            self._tracer.instant(
                "pstate.transition", "pstate", self.now, track=f"core{core_index}",
                from_ghz=previous, to_ghz=frequency,
            )
        return value

    # -- convenience views used by workloads and analysis ------------------------

    def conditions(self, core_index: int):
        """Operating conditions of one core right now."""
        return self.core(core_index).conditions(self.now)

    def reboot(self) -> None:
        """Crash recovery: reset cores and MSR state, count the event.

        The characterization framework (Sec. 4.2) keeps probing deeper
        undervolts "until we observe a system crash"; each crash lands
        here.
        """
        for core in self.cores:
            core.reset()
        self.msr.reset()
        self.reboot_count += 1
