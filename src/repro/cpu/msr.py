"""Model-specific register file.

Per-core 64-bit register store with read/write hooks.  Hooks are the
mechanism through which

* the overclocking mailbox implements its command protocol on MSR 0x150,
* IA32_PERF_STATUS (0x198) is synthesised from live core state,
* the microcode-sequencer deployment of the countermeasure (Sec. 5.1)
  intercepts ``wrmsr`` and *ignores* unsafe writes, and
* the hardware MSR deployment (Sec. 5.2) clamps offsets.

Write hooks run in installation order; each receives the value produced by
the previous hook and may transform it or return ``None`` to swallow the
write entirely (the documented write-ignore behaviour Intel applies to
several MSRs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import MSRPermissionError, UnknownMSRError

_MASK64 = (1 << 64) - 1

# -- Architectural MSR addresses used by the paper --------------------------

#: Overclocking mailbox: voltage-offset interface (Table 1 of the paper).
MSR_OC_MAILBOX = 0x150

#: IA32_PERF_STATUS: current P-state ratio and core voltage readout.
IA32_PERF_STATUS = 0x198

#: IA32_PERF_CTL: requested P-state ratio (used by the cpufreq driver).
IA32_PERF_CTL = 0x199

#: MSR_PLATFORM_INFO: base/max ratios (read-only identification).
MSR_PLATFORM_INFO = 0xCE

#: The DRAM power-limit pair the paper cites as the semantic template for
#: its proposed clamp register (Sec. 5.2).
MSR_DRAM_POWER_LIMIT = 0x618
MSR_DRAM_POWER_INFO = 0x61C

#: The paper's *hypothetical* MSR_VOLTAGE_OFFSET_LIMIT (Sec. 5.2).  No
#: architectural address exists; we place it in an unused range.
MSR_VOLTAGE_OFFSET_LIMIT = 0x651

#: Human-readable names for reporting.
MSR_NAMES: Dict[int, str] = {
    MSR_OC_MAILBOX: "MSR_OC_MAILBOX (0x150)",
    IA32_PERF_STATUS: "IA32_PERF_STATUS (0x198)",
    IA32_PERF_CTL: "IA32_PERF_CTL (0x199)",
    MSR_PLATFORM_INFO: "MSR_PLATFORM_INFO (0xCE)",
    MSR_DRAM_POWER_LIMIT: "MSR_DRAM_POWER_LIMIT (0x618)",
    MSR_DRAM_POWER_INFO: "MSR_DRAM_POWER_INFO (0x61C)",
    MSR_VOLTAGE_OFFSET_LIMIT: "MSR_VOLTAGE_OFFSET_LIMIT (proposed)",
}

#: A write hook: ``(core_index, value) -> new_value | None`` where ``None``
#: silently drops the write.
WriteHook = Callable[[int, int], Optional[int]]

#: A read hook: ``(core_index, stored_value) -> value`` allowing registers
#: whose contents are synthesised from live state.
ReadHook = Callable[[int, int], int]


@dataclass
class MSRDefinition:
    """Static properties of one register."""

    address: int
    name: str
    writable: bool = True
    reset_value: int = 0


class MSRFile:
    """Per-core register store with hook dispatch.

    One :class:`MSRFile` instance serves a whole processor; values are
    keyed by ``(core_index, address)`` so per-core registers (0x198, 0x199)
    and package-scoped ones (held identical across cores) share machinery.
    """

    def __init__(self) -> None:
        self._definitions: Dict[int, MSRDefinition] = {}
        self._values: Dict[tuple, int] = {}
        self._write_hooks: Dict[int, List[WriteHook]] = {}
        self._read_hooks: Dict[int, List[ReadHook]] = {}

    # -- definition management ---------------------------------------------

    def define(
        self,
        address: int,
        *,
        name: Optional[str] = None,
        writable: bool = True,
        reset_value: int = 0,
    ) -> MSRDefinition:
        """Register an MSR so reads/writes to it are legal."""
        definition = MSRDefinition(
            address=address,
            name=name or MSR_NAMES.get(address, f"MSR 0x{address:x}"),
            writable=writable,
            reset_value=reset_value & _MASK64,
        )
        self._definitions[address] = definition
        return definition

    def is_defined(self, address: int) -> bool:
        """Whether an address has been defined."""
        return address in self._definitions

    def definition(self, address: int) -> MSRDefinition:
        """Fetch a definition, raising :class:`UnknownMSRError` if absent."""
        try:
            return self._definitions[address]
        except KeyError:
            raise UnknownMSRError(address) from None

    def defined_addresses(self) -> List[int]:
        """All defined addresses, ascending."""
        return sorted(self._definitions)

    # -- hooks ---------------------------------------------------------------

    def add_write_hook(self, address: int, hook: WriteHook) -> None:
        """Append a write hook for an address (runs after existing hooks)."""
        self.definition(address)
        self._write_hooks.setdefault(address, []).append(hook)

    def insert_write_hook(self, address: int, hook: WriteHook) -> None:
        """Prepend a write hook (runs before existing hooks).

        Microcode-level interception uses this: the sequencer sees the
        ``wrmsr`` before the mailbox logic does.
        """
        self.definition(address)
        self._write_hooks.setdefault(address, []).insert(0, hook)

    def remove_write_hook(self, address: int, hook: WriteHook) -> None:
        """Remove a previously installed write hook."""
        hooks = self._write_hooks.get(address, [])
        hooks.remove(hook)

    def add_read_hook(self, address: int, hook: ReadHook) -> None:
        """Append a read hook for an address."""
        self.definition(address)
        self._read_hooks.setdefault(address, []).append(hook)

    # -- access ---------------------------------------------------------------

    def read(self, core_index: int, address: int) -> int:
        """``rdmsr``: read a register on one core."""
        definition = self.definition(address)
        value = self._values.get((core_index, address), definition.reset_value)
        for hook in self._read_hooks.get(address, []):
            value = hook(core_index, value) & _MASK64
        return value

    def write(self, core_index: int, address: int, value: int) -> bool:
        """``wrmsr``: write a register on one core.

        Returns ``True`` if the value was stored, ``False`` if a hook
        swallowed the write (write-ignore semantics).
        """
        definition = self.definition(address)
        if not definition.writable:
            raise MSRPermissionError(f"{definition.name} is read-only")
        current: Optional[int] = value & _MASK64
        for hook in self._write_hooks.get(address, []):
            current = hook(core_index, current)
            if current is None:
                return False
            current &= _MASK64
        self._values[(core_index, address)] = current
        return True

    def poke(self, core_index: int, address: int, value: int) -> None:
        """Store a value bypassing hooks (hardware-internal updates)."""
        self.definition(address)
        self._values[(core_index, address)] = value & _MASK64

    def reset(self) -> None:
        """Clear all stored values back to reset defaults (machine reboot)."""
        self._values.clear()
