"""P-state frequency tables.

The operational frequency of a processor is limited to a vendor-defined
range of discrete values, the *frequency table* (Sec. 2.2).  The paper's
characterization (Algo 2) enumerates "possible core frequencies at a
resolution of 0.1 GHz" — exactly the granularity of the hardware P-state
ratio, which is a multiple of the 100 MHz bus clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import ConfigurationError, FrequencyError
from repro.units import BUS_CLOCK_GHZ, ghz_to_ratio, ratio_to_ghz


@dataclass(frozen=True)
class FrequencyTable:
    """The discrete set of core frequencies a processor supports.

    Parameters
    ----------
    min_ghz:
        Lowest operating frequency (lowest P-state).
    max_ghz:
        Highest operating frequency (max single-core turbo).
    base_ghz:
        The advertised base (nominal, non-turbo) frequency.
    """

    min_ghz: float
    max_ghz: float
    base_ghz: float

    def __post_init__(self) -> None:
        if not self.min_ghz <= self.base_ghz <= self.max_ghz:
            raise ConfigurationError(
                f"base frequency {self.base_ghz} GHz must lie within "
                f"[{self.min_ghz}, {self.max_ghz}] GHz"
            )
        if self.min_ghz <= 0:
            raise ConfigurationError("minimum frequency must be positive")
        for name, value in (("min", self.min_ghz), ("max", self.max_ghz), ("base", self.base_ghz)):
            ratio = value / BUS_CLOCK_GHZ
            if abs(ratio - round(ratio)) > 1e-9:
                raise ConfigurationError(
                    f"{name} frequency {value} GHz is not a multiple of the "
                    f"{BUS_CLOCK_GHZ} GHz bus clock"
                )

    @property
    def min_ratio(self) -> int:
        """Lowest P-state ratio (multiples of the bus clock)."""
        return ghz_to_ratio(self.min_ghz)

    @property
    def max_ratio(self) -> int:
        """Highest P-state ratio."""
        return ghz_to_ratio(self.max_ghz)

    @property
    def base_ratio(self) -> int:
        """Ratio of the advertised base frequency."""
        return ghz_to_ratio(self.base_ghz)

    def __len__(self) -> int:
        return self.max_ratio - self.min_ratio + 1

    def __iter__(self) -> Iterator[float]:
        return iter(self.frequencies_ghz())

    def __contains__(self, frequency_ghz: object) -> bool:
        if not isinstance(frequency_ghz, (int, float)):
            return False
        ratio = frequency_ghz / BUS_CLOCK_GHZ
        if abs(ratio - round(ratio)) > 1e-9:
            return False
        return self.min_ratio <= round(ratio) <= self.max_ratio

    def frequencies_ghz(self) -> Sequence[float]:
        """All supported frequencies, ascending, at 0.1 GHz resolution."""
        return tuple(ratio_to_ghz(r) for r in range(self.min_ratio, self.max_ratio + 1))

    def validate(self, frequency_ghz: float) -> float:
        """Return the frequency unchanged, or raise :class:`FrequencyError`."""
        if frequency_ghz not in self:
            raise FrequencyError(
                f"{frequency_ghz} GHz is not in the frequency table "
                f"[{self.min_ghz}, {self.max_ghz}] GHz @ {BUS_CLOCK_GHZ} GHz steps"
            )
        return frequency_ghz

    def clamp(self, frequency_ghz: float) -> float:
        """Snap an arbitrary frequency onto the nearest table entry."""
        ratio = max(self.min_ratio, min(self.max_ratio, round(frequency_ghz / BUS_CLOCK_GHZ)))
        return ratio_to_ghz(ratio)
