"""Factory voltage/frequency curve.

Real Intel parts ship with an internal V/f curve: for every P-state ratio
the FIVR (fully integrated voltage regulator) targets a factory-fused base
voltage.  Software undervolting through MSR 0x150 *offsets* that base
voltage; it does not set an absolute value (Sec. 2.3).

We derive the curve from the physics model: the factory voltage at a
frequency is the voltage at which the critical path consumes
``(1 - guardband)`` of the timing budget, clamped from below by the part's
minimum operating voltage (``v_floor``).  The guardband is the margin the
vendor provisions against aging, temperature and droop — and it is exactly
the *safe undervolt band* that Figs. 2-4 of the paper chart before faults
begin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigurationError
from repro.cpu.frequency_table import FrequencyTable
from repro.timing.safety import SafetyAnalyzer


@dataclass
class VFCurve:
    """Maps core frequency to the factory base voltage.

    Parameters
    ----------
    analyzer:
        Ground-truth timing model of the part's critical path.
    table:
        Supported frequency range.
    guardband:
        Fraction of the timing budget reserved as margin at the factory
        operating point.
    v_floor_volts:
        Minimum operating voltage; at low frequencies the curve is clamped
        here, which is why low-frequency points tolerate much deeper
        undervolts before faulting.
    v_margin_volts:
        Fixed voltage guardband added on top of the timing-derived curve
        (droop/aging margin); vendors provision both kinds of margin.
    v_ceiling_volts:
        Hard upper bound the regulator will ever deliver.
    """

    analyzer: SafetyAnalyzer
    table: FrequencyTable
    guardband: float
    v_floor_volts: float
    v_margin_volts: float = 0.05
    v_ceiling_volts: float = 1.52
    _cache: Dict[int, float] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.guardband < 0.5:
            raise ConfigurationError("guardband must lie in (0, 0.5)")
        if self.v_margin_volts < 0:
            raise ConfigurationError("v_margin_volts must be non-negative")
        if self.v_floor_volts <= self.analyzer.process.vth_volts:
            raise ConfigurationError("voltage floor must exceed the threshold voltage")
        if self.v_ceiling_volts <= self.v_floor_volts:
            raise ConfigurationError("voltage ceiling must exceed the floor")

    def base_voltage(self, frequency_ghz: float) -> float:
        """Factory base voltage (V) for a supported frequency."""
        self.table.validate(frequency_ghz)
        key = round(frequency_ghz * 10)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        designed = self.analyzer.design_voltage(frequency_ghz, guardband=self.guardband)
        voltage = max(designed, self.v_floor_volts) + self.v_margin_volts
        voltage = min(voltage, self.v_ceiling_volts)
        self._cache[key] = voltage
        return voltage

    def base_voltage_mv(self, frequency_ghz: float) -> float:
        """Factory base voltage in millivolts."""
        return self.base_voltage(frequency_ghz) * 1e3

    def safe_undervolt_limit_mv(self, frequency_ghz: float) -> float:
        """Ground-truth deepest safe offset (negative mV) at a frequency.

        This is ``-(V_base(f) - V_crit(f))`` — the boundary the paper's
        characterization framework rediscovers empirically.  Library users
        building countermeasures must *not* consult this; it exists for
        validation and for the analysis/reporting layer.
        """
        base = self.base_voltage(frequency_ghz)
        critical = self.analyzer.critical_voltage(frequency_ghz)
        return -(base - critical) * 1e3

    def effective_voltage(self, frequency_ghz: float, offset_mv: float) -> float:
        """Core voltage (V) after applying a software offset in mV.

        Offsets ride on top of the factory curve exactly as MSR 0x150
        semantics dictate; the result is clamped to the regulator's
        physical output range.
        """
        voltage = self.base_voltage(frequency_ghz) + offset_mv * 1e-3
        return min(max(voltage, 0.0), self.v_ceiling_volts)
