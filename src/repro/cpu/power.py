"""Core power model: what benign undervolting is *for*.

The paper's availability argument (Sec. 1) is that access-control
defenses deny benign software the power savings DVFS exists to provide.
This model quantifies those savings so the comparison benchmarks can put
a number on the denial:

* dynamic power:  ``P_dyn = C_eff * f * V^2`` (switching capacitance
  times frequency times voltage squared — Sec. 2.2's "directly
  proportional to the clock frequency and voltage");
* static power:   ``P_leak = I_0 * V * exp((V - V_ref) / V_slope)``
  (sub-threshold leakage grows super-linearly with the supply);
* energy for a fixed amount of work at frequency ``f`` is power times
  ``work / f`` — running slower saves power but not necessarily energy,
  which is why undervolting at a *fixed* frequency is the interesting
  benign operation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.cpu.models import CPUModel
from repro.cpu.vf_curve import VFCurve


@dataclass(frozen=True)
class PowerParameters:
    """Electrical parameters of the power model for one core."""

    #: Effective switched capacitance, nF (order 1 nF for a client core).
    c_eff_nf: float = 1.1
    #: Leakage scale current at the reference voltage, A.
    leak_i0_a: float = 0.9
    #: Reference voltage for the leakage exponent, V.
    leak_v_ref: float = 1.0
    #: Exponential slope of leakage vs voltage, V.
    leak_v_slope: float = 0.28

    def __post_init__(self) -> None:
        if self.c_eff_nf <= 0 or self.leak_i0_a < 0 or self.leak_v_slope <= 0:
            raise ConfigurationError("power parameters must be positive")


class CorePowerModel:
    """Power/energy estimates for one CPU model's core."""

    def __init__(self, model: CPUModel, parameters: PowerParameters | None = None) -> None:
        self.model = model
        self.parameters = parameters or PowerParameters()
        self._vf: VFCurve = model.vf_curve()

    def dynamic_power_w(self, frequency_ghz: float, voltage_volts: float) -> float:
        """Switching power at an operating point (W)."""
        if voltage_volts < 0:
            raise ConfigurationError("voltage must be non-negative")
        c_eff = self.parameters.c_eff_nf * 1e-9
        return c_eff * frequency_ghz * 1e9 * voltage_volts**2

    def static_power_w(self, voltage_volts: float) -> float:
        """Leakage power at a supply voltage (W)."""
        p = self.parameters
        return p.leak_i0_a * voltage_volts * math.exp(
            (voltage_volts - p.leak_v_ref) / p.leak_v_slope
        )

    def total_power_w(self, frequency_ghz: float, voltage_volts: float) -> float:
        """Dynamic plus static power (W)."""
        return self.dynamic_power_w(frequency_ghz, voltage_volts) + self.static_power_w(
            voltage_volts
        )

    def power_at_offset_w(self, frequency_ghz: float, offset_mv: float) -> float:
        """Total power at a frequency with a software undervolt applied."""
        voltage = self._vf.effective_voltage(frequency_ghz, offset_mv)
        return self.total_power_w(frequency_ghz, voltage)

    def undervolt_savings(self, frequency_ghz: float, offset_mv: float) -> float:
        """Fractional power saved by an undervolt at fixed frequency.

        This is exactly what an access-control defense denies a benign
        process: the same work at the same speed, for less power.
        """
        baseline = self.power_at_offset_w(frequency_ghz, 0.0)
        undervolted = self.power_at_offset_w(frequency_ghz, offset_mv)
        return 1.0 - undervolted / baseline

    def energy_for_work_j(
        self, cycles: float, frequency_ghz: float, offset_mv: float = 0.0
    ) -> float:
        """Energy (J) to retire a fixed cycle count at an operating point."""
        if cycles < 0:
            raise ConfigurationError("cycles must be non-negative")
        duration_s = cycles / (frequency_ghz * 1e9)
        return self.power_at_offset_w(frequency_ghz, offset_mv) * duration_s

    def best_safe_operating_point(
        self, boundary_lookup, *, margin_mv: float = 15.0
    ) -> tuple:
        """Most power-efficient safe (frequency, offset) for fixed work.

        Given a per-frequency safe-boundary lookup (e.g.
        ``UnsafeStateSet.safe_offset_mv``), scans the frequency table for
        the point minimising energy per cycle while staying safe.
        Returns ``(frequency_ghz, offset_mv, energy_per_gigacycle_j)``.
        """
        best = None
        for frequency in self.model.frequency_table.frequencies_ghz():
            offset = boundary_lookup(frequency, margin_mv=margin_mv)
            energy = self.energy_for_work_j(1e9, frequency, offset)
            if best is None or energy < best[2]:
                best = (frequency, offset, energy)
        assert best is not None
        return best
