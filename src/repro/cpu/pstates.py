"""P-state / C-state machinery.

Sec. 1 of the paper: at any point a core is either executing (a P-state,
with a frequency drawn from the frequency table) or idle (a C-state, with
execution units power-gated).  DVFS is the interface for traversing the
P-state spectrum.  The countermeasure must keep working regardless of
which P-state a benign workload selects — that availability is precisely
its advantage over access-control defenses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.cpu.frequency_table import FrequencyTable
from repro.units import ghz_to_ratio


class CState(enum.IntEnum):
    """Idle states, deeper numbers = more aggressively power-gated."""

    C0 = 0  # executing (i.e. in a P-state)
    C1 = 1  # halt
    C3 = 3  # clocks gated, caches flushed progressively
    C6 = 6  # core power-gated, state saved


@dataclass
class PStateMachine:
    """Tracks one core's position on the P/C-state spectrum.

    Records every transition so tests and the analysis layer can assert
    that benign DVFS activity continued while a countermeasure was active.
    """

    table: FrequencyTable
    ratio: int = field(init=False)
    c_state: CState = field(init=False, default=CState.C0)
    transitions: List[Tuple[float, str]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self.ratio = self.table.base_ratio

    @property
    def frequency_ghz(self) -> float:
        """Current operating frequency in GHz."""
        return self.ratio / 10.0

    @property
    def is_idle(self) -> bool:
        """Whether the core is in a C-state deeper than C0."""
        return self.c_state is not CState.C0

    def set_frequency(self, frequency_ghz: float, now: float = 0.0) -> None:
        """Move to the P-state for a frequency in the table."""
        self.table.validate(frequency_ghz)
        self.ratio = ghz_to_ratio(frequency_ghz)
        self.transitions.append((now, f"P:{frequency_ghz:.1f}GHz"))

    def enter_idle(self, c_state: CState, now: float = 0.0) -> None:
        """Enter an idle state."""
        if c_state is CState.C0:
            raise ConfigurationError("use wake() to return to C0")
        self.c_state = c_state
        self.transitions.append((now, f"C:{c_state.name}"))

    def wake(self, now: float = 0.0) -> None:
        """Return to C0 (executing) at the current P-state."""
        self.c_state = CState.C0
        self.transitions.append((now, "C:C0"))

    def reset(self) -> None:
        """Return to the base P-state, awake, with history cleared."""
        self.ratio = self.table.base_ratio
        self.c_state = CState.C0
        self.transitions.clear()
