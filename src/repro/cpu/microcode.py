"""Microcode update carrier: how Sec. 5.1 actually ships.

The paper notes that microcode updates "are loaded through BIOS/UEFI and
need to be loaded once the processor resets" and that the updated
revision is attestable.  This module models that delivery path: an
update package carries a revision and an install payload; the loader
refuses stale revisions, resets the processor (updates apply at reset),
bumps the visible microcode revision, and runs the payload — typically a
:class:`~repro.core.microcode_guard.MicrocodeGuard` installation.

The revision is what :mod:`repro.sgx.attestation` reports, so a remote
verifier can demand the guard-carrying microcode the same way it demands
the kernel module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import ConfigurationError
from repro.cpu.processor import SimulatedProcessor

#: Install payload: receives the processor after reset.
InstallHook = Callable[[SimulatedProcessor], None]


@dataclass(frozen=True)
class MicrocodeUpdate:
    """A signed-update-blob analogue."""

    revision: int
    description: str
    install: InstallHook

    def __post_init__(self) -> None:
        if self.revision <= 0:
            raise ConfigurationError("microcode revision must be positive")


@dataclass
class MicrocodeLoader:
    """BIOS/UEFI-side loader applying updates at processor reset."""

    processor: SimulatedProcessor
    history: List[int] = field(default_factory=list)

    def load(self, update: MicrocodeUpdate) -> None:
        """Apply an update: reset, bump the revision, run the payload.

        Raises
        ------
        ConfigurationError
            If the update's revision does not exceed the current one
            (real loaders refuse downgrades).
        """
        current = self.processor.microcode_revision
        if update.revision <= current:
            raise ConfigurationError(
                f"refusing microcode downgrade: 0x{update.revision:x} <= 0x{current:x}"
            )
        self.processor.reboot()  # updates take effect at reset
        self.processor.microcode_revision = update.revision
        update.install(self.processor)
        self.history.append(update.revision)


def guard_update(
    maximal_safe_offset_mv: float,
    *,
    revision: Optional[int] = None,
    base_revision: int = 0,
) -> MicrocodeUpdate:
    """Package a Sec. 5.1 write-ignore guard as a microcode update.

    ``revision`` defaults to one past ``base_revision`` (pass the
    processor's current revision).
    """
    from repro.core.microcode_guard import MicrocodeGuard

    guard = MicrocodeGuard(maximal_safe_offset_mv)
    return MicrocodeUpdate(
        revision=revision if revision is not None else base_revision + 1,
        description=(
            f"OCM write-ignore at maximal safe state "
            f"{maximal_safe_offset_mv:.0f} mV"
        ),
        install=guard.apply,
    )
