"""Simulated Intel processor substrate.

Everything the countermeasure and the attacks see of "the hardware" lives
here: frequency tables, factory V/f curves, the MSR file with the
overclocking-mailbox protocol (MSR 0x150) and IA32_PERF_STATUS (0x198),
the voltage regulator with settle latency, and the three CPU models the
paper evaluates (Sky Lake i5-6500, Kaby Lake R i5-8250U, Comet Lake
i7-10510U).
"""

from repro.cpu.core import Core
from repro.cpu.frequency_table import FrequencyTable
from repro.cpu.models import (
    COMET_LAKE,
    EXTENDED_MODELS,
    ICE_LAKE,
    KABY_LAKE_R,
    PAPER_MODELS,
    PAPER_MODEL_TUPLE,
    SKY_LAKE,
    CPUModel,
    model_by_codename,
)
from repro.cpu.msr import (
    IA32_PERF_CTL,
    IA32_PERF_STATUS,
    MSR_OC_MAILBOX,
    MSR_PLATFORM_INFO,
    MSR_VOLTAGE_OFFSET_LIMIT,
    MSRFile,
)
from repro.cpu.ocm import VoltagePlane
from repro.cpu.power import CorePowerModel, PowerParameters
from repro.cpu.microcode import MicrocodeLoader, MicrocodeUpdate, guard_update
from repro.cpu.thermal import ThermalModel, ThermalParameters
from repro.cpu.processor import SimulatedProcessor
from repro.cpu.vf_curve import VFCurve
from repro.cpu.voltage_regulator import VoltageRegulator

__all__ = [
    "Core",
    "FrequencyTable",
    "COMET_LAKE",
    "EXTENDED_MODELS",
    "ICE_LAKE",
    "KABY_LAKE_R",
    "PAPER_MODELS",
    "PAPER_MODEL_TUPLE",
    "SKY_LAKE",
    "CPUModel",
    "model_by_codename",
    "IA32_PERF_CTL",
    "IA32_PERF_STATUS",
    "MSR_OC_MAILBOX",
    "MSR_PLATFORM_INFO",
    "MSR_VOLTAGE_OFFSET_LIMIT",
    "MSRFile",
    "VoltagePlane",
    "CorePowerModel",
    "PowerParameters",
    "ThermalModel",
    "ThermalParameters",
    "MicrocodeLoader",
    "MicrocodeUpdate",
    "guard_update",
    "SimulatedProcessor",
    "VFCurve",
    "VoltageRegulator",
]
