"""Sim-time profiler for the discrete-event dispatch loop.

:class:`SimProfiler` hooks :meth:`repro.kernel.sim.Simulator.step`
through the same zero-cost-when-disabled observer pattern as
:mod:`repro.verify` (one identity comparison per event when detached)
and attributes every processed event to the component that scheduled it:
the voltage regulator's settle events, the OCM/MSR chain, the polling
module's recurring poll, the fault injector, the bench runner, spawned
cooperative tasks.  Per (component, site) bucket it accumulates

* ``events`` — events processed (deterministic),
* ``sim_time_s`` — simulated time the events advanced the clock by
  (deterministic),
* ``wall_time_s`` — wall-clock spent inside the callbacks
  (**non-deterministic**, strictly segregated: never serialized into the
  flamegraph artifacts, only into the explicitly wall-clock sidecar).

Two identical seeded runs therefore produce *byte-identical* collapsed
stacks and speedscope documents — profiles are diffable regression
artifacts the same way traces are.

Exports target the two formats every flamegraph toolchain understands:

* **collapsed stacks** (``component;site weight`` lines) for
  ``flamegraph.pl`` / ``inferno``;
* **speedscope JSON** (https://www.speedscope.app) with one sim-time
  profile (seconds) and one event-count profile in a single document.
"""

from __future__ import annotations

import functools
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.kernel.sim import RecurringEvent, Task

#: Schema tag embedded in profile snapshots.
PROFILE_SCHEMA_VERSION = 1


@dataclass
class ProfileBucket:
    """Accumulated cost of one (component, site) dispatch target."""

    component: str
    site: str
    events: int = 0
    sim_time_s: float = 0.0
    #: Wall clock — excluded from every determinism-checked artifact.
    wall_time_s: float = 0.0


def resolve_site(callback: Any) -> Tuple[str, str]:
    """Attribute a scheduled callback to a ``(component, site)`` pair.

    Unwraps ``functools.partial`` layers and the simulator's own
    indirection objects — a :class:`RecurringEvent` is charged to the
    callback it re-arms (the polling module's poll, not the timer), and a
    cooperative :class:`Task` step is charged to the named task.  The
    component is the callback's module path below ``repro.``, which is
    exactly the per-subsystem attribution the overhead budget of Table 2
    is argued in terms of.
    """
    for _ in range(8):  # bounded unwrap of partial/timer indirections
        if isinstance(callback, functools.partial):
            callback = callback.func
            continue
        owner = getattr(callback, "__self__", None)
        if isinstance(owner, RecurringEvent):
            callback = owner._callback
            continue
        break
    owner = getattr(callback, "__self__", None)
    if isinstance(owner, Task):
        return ("kernel.sim.task", f"task:{owner.name}")
    func = getattr(callback, "__func__", callback)
    module = getattr(func, "__module__", None) or "<unknown>"
    if module.startswith("repro."):
        module = module[len("repro."):]
    site = (
        getattr(func, "__qualname__", None)
        or getattr(func, "__name__", None)
        or repr(callback)
    )
    return (module, site)


class SimProfiler:
    """Per-component event/sim-time/wall-time attribution for one run."""

    def __init__(self) -> None:
        self._buckets: Dict[Tuple[str, str], ProfileBucket] = {}
        self._simulator: Optional[Any] = None

    # -- lifecycle ---------------------------------------------------------------

    def install(self, target: Any) -> "SimProfiler":
        """Attach to a :class:`Machine` or a bare :class:`Simulator`."""
        simulator = getattr(target, "simulator", target)
        simulator.attach_profiler(self)
        self._simulator = simulator
        return self

    def uninstall(self) -> None:
        """Detach from the simulator (no-op when not installed)."""
        if self._simulator is not None:
            self._simulator.detach_profiler()
            self._simulator = None

    # -- the dispatch-loop hook ----------------------------------------------------

    def after_event(self, callback: Any, advanced_s: float, wall_s: float) -> None:
        """Record one dispatched event (called by the simulator)."""
        key = resolve_site(callback)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = ProfileBucket(*key)
        bucket.events += 1
        bucket.sim_time_s += advanced_s
        bucket.wall_time_s += wall_s

    def record_site(
        self,
        component: str,
        site: str,
        *,
        events: int = 1,
        sim_time_s: float = 0.0,
        wall_s: float = 0.0,
    ) -> None:
        """Charge out-of-band work to an explicitly named bucket.

        The dispatch-loop hook only sees scheduled simulator events, but
        the direct-mode characterization sweep (scalar and vectorized)
        never schedules any — its cost is attributed through this entry
        point instead, via :func:`repro.vector.profile.record_kernel_site`.
        Event counts stay deterministic (grid cells / windows evaluated);
        wall-clock accumulates in the segregated sidecar field exactly as
        for dispatched events.
        """
        key = (component, site)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = ProfileBucket(component, site)
        bucket.events += events
        bucket.sim_time_s += sim_time_s
        bucket.wall_time_s += wall_s

    # -- views -------------------------------------------------------------------

    def buckets(self) -> List[ProfileBucket]:
        """All buckets, sorted by (component, site) for stable output."""
        return [self._buckets[key] for key in sorted(self._buckets)]

    @property
    def total_events(self) -> int:
        return sum(b.events for b in self._buckets.values())

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe **sim-time-only** dump (byte-identical per seed)."""
        buckets = self.buckets()
        return {
            "schema": PROFILE_SCHEMA_VERSION,
            "total_events": sum(b.events for b in buckets),
            "total_sim_time_s": sum(b.sim_time_s for b in buckets),
            "buckets": [
                {
                    "component": b.component,
                    "site": b.site,
                    "events": b.events,
                    "sim_time_s": b.sim_time_s,
                }
                for b in buckets
            ],
        }

    def wall_snapshot(self) -> Dict[str, Any]:
        """JSON-safe **wall-clock** dump — never determinism-checked."""
        return {
            "schema": PROFILE_SCHEMA_VERSION,
            "wall": True,
            "buckets": [
                {
                    "component": b.component,
                    "site": b.site,
                    "events": b.events,
                    "wall_time_s": b.wall_time_s,
                }
                for b in self.buckets()
            ],
        }

    # -- exports -----------------------------------------------------------------

    def to_collapsed(self) -> str:
        """Collapsed-stack text (``component;site events`` per line).

        Weights are processed-event counts — integers, so the file is
        byte-identical across identical seeded runs and feeds directly
        into ``flamegraph.pl`` / ``inferno-flamegraph``.
        """
        lines = [
            f"{b.component};{b.site} {b.events}" for b in self.buckets()
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_speedscope(self, *, name: str = "repro sim profile") -> str:
        """A speedscope JSON document with sim-time and event profiles.

        Contains only deterministic sim-time fields; wall-clock lives in
        :meth:`wall_snapshot` alone.
        """
        buckets = self.buckets()
        frames: List[Dict[str, str]] = []
        frame_index: Dict[str, int] = {}

        def frame(label: str) -> int:
            index = frame_index.get(label)
            if index is None:
                index = frame_index[label] = len(frames)
                frames.append({"name": label})
            return index

        samples: List[List[int]] = []
        sim_weights: List[float] = []
        event_weights: List[int] = []
        for bucket in buckets:
            samples.append([frame(bucket.component), frame(bucket.site)])
            sim_weights.append(bucket.sim_time_s)
            event_weights.append(bucket.events)
        document = {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "name": name,
            "exporter": "repro.observe",
            "activeProfileIndex": 0,
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": "sim-time (s)",
                    "unit": "seconds",
                    "startValue": 0,
                    "endValue": sum(sim_weights),
                    "samples": samples,
                    "weights": sim_weights,
                },
                {
                    "type": "sampled",
                    "name": "events processed",
                    "unit": "none",
                    "startValue": 0,
                    "endValue": sum(event_weights),
                    "samples": samples,
                    "weights": event_weights,
                },
            ],
        }
        return json.dumps(document, sort_keys=True, separators=(",", ":"))

    def write_collapsed(self, path: Union[str, Path]) -> Path:
        """Write the collapsed-stack artifact; returns the path."""
        return _write(path, self.to_collapsed())

    def write_speedscope(
        self, path: Union[str, Path], *, name: str = "repro sim profile"
    ) -> Path:
        """Write the speedscope artifact; returns the path."""
        return _write(path, self.to_speedscope(name=name))

    def __repr__(self) -> str:
        return (
            f"SimProfiler(buckets={len(self._buckets)}, "
            f"events={self.total_events})"
        )


def _write(path: Union[str, Path], text: str) -> Path:
    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text)
    return target
