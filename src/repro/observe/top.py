"""``repro top`` — a live terminal dashboard over the metrics endpoint.

Scrapes the OpenMetrics exposition a campaign serves (``repro campaign
--serve-port`` / :class:`~repro.observe.serve.MetricsServer`), parses it
back into counter/gauge/summary families, and renders one compact frame:
campaign progress, per-worker occupancy, queue-wait and execute-time
p50/p95 per job kind, and the retry/timeout/quarantine counts.  Pure
stdlib (urllib + ANSI), read-only, and safe to point at any endpoint —
families that are absent simply don't render, so ``repro top --once``
also works against a bare machine registry.

The latency families come from the session's *wall* registry (see
:meth:`repro.engine.session.EngineSession.metrics_view`); everything
this dashboard shows under "latency" is wall-clock and therefore
non-deterministic by design.
"""

from __future__ import annotations

import re
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, TextIO, Tuple

#: Default refresh interval for the live loop.
DEFAULT_INTERVAL_S = 2.0

#: Prefixes of the wall-latency summary families ``repro top`` charts.
QUEUE_WAIT_PREFIX = "repro_engine_wall_queue_wait_"
EXEC_PREFIX = "repro_engine_wall_exec_"

_QUANTILE = re.compile(r'quantile="([^"]+)"')

#: ANSI: clear screen + home (the live-loop frame reset).
_CLEAR = "\x1b[2J\x1b[H"


def fetch_metrics(url: str, *, timeout_s: float = 5.0) -> str:
    """GET one exposition snapshot from ``url`` (raises ``OSError``)."""
    try:
        with urllib.request.urlopen(url, timeout=timeout_s) as response:
            return response.read().decode("utf-8", "replace")
    except urllib.error.URLError as error:
        raise OSError(f"cannot scrape {url}: {error.reason}") from error


def parse_openmetrics(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse an exposition back into counter/gauge/summary families.

    Returns ``{"counters": {name: value}, "gauges": {name: value},
    "summaries": {name: {"quantiles": {q: value}, "sum": s, "count": n}}}``
    with the ``repro_``-prefixed sanitized names as keys.  Understands
    exactly the subset :func:`repro.observe.render_openmetrics` emits.
    """
    types: Dict[str, str] = {}
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    summaries: Dict[str, Dict[str, Any]] = {}
    for line in text.splitlines():
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        if not line.strip():
            continue
        metric, _, raw = line.rpartition(" ")
        try:
            value = float(raw)
        except ValueError:
            continue
        quantile: Optional[str] = None
        if "{" in metric:
            metric, _, labels = metric.partition("{")
            match = _QUANTILE.search(labels)
            quantile = match.group(1) if match else None
        if metric.endswith("_total") and types.get(metric[:-6]) == "counter":
            counters[metric[:-6]] = value
        elif metric.endswith("_sum") and types.get(metric[:-4]) == "summary":
            summaries.setdefault(metric[:-4], {"quantiles": {}})["sum"] = value
        elif metric.endswith("_count") and types.get(metric[:-6]) == "summary":
            summaries.setdefault(metric[:-6], {"quantiles": {}})["count"] = value
        elif types.get(metric) == "summary" and quantile is not None:
            summaries.setdefault(metric, {"quantiles": {}})["quantiles"][
                quantile
            ] = value
        elif types.get(metric) == "gauge":
            gauges[metric] = value
    return {"counters": counters, "gauges": gauges, "summaries": summaries}


def _progress_bar(done: float, total: float, width: int = 32) -> str:
    if total <= 0:
        return "-" * width
    fraction = max(0.0, min(1.0, done / total))
    filled = int(round(fraction * width))
    return "#" * filled + "-" * (width - filled)


def _latency_rows(
    summaries: Dict[str, Dict[str, Any]]
) -> Dict[str, Dict[str, Tuple[float, float, float]]]:
    """kind → {"queue"/"exec": (p50, p95, count)} from the wall families."""
    rows: Dict[str, Dict[str, Tuple[float, float, float]]] = {}
    for name, summary in summaries.items():
        if name.startswith(QUEUE_WAIT_PREFIX):
            kind, column = name[len(QUEUE_WAIT_PREFIX):], "queue"
        elif name.startswith(EXEC_PREFIX):
            kind, column = name[len(EXEC_PREFIX):], "exec"
        else:
            continue
        quantiles = summary.get("quantiles", {})
        rows.setdefault(kind, {})[column] = (
            quantiles.get("0.5", 0.0),
            quantiles.get("0.95", 0.0),
            summary.get("count", 0.0),
        )
    return rows


def render_top(metrics: Dict[str, Dict[str, Any]], *, source: str = "") -> str:
    """One dashboard frame from parsed metrics (no trailing newline)."""
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    summaries = metrics.get("summaries", {})
    lines = [f"repro top — {source or 'metrics'}"]

    total = gauges.get("repro_engine_progress_total")
    done = gauges.get("repro_engine_progress_completed")
    if total is not None or done is not None:
        total, done = total or 0.0, done or 0.0
        lines.append(
            f"  progress  [{_progress_bar(done, total)}] "
            f"{int(done)}/{int(total)} jobs"
        )
    workers = gauges.get("repro_engine_wall_workers")
    in_flight = gauges.get("repro_engine_wall_in_flight")
    if workers is not None:
        busy = int(in_flight or 0)
        capacity = max(1, int(workers))
        lines.append(
            f"  workers   [{_progress_bar(busy, capacity, 16)}] "
            f"{busy}/{capacity} in flight"
        )
    rows = _latency_rows(summaries)
    if rows:
        lines.append(
            "  latency (wall-clock, non-deterministic)"
        )
        lines.append(
            f"    {'job kind':22s} {'jobs':>5s} {'queue p50':>10s} "
            f"{'queue p95':>10s} {'exec p50':>10s} {'exec p95':>10s}"
        )
        for kind in sorted(rows):
            queue = rows[kind].get("queue", (0.0, 0.0, 0.0))
            execute = rows[kind].get("exec", (0.0, 0.0, 0.0))
            jobs = int(execute[2] or queue[2])
            lines.append(
                f"    {kind:22s} {jobs:5d} {queue[0]:9.3f}s {queue[1]:9.3f}s "
                f"{execute[0]:9.3f}s {execute[1]:9.3f}s"
            )
    supervision = {
        "retried": counters.get("repro_engine_retries"),
        "timeouts": counters.get("repro_engine_timeouts"),
        "requeued": counters.get("repro_engine_requeues"),
        "quarantined": counters.get("repro_engine_quarantined"),
        "cache hits": counters.get("repro_engine_cache_hits"),
    }
    shown = {k: int(v) for k, v in supervision.items() if v is not None}
    if shown:
        lines.append(
            "  supervision  "
            + "  ".join(f"{k}={v}" for k, v in shown.items())
        )
    if len(lines) == 1:
        count = len(counters) + len(gauges) + len(summaries)
        lines.append(f"  (no engine families; {count} other series scraped)")
    return "\n".join(lines)


def render_banner(url: str, error: BaseException) -> str:
    """The connection-lost frame shown while the endpoint is away."""
    return "\n".join(
        [
            f"repro top — {url}",
            "  ── connection lost ──",
            f"  {error}",
            "  retrying on the next refresh (ctrl-c to quit)",
        ]
    )


def run_top(
    url: str,
    *,
    once: bool = False,
    interval_s: float = DEFAULT_INTERVAL_S,
    frames: Optional[int] = None,
    stream: Optional[TextIO] = None,
) -> int:
    """Drive the dashboard; returns a process exit code.

    ``once`` renders a single frame (CI snapshots) and exits 1 when the
    endpoint is unreachable.  The live loop instead shows a
    connection-lost banner and keeps retrying — a coordinator restart or
    a network blip must not kill the dashboard watching it — refreshing
    every ``interval_s`` until interrupted (or ``frames`` frames, mainly
    for tests); its exit code reports whether the endpoint was ever
    scraped successfully.
    """
    out = stream if stream is not None else sys.stdout
    rendered = 0
    connected = False
    try:
        while True:
            try:
                metrics = parse_openmetrics(fetch_metrics(url))
            except OSError as error:
                if once:
                    print(f"repro top: {error}", file=out)
                    return 1
                frame = render_banner(url, error)
            else:
                connected = True
                frame = render_top(metrics, source=url)
            if not once and out.isatty():
                out.write(_CLEAR)
            print(frame, file=out)
            out.flush()
            rendered += 1
            if once or (frames is not None and rendered >= frames):
                return 0 if connected else 1
            time.sleep(interval_s)
    except KeyboardInterrupt:
        return 0
