"""repro.observe — profiling, post-mortems, live metrics, run reports.

The observability layer that rides on :mod:`repro.telemetry` without
perturbing the simulation:

* :class:`SimProfiler` — attributes the discrete-event dispatch loop's
  work (events, sim-time, wall-time) per component/site and exports
  deterministic collapsed-stack and speedscope flamegraphs;
* :class:`FlightRecorder` — freezes the last N trace events into a
  replayable JSONL dump when an invariant trips, a machine check fires,
  or an exception escapes a campaign job;
* :func:`render_openmetrics` / :class:`MetricsServer` — OpenMetrics text
  exposition of a live registry over stdlib HTTP;
* :func:`render_markdown` — the ``repro report`` view of an engine run
  manifest;
* :mod:`repro.observe.spans` — the fleet-wide span model: deterministic
  sim-time spans propagated through worker processes and merged into a
  :class:`FleetTimeline`, with wall clocks segregated to a sidecar;
* :func:`run_top` — the ``repro top`` live dashboard over a scraped
  OpenMetrics endpoint.
"""

from repro.observe.flight import (
    FLIGHT_DIR_ENV,
    FLIGHT_SCHEMA_VERSION,
    FlightDump,
    FlightRecorder,
    dump_job_failure,
    dump_quarantine,
    flight_dir_from_env,
    is_flight_dump,
    load_flight_dump,
)
from repro.observe.openmetrics import (
    OPENMETRICS_CONTENT_TYPE,
    metric_name,
    render_openmetrics,
)
from repro.observe.profiler import (
    PROFILE_SCHEMA_VERSION,
    ProfileBucket,
    SimProfiler,
    resolve_site,
)
from repro.observe.report import (
    REPORT_SCHEMA_VERSION,
    load_manifest,
    render_markdown,
    write_markdown,
)
from repro.observe.serve import MetricsServer
from repro.observe.spans import (
    NULL_SPANS,
    SPAN_SCHEMA_VERSION,
    SPANS_ENV,
    FleetTimeline,
    SpanContext,
    SpanRecorder,
    derive_trace_id,
    job_span_id,
    note_queue_wait,
    spans_enabled,
)
from repro.observe.top import (
    fetch_metrics,
    parse_openmetrics,
    render_banner,
    render_top,
    run_top,
)

__all__ = [
    "FLIGHT_DIR_ENV",
    "FLIGHT_SCHEMA_VERSION",
    "FleetTimeline",
    "FlightDump",
    "FlightRecorder",
    "MetricsServer",
    "NULL_SPANS",
    "OPENMETRICS_CONTENT_TYPE",
    "PROFILE_SCHEMA_VERSION",
    "ProfileBucket",
    "REPORT_SCHEMA_VERSION",
    "SPANS_ENV",
    "SPAN_SCHEMA_VERSION",
    "SimProfiler",
    "SpanContext",
    "SpanRecorder",
    "derive_trace_id",
    "dump_job_failure",
    "dump_quarantine",
    "fetch_metrics",
    "flight_dir_from_env",
    "is_flight_dump",
    "job_span_id",
    "load_flight_dump",
    "load_manifest",
    "metric_name",
    "note_queue_wait",
    "parse_openmetrics",
    "render_markdown",
    "render_openmetrics",
    "render_banner",
    "render_top",
    "resolve_site",
    "run_top",
    "spans_enabled",
    "write_markdown",
]
