"""Crash flight recorder: bounded post-mortem trace dumps.

A :class:`FlightRecorder` rides on a machine's telemetry tracer and, at
the moment something goes wrong, freezes the last ``capacity`` trace
events into a replayable JSONL artifact together with the machine's
seed/spec fingerprint.  Three failure paths are wired to it:

* an :class:`~repro.errors.InvariantViolation` raised by an installed
  :class:`~repro.verify.InvariantChecker` (the checker calls
  :meth:`on_violation` before raising);
* a crash-model machine check (``Machine.reboot`` calls
  :meth:`on_crash` when a recorder is installed and crash recording is
  on — characterization sweeps crash thousands of times by design, so
  crash dumps are opt-in);
* an unhandled exception escaping a campaign job
  (:func:`dump_job_failure`, called by the engine's
  ``execute_job`` worker entry point).

Artifacts are plain JSONL: line 1 is a header object (reason, sim time,
machine fingerprint, the violation/error description, and any caller
context such as the fuzz schedule that makes the dump replayable), the
remaining lines are trace events in ``repro.telemetry.export`` form.
Nothing wall-clock enters a dump, so the same failure produces the same
artifact byte for byte.

For bounded memory on long runs pair the recorder with
``Telemetry.flight(capacity)`` — a tracer that itself only retains the
most recent events — instead of a full unbounded tracer.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import ObserveError
from repro.telemetry.export import event_from_dict, event_to_dict
from repro.telemetry.events import TraceEvent

#: Schema tag in every dump header; stale artifacts fail loudly.
FLIGHT_SCHEMA_VERSION = 1

#: Environment knob: when set, flight dumps are written below this
#: directory (the engine's job-failure path and ``run_schedule`` both
#: honour it).  Unset means in-memory dumps only.
FLIGHT_DIR_ENV = "REPRO_FLIGHT_DIR"

#: Dump header discriminator.
DUMP_KIND = "flight-recorder"


def flight_dir_from_env(environ: Optional[Dict[str, str]] = None) -> Optional[Path]:
    """The dump directory selected by ``REPRO_FLIGHT_DIR`` (or ``None``)."""
    env = os.environ if environ is None else environ
    raw = env.get(FLIGHT_DIR_ENV, "").strip()
    return Path(raw) if raw else None


@dataclass
class FlightDump:
    """A parsed flight-recorder artifact."""

    header: Dict[str, Any]
    events: List[TraceEvent]

    @property
    def reason(self) -> str:
        return str(self.header.get("reason", "unknown"))

    @property
    def schedule(self) -> Optional[Dict[str, Any]]:
        """The embedded fuzz schedule, when the dump is replayable."""
        context = self.header.get("context") or {}
        return context.get("schedule")


def load_flight_dump(source: Union[str, Path]) -> FlightDump:
    """Parse a dump from JSONL text or a file path."""
    if isinstance(source, Path) or (
        isinstance(source, str) and "\n" not in source and os.path.exists(source)
    ):
        text = Path(source).read_text()
    else:
        text = str(source)
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ObserveError("flight dump is empty")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or header.get("kind") != DUMP_KIND:
        raise ObserveError("not a flight-recorder dump (missing header)")
    if header.get("schema") != FLIGHT_SCHEMA_VERSION:
        raise ObserveError(
            f"flight dump schema {header.get('schema')!r} != {FLIGHT_SCHEMA_VERSION}"
        )
    events = [event_from_dict(json.loads(line)) for line in lines[1:]]
    return FlightDump(header=header, events=events)


def is_flight_dump(path: Union[str, Path]) -> bool:
    """Cheap check: does the file start with a flight-recorder header?"""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            first = handle.readline()
        return json.loads(first).get("kind") == DUMP_KIND
    except (OSError, ValueError, AttributeError):
        return False


class FlightRecorder:
    """Last-N-events post-mortem recorder for one machine."""

    def __init__(
        self,
        machine: Optional[Any] = None,
        *,
        capacity: int = 256,
        dump_dir: Optional[Union[str, Path]] = None,
        record_crashes: bool = False,
        max_dumps: int = 16,
    ) -> None:
        if capacity < 1:
            raise ObserveError("flight recorder capacity must be at least 1")
        self.capacity = capacity
        self.dump_dir = Path(dump_dir) if dump_dir is not None else None
        self.record_crashes = record_crashes
        self.max_dumps = max_dumps
        #: Extra JSON-safe header payload (e.g. the fuzz schedule that
        #: makes a dump replayable); callers fill it before the run.
        self.context: Dict[str, Any] = {}
        #: Paths of dumps written to ``dump_dir`` (in order).
        self.dump_paths: List[Path] = []
        #: The most recent dump's JSONL text (kept even with no dir).
        self.last_dump: Optional[str] = None
        self.machine: Optional[Any] = None
        if machine is not None:
            self.install(machine)

    # -- lifecycle ---------------------------------------------------------------

    def install(self, machine: Any) -> "FlightRecorder":
        """Bind to ``machine`` and register as its flight recorder."""
        self.machine = machine
        machine.flight = self
        return self

    def uninstall(self) -> None:
        """Unbind from the machine (no-op when not installed)."""
        if self.machine is not None:
            if getattr(self.machine, "flight", None) is self:
                self.machine.flight = None
            self.machine = None

    # -- ring access -------------------------------------------------------------

    def tail_events(self) -> List[TraceEvent]:
        """The last ``capacity`` trace events the machine recorded."""
        if self.machine is None:
            return []
        events = self.machine.telemetry.tracer.events
        return list(events[-self.capacity:])

    # -- failure hooks -----------------------------------------------------------

    def on_violation(self, violation: Any) -> Optional[Path]:
        """Called by the invariant checker just before it raises."""
        return self.record("invariant-violation", violation=violation)

    def on_crash(self, machine: Any) -> Optional[Path]:
        """Called by ``Machine.reboot`` on a machine-check recovery."""
        if not self.record_crashes:
            return None
        return self.record("machine-check")

    def on_error(self, error: BaseException) -> Optional[Path]:
        """Record an unhandled exception escaping the run."""
        return self.record("unhandled-exception", error=error)

    # -- dump production ---------------------------------------------------------

    def make_dump(
        self,
        reason: str,
        *,
        violation: Optional[Any] = None,
        error: Optional[BaseException] = None,
    ) -> str:
        """The JSONL artifact text for the current ring state."""
        machine = self.machine
        events = self.tail_events()
        header: Dict[str, Any] = {
            "kind": DUMP_KIND,
            "schema": FLIGHT_SCHEMA_VERSION,
            "reason": reason,
            "capacity": self.capacity,
            "events": len(events),
            "sim_time_s": machine.now if machine is not None else 0.0,
            "crash_count": getattr(machine, "crash_count", 0),
            "machine": (
                machine.spec_fingerprint()
                if machine is not None and hasattr(machine, "spec_fingerprint")
                else None
            ),
            "violation": violation.to_dict() if violation is not None else None,
            "error": (
                {"type": type(error).__name__, "message": str(error)}
                if error is not None
                else None
            ),
            "context": dict(sorted(self.context.items())) or None,
        }
        lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
        lines.extend(
            json.dumps(event_to_dict(event), sort_keys=True, separators=(",", ":"))
            for event in events
        )
        return "\n".join(lines) + "\n"

    def record(
        self,
        reason: str,
        *,
        violation: Optional[Any] = None,
        error: Optional[BaseException] = None,
    ) -> Optional[Path]:
        """Produce a dump; write it to ``dump_dir`` when one is set.

        Returns the written path (``None`` with no directory or once
        ``max_dumps`` is reached — the text still lands in
        :attr:`last_dump` either way).
        """
        text = self.make_dump(reason, violation=violation, error=error)
        self.last_dump = text
        if self.dump_dir is None or len(self.dump_paths) >= self.max_dumps:
            return None
        self.dump_dir.mkdir(parents=True, exist_ok=True)
        path = self.dump_dir / f"flight-{reason}-{len(self.dump_paths):03d}.jsonl"
        path.write_text(text)
        self.dump_paths.append(path)
        return path


def dump_quarantine(
    job: Any,
    error: BaseException,
    attempts: int,
    *,
    dump_dir: Optional[Union[str, Path]] = None,
) -> Optional[Path]:
    """Write a flight dump for a job the supervised executor quarantined.

    Called from the *supervising* process, where the worker that failed
    (or died — ``os._exit`` leaves no traceback at all) is gone, so no
    trace ring is available: the dump is header-only, carrying the job's
    identity, seed path, the terminal error and the attempt count.  A
    worker-side :func:`dump_job_failure` dump for the same fingerprint
    (written on each raising attempt when ``REPRO_FLIGHT_DIR`` is set)
    holds the trace tail; this artifact is the supervisor's verdict.
    Writes below ``dump_dir`` or ``REPRO_FLIGHT_DIR``; returns ``None``
    (and writes nothing) when neither is set.
    """
    directory = Path(dump_dir) if dump_dir is not None else flight_dir_from_env()
    if directory is None:
        return None
    fingerprint = job.fingerprint()
    header: Dict[str, Any] = {
        "kind": DUMP_KIND,
        "schema": FLIGHT_SCHEMA_VERSION,
        "reason": "quarantined-job",
        "capacity": 0,
        "events": 0,
        "sim_time_s": 0.0,
        "crash_count": None,
        "machine": None,
        "violation": error.to_dict() if hasattr(error, "to_dict") else None,
        "error": {"type": type(error).__name__, "message": str(error)},
        "context": {
            "job": {
                "kind": job.kind,
                "fingerprint": fingerprint,
                "seed_path": list(job.seed_path()),
            },
            "attempts": attempts,
        },
    }
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"quarantine-{fingerprint[:12]}.flight.jsonl"
    path.write_text(
        json.dumps(header, sort_keys=True, separators=(",", ":")) + "\n"
    )
    return path


def dump_job_failure(
    job: Any,
    telemetry: Any,
    error: BaseException,
    *,
    capacity: int = 256,
    dump_dir: Optional[Union[str, Path]] = None,
) -> Optional[Path]:
    """Write a flight dump for an exception escaping an engine job.

    Called from the worker entry point, where no machine handle is in
    scope — the post-mortem ring is the job's own telemetry tracer and
    the identity is the job's fingerprint.  Writes below ``dump_dir`` or
    the ``REPRO_FLIGHT_DIR`` directory; returns ``None`` (and writes
    nothing) when neither is set.
    """
    directory = Path(dump_dir) if dump_dir is not None else flight_dir_from_env()
    if directory is None:
        return None
    events = list(telemetry.tracer.events)[-capacity:]
    fingerprint = job.fingerprint()
    header: Dict[str, Any] = {
        "kind": DUMP_KIND,
        "schema": FLIGHT_SCHEMA_VERSION,
        "reason": "unhandled-exception",
        "capacity": capacity,
        "events": len(events),
        "sim_time_s": events[-1].time_s if events else 0.0,
        "crash_count": None,
        "machine": None,
        "violation": (
            error.to_dict() if hasattr(error, "to_dict") else None
        ),
        "error": {"type": type(error).__name__, "message": str(error)},
        "context": {"job": {"kind": job.kind, "fingerprint": fingerprint}},
    }
    lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
    lines.extend(
        json.dumps(event_to_dict(event), sort_keys=True, separators=(",", ":"))
        for event in events
    )
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"job-{fingerprint[:12]}.flight.jsonl"
    path.write_text("\n".join(lines) + "\n")
    return path
