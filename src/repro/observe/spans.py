"""Distributed span tracing across the campaign fleet.

A campaign is a tree of work — campaign → batch → job attempt → named
phases — and once jobs cross the process-pool boundary the session can
no longer see where their time went.  This module restores that
visibility with explicit trace-context propagation:

* :class:`SpanContext` — the (trace id, parent span id) pair the session
  hands each shipped attempt.  Its :meth:`~SpanContext.to_envelope`
  serialization is a flat ``str -> str`` mapping, deliberately shaped
  like HTTP headers: the multi-host campaign service (ROADMAP item 3)
  will put exactly these keys on the wire.
* :class:`SpanRecorder` — the worker-side buffer.  ``execute_job`` opens
  a job span per attempt, job code marks named phases through
  ``telemetry.spans``, and the finished buffer rides home inside the
  :class:`~repro.engine.jobs.JobResult`.
* :class:`FleetTimeline` — the session-side merge.  Batches graft their
  workers' buffers in *input order* (never completion order), so the
  merged tree is identical whichever executor ran the jobs.
* :data:`NULL_SPANS` — the shared no-op recorder behind the
  ``REPRO_SPANS=0`` fast path (same sub-percent budget as disabled
  telemetry, gated by ``benchmarks/test_bench_span_overhead.py``).

Determinism contract (the PR-4 profiler contract, extended): every field
in a span *record* is simulation-time or identity-derived —
byte-identical between :class:`~repro.engine.executors.SerialExecutor`
and :class:`~repro.engine.executors.ParallelExecutor` for the same
campaign.  Wall-clock measurements (start timestamps, durations, queue
wait, worker pids) live exclusively in a separate *wall sidecar* keyed
by span id, and every surface that renders them labels them
non-deterministic.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.telemetry.events import PHASE_COMPLETE, TraceEvent

#: Bumped whenever the span record layout or envelope keys change.
SPAN_SCHEMA_VERSION = 1

#: ``REPRO_SPANS=0`` (or false/no/off) disables span recording fleet-wide.
#: Deliberately *not* in ``RESULT_AFFECTING_ENV``: spans observe job
#: execution, they cannot change payloads (the parity suite is the proof).
SPANS_ENV = "REPRO_SPANS"

#: The span-context envelope keys — the future HTTP header names of the
#: multi-host campaign protocol (ROADMAP item 3).
ENVELOPE_TRACE_KEY = "repro-trace-id"
ENVELOPE_PARENT_KEY = "repro-parent-id"
ENVELOPE_SCHEMA_KEY = "repro-span-schema"

#: Span kinds, root to leaf.  ``attempt`` marks a failed try that was
#: retried/quarantined; the succeeding try is the ``job`` span.
SPAN_KINDS = ("campaign", "batch", "job", "phase", "attempt")

#: Span id of the (single) campaign root span.
CAMPAIGN_SPAN_ID = "campaign"

#: Separator keeping ("a","bc") and ("ab","c") on distinct trace ids.
_DERIVE_SEPARATOR = "\x1f"


def spans_enabled(environ: Optional[Mapping[str, str]] = None) -> bool:
    """Whether span recording is on (default) for this process."""
    env = os.environ if environ is None else environ
    return env.get(SPANS_ENV, "").strip().lower() not in ("0", "false", "no", "off")


def derive_trace_id(*parts: str) -> str:
    """A deterministic trace id from identity material (fingerprints).

    Pure content hash — two runs of the same campaign share a trace id,
    which is exactly what lets their exported timelines be diffed byte
    for byte.
    """
    blob = _DERIVE_SEPARATOR.join(("repro-trace",) + parts).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


@dataclass(frozen=True)
class SpanContext:
    """The propagated trace position: which trace, which parent span."""

    trace_id: str
    parent_id: str

    def to_envelope(self) -> Dict[str, str]:
        """Serialize as a flat string mapping (the wire format)."""
        return {
            ENVELOPE_TRACE_KEY: self.trace_id,
            ENVELOPE_PARENT_KEY: self.parent_id,
            ENVELOPE_SCHEMA_KEY: str(SPAN_SCHEMA_VERSION),
        }

    @classmethod
    def from_envelope(cls, envelope: Mapping[str, str]) -> "SpanContext":
        """Parse an envelope produced by :meth:`to_envelope`.

        Key lookup is case-insensitive (HTTP header semantics); a newer
        schema number is rejected rather than misread.
        """
        lowered = {str(k).lower(): str(v) for k, v in envelope.items()}
        schema = int(lowered.get(ENVELOPE_SCHEMA_KEY, SPAN_SCHEMA_VERSION))
        if schema > SPAN_SCHEMA_VERSION:
            raise ConfigurationError(
                f"span envelope schema {schema} is newer than supported "
                f"{SPAN_SCHEMA_VERSION}"
            )
        try:
            return cls(
                trace_id=lowered[ENVELOPE_TRACE_KEY],
                parent_id=lowered[ENVELOPE_PARENT_KEY],
            )
        except KeyError as error:
            raise ConfigurationError(
                f"span envelope is missing {error.args[0]!r}"
            ) from error


def job_span_id(fingerprint: str, attempt: int) -> str:
    """The deterministic span id of one job attempt."""
    return f"{fingerprint[:12]}/a{attempt}"


def _record(
    span_id: str,
    parent_id: str,
    trace_id: str,
    name: str,
    kind: str,
    *,
    sim_start_s: float = 0.0,
    sim_end_s: float = 0.0,
    status: str = "ok",
    attrs: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One deterministic span record (no wall-clock fields, ever)."""
    return {
        "span_id": span_id,
        "parent_id": parent_id,
        "trace_id": trace_id,
        "name": name,
        "kind": kind,
        "sim_start_s": float(sim_start_s),
        "sim_end_s": float(sim_end_s),
        "status": status,
        "attrs": dict(attrs or {}),
    }


def _sim_duration(record: Mapping[str, Any]) -> float:
    return max(0.0, record["sim_end_s"] - record["sim_start_s"])


class _PhaseHandle:
    """Context manager for one named phase inside a job span.

    ``sim_start_s``/``end_sim`` are simulation-clock seconds the
    instrumented code sets (``handle.end_sim = machine.now``); wall
    timing is captured automatically into the recorder's sidecar.
    """

    __slots__ = ("name", "sim_start_s", "end_sim", "_recorder", "_wall_start")

    def __init__(self, recorder: "SpanRecorder", name: str, sim_start_s: float) -> None:
        self.name = name
        self.sim_start_s = float(sim_start_s)
        #: Simulation time at phase end; ``None`` means "no sim clock
        #: advanced" and the phase records zero sim duration.
        self.end_sim: Optional[float] = None
        self._recorder = recorder
        self._wall_start = 0.0

    def __enter__(self) -> "_PhaseHandle":
        self._wall_start = time.monotonic()
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        self._recorder._finish_phase(self, failed=exc_type is not None)
        return False


class _NullPhaseHandle:
    """Shared no-op phase handle (accepts ``end_sim`` writes, keeps nothing)."""

    __slots__ = ("end_sim",)

    def __init__(self) -> None:
        self.end_sim: Optional[float] = None

    def __enter__(self) -> "_NullPhaseHandle":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


class SpanRecorder:
    """Worker-side span buffer for one job attempt.

    ``execute_job`` opens the job span (:meth:`begin_job`), job code
    marks phases via ``telemetry.spans.phase(...)``, and the closed
    buffer (:meth:`export`) travels home in the
    :class:`~repro.engine.jobs.JobResult`.  Records are purely
    sim-time/identity data; wall clocks land in the sidecar only.
    """

    enabled = True

    def __init__(self) -> None:
        self._trace_id = ""
        self._parent_id = ""
        self._root_id = ""
        self._name = ""
        self._attempt = 1
        self._fingerprint = ""
        self._status = "ok"
        self._phases: List[Dict[str, Any]] = []
        self._wall: Dict[str, Dict[str, Any]] = {}

    def begin_job(
        self,
        *,
        fingerprint: str,
        kind: str,
        attempt: int = 1,
        context: Optional[SpanContext] = None,
    ) -> str:
        """Open the job span; returns its deterministic span id.

        Without a propagated ``context`` (a job executed outside a
        session batch) the trace id derives from the fingerprint alone
        and the span is a root.
        """
        self._fingerprint = fingerprint
        self._name = kind
        self._attempt = int(attempt)
        if context is not None:
            self._trace_id = context.trace_id
            self._parent_id = context.parent_id
        else:
            self._trace_id = derive_trace_id(fingerprint)
            self._parent_id = ""
        self._root_id = job_span_id(fingerprint, self._attempt)
        self._wall[self._root_id] = {
            "start_monotonic_s": time.monotonic(),
            "start_unix_s": time.time(),
            "pid": os.getpid(),
        }
        return self._root_id

    def phase(self, name: str, *, sim_start_s: float = 0.0) -> _PhaseHandle:
        """A context manager marking one named phase of the job.

        The caller sets ``handle.end_sim`` to the simulation clock at
        phase end (``machine.now``); leaving it unset records a
        zero-sim-duration phase (pure-arithmetic work with no machine).
        """
        return _PhaseHandle(self, name, sim_start_s)

    def _finish_phase(self, handle: _PhaseHandle, *, failed: bool) -> None:
        ordinal = len(self._phases)
        parent = self._root_id or ""
        span_id = f"{parent}/p{ordinal}" if parent else f"p{ordinal}"
        end_sim = handle.end_sim if handle.end_sim is not None else handle.sim_start_s
        self._phases.append(
            _record(
                span_id,
                parent,
                self._trace_id,
                handle.name,
                "phase",
                sim_start_s=handle.sim_start_s,
                sim_end_s=end_sim,
                status="error" if failed else "ok",
            )
        )
        now = time.monotonic()
        self._wall[span_id] = {
            "start_monotonic_s": handle._wall_start,
            "duration_s": max(0.0, now - handle._wall_start),
            "pid": os.getpid(),
        }

    def finish_job(self, status: str = "ok") -> None:
        """Close the job span (sim duration = sum of phase durations)."""
        self._status = status
        entry = self._wall.get(self._root_id)
        if entry is not None and "duration_s" not in entry:
            entry["duration_s"] = max(
                0.0, time.monotonic() - entry["start_monotonic_s"]
            )

    def export(self) -> Tuple[List[Dict[str, Any]], Dict[str, Dict[str, Any]]]:
        """The (records, wall sidecar) pair shipped in the job result.

        The job span comes first, then its phases in the order they
        closed — a deterministic order for a deterministic job.
        """
        records: List[Dict[str, Any]] = []
        if self._root_id:
            sim_end = sum(_sim_duration(p) for p in self._phases)
            records.append(
                _record(
                    self._root_id,
                    self._parent_id,
                    self._trace_id,
                    self._name,
                    "job",
                    sim_end_s=sim_end,
                    status=self._status,
                    attrs={
                        "attempt": self._attempt,
                        "fingerprint": self._fingerprint,
                    },
                )
            )
        records.extend(self._phases)
        return records, dict(self._wall)


class _NullSpanRecorder(SpanRecorder):
    """Recorder that drops everything (the ``REPRO_SPANS=0`` fast path)."""

    enabled = False

    def begin_job(self, **_kwargs) -> str:  # noqa: D102 - inherited contract
        return ""

    def phase(self, name: str, *, sim_start_s: float = 0.0):  # noqa: D102
        return _NULL_PHASE

    def finish_job(self, status: str = "ok") -> None:  # noqa: D102
        return None

    def export(self):  # noqa: D102 - inherited contract
        return [], {}


_NULL_PHASE = _NullPhaseHandle()

#: The shared disabled recorder.  Stateless (nothing ever lands), so one
#: instance serves every disabled telemetry handle.
NULL_SPANS = _NullSpanRecorder()


def note_queue_wait(
    spans: Sequence[Dict[str, Any]],
    wall: Dict[str, Dict[str, Any]],
    submitted_monotonic_s: float,
) -> None:
    """Record queue wait into a landed result's wall sidecar.

    The executor timestamps submission in the parent; the worker
    timestamped the job span's start.  ``CLOCK_MONOTONIC`` is
    system-wide on the platforms the pool runs on, so the difference is
    the time the attempt spent queued before a worker picked it up.
    Wall-clock only — never touches the deterministic records.
    """
    for record in spans:
        if record.get("kind") != "job":
            continue
        entry = wall.get(record["span_id"])
        if entry is not None and "start_monotonic_s" in entry:
            entry["queue_wait_s"] = max(
                0.0, entry["start_monotonic_s"] - submitted_monotonic_s
            )
        return


def _percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an unsorted sample (0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[int(rank)]


class FleetTimeline:
    """The session-side merge of every worker's span buffers.

    One timeline per :class:`~repro.engine.session.EngineSession`:
    ``begin_batch`` opens a batch span and returns the
    :class:`SpanContext` shipped with every attempt; ``end_batch``
    grafts the returned buffers *in input order* plus a deterministic
    record per failed attempt.  The result: a span tree whose records
    are byte-identical whichever executor ran the campaign, with every
    wall-clock measurement segregated in :attr:`wall`.
    """

    def __init__(self) -> None:
        self.trace_id: Optional[str] = None
        self._spans: List[Dict[str, Any]] = []
        #: span id → wall-clock sidecar entry (labelled non-deterministic).
        self.wall: Dict[str, Dict[str, Any]] = {}
        self._by_id: Dict[str, Dict[str, Any]] = {}
        self._batches = 0

    def __len__(self) -> int:
        return len(self._spans)

    @property
    def spans(self) -> Tuple[Dict[str, Any], ...]:
        """The deterministic span records, tree order (campaign first)."""
        return tuple(self._spans)

    @property
    def batches(self) -> int:
        return self._batches

    def _append(self, record: Dict[str, Any]) -> Dict[str, Any]:
        self._spans.append(record)
        self._by_id.setdefault(record["span_id"], record)
        return record

    # -- recording ---------------------------------------------------------------

    def begin_batch(self, fingerprints: Sequence[str]) -> SpanContext:
        """Open a batch span; returns the context shipped to workers.

        The trace id derives from the first batch's ordered job
        fingerprints — pure identity, so reruns share it.
        """
        if self.trace_id is None:
            self.trace_id = derive_trace_id(*fingerprints)
            self._append(
                _record(
                    CAMPAIGN_SPAN_ID, "", self.trace_id, "campaign", "campaign"
                )
            )
            self.wall[CAMPAIGN_SPAN_ID] = {
                "start_monotonic_s": time.monotonic(),
                "start_unix_s": time.time(),
                "pid": os.getpid(),
            }
        batch_id = f"batch-{self._batches}"
        self._batches += 1
        self._append(
            _record(
                batch_id,
                CAMPAIGN_SPAN_ID,
                self.trace_id,
                batch_id,
                "batch",
                attrs={"jobs": len(fingerprints)},
            )
        )
        self.wall[batch_id] = {
            "start_monotonic_s": time.monotonic(),
            "pid": os.getpid(),
        }
        return SpanContext(trace_id=self.trace_id, parent_id=batch_id)

    def end_batch(
        self,
        context: SpanContext,
        results: Sequence[Any],
        *,
        failures: Iterable[Dict[str, Any]] = (),
        wall_s: Optional[float] = None,
    ) -> None:
        """Graft one finished batch: worker buffers + failed attempts.

        ``results`` are :class:`~repro.engine.jobs.JobResult`-shaped (in
        input order); ``failures`` are the executor's failed-attempt
        records, sorted here by (fingerprint, attempt) so their order
        never depends on parallel completion interleaving.
        """
        batch_id = context.parent_id
        sim_total = 0.0
        for result in results:
            for record in getattr(result, "spans", ()) or ():
                grafted = self._append(dict(record))
                if grafted["kind"] == "job":
                    sim_total += _sim_duration(grafted)
            self.wall.update(getattr(result, "span_wall", None) or {})
        for failure in sorted(
            failures, key=lambda f: (f.get("fingerprint", ""), f.get("attempt", 0))
        ):
            fingerprint = failure.get("fingerprint", "")
            attempt = int(failure.get("attempt", 1))
            self._append(
                _record(
                    job_span_id(fingerprint, attempt),
                    batch_id,
                    self.trace_id or "",
                    failure.get("kind", "job"),
                    "attempt",
                    status="error",
                    attrs={
                        "attempt": attempt,
                        "error_type": failure.get("error_type", ""),
                        "fingerprint": fingerprint,
                    },
                )
            )
        batch = self._by_id.get(batch_id)
        if batch is not None:
            batch["sim_end_s"] = batch["sim_start_s"] + sim_total
        campaign = self._by_id.get(CAMPAIGN_SPAN_ID)
        if campaign is not None:
            campaign["sim_end_s"] += sim_total
        entry = self.wall.get(batch_id)
        if entry is not None:
            entry["duration_s"] = (
                float(wall_s)
                if wall_s is not None
                else max(0.0, time.monotonic() - entry["start_monotonic_s"])
            )
        root_entry = self.wall.get(CAMPAIGN_SPAN_ID)
        if root_entry is not None:
            root_entry["duration_s"] = max(
                0.0, time.monotonic() - root_entry["start_monotonic_s"]
            )

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dump: deterministic records + the ``wall`` sidecar.

        Everything outside the ``wall`` key is byte-identical across
        executors; ``wall`` is the labelled non-deterministic sidecar.
        """
        payload = self.deterministic_dict()
        payload["wall"] = {k: dict(v) for k, v in self.wall.items()}
        return payload

    def deterministic_dict(self) -> Dict[str, Any]:
        """The dump without the wall sidecar — the byte-identity surface."""
        return {
            "kind": "span-timeline",
            "schema": SPAN_SCHEMA_VERSION,
            "trace_id": self.trace_id,
            "batches": self._batches,
            "spans": [dict(record) for record in self._spans],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FleetTimeline":
        """Rebuild a timeline recorded by :meth:`to_dict`."""
        if payload.get("kind") != "span-timeline":
            raise ConfigurationError(
                f"not a span timeline: kind={payload.get('kind')!r}"
            )
        schema = int(payload.get("schema", 0))
        if schema > SPAN_SCHEMA_VERSION:
            raise ConfigurationError(
                f"span timeline schema {schema} is newer than supported "
                f"{SPAN_SCHEMA_VERSION}"
            )
        timeline = cls()
        timeline.trace_id = payload.get("trace_id")
        timeline._batches = int(payload.get("batches", 0))
        for record in payload.get("spans", []):
            timeline._append(dict(record))
        timeline.wall = {
            str(k): dict(v) for k, v in (payload.get("wall") or {}).items()
        }
        return timeline

    # -- exports -----------------------------------------------------------------

    def _children(self) -> Dict[str, List[Dict[str, Any]]]:
        children: Dict[str, List[Dict[str, Any]]] = {}
        for record in self._spans:
            children.setdefault(record["parent_id"], []).append(record)
        return children

    def to_events(self) -> List[TraceEvent]:
        """The merged timeline as Chrome-trace events (sim time only).

        Jobs are laid out *serialized*: consecutive sim intervals in
        input order, so the fleet's total sim work reads as one
        contiguous track and the export is byte-identical across
        executors (a wall-clock lane layout lives in
        :meth:`wall_events` instead).
        """
        children = self._children()
        layout: Dict[str, Tuple[float, float]] = {}
        cursor = 0.0
        for batch in children.get(CAMPAIGN_SPAN_ID, []):
            batch_start = cursor
            for child in children.get(batch["span_id"], []):
                if child["kind"] == "attempt":
                    layout[child["span_id"]] = (cursor, 0.0)
                    continue
                job_start = cursor
                phase_cursor = job_start
                for phase in children.get(child["span_id"], []):
                    duration = _sim_duration(phase)
                    layout[phase["span_id"]] = (phase_cursor, duration)
                    phase_cursor += duration
                duration = _sim_duration(child)
                layout[child["span_id"]] = (job_start, duration)
                cursor = job_start + duration
            layout[batch["span_id"]] = (batch_start, cursor - batch_start)
        layout[CAMPAIGN_SPAN_ID] = (0.0, cursor)
        events: List[TraceEvent] = []
        for record in self._spans:
            start, duration = layout.get(record["span_id"], (0.0, 0.0))
            args = dict(record["attrs"])
            args["span_id"] = record["span_id"]
            args["status"] = record["status"]
            events.append(
                TraceEvent(
                    name=record["name"],
                    category=record["kind"],
                    phase=PHASE_COMPLETE,
                    time_s=start,
                    duration_s=duration,
                    track="fleet-sim",
                    args=tuple(sorted(args.items())),
                )
            )
        return events

    def wall_events(self) -> List[TraceEvent]:
        """The wall-clock lane layout: one track per worker pid.

        Non-deterministic by nature (real scheduling); exported
        separately from :meth:`to_events` so the deterministic trace
        stays byte-comparable.
        """
        starts = [
            entry["start_monotonic_s"]
            for entry in self.wall.values()
            if "start_monotonic_s" in entry
        ]
        if not starts:
            return []
        origin = min(starts)
        events: List[TraceEvent] = []
        for record in self._spans:
            entry = self.wall.get(record["span_id"])
            if entry is None or "start_monotonic_s" not in entry:
                continue
            args = {
                "span_id": record["span_id"],
                "kind": record["kind"],
                "status": record["status"],
            }
            if "queue_wait_s" in entry:
                args["queue_wait_s"] = entry["queue_wait_s"]
            events.append(
                TraceEvent(
                    name=record["name"],
                    category="wall",
                    phase=PHASE_COMPLETE,
                    time_s=max(0.0, entry["start_monotonic_s"] - origin),
                    duration_s=float(entry.get("duration_s", 0.0)),
                    track=f"pid-{entry.get('pid', '?')}",
                    args=tuple(sorted(args.items())),
                )
            )
        return events

    # -- analysis ----------------------------------------------------------------

    def latency(self) -> Dict[str, Dict[str, Any]]:
        """Per-job-kind wall latency attribution (non-deterministic).

        For each kind: job count, queue-wait and execute-time p50/p95/max
        from the wall sidecar.  Queue wait only exists where an executor
        timestamped the submission (the serial path reports ~0).
        """
        queue: Dict[str, List[float]] = {}
        execute: Dict[str, List[float]] = {}
        for record in self._spans:
            if record["kind"] != "job":
                continue
            entry = self.wall.get(record["span_id"])
            if entry is None:
                continue
            kind = record["name"]
            if "duration_s" in entry:
                execute.setdefault(kind, []).append(float(entry["duration_s"]))
            if "queue_wait_s" in entry:
                queue.setdefault(kind, []).append(float(entry["queue_wait_s"]))
        summary: Dict[str, Dict[str, Any]] = {}
        for kind in sorted(set(queue) | set(execute)):
            waits = queue.get(kind, [])
            execs = execute.get(kind, [])
            summary[kind] = {
                "jobs": len(execs) or len(waits),
                "queue_wait_s": {
                    "p50": _percentile(waits, 50),
                    "p95": _percentile(waits, 95),
                    "max": max(waits) if waits else 0.0,
                },
                "exec_s": {
                    "p50": _percentile(execs, 50),
                    "p95": _percentile(execs, 95),
                    "max": max(execs) if execs else 0.0,
                },
            }
        return summary

    def attempts_by_kind(self) -> Dict[str, Dict[str, int]]:
        """Failed-attempt accounting per job kind (deterministic).

        ``retried`` counts every failed attempt span; ``abandoned`` the
        subset whose error was a timeout (the attempt could not be
        preempted and its late result was discarded).
        """
        table: Dict[str, Dict[str, int]] = {}
        for record in self._spans:
            if record["kind"] != "attempt":
                continue
            bucket = table.setdefault(
                record["name"], {"retried": 0, "abandoned": 0}
            )
            bucket["retried"] += 1
            if record["attrs"].get("error_type") == "TimeoutError":
                bucket["abandoned"] += 1
        return table

    def summary(self) -> Dict[str, Any]:
        """Manifest-ready digest: deterministic tree stats + wall latency.

        Everything except the ``wall`` key is deterministic; ``wall``
        carries the latency attribution and is labelled accordingly
        wherever it renders (run reports, ``repro status``).
        """
        by_kind: Dict[str, Dict[str, float]] = {}
        for record in self._spans:
            bucket = by_kind.setdefault(record["kind"], {"spans": 0, "sim_s": 0.0})
            bucket["spans"] += 1
            bucket["sim_s"] += _sim_duration(record)
        return {
            "schema": SPAN_SCHEMA_VERSION,
            "trace_id": self.trace_id,
            "batches": self._batches,
            "spans": len(self._spans),
            "by_kind": {k: dict(v) for k, v in sorted(by_kind.items())},
            "attempts": self.attempts_by_kind(),
            "wall": self.latency(),
        }

    def render(self) -> str:
        """Human-readable digest for ``repro spans``."""
        lines = [
            f"trace {self.trace_id or '(empty)'}  "
            f"spans={len(self._spans)} batches={self._batches}"
        ]
        summary = self.summary()
        for kind, bucket in summary["by_kind"].items():
            lines.append(
                f"  {kind:10s} spans={int(bucket['spans']):5d} "
                f"sim={bucket['sim_s']:.6g}s"
            )
        latency = summary["wall"]
        if latency:
            lines.append("  wall latency (non-deterministic):")
            for kind, stats in latency.items():
                queue_wait = stats["queue_wait_s"]
                exec_s = stats["exec_s"]
                lines.append(
                    f"    {kind:22s} jobs={stats['jobs']:4d} "
                    f"queue p50={queue_wait['p50']:.4f}s "
                    f"p95={queue_wait['p95']:.4f}s "
                    f"exec p50={exec_s['p50']:.4f}s "
                    f"p95={exec_s['p95']:.4f}s"
                )
        attempts = summary["attempts"]
        if attempts:
            lines.append("  failed attempts:")
            for kind, bucket in sorted(attempts.items()):
                lines.append(
                    f"    {kind:22s} retried={bucket['retried']} "
                    f"abandoned={bucket['abandoned']}"
                )
        return "\n".join(lines)
