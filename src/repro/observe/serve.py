"""Stdlib HTTP serving of live telemetry (``/metrics`` + ``/healthz``).

:class:`MetricsServer` wraps a ``ThreadingHTTPServer`` running in a
daemon thread and renders a telemetry :class:`Registry` to OpenMetrics
text on every scrape.  It reads instrument state without locks — every
instrument mutation is a single attribute store, so a scrape can at
worst observe one metric mid-update, never a torn value — which keeps
the simulation hot path entirely free of serving overhead.

The registry is supplied as a zero-argument provider callable, so the
server can follow whatever registry is current (e.g. the engine
session's merged counters) rather than holding a stale handle.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Optional

from repro.errors import ObserveError
from repro.observe.openmetrics import OPENMETRICS_CONTENT_TYPE, render_openmetrics


class _MetricsHandler(BaseHTTPRequestHandler):
    """Serves ``/metrics`` (OpenMetrics) and ``/healthz`` (liveness)."""

    server_version = "repro-observe/1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = render_openmetrics(self.server.registry_provider()).encode("utf-8")
            self._reply(200, OPENMETRICS_CONTENT_TYPE, body)
        elif path == "/healthz":
            self._reply(200, "text/plain; charset=utf-8", b"ok\n")
        else:
            self._reply(404, "text/plain; charset=utf-8", b"not found\n")

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Silence per-request stderr logging (scrapes are periodic)."""


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    registry_provider: Callable[[], Any]


class MetricsServer:
    """Background OpenMetrics endpoint for one registry (or provider).

    ``port=0`` asks the OS for a free port (read it back from
    :attr:`port` after :meth:`start`); ``host`` defaults to loopback —
    exposing simulation metrics beyond the local machine is a deliberate
    caller decision.
    """

    def __init__(
        self,
        registry: Any = None,
        *,
        provider: Optional[Callable[[], Any]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if (registry is None) == (provider is None):
            raise ObserveError("pass exactly one of registry or provider")
        self._provider = provider if provider is not None else (lambda: registry)
        self._host = host
        self._requested_port = port
        self._server: Optional[_Server] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port (the requested one until :meth:`start`)."""
        if self._server is not None:
            return self._server.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        """The ``/metrics`` URL of the running (or configured) server."""
        return f"http://{self._host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        """Bind and begin serving in a daemon thread.

        A requested port that is already in use (or otherwise unbindable)
        raises :class:`~repro.errors.ObserveError` naming the address and
        the fix, instead of leaking the raw ``OSError`` traceback.
        """
        if self._server is not None:
            raise ObserveError("metrics server already started")
        try:
            server = _Server((self._host, self._requested_port), _MetricsHandler)
        except OSError as error:
            raise ObserveError(
                f"cannot bind metrics server to "
                f"{self._host}:{self._requested_port} ({error}); pass "
                "--serve-port 0 (or port=0) to pick a free ephemeral port"
            ) from error
        server.registry_provider = self._provider
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join the serving thread."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "running" if self._server is not None else "stopped"
        return f"MetricsServer({self.url!r}, {state})"
