"""Campaign run reports: manifest loading and Markdown rendering.

The engine session records what actually happened during a run — which
jobs executed versus hit the cache, their fingerprints and seed-stream
paths, batch wall times, the environment knobs in force, and a final
metric snapshot — into a ``run.json`` manifest
(:meth:`repro.engine.EngineSession.run_manifest`).  This module turns
that manifest into the human-facing Markdown the ``repro report``
command prints: the provenance page one attaches to a set of campaign
artifacts.

Wall-clock durations appear here (a report is about one concrete run),
but they are clearly labelled and everything else in the manifest is
deterministic, so two same-seed runs differ only in the ``wall_s``
fields.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.errors import ObserveError

#: Manifest schema tag (see ``EngineSession.run_manifest``).
#: v2 added the resilience fields: per-job payload sources
#: (cache/resumed/executed/quarantined), the quarantine list and the
#: supervision stats.  v3 added the registry provenance fields: the
#: content-addressed ``run_id``, the ``code`` fingerprint
#: (version + git-describe) and the resolved result-affecting
#: environment.  v1 and v2 manifests still load and render.
REPORT_SCHEMA_VERSION = 3

#: Schemas this renderer accepts.
SUPPORTED_SCHEMAS = (1, 2, 3)

#: Manifest discriminator.
REPORT_KIND = "run-report"


def load_manifest(source: Union[str, Path, Dict[str, Any]]) -> Dict[str, Any]:
    """Load and validate a run manifest (path, JSON text, or dict)."""
    if isinstance(source, dict):
        manifest = source
    else:
        if isinstance(source, Path) or "{" not in str(source):
            text = Path(source).read_text()
        else:
            text = str(source)
        manifest = json.loads(text)
    if not isinstance(manifest, dict) or manifest.get("kind") != REPORT_KIND:
        raise ObserveError("not a run-report manifest")
    if manifest.get("schema") not in SUPPORTED_SCHEMAS:
        raise ObserveError(
            f"run-report schema {manifest.get('schema')!r} not in "
            f"{SUPPORTED_SCHEMAS}"
        )
    return manifest


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_markdown(manifest: Dict[str, Any]) -> str:
    """The Markdown report for one run manifest."""
    manifest = load_manifest(manifest)
    lines: List[str] = ["# Campaign run report", ""]

    # Schema-3 provenance header: the registry run id and the code that
    # recorded it (older manifests simply have neither).
    run_id = manifest.get("run_id")
    code = manifest.get("code") or {}
    if run_id or code:
        lines += ["## Provenance", ""]
        if run_id:
            lines.append(f"- run id: `{run_id}`")
        if code:
            describe = code.get("describe") or "unknown checkout"
            lines.append(
                f"- code: repro {code.get('version', '?')} ({describe})"
            )
        lines.append("")

    engine = manifest.get("engine", {})
    cache = engine.get("cache", {})
    jobs = manifest.get("jobs", {})
    total = jobs.get("total", 0)
    cached = jobs.get("cached", 0)
    executed = jobs.get("executed", 0)
    resumed = jobs.get("resumed", 0)
    hit_rate = (cached / total) if total else 0.0
    job_line = (
        f"- jobs: {total} total, {executed} executed, {cached} served from "
        f"cache (hit rate {hit_rate:.0%})"
    )
    if resumed:
        job_line += f", {resumed} resumed from checkpoint"
    lines += [
        "## Engine",
        "",
        f"- executor: `{engine.get('executor', '?')}` "
        f"({engine.get('workers', 1)} worker(s))",
        job_line,
        f"- result cache: {cache.get('hits', 0)} hits / "
        f"{cache.get('misses', 0)} misses, "
        f"{engine.get('cached_entries', 0)} entries",
    ]
    checkpoint = engine.get("checkpoint")
    if checkpoint:
        lines.append(
            f"- checkpoint: `{checkpoint.get('directory', '?')}` "
            f"({checkpoint.get('completed', 0)} completed, "
            f"{checkpoint.get('quarantined', 0)} quarantined)"
        )
    lines.append("")

    supervision = engine.get("supervision") or {}
    quarantined = manifest.get("quarantined", [])
    if quarantined or any(supervision.values()):
        lines += [
            "## Resilience",
            "",
            f"- retries: {supervision.get('retries', 0)}, "
            f"timeouts: {supervision.get('timeouts', 0)}, "
            f"requeues after pool loss: {supervision.get('requeues', 0)}",
            f"- pool respawns: {supervision.get('respawns', 0)}, "
            f"jobs degraded to inline execution: "
            f"{supervision.get('degraded', 0)}",
            f"- quarantined jobs: {supervision.get('quarantined', 0)}",
            "",
        ]
        if quarantined:
            lines += [
                "| quarantined job | fingerprint | attempts | error |",
                "|-----------------|-------------|----------|-------|",
            ]
            for record in quarantined:
                lines.append(
                    f"| {record.get('kind', '?')} | "
                    f"`{str(record.get('fingerprint', ''))[:12]}` | "
                    f"{record.get('attempts', '?')} | "
                    f"{record.get('error_type', '?')}: "
                    f"{record.get('error_message', '')} |"
                )
            lines.append("")

    env = dict(manifest.get("env", {}))
    result_affecting = env.pop("result_affecting", None)
    if env:
        lines += ["## Environment", ""]
        lines += [f"- `{name}={value}`" for name, value in sorted(env.items())]
        lines.append("")
    if result_affecting:
        lines += [
            "## Result-affecting environment (resolved)",
            "",
        ]
        lines += [
            f"- `{name}`: `{value}`" if value else f"- `{name}`: unset"
            for name, value in sorted(result_affecting.items())
        ]
        lines.append("")

    batches = manifest.get("batches", [])
    if batches:
        lines += [
            "## Batches",
            "",
            "| # | jobs | executed | cached | wall s (non-deterministic) |",
            "|---|------|----------|--------|----------------------------|",
        ]
        for index, batch in enumerate(batches):
            batch_jobs = batch.get("jobs", [])
            batch_cached = sum(1 for j in batch_jobs if j.get("cached"))
            lines.append(
                f"| {index} | {len(batch_jobs)} | "
                f"{len(batch_jobs) - batch_cached} | {batch_cached} | "
                f"{_fmt(batch.get('wall_s', 0.0))} |"
            )
        lines.append("")

        lines += [
            "## Jobs",
            "",
            "| kind | seed path | fingerprint | source |",
            "|------|-----------|-------------|--------|",
        ]
        for batch in batches:
            for job in batch.get("jobs", []):
                path = "/".join(str(p) for p in job.get("seed_path", ()))
                source = job.get(
                    "source", "cache" if job.get("cached") else "executed"
                )
                lines.append(
                    f"| {job.get('kind', '?')} | `{path}` | "
                    f"`{str(job.get('fingerprint', ''))[:12]}` | {source} |"
                )
        lines.append("")

    spans = manifest.get("spans") or {}
    if spans:
        lines += [
            "## Latency attribution (spans)",
            "",
            f"- trace id: `{spans.get('trace_id', '?')}` "
            f"({spans.get('spans', 0)} spans across "
            f"{spans.get('batches', 0)} batch(es))",
            "",
        ]
        by_kind = spans.get("by_kind") or {}
        if by_kind:
            lines += [
                "| span kind | spans | sim time s (deterministic) |",
                "|-----------|-------|----------------------------|",
            ]
            for kind, stats in sorted(by_kind.items()):
                lines.append(
                    f"| {kind} | {stats.get('spans', 0)} | "
                    f"{_fmt(stats.get('sim_s', 0.0))} |"
                )
            lines.append("")
        wall = spans.get("wall") or {}
        if wall:
            lines += [
                "| job kind | jobs | queue p50 | queue p95 | exec p50 | "
                "exec p95 (wall s, non-deterministic) |",
                "|----------|------|-----------|-----------|----------|"
                "-------------------------------------|",
            ]
            for kind, stats in sorted(wall.items()):
                queue = stats.get("queue_wait_s", {})
                execute = stats.get("exec_s", {})
                lines.append(
                    f"| {kind} | {stats.get('jobs', 0)} | "
                    f"{_fmt(queue.get('p50', 0.0))} | "
                    f"{_fmt(queue.get('p95', 0.0))} | "
                    f"{_fmt(execute.get('p50', 0.0))} | "
                    f"{_fmt(execute.get('p95', 0.0))} |"
                )
            lines.append("")
        attempts = spans.get("attempts") or {}
        if any(
            counts.get("retried") or counts.get("abandoned")
            for counts in attempts.values()
        ):
            lines += [
                "| job kind | failed attempts | abandoned (timeout) |",
                "|----------|-----------------|---------------------|",
            ]
            for kind, counts in sorted(attempts.items()):
                lines.append(
                    f"| {kind} | {counts.get('retried', 0)} | "
                    f"{counts.get('abandoned', 0)} |"
                )
            lines.append("")

    metrics = manifest.get("metrics", {})
    counters = metrics.get("counters", {})
    if counters:
        lines += [
            "## Counters",
            "",
            "| counter | value |",
            "|---------|-------|",
        ]
        lines += [
            f"| `{name}` | {value} |" for name, value in sorted(counters.items())
        ]
        lines.append("")
    histograms = metrics.get("histograms", {})
    if histograms:
        lines += [
            "## Histograms",
            "",
            "| histogram | count | mean | stddev | min | max |",
            "|-----------|-------|------|--------|-----|-----|",
        ]
        for name, stats in sorted(histograms.items()):
            lines.append(
                f"| `{name}` | {stats.get('count', 0)} | "
                f"{_fmt(stats.get('mean', 0.0))} | "
                f"{_fmt(stats.get('stddev', 0.0))} | "
                f"{_fmt(stats.get('min'))} | {_fmt(stats.get('max'))} |"
            )
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"


def write_markdown(
    manifest: Union[str, Path, Dict[str, Any]], path: Union[str, Path]
) -> Path:
    """Render ``manifest`` and write the Markdown to ``path``."""
    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_markdown(manifest))
    return target
