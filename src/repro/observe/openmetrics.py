"""OpenMetrics text exposition for a telemetry :class:`Registry`.

Renders the dotted-name instruments (``countermeasure.polls``,
``msr.writes``, ``engine.progress.completed``...) into the
OpenMetrics/Prometheus text format so a live campaign can be scraped by
any standard collector (or just ``curl``'d and eyeballed):

* counters become ``counter`` families with the mandatory ``_total``
  sample suffix;
* gauges become ``gauge`` families;
* histograms become ``summary`` families with ``quantile`` labels for
  p50/p95/p99 plus exact ``_sum``/``_count`` samples — the quantiles use
  :meth:`Histogram.percentile`, which falls back to the exact min/max
  aggregates when sample truncation applies, so a scraped summary is
  never silently wrong about the tails.

Prometheus metric names cannot contain dots, so every name is prefixed
with ``repro_`` and sanitized (dots → underscores); the ``HELP`` line
preserves the original dotted name so scrape output stays greppable for
the in-repo spelling.
"""

from __future__ import annotations

import re
from typing import Any

#: Content type a compliant OpenMetrics endpoint must serve.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

#: Summary quantiles exposed for each histogram.
SUMMARY_QUANTILES = ((0.5, 50.0), (0.95, 95.0), (0.99, 99.0))

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(dotted: str) -> str:
    """The OpenMetrics-legal name for a dotted instrument name."""
    sanitized = _NAME_SANITIZER.sub("_", dotted)
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] == "_"):
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def _sample(value: Any) -> str:
    """Format a sample value (integers stay integral)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_openmetrics(registry: Any) -> str:
    """The full exposition text for every instrument in ``registry``.

    Ends with the ``# EOF`` marker OpenMetrics requires; safe to call
    mid-run (it only reads instrument state).
    """
    lines = []
    for counter in registry.counters():
        name = metric_name(counter.name)
        lines.append(f"# TYPE {name} counter")
        lines.append(f"# HELP {name} repro counter {counter.name}")
        lines.append(f"{name}_total {_sample(counter.value)}")
    for gauge in registry.gauges():
        name = metric_name(gauge.name)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"# HELP {name} repro gauge {gauge.name}")
        lines.append(f"{name} {_sample(gauge.value)}")
    for hist in registry.histograms():
        name = metric_name(hist.name)
        lines.append(f"# TYPE {name} summary")
        lines.append(f"# HELP {name} repro histogram {hist.name}")
        if hist.count:
            for label, q in SUMMARY_QUANTILES:
                lines.append(
                    f'{name}{{quantile="{label}"}} {_sample(hist.percentile(q))}'
                )
        lines.append(f"{name}_sum {_sample(hist.total)}")
        lines.append(f"{name}_count {_sample(hist.count)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
