"""Rendering: ASCII figures and aligned tables for every experiment.

The benchmark targets print through these helpers so the harness output
reads like the paper's artefacts: a safe/unsafe characterization map per
CPU (Figs. 2-4), the Table 2 overhead rows, the timing diagram facts of
Fig. 1, and the defense-comparison matrix.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence

from repro.core.characterization import CharacterizationResult
from repro.analysis.regions import extract_regions


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Monospace-aligned table."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_characterization_map(
    result: CharacterizationResult,
    *,
    offset_bin_mv: int = 10,
    max_depth_mv: int = 300,
) -> str:
    """The Figs. 2-4 view: offsets (rows) x frequencies (columns).

    Legend: ``.`` safe, ``x`` faults observed, ``#`` crash, `` `` not
    probed (beyond the crash at that frequency).
    """
    regions = extract_regions(result)
    if not regions:
        return "(empty characterization)"
    frequencies = [r.frequency_ghz for r in regions]
    lines = [
        f"{result.model.describe()}",
        f"safe '.' | fault 'x' | crash '#'   (columns: "
        f"{frequencies[0]:.1f}-{frequencies[-1]:.1f} GHz)",
    ]
    header = "offset mV  " + "".join(
        f"{f:>4.1f}"[-1] if i % 5 else f"{f:>4.1f}"[0] for i, f in enumerate(frequencies)
    )
    # A simple column ruler: mark every 5th frequency with its value.
    ruler = "           "
    for i, f in enumerate(frequencies):
        ruler += f"{f:.1f}"[0] if i % 5 == 0 else " "
    lines.append(ruler)
    del header
    by_freq = {round(r.frequency_ghz * 10): r for r in regions}
    for shallow in range(0, max_depth_mv, offset_bin_mv):
        deep = shallow + offset_bin_mv
        mid = -(shallow + offset_bin_mv / 2.0)
        row_chars = []
        for f in frequencies:
            region = by_freq[round(f * 10)]
            first_fault = region.first_fault_mv
            crash = region.crash_mv
            if crash is not None and mid <= crash:
                row_chars.append("#" if mid >= crash - offset_bin_mv else " ")
            elif first_fault is not None and mid <= first_fault:
                row_chars.append("x")
            else:
                row_chars.append(".")
        lines.append(f"{-shallow:>4d}..{-deep:<4d} " + "".join(row_chars))
    return "\n".join(lines)


def render_boundary_series(result: CharacterizationResult) -> str:
    """(frequency, first-fault offset, crash offset) series for plotting."""
    rows = []
    for region in extract_regions(result):
        rows.append(
            (
                f"{region.frequency_ghz:.1f}",
                region.first_fault_mv if region.first_fault_mv is not None else "-",
                region.crash_mv if region.crash_mv is not None else "-",
                region.fault_band_width_mv if region.fault_band_width_mv is not None else "-",
            )
        )
    return render_table(
        ["freq (GHz)", "first fault (mV)", "crash (mV)", "band width (mV)"],
        rows,
        title=f"Safe/unsafe boundary — {result.model.codename}",
    )


def render_defense_matrix(profiles: Iterable[Mapping[str, object]]) -> str:
    """The countermeasure-philosophy comparison of Sec. 1/4.1."""
    rows = []
    for profile in profiles:
        rows.append(
            (
                profile["defense"],
                "yes" if profile["prevents_injection"] else "no",
                "yes" if profile["benign_dvfs"] else "no",
                "yes" if profile["single_step_robust"] else "no",
                "yes" if profile["hw_deployable"] else "no",
                f"{float(profile['overhead']) * 100:.2f}%",
            )
        )
    return render_table(
        [
            "defense",
            "prevents injection",
            "benign DVFS",
            "single-step robust",
            "HW deployable",
            "overhead",
        ],
        rows,
        title="Countermeasure comparison",
    )
