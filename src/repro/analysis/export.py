"""Machine-readable export of experiment results.

Characterization grids and the Table 2 report can be written as CSV (for
plotting pipelines) and JSON (for programmatic reuse / persisting the
unsafe set a deployed module should enforce).
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Union

from repro.bench.runner import OverheadReport
from repro.core.characterization import CharacterizationResult

PathLike = Union[str, Path]


def characterization_to_csv(result: CharacterizationResult) -> str:
    """One row per probed cell: frequency, offset, faults, crashed."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["frequency_ghz", "offset_mv", "fault_count", "crashed"])
    for cell in result.cells:
        writer.writerow(
            [f"{cell.frequency_ghz:.1f}", cell.offset_mv, cell.fault_count, int(cell.crashed)]
        )
    return buffer.getvalue()


def boundary_to_csv(result: CharacterizationResult) -> str:
    """One row per frequency: the Figs. 2-4 boundary series."""
    from repro.analysis.regions import extract_regions

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["frequency_ghz", "first_fault_mv", "crash_mv", "band_width_mv"])
    for region in extract_regions(result):
        writer.writerow(
            [
                f"{region.frequency_ghz:.1f}",
                region.first_fault_mv if region.first_fault_mv is not None else "",
                region.crash_mv if region.crash_mv is not None else "",
                region.fault_band_width_mv
                if region.fault_band_width_mv is not None
                else "",
            ]
        )
    return buffer.getvalue()


def characterization_to_json(result: CharacterizationResult) -> str:
    """JSON bundle: model identity, unsafe set, maximal safe state.

    This is the artifact a deployed polling module would load at insmod
    time; :func:`unsafe_set_from_json` restores it.
    """
    payload = {
        "model": {
            "name": result.model.name,
            "codename": result.model.codename,
            "microcode": result.model.microcode,
        },
        "config": {
            "offset_start_mv": result.config.offset_start_mv,
            "offset_stop_mv": result.config.offset_stop_mv,
            "iterations": result.config.iterations,
        },
        "unsafe_states": result.unsafe_states.to_dict(),
        "maximal_safe_offset_mv": result.maximal_safe_offset_mv(),
        "crashes": result.crashes,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def unsafe_set_from_json(text: str):
    """Restore an :class:`UnsafeStateSet` from a characterization bundle."""
    from repro.core.unsafe_states import UnsafeStateSet

    payload = json.loads(text)
    return UnsafeStateSet.from_dict(payload["unsafe_states"])


def overhead_to_csv(report: OverheadReport) -> str:
    """Table 2 rows as CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [
            "benchmark",
            "base_without",
            "base_with",
            "base_slowdown_pct",
            "peak_without",
            "peak_with",
            "peak_slowdown_pct",
        ]
    )
    for row in report.rows:
        writer.writerow(
            [
                row.name,
                f"{row.base_without:.3f}",
                f"{row.base_with:.3f}",
                f"{row.base_slowdown * 100:.3f}",
                f"{row.peak_without:.3f}",
                f"{row.peak_with:.3f}",
                f"{row.peak_slowdown * 100:.3f}",
            ]
        )
    return buffer.getvalue()


def write_text(path: PathLike, content: str) -> Path:
    """Write an export to disk and return the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(content)
    return target
