"""Voltage/frequency timeline tracing.

Samples a core's electrical state on a fixed grid of simulated time so
experiments can *see* the countermeasure act: the attacker's write, the
target changing, the poll detecting, the regulator restoring.  Used by
the turnaround experiments and by the safety-invariant property tests.

The tracer is a thin consumer of :mod:`repro.telemetry`: when the
machine's telemetry is enabled, every sample is also emitted as a
``voltage`` counter-track event, so the applied/target offsets chart
alongside the MSR/regulator/countermeasure spans in Perfetto.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import ConfigurationError
from repro.testbench import Machine


@dataclass(frozen=True)
class TraceSample:
    """One point of the trace."""

    time_s: float
    frequency_ghz: float
    applied_offset_mv: float
    target_offset_mv: float
    voltage_volts: float


@dataclass
class VoltageTracer:
    """Periodic sampler of one core's operating point.

    Parameters
    ----------
    machine:
        The simulated system.
    core_index:
        Core to trace.
    sample_period_s:
        Sampling resolution (defaults to 20 us — fine enough to resolve
        poll periods and regulator latencies).
    """

    machine: Machine
    core_index: int = 0
    sample_period_s: float = 20e-6
    samples: List[TraceSample] = field(default_factory=list)
    _handle: Optional[object] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.sample_period_s <= 0:
            raise ConfigurationError("sample period must be positive")

    def start(self) -> None:
        """Begin sampling on the machine's simulator."""
        self._handle = self.machine.simulator.schedule_recurring(
            self.sample_period_s, self._sample
        )

    def stop(self) -> None:
        """Stop sampling."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _sample(self) -> None:
        core = self.machine.processor.core(self.core_index)
        now = self.machine.now
        sample = TraceSample(
            time_s=now,
            frequency_ghz=core.frequency_ghz,
            applied_offset_mv=core.applied_offset_mv(now),
            target_offset_mv=core.target_offset_mv(),
            voltage_volts=core.effective_voltage(now),
        )
        self.samples.append(sample)
        tracer = self.machine.telemetry.tracer
        if tracer.enabled:
            track = f"core{self.core_index}"
            tracer.counter_sample(
                "voltage.applied_mv", "voltage", now, sample.applied_offset_mv,
                track=track,
            )
            tracer.counter_sample(
                "voltage.target_mv", "voltage", now, sample.target_offset_mv,
                track=track,
            )

    # -- analysis ----------------------------------------------------------------

    def deepest_applied_offset_mv(self) -> float:
        """The most negative offset that was ever electrically effective."""
        if not self.samples:
            return 0.0
        return min(s.applied_offset_mv for s in self.samples)

    def violations(self, boundary_lookup: Callable[[float], Optional[float]]) -> List[TraceSample]:
        """Samples where the applied state was beyond a boundary.

        ``boundary_lookup`` maps a frequency to the shallowest unsafe
        offset (e.g. ``unsafe_states.effective_boundary_mv``).
        """
        bad = []
        for sample in self.samples:
            boundary = boundary_lookup(sample.frequency_ghz)
            if boundary is not None and sample.applied_offset_mv <= boundary:
                bad.append(sample)
        return bad

    def render(self, *, stride: int = 1) -> str:
        """A compact textual trace (every ``stride``-th sample)."""
        lines = ["time(us)  freq(GHz)  target(mV)  applied(mV)  V(mV)"]
        for sample in self.samples[::stride]:
            lines.append(
                f"{sample.time_s * 1e6:8.0f}  {sample.frequency_ghz:9.1f}  "
                f"{sample.target_offset_mv:10.0f}  {sample.applied_offset_mv:11.0f}  "
                f"{sample.voltage_volts * 1e3:5.0f}"
            )
        return "\n".join(lines)
