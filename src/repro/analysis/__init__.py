"""Analysis and reporting: region extraction, rendering, and export."""

from repro.analysis.export import (
    boundary_to_csv,
    characterization_to_csv,
    characterization_to_json,
    overhead_to_csv,
    unsafe_set_from_json,
    write_text,
)
from repro.analysis.regions import (
    FrequencyRegions,
    RegionSummary,
    extract_regions,
    summarize,
)
from repro.analysis.report import (
    render_boundary_series,
    render_characterization_map,
    render_defense_matrix,
    render_table,
)
from repro.analysis.timeline import TraceSample, VoltageTracer

__all__ = [
    "boundary_to_csv",
    "characterization_to_csv",
    "characterization_to_json",
    "overhead_to_csv",
    "unsafe_set_from_json",
    "write_text",
    "FrequencyRegions",
    "RegionSummary",
    "extract_regions",
    "summarize",
    "render_boundary_series",
    "render_characterization_map",
    "render_defense_matrix",
    "render_table",
    "TraceSample",
    "VoltageTracer",
]
