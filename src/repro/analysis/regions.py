"""Region extraction from characterization grids.

Turns the raw cell list of Algo 2 into the per-frequency structure the
paper's Figs. 2-4 visualise: a *safe* band of offsets, then a *fault*
band ("region of interest where faults begin to manifest"), then the
crash that bounds the unsafe region's width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.characterization import CharacterizationResult


@dataclass(frozen=True)
class FrequencyRegions:
    """The safe/fault/crash structure at one frequency."""

    frequency_ghz: float
    #: Deepest offset with no observed faults (the bottom of the safe band).
    deepest_safe_mv: Optional[int]
    #: Shallowest offset with observed faults (top of the fault band).
    first_fault_mv: Optional[int]
    #: Offset at which the machine crashed (bottom of the fault band).
    crash_mv: Optional[int]

    @property
    def fault_band_width_mv(self) -> Optional[int]:
        """Width of the unsafe-but-not-crashing band, if both edges known."""
        if self.first_fault_mv is None or self.crash_mv is None:
            return None
        return self.first_fault_mv - self.crash_mv

    @property
    def has_fault_band(self) -> bool:
        """Whether any faulting (non-crash) offset was observed."""
        return self.first_fault_mv is not None


def extract_regions(result: CharacterizationResult) -> List[FrequencyRegions]:
    """Per-frequency region structure, ascending frequency."""
    by_frequency: Dict[int, dict] = {}
    for cell in result.cells:
        key = round(cell.frequency_ghz * 10)
        bucket = by_frequency.setdefault(
            key, {"safe": [], "fault": [], "crash": []}
        )
        if cell.crashed:
            bucket["crash"].append(cell.offset_mv)
        elif cell.fault_count > 0:
            bucket["fault"].append(cell.offset_mv)
        else:
            bucket["safe"].append(cell.offset_mv)
    regions = []
    for key in sorted(by_frequency):
        bucket = by_frequency[key]
        faults = bucket["fault"] + bucket["crash"]
        regions.append(
            FrequencyRegions(
                frequency_ghz=key / 10.0,
                deepest_safe_mv=min(bucket["safe"]) if bucket["safe"] else None,
                first_fault_mv=max(faults) if faults else None,
                crash_mv=max(bucket["crash"]) if bucket["crash"] else None,
            )
        )
    return regions


@dataclass(frozen=True)
class RegionSummary:
    """Aggregate shape facts about one characterization."""

    system: str
    frequencies: int
    shallowest_fault_mv: float
    deepest_fault_mv: float
    mean_fault_band_width_mv: float
    maximal_safe_mv: float


def summarize(result: CharacterizationResult, *, margin_mv: float = 15.0) -> RegionSummary:
    """Shape summary used by EXPERIMENTS.md and the figure benches."""
    regions = extract_regions(result)
    boundaries = [r.first_fault_mv for r in regions if r.first_fault_mv is not None]
    widths = [r.fault_band_width_mv for r in regions if r.fault_band_width_mv is not None]
    return RegionSummary(
        system=result.model.codename,
        frequencies=len(regions),
        shallowest_fault_mv=float(max(boundaries)) if boundaries else 0.0,
        deepest_fault_mv=float(min(boundaries)) if boundaries else 0.0,
        mean_fault_band_width_mv=float(sum(widths) / len(widths)) if widths else 0.0,
        maximal_safe_mv=result.maximal_safe_offset_mv(margin_mv=margin_mv),
    )
