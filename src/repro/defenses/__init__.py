"""Baseline countermeasures the paper compares against.

* :mod:`repro.defenses.access_control` — Intel SA-00289: lock the OCM
  while SGX runs (protects, but denies benign DVFS);
* :mod:`repro.defenses.minefield` — Minefield-style deflection traps
  (tolerates faults, but breaks under single-/zero-stepping).
"""

from repro.defenses.access_control import ACCESS_CONTROL_OVERHEAD, AccessControlDefense
from repro.defenses.base import Defense, DefenseProfile
from repro.defenses.minefield import MinefieldDefense, WindowVerdict

__all__ = [
    "ACCESS_CONTROL_OVERHEAD",
    "AccessControlDefense",
    "Defense",
    "DefenseProfile",
    "MinefieldDefense",
    "WindowVerdict",
]
