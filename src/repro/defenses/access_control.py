"""Intel's SA-00289 response: access-control on the DVFS interface.

Under fixes to CVE-2019-11157 Intel disabled the overclocking mailbox
(and folded its disabled status into SGX attestation), "ensuring that the
OCM is not accessible to a non-SGX context at a time when SGX context is
in execution" (Sec. 1).  The model:

* while any enclave is alive, every 0x150 command — including *benign*
  undervolt requests from non-SGX processes — is dropped;
* the OCM-disabled status is reported to the attestation service so the
  :data:`~repro.sgx.attestation.INTEL_SA_00289_POLICY` verifier accepts
  the platform;
* each dynamic check rides a microcode assist, charged as a small
  per-``wrmsr`` overhead plus a standing cost (the paper cites [15] for
  the complexity of such run-time access control).

The drawback the paper hammers on is availability: the count of blocked
*benign* requests is recorded and surfaced by the comparison benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.cpu import ocm
from repro.cpu.msr import MSR_OC_MAILBOX
from repro.defenses.base import Defense, DefenseProfile
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import EnclaveHost
from repro.testbench import Machine

#: Standing overhead of the microcode-assisted access checks (fraction of
#: machine throughput), from the complexity argument of [15].
ACCESS_CONTROL_OVERHEAD = 0.004


@dataclass
class AccessControlDefense(Defense):
    """OCM lock-out while SGX contexts are alive."""

    machine: Machine
    enclave_host: EnclaveHost
    attestation: Optional[AttestationService] = None
    name: str = field(default="intel-sa-00289", init=False)
    blocked_writes: int = 0
    blocked_benign_requests: int = 0
    _deployed: bool = field(default=False, repr=False)

    def _sgx_active(self) -> bool:
        return bool(self.enclave_host.active_enclaves())

    # -- Defense interface -------------------------------------------------------

    def deploy(self) -> None:
        """Install the microcode access check on MSR 0x150."""
        if self._deployed:
            raise ConfigurationError("access-control defense already deployed")
        self.machine.processor.msr.insert_write_hook(MSR_OC_MAILBOX, self._gate_hook)
        if self.attestation is not None:
            self.attestation.set_ocm_disabled(True)
        self._deployed = True

    def withdraw(self) -> None:
        """Remove the access check."""
        if not self._deployed:
            raise ConfigurationError("access-control defense not deployed")
        self.machine.processor.msr.remove_write_hook(MSR_OC_MAILBOX, self._gate_hook)
        if self.attestation is not None:
            self.attestation.set_ocm_disabled(False)
        self._deployed = False

    def profile(self) -> DefenseProfile:
        """Property sheet for the comparison table."""
        return DefenseProfile(
            name=self.name,
            prevents_fault_injection=True,
            benign_dvfs_available=False,
            robust_to_single_stepping=True,
            hardware_deployable=False,
            overhead_fraction=ACCESS_CONTROL_OVERHEAD,
            notes=[
                f"blocked {self.blocked_writes} OCM commands, "
                f"{self.blocked_benign_requests} of them benign"
            ],
        )

    # -- the gate -------------------------------------------------------------------

    def _gate_hook(self, core_index: int, value: int) -> Optional[int]:
        """Drop every OCM command while an SGX context is operational."""
        if not self._sgx_active():
            return value
        command = ocm.decode_command(value)
        self.blocked_writes += 1
        if command.is_write and -80.0 <= command.offset_mv <= 0.0:
            # Heuristic benign-request tally: shallow power-saving
            # undervolts are what legitimate software asks for.
            self.blocked_benign_requests += 1
        return None
