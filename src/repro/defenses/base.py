"""Common defense interface.

All three countermeasure philosophies the paper discusses are implemented
behind one interface so the comparison benchmark can tabulate them
uniformly:

* access control (Intel SA-00289): restrict who may touch the DVFS
  interface — :mod:`repro.defenses.access_control`;
* deflection (Minefield): let the fault happen but stop its
  weaponization — :mod:`repro.defenses.minefield`;
* safe-state enforcement (this paper): keep the system out of unsafe
  states — :mod:`repro.core.polling_module` and the Sec. 5 deployments.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class DefenseProfile:
    """Comparable properties of a deployed defense (the paper's Sec. 1
    discussion rendered as data)."""

    name: str
    #: Does the defense stop fault *injection* (vs only weaponization)?
    prevents_fault_injection: bool
    #: Can benign non-SGX processes still use DVFS while SGX runs?
    benign_dvfs_available: bool
    #: Does protection survive a single-/zero-stepping adversary?
    robust_to_single_stepping: bool
    #: Could a CPU vendor implement it below the kernel (microcode/MSR)?
    hardware_deployable: bool
    #: Steady-state performance overhead (fraction, e.g. 0.0028).
    overhead_fraction: float
    notes: List[str] = field(default_factory=list)

    def as_row(self) -> Dict[str, object]:
        """Flat dict for tabular reporting."""
        return {
            "defense": self.name,
            "prevents_injection": self.prevents_fault_injection,
            "benign_dvfs": self.benign_dvfs_available,
            "single_step_robust": self.robust_to_single_stepping,
            "hw_deployable": self.hardware_deployable,
            "overhead": self.overhead_fraction,
        }


class Defense(ABC):
    """A deployable countermeasure."""

    name: str = "defense"

    @abstractmethod
    def deploy(self) -> None:
        """Activate the defense on its machine."""

    @abstractmethod
    def withdraw(self) -> None:
        """Deactivate the defense."""

    @abstractmethod
    def profile(self) -> DefenseProfile:
        """The defense's comparable property sheet."""
