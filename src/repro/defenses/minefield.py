"""Minefield (USENIX Security 2022): deflection via trap instructions.

The compiler extension sprinkles highly fault-sensitive *dummy* ("mine")
instructions through enclave code.  A DVFS fault is statistically more
likely to detonate a mine than to hit the payload instruction the
attacker wants; a detonated mine traps and the enclave aborts before the
fault can be weaponised.  The fault still *happens* — Minefield deflects
its consequences rather than preventing it.

The failure mode the paper builds its threat model around (Sec. 4.1): the
defense "does not assume an adversary which has the capability of DVFS
faulting as well as interrupting SGX enclaves post a single instruction
execution".  With SGX-Step the attacker confines the unsafe state to
exactly the victim instruction's slot; the mines execute under safe
conditions and never detonate, and zero-stepping gives unbounded retries.

Model: an instrumented window of ``real_ops`` instructions carries
``density * real_ops`` mines whose fault sensitivity exceeds the
payload's by ``mine_sensitivity_boost``.  The first fault in the window
decides the outcome: mine -> DETECTED, payload -> EXPLOITED.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.defenses.base import Defense, DefenseProfile
from repro.faults.injector import FaultInjector
from repro.faults.margin import OperatingConditions


class WindowVerdict(enum.Enum):
    """Outcome of one protected execution window under attack."""

    NO_FAULT = "no-fault"
    DETECTED = "detected"  # a mine detonated; enclave aborted
    EXPLOITED = "exploited"  # the payload faulted before any mine


@dataclass
class MinefieldDefense(Defense):
    """Compiler-inserted mines around fault-sensitive code.

    Parameters
    ----------
    density:
        Mines per payload instruction (the paper's evaluation of [15]
        explores densities up to every-instruction placement).
    mine_sensitivity_boost:
        How much more fault-prone a mine is than the payload instruction
        (mines are crafted as worst-case carry chains).
    """

    density: float = 1.0
    mine_sensitivity_boost: float = 2.0
    name: str = field(default="minefield", init=False)
    detections: int = 0
    exploits: int = 0
    _deployed: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.density < 0:
            raise ConfigurationError("mine density must be non-negative")
        if self.mine_sensitivity_boost <= 0:
            raise ConfigurationError("mine sensitivity boost must be positive")

    # -- Defense interface ---------------------------------------------------------

    def deploy(self) -> None:
        """Compile-in the mines (no machine-level hook needed)."""
        self._deployed = True

    def withdraw(self) -> None:
        """Build without instrumentation."""
        self._deployed = False

    def profile(self) -> DefenseProfile:
        """Property sheet for the comparison table."""
        return DefenseProfile(
            name=self.name,
            prevents_fault_injection=False,
            benign_dvfs_available=True,
            robust_to_single_stepping=False,
            hardware_deployable=False,
            overhead_fraction=self.overhead_fraction(),
            notes=[f"{self.detections} detections, {self.exploits} exploitable faults"],
        )

    def overhead_fraction(self) -> float:
        """Instruction-count inflation from the inserted mines."""
        return self.density / (1.0 + self.density) if self._deployed else 0.0

    # -- attack-window simulation -----------------------------------------------------

    def mine_hit_probability(self) -> float:
        """Probability that a given fault detonates a mine first.

        Mines outnumber sensitivity-weighted payload instructions by
        ``density * boost`` to 1.
        """
        if not self._deployed or self.density == 0.0:
            return 0.0
        weighted_mines = self.density * self.mine_sensitivity_boost
        return weighted_mines / (weighted_mines + 1.0)

    def run_protected_window(
        self,
        injector: FaultInjector,
        conditions: OperatingConditions,
        real_ops: int,
        *,
        single_stepped: bool = False,
    ) -> WindowVerdict:
        """One attack attempt against an instrumented window.

        With ``single_stepped`` the adversary confines the unsafe state to
        the payload instruction's slot: only the payload is exposed, the
        mines run safe, and detection is impossible — the bypass the
        paper's threat model insists on covering.
        """
        if single_stepped or not self._deployed:
            exposed_ops = real_ops
            mine_first_p = 0.0
        else:
            exposed_ops = int(real_ops * (1.0 + self.density))
            mine_first_p = self.mine_hit_probability()
        outcome = injector.run_window(conditions, exposed_ops, instruction="imul")
        if outcome.fault_count == 0:
            return WindowVerdict.NO_FAULT
        rng = injector.rng  # shares the scenario's seeded generator
        if mine_first_p > 0.0 and rng.random() < mine_first_p:
            self.detections += 1
            return WindowVerdict.DETECTED
        self.exploits += 1
        return WindowVerdict.EXPLOITED
