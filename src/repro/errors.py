"""Exception hierarchy for the Plug Your Volt reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class MSRError(ReproError):
    """Base class for model-specific-register access failures."""


class UnknownMSRError(MSRError):
    """A read or write targeted an MSR that the processor does not define."""

    def __init__(self, address: int) -> None:
        super().__init__(f"unknown MSR 0x{address:x}")
        self.address = address


class MSRPermissionError(MSRError):
    """An MSR access was rejected (e.g. write to a read-only register)."""


class MSRWriteIgnoredError(MSRError):
    """A write was silently dropped by a microcode guard.

    The real microcode-sequencer deployment described in Sec. 5.1 of the
    paper *ignores* offending writes; the simulated guard can be configured
    either to mimic that silent behaviour or to raise this error so tests
    can observe the rejection.
    """


class OCMProtocolError(MSRError):
    """A write to MSR 0x150 did not follow the overclocking-mailbox protocol."""


class InvalidVoltageOffsetError(ReproError):
    """A voltage offset was outside the encodable 11-bit range."""


class InvalidPlaneError(ReproError):
    """A voltage plane index was outside the range defined by Table 1."""


class FrequencyError(ReproError):
    """A requested core frequency is not in the processor frequency table."""


class CoreIndexError(ReproError):
    """A core index referenced a core the processor does not have."""


class MachineCheckError(ReproError):
    """The simulated machine crashed (undervolted past the crash boundary).

    Mirrors the system crashes the paper observes while characterizing the
    *width* of the unsafe region (Sec. 4.2).
    """

    def __init__(self, message: str, frequency_ghz: float, offset_mv: int) -> None:
        super().__init__(message)
        self.frequency_ghz = frequency_ghz
        self.offset_mv = offset_mv


class KernelModuleError(ReproError):
    """Loading, unloading or running a kernel module failed."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class InvariantViolation(ReproError):
    """A runtime invariant asserted by :mod:`repro.verify` was broken.

    Carries enough context to be serialized into a shrunk-repro artifact:
    the invariant's name, the simulated time at which it tripped, and a
    JSON-safe detail mapping.
    """

    def __init__(self, invariant: str, message: str, *, time_s: float = 0.0, **details) -> None:
        super().__init__(f"[{invariant}] {message}")
        self.invariant = invariant
        self.detail_message = message
        self.time_s = time_s
        self.details = details

    def to_dict(self) -> dict:
        """JSON-safe description for repro artifacts and CLI output."""
        return {
            "invariant": self.invariant,
            "message": self.detail_message,
            "time_s": self.time_s,
            "details": {k: v for k, v in sorted(self.details.items())},
        }


class ChaosError(ReproError):
    """A fault injected by the deterministic chaos harness.

    Raised inside a worker when the active
    :class:`repro.engine.resilience.ChaosPolicy` schedules a job-level
    exception for the current attempt.  Never escapes a supervised
    executor: the attempt is retried (the same seed stream replays, so
    the retry is byte-identical to an undisturbed first try) or the job
    is quarantined.
    """


class JobFailedError(ReproError):
    """A supervised job exhausted its retry budget in strict mode.

    Raised by an executor whose :class:`repro.engine.resilience.RetryPolicy`
    has ``quarantine=False``.  Unlike the old ``pool.map`` failure mode,
    the already-completed results of the batch are *not* discarded — they
    travel on :attr:`partial` so the caller can persist or report them.
    """

    def __init__(self, job, attempts: int, cause: BaseException, partial) -> None:
        super().__init__(
            f"job {getattr(job, 'kind', 'job')} failed after {attempts} "
            f"attempt(s): {type(cause).__name__}: {cause}"
        )
        self.job = job
        self.attempts = attempts
        self.cause = cause
        #: Completed :class:`repro.engine.jobs.JobResult` list (input order,
        #: holes for unfinished jobs removed).
        self.partial = list(partial)


class ObserveError(ReproError):
    """An observability operation failed (:mod:`repro.observe`).

    Raised for malformed flight-recorder dumps or run manifests, bad
    recorder configuration, and metrics-server lifecycle misuse — never
    from the simulation hot path, which the observe layer only watches.
    """


class RegistryError(ReproError):
    """A run-registry operation failed (:mod:`repro.registry`).

    Raised for unknown or ambiguous run ids, malformed registry
    directories, and trajectory bookkeeping misuse.
    """


class RegistryIntegrityError(RegistryError):
    """A registry object failed content verification.

    The blob store addresses every object by the sha256 of its bytes; a
    read whose bytes no longer hash to their address (bit rot, tampering,
    a torn write that survived the atomic-rename discipline) raises this
    instead of returning silently wrong data.  Carries the expected
    address so ``repro reproduce`` can name the job it belongs to.
    """

    def __init__(self, message: str, *, sha256: str = "") -> None:
        super().__init__(message)
        self.sha256 = sha256


class ServeError(ReproError):
    """A campaign-service operation failed (:mod:`repro.serve`).

    Raised for coordinator lifecycle misuse (double start, bind
    failures surfaced by the CLI) and malformed service state — never
    for ordinary network trouble, which the client retries and
    eventually reports as :class:`CoordinatorUnreachableError`.
    """


class ServeProtocolError(ServeError):
    """A message on the campaign-service wire was malformed.

    Covers unparseable JSON bodies (including chaos-torn ones), missing
    required fields, unsupported protocol or span-envelope schema
    versions, and non-JSON error replies.  The client treats these as
    retryable: a torn body is indistinguishable from a lost response,
    and every request is idempotent by design.
    """


class CoordinatorUnreachableError(ServeError):
    """The coordinator stayed unreachable beyond the retry budget.

    Raised by the client transport after its deterministic capped
    exponential backoff schedule is exhausted.  The remote executor
    catches it and degrades gracefully to local execution — the
    campaign completes either way, with identical bytes.
    """

    def __init__(self, url: str, attempts: int, cause: BaseException) -> None:
        super().__init__(
            f"coordinator {url} unreachable after {attempts} attempt(s): "
            f"{type(cause).__name__}: {cause}"
        )
        self.url = url
        self.attempts = attempts
        self.cause = cause


class EnclaveError(ReproError):
    """An SGX enclave operation failed."""


class AttestationError(EnclaveError):
    """Attestation report verification failed."""


class AttackError(ReproError):
    """An attack implementation was misused (not: the attack was defeated)."""


class CharacterizationError(ReproError):
    """The safe/unsafe state characterization could not be completed."""
