"""Secret provisioning: what attestation is *for*.

The paper's attestation argument (Sec. 4.1) only matters because a
remote party withholds something valuable until the platform proves its
state.  This module closes that loop: a :class:`RemoteProvisioner` holds
a secret (e.g. the RSA signing key of the Plundervolt scenario), demands
a fresh attestation quote satisfying its policy, and releases the secret
sealed to the enclave's measurement.  Unloading the countermeasure
module between provisioning rounds is therefore not just *detectable* —
it costs the platform its secrets.

Freshness is enforced with single-use nonces, so a quote recorded while
the module was loaded cannot be replayed after unloading it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

import numpy as np

from repro.errors import AttestationError
from repro.sgx.attestation import AttestationReport, VerifierPolicy, verify_report
from repro.sgx.enclave import Enclave


@dataclass
class ProvisioningRecord:
    """Audit trail entry for one provisioning attempt."""

    nonce: int
    measurement: str
    granted: bool
    reason: str


@dataclass
class RemoteProvisioner:
    """A relying party that releases secrets against attestation.

    Parameters
    ----------
    secret:
        The payload to provision (any bytes; sealed per enclave).
    policy:
        The verifier policy quotes must satisfy (e.g.
        :data:`~repro.sgx.attestation.PLUG_YOUR_VOLT_POLICY`).
    seed:
        Seed for nonce generation (deterministic experiments).
    """

    secret: bytes
    policy: VerifierPolicy
    seed: int = 0
    audit_log: list = field(default_factory=list)
    _pending_nonces: Set[int] = field(default_factory=set, repr=False)
    _provisioned: Dict[str, bytes] = field(default_factory=dict, repr=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def challenge(self) -> int:
        """Issue a fresh single-use nonce for the next quote."""
        nonce = int(self._rng.integers(1, 2**62))
        self._pending_nonces.add(nonce)
        return nonce

    def provision(self, report: AttestationReport) -> bytes:
        """Release the secret against a fresh, policy-satisfying quote.

        Raises
        ------
        AttestationError
            On nonce reuse/forgery or any policy violation.
        """
        if report.nonce not in self._pending_nonces:
            self._log(report, False, "stale or unknown nonce")
            raise AttestationError("quote is not fresh: unknown or reused nonce")
        self._pending_nonces.discard(report.nonce)
        try:
            verify_report(report, self.policy)
        except AttestationError as error:
            self._log(report, False, str(error))
            raise
        self._log(report, True, "provisioned")
        self._provisioned[report.enclave_measurement] = self.secret
        return self.secret

    def is_provisioned(self, enclave: Enclave) -> bool:
        """Whether an enclave (by measurement) has received the secret."""
        return enclave.measurement in self._provisioned

    def revoke(self, enclave: Enclave) -> None:
        """Forget a previously provisioned enclave (key rotation)."""
        self._provisioned.pop(enclave.measurement, None)

    def _log(self, report: AttestationReport, granted: bool, reason: str) -> None:
        self.audit_log.append(
            ProvisioningRecord(
                nonce=report.nonce,
                measurement=report.enclave_measurement,
                granted=granted,
                reason=reason,
            )
        )
