"""Simulated SGX enclaves.

The paper's threat model (Sec. 4.1) assumes a privileged adversary who
cannot read or tamper with enclave memory/execution directly, but *can*
mount DVFS attacks while the enclave runs: the enclave's arithmetic
executes on the shared physical core and inherits its (possibly unsafe)
operating conditions.  That is exactly what this model captures — an
enclave payload runs on a :class:`~repro.faults.alu.FaultableALU` bound to
the enclave's core, so undervolting the core faults the *trusted*
computation while the isolation boundary stays intact.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.errors import EnclaveError
from repro.faults.alu import FaultableALU
from repro.testbench import Machine

#: Payloads receive the enclave's faultable ALU and arbitrary arguments.
EnclaveCall = Callable[..., Any]


@dataclass
class EnclaveStats:
    """Per-enclave execution counters."""

    ecalls: int = 0
    aexits: int = 0  # asynchronous exits (interrupts, single-stepping)


@dataclass
class Enclave:
    """A trusted execution context pinned to one core.

    Parameters
    ----------
    machine:
        The simulated system hosting the enclave.
    core_index:
        Physical core the enclave's thread runs on.
    name:
        Identity folded into the enclave measurement.
    """

    machine: Machine
    core_index: int
    name: str = "enclave"
    stats: EnclaveStats = field(default_factory=EnclaveStats)
    _destroyed: bool = field(default=False, repr=False)
    _step_hooks: List[Callable[[], None]] = field(default_factory=list, repr=False)

    @property
    def measurement(self) -> str:
        """MRENCLAVE analogue: a digest of the enclave identity."""
        return hashlib.sha256(self.name.encode()).hexdigest()

    @property
    def alive(self) -> bool:
        """Whether the enclave can still be entered."""
        return not self._destroyed

    def alu(self) -> FaultableALU:
        """A faultable ALU bound to the enclave's core, live conditions."""
        return FaultableALU(
            injector=self.machine.injector,
            conditions_source=lambda: self.machine.conditions(self.core_index),
        )

    def ecall(self, payload: EnclaveCall, *args: Any, **kwargs: Any) -> Any:
        """Enter the enclave and run a trusted payload.

        The payload receives the enclave's :class:`FaultableALU` as its
        first argument; all its multiplications are therefore exposed to
        the core's live DVFS conditions.

        Raises
        ------
        EnclaveError
            If the enclave was destroyed.
        MachineCheckError
            Propagated if the core crashes mid-computation.
        """
        if self._destroyed:
            raise EnclaveError(f"enclave {self.name!r} was destroyed")
        self.stats.ecalls += 1
        return payload(self.alu(), *args, **kwargs)

    def destroy(self) -> None:
        """Tear the enclave down (EREMOVE)."""
        self._destroyed = True

    # -- single-stepping support (used by repro.sgx.stepping) --------------------

    def add_step_hook(self, hook: Callable[[], None]) -> None:
        """Install an AEX hook fired once per stepped instruction.

        This is the adversary's lever, not the enclave's: SGX-Step arms
        the APIC timer so the enclave exits after every instruction; the
        hook models whatever the attacker does during that window.
        """
        self._step_hooks.append(hook)

    def remove_step_hook(self, hook: Callable[[], None]) -> None:
        """Remove a previously installed AEX hook."""
        self._step_hooks.remove(hook)

    def fire_aex(self) -> None:
        """One asynchronous enclave exit (interrupt delivery)."""
        self.stats.aexits += 1
        for hook in list(self._step_hooks):
            hook()


@dataclass
class EnclaveHost:
    """The untrusted application part that owns enclave lifecycles."""

    machine: Machine
    enclaves: List[Enclave] = field(default_factory=list)

    def create_enclave(self, name: str, core_index: int = 0) -> Enclave:
        """ECREATE + EINIT: spin up an enclave on a core."""
        self.machine.processor.core(core_index)  # validate the index
        enclave = Enclave(machine=self.machine, core_index=core_index, name=name)
        self.enclaves.append(enclave)
        return enclave

    def active_enclaves(self) -> List[Enclave]:
        """Enclaves that have not been destroyed."""
        return [e for e in self.enclaves if e.alive]

    def find(self, name: str) -> Optional[Enclave]:
        """Look up a live enclave by name."""
        for enclave in self.enclaves:
            if enclave.name == name and enclave.alive:
                return enclave
        return None
