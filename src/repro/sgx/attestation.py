"""SGX remote attestation with countermeasure-state reporting.

Two attestation policies are modelled, mirroring the paper's discussion:

* **Intel's fix for CVE-2019-11157** ([12], the access-control defense):
  the report carries the *disabled status of the overclocking mailbox*;
  a remote verifier refuses enclaves on machines where the OCM is live.
* **The paper's proposal** (Sec. 4.1): the OCM status is *removed* from
  the report and replaced by the *load state of the polling
  countermeasure's kernel module*.  Benign non-SGX processes keep full
  DVFS access while the verifier still gets its guarantee — and an
  adversary who unloads the module is caught at (re-)attestation.

Hyper-threading status is included as well, since folding such platform
facts into attestation is established practice (the paper cites [29]).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.errors import AttestationError
from repro.sgx.enclave import Enclave
from repro.testbench import Machine

#: Module name the paper's countermeasure registers under.
COUNTERMEASURE_MODULE = "plug_your_volt"


@dataclass(frozen=True)
class AttestationReport:
    """A (simplified) SGX quote over enclave and platform state."""

    enclave_measurement: str
    cpu_model: str
    microcode: int
    ocm_disabled: bool
    countermeasure_loaded: bool
    hyperthreading_enabled: bool
    nonce: int
    mac: str

    @staticmethod
    def _mac_input(
        enclave_measurement: str,
        cpu_model: str,
        microcode: int,
        ocm_disabled: bool,
        countermeasure_loaded: bool,
        hyperthreading_enabled: bool,
        nonce: int,
    ) -> bytes:
        return (
            f"{enclave_measurement}|{cpu_model}|{microcode}|{ocm_disabled}"
            f"|{countermeasure_loaded}|{hyperthreading_enabled}|{nonce}"
        ).encode()

    def verify_integrity(self) -> bool:
        """Check the quote's MAC (the hardware-key HMAC analogue)."""
        expected = hashlib.sha256(
            b"platform-attestation-key:"
            + self._mac_input(
                self.enclave_measurement,
                self.cpu_model,
                self.microcode,
                self.ocm_disabled,
                self.countermeasure_loaded,
                self.hyperthreading_enabled,
                self.nonce,
            )
        ).hexdigest()
        return expected == self.mac


class AttestationService:
    """Generates quotes from live machine state (the QE analogue)."""

    def __init__(self, machine: Machine, *, hyperthreading_enabled: bool = False) -> None:
        self._machine = machine
        self._hyperthreading_enabled = hyperthreading_enabled
        self._ocm_disabled = False

    def set_ocm_disabled(self, disabled: bool) -> None:
        """Record the OCM enable state (set by the access-control defense)."""
        self._ocm_disabled = disabled

    def generate(self, enclave: Enclave, nonce: int = 0) -> AttestationReport:
        """Produce a quote for an enclave over current platform state."""
        countermeasure_loaded = self._machine.modules.is_loaded(COUNTERMEASURE_MODULE)
        fields = (
            enclave.measurement,
            self._machine.model.name,
            self._machine.processor.microcode_revision,
            self._ocm_disabled,
            countermeasure_loaded,
            self._hyperthreading_enabled,
            nonce,
        )
        mac = hashlib.sha256(
            b"platform-attestation-key:" + AttestationReport._mac_input(*fields)
        ).hexdigest()
        return AttestationReport(
            enclave_measurement=fields[0],
            cpu_model=fields[1],
            microcode=fields[2],
            ocm_disabled=fields[3],
            countermeasure_loaded=fields[4],
            hyperthreading_enabled=fields[5],
            nonce=fields[6],
            mac=mac,
        )


@dataclass(frozen=True)
class VerifierPolicy:
    """What a remote client demands before provisioning secrets."""

    #: Intel's SA-00289 stance: refuse unless the OCM is disabled.
    require_ocm_disabled: bool = False
    #: The paper's stance: refuse unless the polling module is loaded.
    require_countermeasure: bool = False
    #: Demand SMT off (established practice per [29]).
    require_hyperthreading_disabled: bool = False
    expected_measurement: Optional[str] = None


#: The two stances compared throughout the evaluation.
INTEL_SA_00289_POLICY = VerifierPolicy(require_ocm_disabled=True)
PLUG_YOUR_VOLT_POLICY = VerifierPolicy(require_countermeasure=True)


def verify_report(report: AttestationReport, policy: VerifierPolicy) -> None:
    """Remote-verifier check; raises :class:`AttestationError` on refusal."""
    if not report.verify_integrity():
        raise AttestationError("attestation MAC check failed")
    if policy.expected_measurement and report.enclave_measurement != policy.expected_measurement:
        raise AttestationError("enclave measurement mismatch")
    if policy.require_ocm_disabled and not report.ocm_disabled:
        raise AttestationError(
            "platform rejected: overclocking mailbox is enabled (SA-00289 policy)"
        )
    if policy.require_countermeasure and not report.countermeasure_loaded:
        raise AttestationError(
            "platform rejected: polling countermeasure module not loaded"
        )
    if policy.require_hyperthreading_disabled and report.hyperthreading_enabled:
        raise AttestationError("platform rejected: hyper-threading is enabled")
