"""SGX substrate: enclaves, attestation, single-/zero-stepping.

Provides the trusted-computing context the paper's threat model is set
in: enclaves whose arithmetic runs on the (fault-exposed) physical core,
attestation reports carrying either Intel's OCM-disabled bit or the
paper's proposed countermeasure-module-loaded bit, and the SGX-Step-style
stepping tools that break deflection defenses.
"""

from repro.sgx.attestation import (
    COUNTERMEASURE_MODULE,
    INTEL_SA_00289_POLICY,
    PLUG_YOUR_VOLT_POLICY,
    AttestationReport,
    AttestationService,
    VerifierPolicy,
    verify_report,
)
from repro.sgx.enclave import Enclave, EnclaveHost, EnclaveStats
from repro.sgx.provisioning import ProvisioningRecord, RemoteProvisioner
from repro.sgx.stepping import SingleStepper, SteppingTrace, ZeroStepper

__all__ = [
    "COUNTERMEASURE_MODULE",
    "INTEL_SA_00289_POLICY",
    "PLUG_YOUR_VOLT_POLICY",
    "AttestationReport",
    "AttestationService",
    "VerifierPolicy",
    "verify_report",
    "Enclave",
    "EnclaveHost",
    "EnclaveStats",
    "ProvisioningRecord",
    "RemoteProvisioner",
    "SingleStepper",
    "SteppingTrace",
    "ZeroStepper",
]
