"""SGX-Step-style single-stepping and zero-stepping.

The paper's threat-model discussion (Sec. 4.1) hinges on these tools: the
Minefield-style deflection defense does *not* include single-stepping in
its threat model, and an adversary armed with SGX-Step [27] can isolate
exactly the instruction to fault, injecting the unsafe state only while
that instruction executes and restoring safety before any trap
instruction runs.  Zero-stepping [17] additionally gives the adversary
unbounded time between fault injection and any deflection firing.

The model: a stepped enclave execution is a sequence of abstract
instruction slots.  :class:`SingleStepper` lets the adversary register
per-slot callbacks (arm the APIC timer, take an AEX, do something, resume)
so an attack can confine its DVFS manipulation to one slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.errors import AttackError
from repro.sgx.enclave import Enclave

#: A per-slot adversary callback: receives the slot index before the
#: instruction in that slot executes; returns nothing.
StepCallback = Callable[[int], None]


@dataclass
class SteppingTrace:
    """What the adversary observed/drove during a stepped execution."""

    slots: int = 0
    aex_count: int = 0
    targeted_slots: List[int] = field(default_factory=list)


@dataclass
class SingleStepper:
    """Drives an enclave one instruction at a time (SGX-Step analogue).

    Parameters
    ----------
    enclave:
        The victim enclave (its AEX counter is advanced per step).
    before_slot:
        Adversary callback fired before each instruction slot executes.
    after_slot:
        Adversary callback fired after each slot retires.
    """

    enclave: Enclave
    before_slot: Optional[StepCallback] = None
    after_slot: Optional[StepCallback] = None
    trace: SteppingTrace = field(default_factory=SteppingTrace)

    def run(self, instruction_slots: Sequence[Callable[[], None]]) -> SteppingTrace:
        """Execute a slotted payload under single-stepping.

        Each element of ``instruction_slots`` is one enclave instruction;
        the APIC timer interrupts after every one, giving the adversary
        its ``before_slot``/``after_slot`` windows.
        """
        if not instruction_slots:
            raise AttackError("nothing to step: empty instruction sequence")
        for index, instruction in enumerate(instruction_slots):
            if self.before_slot is not None:
                self.before_slot(index)
            instruction()
            self.enclave.fire_aex()
            self.trace.aex_count += 1
            if self.after_slot is not None:
                self.after_slot(index)
            self.trace.slots += 1
        return self.trace


@dataclass
class ZeroStepper:
    """Zero-stepping: replay a slot without architectural progress.

    Modelled as the ability to re-run one instruction slot arbitrarily
    many times (the enclave state is rolled back each time), giving the
    adversary unbounded fault attempts on a single instruction — the
    property that breaks deflection defenses relying on a trap *after*
    the faulted instruction.
    """

    enclave: Enclave
    max_replays: int = 10_000

    def replay_until(
        self,
        instruction: Callable[[], object],
        success: Callable[[object], bool],
    ) -> tuple:
        """Replay ``instruction`` until ``success(result)``; returns
        ``(result, attempts)`` or ``(None, attempts)`` on exhaustion."""
        for attempt in range(1, self.max_replays + 1):
            self.enclave.fire_aex()
            result = instruction()
            if success(result):
                return result, attempt
        return None, self.max_replays
