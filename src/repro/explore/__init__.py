"""Exhaustive fault-space exploration (ARMORY-style) for victim kernels.

Where the attack campaigns *sample* a handful of seeded injection
points, ``repro.explore`` enumerates the **entire** (operation-index ×
instruction-class × fault-model × operating-point) space for a victim —
first target: the RSA-CRT signer — prunes the provably uninteresting
elements before simulation, fans the survivors through the campaign
engine as frozen fingerprinted job shards, and folds the results into a
canonical *exploitability map*.  Re-running the identical plan with the
polling countermeasure loaded must drive the exploitable set to exactly
zero: coverage, not anecdote.

Layout:

* :mod:`repro.explore.victim` — tracing/replaying ALUs sharing the
  attack path's ``BigIntALU`` op sequence;
* :mod:`repro.explore.faultspace` — the deterministic fault-model
  catalog (``flip:<b>``, ``trunc64``, ``zero``);
* :mod:`repro.explore.plan` — frozen plans and the three pruning tiers
  (grid-safe points, masked injections, equivalence classes);
* :mod:`repro.explore.runner` — orchestration through the engine;
* :mod:`repro.explore.emap` — map assembly, canonical JSON, coverage
  reports.
"""

from repro.explore.emap import (
    build_map,
    canonical_json,
    coverage_holds,
    load_map,
    render_report,
)
from repro.explore.faultspace import DEFAULT_FAULT_MODELS, corrupt, corruptor
from repro.explore.plan import (
    EXPLORE_SCHEMA_VERSION,
    ExplorePlan,
    InjectionClass,
    InjectionPlan,
    PointPlan,
    enumerate_injections,
    prune_points,
)
from repro.explore.runner import run_explore
from repro.explore.victim import (
    ReplayALU,
    TracedOp,
    TracingALU,
    VictimTrace,
    modexp_op_count,
    replay_with_fault,
    trace_victim,
)

__all__ = [
    "DEFAULT_FAULT_MODELS",
    "EXPLORE_SCHEMA_VERSION",
    "ExplorePlan",
    "InjectionClass",
    "InjectionPlan",
    "PointPlan",
    "ReplayALU",
    "TracedOp",
    "TracingALU",
    "VictimTrace",
    "build_map",
    "canonical_json",
    "corrupt",
    "corruptor",
    "coverage_holds",
    "enumerate_injections",
    "load_map",
    "modexp_op_count",
    "prune_points",
    "render_report",
    "replay_with_fault",
    "run_explore",
    "trace_victim",
]
