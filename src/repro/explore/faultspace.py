"""The explorer's deterministic fault-model catalog.

Where the attack path samples *random* bit flips from the probabilistic
injector, the explorer enumerates *named, deterministic* corruptions so
the fault space is finite and every point addressable:

* ``flip:<b>`` — XOR bit ``b`` of the exact product (the single-bit
  upsets Plundervolt observed on faulted ``imul``);
* ``zero`` — force the product to zero (a fully skipped multiply);
* ``trunc64`` — keep only the low 64 bits (a lost carry chain above the
  first limb: masked whenever the product already fits one limb).

The catalog is intentionally open-ended: any ``family:arg`` spelling the
parser understands is a valid plan entry, and :data:`DEFAULT_FAULT_MODELS`
is merely the small set small plans default to.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.errors import ConfigurationError

_MASK64 = (1 << 64) - 1

#: The default model set for explore plans: low/high single-bit flips,
#: a carry-chain truncation, and a skipped multiply.
DEFAULT_FAULT_MODELS: Tuple[str, ...] = ("flip:0", "flip:63", "trunc64", "zero")


def corruptor(model: str) -> Callable[[int], int]:
    """The deterministic corruption function a model name denotes."""
    if model == "zero":
        return lambda value: 0
    if model == "trunc64":
        return lambda value: value & _MASK64
    if model.startswith("flip:"):
        try:
            bit = int(model.split(":", 1)[1])
        except ValueError:
            raise ConfigurationError(f"malformed fault model {model!r}") from None
        if bit < 0:
            raise ConfigurationError(f"fault model {model!r}: bit must be >= 0")
        return lambda value: value ^ (1 << bit)
    raise ConfigurationError(
        f"unknown fault model {model!r}; expected flip:<bit>, trunc64 or zero"
    )


def corrupt(model: str, value: int) -> int:
    """Apply one named corruption to an exact product."""
    return corruptor(model)(value)


def validate_models(models) -> Tuple[str, ...]:
    """Normalize and validate a fault-model list (order-preserving)."""
    names = tuple(models)
    if not names:
        raise ConfigurationError("an explore plan needs at least one fault model")
    seen = set()
    for name in names:
        corruptor(name)  # raises on malformed names
        if name in seen:
            raise ConfigurationError(f"duplicate fault model {name!r}")
        seen.add(name)
    return names
