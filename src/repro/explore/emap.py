"""Exploitability maps: assembly, canonical serialization, reports.

The map is the explorer's deliverable: one JSON document recording, for
the *entire* enumerated fault space, what happened to every element —
probed or pruned — plus the pruning ledger that accounts for the
difference.  It is canonical (sorted keys, no wall times, no floats that
depend on execution order), so byte-identity across shardings and
executors is a meaningful contract, and two maps diff meaningfully:
``render_report`` turns an (open, protected) pair into the
defense-coverage report the paper's "completely prevents" claim calls
for.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.explore.plan import (
    EXPLORE_SCHEMA_VERSION,
    ExplorePlan,
    InjectionPlan,
    PointPlan,
)
from repro.explore.victim import VictimTrace


def build_map(
    plan: ExplorePlan,
    trace: VictimTrace,
    point_plan: PointPlan,
    point_records: List[Dict],
    injection_plan: InjectionPlan,
    injection_verdicts: List[Dict],
) -> Dict:
    """Fold plan, pruning ledgers and job payloads into one map document."""
    # Operating points: pruned-safe entries merge with probed records,
    # in plan order.
    probed = {
        (record["frequency_ghz"], record["offset_mv"]): record
        for record in point_records
    }
    points: List[Dict] = []
    for point, predicted in zip(point_plan.points, point_plan.predicted):
        if predicted == "safe":
            points.append(
                {
                    "frequency_ghz": point[0],
                    "offset_mv": point[1],
                    "status": "safe",
                    "pruned": "grid-safe",
                }
            )
        else:
            record = dict(probed[point])
            record["pruned"] = None
            points.append(record)

    # Injections: representative verdicts fan back out over their
    # equivalence classes; masked prunes carry their proof tag.
    verdict_by_rep = {
        (verdict["op_index"], verdict["model"]): verdict["verdict"]
        for verdict in injection_verdicts
    }
    injections: List[Dict] = []
    masked = set(injection_plan.masked)
    expanded: Dict[Tuple[int, str], Dict] = {}
    for cls in injection_plan.classes:
        rep = cls.members[0]
        verdict = verdict_by_rep[(cls.op_index, rep)]
        for member in cls.members:
            expanded[(cls.op_index, member)] = {
                "verdict": verdict,
                "pruned": None if member == rep else "equivalent",
                "class_rep": rep,
            }
    for op in trace.ops:
        for model in plan.fault_models:
            key = (op.index, model)
            entry = {
                "op_index": op.index,
                "model": model,
                "region": op.region,
                "instruction": op.instruction,
            }
            if key in masked:
                entry["verdict"] = "masked"
                entry["pruned"] = "masked"
            else:
                entry.update(expanded[key])
            injections.append(entry)

    feasible_points = sum(1 for p in points if p["status"] == "feasible")
    crash_points = sum(1 for p in points if p["status"] == "crash")
    exploitable_pairs = sum(
        1 for i in injections if i["verdict"] == "exploitable"
    )
    return {
        "kind": "explore-map",
        "schema": EXPLORE_SCHEMA_VERSION,
        "plan": plan.describe(),
        "victim": {
            "kernel": "rsa-crt",
            "ops": trace.op_count,
            "regions": trace.region_sizes(),
            "instructions": sorted({op.instruction for op in trace.ops}),
        },
        "points": points,
        "injections": injections,
        "stats": {
            "points_enumerated": len(point_plan.points),
            "points_pruned_safe": point_plan.pruned_safe,
            "points_probed": len(point_plan.candidates),
            "injections_enumerated": injection_plan.enumerated,
            "injections_pruned_masked": injection_plan.pruned_masked,
            "injections_pruned_equivalent": injection_plan.pruned_equivalent,
            "injections_simulated": injection_plan.simulated,
        },
        "summary": {
            "feasible_points": feasible_points,
            "crash_points": crash_points,
            "exploitable_pairs": exploitable_pairs,
            # The exploitable set of the full product space: every
            # feasible operating point can land every exploitable
            # (op, model) pair.
            "exploitable_points": feasible_points * exploitable_pairs,
        },
    }


def canonical_json(document: Dict) -> str:
    """The map's canonical byte form (what the identity tests compare)."""
    return json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"


def load_map(path) -> Dict:
    """Read a map document, rejecting files that are not explore maps."""
    with open(path) as handle:
        document = json.load(handle)
    if document.get("kind") != "explore-map":
        raise ConfigurationError(f"{path} is not an explore map")
    return document


def render_report(
    open_map: Dict, protected_map: Optional[Dict] = None
) -> str:
    """Human-readable coverage report; diffs the defended map when given."""
    lines: List[str] = []
    for label, document in (("open", open_map), ("protected", protected_map)):
        if document is None:
            continue
        stats = document["stats"]
        summary = document["summary"]
        plan = document["plan"]
        lines.append(
            f"[{label}] {plan['codename']} · rsa-crt {plan['key_bits']}-bit "
            f"· {len(plan['fault_models'])} fault models"
        )
        lines.append(
            f"  points: {stats['points_enumerated']} enumerated, "
            f"{stats['points_pruned_safe']} pruned safe, "
            f"{stats['points_probed']} probed -> "
            f"{summary['feasible_points']} feasible, "
            f"{summary['crash_points']} crash"
        )
        lines.append(
            f"  injections: {stats['injections_enumerated']} enumerated, "
            f"{stats['injections_pruned_masked']} pruned masked, "
            f"{stats['injections_pruned_equivalent']} pruned equivalent, "
            f"{stats['injections_simulated']} simulated -> "
            f"{summary['exploitable_pairs']} exploitable pairs"
        )
        lines.append(
            f"  exploitable points: {summary['exploitable_points']}"
        )
    if protected_map is not None:
        before = open_map["summary"]["exploitable_points"]
        after = protected_map["summary"]["exploitable_points"]
        removed = before - after
        lines.append(
            f"coverage: {before} exploitable point(s) undefended, "
            f"{after} with the polling countermeasure "
            f"({removed} removed)"
        )
        verdict = (
            "COVERED: the countermeasure eliminates the entire "
            "exploitable set"
            if coverage_holds(open_map, protected_map)
            else "NOT COVERED: exploitable points survive (or the open "
            "map found none to begin with)"
        )
        lines.append(verdict)
    return "\n".join(lines)


def coverage_holds(open_map: Dict, protected_map: Dict) -> bool:
    """The paper's prevention claim over the whole fault space.

    True iff the undefended map found a non-empty exploitable set and
    the defended map's is exactly empty — coverage, not anecdote.
    """
    return (
        open_map["summary"]["exploitable_points"] > 0
        and protected_map["summary"]["exploitable_points"] == 0
    )
