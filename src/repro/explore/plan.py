"""Deterministic explore plans and fault-space pruning.

An :class:`ExplorePlan` names the full Cartesian fault space for one
victim: every traced operation index × every deterministic fault model ×
every (frequency, offset) operating point.  Before anything is
simulated, three pruning tiers cut the space down — each one *sound*, in
the sense that a pruned element's verdict is proven, not guessed
(``tests/test_explore.py`` brute-forces a small plan unpruned to check
exactly this):

1. **Safe-region points** (:func:`prune_points`): the ``repro.vector``
   grid kernels evaluate the fault physics at every requested operating
   point; points where every instruction class present in the victim has
   zero fault probability and no crash are pruned as ``safe``.  Sound
   with the countermeasure loaded too: remediation only *raises* the
   effective voltage, and the violated fraction is monotone decreasing
   in voltage.
2. **Masked injections** (:func:`enumerate_injections`): a corrupted
   product whose residue under its consuming modulus equals the golden
   residue provably cannot reach the signature — pruned as ``masked``
   without replay.
3. **Equivalence classes** (same function): two (op, model) pairs whose
   corrupted products agree under the consuming modulus continue into
   byte-identical replays, so only one representative per
   ``(op_index, consumed_residue)`` class is simulated and the verdict
   shared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cpu.models import model_by_codename
from repro.errors import ConfigurationError
from repro.explore.faultspace import DEFAULT_FAULT_MODELS, corrupt, validate_models
from repro.explore.victim import VictimTrace

#: Bumped whenever map semantics change (mirrors the engine's job schema).
EXPLORE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ExplorePlan:
    """The frozen description of one exhaustive exploration.

    Everything the run depends on travels in the plan: the CPU, the
    operating-point grid, the victim key material, the fault-model
    catalog, and — when ``protect`` is set — the characterized
    unsafe-state set the polling countermeasure deploys from
    (canonical JSON, exactly as :class:`~repro.engine.jobs.AttackCampaignJob`
    carries it).
    """

    codename: str
    frequencies_ghz: Tuple[float, ...]
    offsets_mv: Tuple[int, ...]
    fault_models: Tuple[str, ...] = DEFAULT_FAULT_MODELS
    key_bits: int = 128
    key_seed: int = 42
    message: int = 0xDEADBEEF
    protect: bool = False
    unsafe_json: Optional[str] = None
    seed: int = 5

    def __post_init__(self) -> None:
        if not self.frequencies_ghz:
            raise ConfigurationError("an explore plan needs at least one frequency")
        if not self.offsets_mv:
            raise ConfigurationError("an explore plan needs at least one offset")
        validate_models(self.fault_models)
        if self.protect and self.unsafe_json is None:
            raise ConfigurationError(
                "protected explore plans must carry the characterized "
                "unsafe-state set (unsafe_json)"
            )
        model_by_codename(self.codename)  # raises on unknown CPUs

    def describe(self) -> Dict[str, object]:
        """JSON-safe plan summary embedded in the exploitability map."""
        return {
            "codename": self.codename,
            "frequencies_ghz": list(self.frequencies_ghz),
            "offsets_mv": list(self.offsets_mv),
            "fault_models": list(self.fault_models),
            "key_bits": self.key_bits,
            "key_seed": self.key_seed,
            "message": self.message,
            "protect": self.protect,
            "seed": self.seed,
        }


# -- tier 1: operating-point pruning via the vector grid kernels -----------------


@dataclass(frozen=True)
class PointPlan:
    """The operating-point axis after grid pruning."""

    #: Every requested (frequency_ghz, offset_mv), in plan order.
    points: Tuple[Tuple[float, int], ...]
    #: Grid-predicted status per point: "safe" (pruned), "candidate".
    predicted: Tuple[str, ...]

    @property
    def candidates(self) -> Tuple[Tuple[float, int], ...]:
        """Points that must be probed on a live machine."""
        return tuple(
            point
            for point, status in zip(self.points, self.predicted)
            if status == "candidate"
        )

    @property
    def pruned_safe(self) -> int:
        return sum(1 for status in self.predicted if status == "safe")


def prune_points(plan: ExplorePlan, instructions: Tuple[str, ...]) -> PointPlan:
    """Classify every requested operating point with the grid kernels.

    A point is pruned ``safe`` only when *every* instruction class the
    victim executes has zero fault probability there and the point is
    not past the crash boundary.  Everything else — feasible or crash —
    stays a candidate and is probed on a live machine (which also
    captures what the countermeasure does to the realized conditions).
    """
    from repro.faults.margin import FaultModel
    from repro.vector import explore_feasibility_grid

    fault_model = FaultModel(model_by_codename(plan.codename))
    points: List[Tuple[float, int]] = []
    predicted: List[str] = []
    for frequency in plan.frequencies_ghz:
        grid = explore_feasibility_grid(
            fault_model, frequency, plan.offsets_mv, instructions=instructions
        )
        for column, offset in enumerate(plan.offsets_mv):
            points.append((frequency, int(offset)))
            predicted.append("safe" if bool(grid.safe[column]) else "candidate")
    return PointPlan(points=tuple(points), predicted=tuple(predicted))


# -- tiers 2+3: injection-space pruning ------------------------------------------


@dataclass(frozen=True)
class InjectionClass:
    """One equivalence class of (op_index, fault_model) pairs.

    All members corrupt operation ``op_index`` to the same residue under
    its consuming modulus, so they replay identically; ``members[0]`` is
    the simulated representative.
    """

    op_index: int
    members: Tuple[str, ...]


@dataclass(frozen=True)
class InjectionPlan:
    """The injection axis after masked/equivalence pruning."""

    #: Representatives to simulate, in first-appearance order.
    classes: Tuple[InjectionClass, ...]
    #: (op_index, model) pairs proven unable to reach the signature.
    masked: Tuple[Tuple[int, str], ...]
    enumerated: int = 0

    @property
    def pruned_masked(self) -> int:
        return len(self.masked)

    @property
    def pruned_equivalent(self) -> int:
        return sum(len(c.members) - 1 for c in self.classes)

    @property
    def simulated(self) -> int:
        return len(self.classes)


def enumerate_injections(
    trace: VictimTrace, fault_models: Tuple[str, ...]
) -> InjectionPlan:
    """Enumerate op × model, pruning masked pairs and equivalence classes."""
    classes: Dict[Tuple[int, int], List[str]] = {}
    order: List[Tuple[int, int]] = []
    masked: List[Tuple[int, str]] = []
    enumerated = 0
    for op in trace.ops:
        modulus = trace.consumed_modulus(op)
        golden_residue = op.product % modulus
        for model in fault_models:
            enumerated += 1
            residue = corrupt(model, op.product) % modulus
            if residue == golden_residue:
                masked.append((op.index, model))
                continue
            key = (op.index, residue)
            if key not in classes:
                classes[key] = []
                order.append(key)
            classes[key].append(model)
    return InjectionPlan(
        classes=tuple(
            InjectionClass(op_index=key[0], members=tuple(classes[key]))
            for key in order
        ),
        masked=tuple(masked),
        enumerated=enumerated,
    )
