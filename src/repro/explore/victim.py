"""Tracing and replaying the RSA-CRT victim's multiplication sequence.

The explorer needs to address every multiplication the victim issues —
"operation 173 of the signature" — and to re-run the signature with
exactly one of those operations corrupted.  Both needs are met by ALUs
that share :class:`~repro.faults.alu.BigIntALU`'s ``modmul``/``modexp``
with the attack-path :class:`~repro.faults.alu.FaultableALU`, so the
traced operation indices address the fault-injecting ALU's
multiplications one for one:

* :class:`TracingALU` executes the signature exactly and records every
  ``bigmul`` — operands, exact product, and the modulus the product is
  reduced by immediately afterwards (``None`` for the final Garner
  recombination multiply, which is consumed mod ``n``).
* :class:`ReplayALU` re-executes the signature with real arithmetic but
  returns a corrupted product at exactly one operation index — the
  deterministic single-fault adversary of the ARMORY model.

Region labels are assigned post hoc from the exponent structure:
square-and-multiply over ``e`` issues ``popcount(e) + bit_length(e) - 1``
modular multiplications, so the trace splits exactly into the ``sp`` and
``sq`` exponentiations followed by the two Garner recombination ops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.attacks.rsa_crt import RSACRTSigner, RSAKey
from repro.errors import ConfigurationError
from repro.faults.alu import BigIntALU

#: Region labels in trace order.
REGION_SP = "sp"
REGION_SQ = "sq"
REGION_RECOMBINE_H = "recombine-h"
REGION_RECOMBINE_MUL = "recombine-mul"

#: Instruction class every big-integer limb multiply decomposes into.
VICTIM_INSTRUCTION = "imul"


def modexp_op_count(exponent: int) -> int:
    """Number of ``modmul`` calls ``BigIntALU.modexp`` issues for ``exponent``.

    One multiply per set bit plus one squaring per doubling step:
    ``popcount(e) + bit_length(e) - 1`` (zero for ``e == 0``).
    """
    if exponent < 0:
        raise ConfigurationError("exponent must be non-negative")
    if exponent == 0:
        return 0
    return bin(exponent).count("1") + exponent.bit_length() - 1


@dataclass
class TracedOp:
    """One recorded ``bigmul`` of the victim signature.

    ``reduce_mod`` is the modulus applied to the product immediately
    after (by ``modmul``); ``None`` marks the final recombination
    multiply, whose product is consumed mod ``n`` by the signer itself.
    ``region`` is assigned post hoc by :func:`trace_victim`.
    """

    index: int
    lhs: int
    rhs: int
    product: int
    reduce_mod: Optional[int] = None
    region: str = ""
    instruction: str = VICTIM_INSTRUCTION


class TracingALU(BigIntALU):
    """Executes arithmetic exactly while recording every ``bigmul``."""

    def __init__(self) -> None:
        self.ops: List[TracedOp] = []

    def bigmul(self, lhs: int, rhs: int) -> int:
        if lhs < 0 or rhs < 0:
            raise ConfigurationError("bigmul operates on non-negative integers")
        product = lhs * rhs
        self.ops.append(
            TracedOp(index=len(self.ops), lhs=lhs, rhs=rhs, product=product)
        )
        return product

    def modmul(self, lhs: int, rhs: int, modulus: int) -> int:
        result = super().modmul(lhs, rhs, modulus)
        # The op just recorded by bigmul is the one this reduction consumes.
        self.ops[-1].reduce_mod = modulus
        return result


class ReplayALU(BigIntALU):
    """Executes arithmetic exactly except at one corrupted operation.

    ``corruptor`` maps the exact product of operation ``target_index`` to
    the value the faulted multiplier would have produced; every other
    operation is computed correctly.  This is the deterministic
    single-fault adversary: one transient fault per signature.
    """

    def __init__(self, target_index: int, corruptor: Callable[[int], int]) -> None:
        self.target_index = target_index
        self.corruptor = corruptor
        self.op_count = 0

    def bigmul(self, lhs: int, rhs: int) -> int:
        if lhs < 0 or rhs < 0:
            raise ConfigurationError("bigmul operates on non-negative integers")
        product = lhs * rhs
        if self.op_count == self.target_index:
            product = self.corruptor(product)
        self.op_count += 1
        return product


@dataclass(frozen=True)
class VictimTrace:
    """The victim signature's full, regioned multiplication trace."""

    key: RSAKey
    message: int
    golden_signature: int
    ops: Tuple[TracedOp, ...]

    @property
    def op_count(self) -> int:
        return len(self.ops)

    def region_sizes(self) -> dict:
        """Op counts per region, in trace order."""
        sizes: dict = {}
        for op in self.ops:
            sizes[op.region] = sizes.get(op.region, 0) + 1
        return sizes

    def consumed_modulus(self, op: TracedOp) -> int:
        """The modulus the op's product is effectively consumed under.

        ``modmul`` ops are reduced by their recorded modulus; the final
        recombination product enters ``(s_q + q*h) % n``, so only its
        residue mod ``n`` can reach the signature.
        """
        return op.reduce_mod if op.reduce_mod is not None else self.key.n


def trace_victim(key: RSAKey, message: int) -> VictimTrace:
    """Trace one RSA-CRT signature and label every op with its region.

    The region boundaries are derived from the exponent structure and
    asserted against the recorded trace, so a drift between the signer's
    op sequence and the explorer's addressing is a hard error, never a
    silently misattributed fault.
    """
    alu = TracingALU()
    golden = RSACRTSigner(key).sign(alu, message)
    n_sp = modexp_op_count(key.dp)
    n_sq = modexp_op_count(key.dq)
    expected = n_sp + n_sq + 2  # + Garner h-multiply + final recombination
    if len(alu.ops) != expected:
        raise ConfigurationError(
            f"victim trace recorded {len(alu.ops)} ops, expected {expected} "
            f"(sp={n_sp}, sq={n_sq}, recombine=2)"
        )
    for op in alu.ops:
        if op.index < n_sp:
            op.region = REGION_SP
        elif op.index < n_sp + n_sq:
            op.region = REGION_SQ
        elif op.index == n_sp + n_sq:
            op.region = REGION_RECOMBINE_H
        else:
            op.region = REGION_RECOMBINE_MUL
    if alu.ops[-1].reduce_mod is not None:
        raise ConfigurationError(
            "final recombination op unexpectedly carries a reduce modulus"
        )
    return VictimTrace(
        key=key, message=message, golden_signature=golden, ops=tuple(alu.ops)
    )


def replay_with_fault(
    key: RSAKey, message: int, op_index: int, corruptor: Callable[[int], int]
) -> int:
    """The signature produced with operation ``op_index`` corrupted."""
    return RSACRTSigner(key).sign(ReplayALU(op_index, corruptor), message)
